#!/usr/bin/env python3
"""Documentation drift gate for the CI `docs` job (scripts/check.sh --docs).

Two checks over README.md, DESIGN.md, and docs/*.md:

1. LINKS — every relative markdown link target must exist on disk,
   resolved against the file containing the link (http(s)/mailto and
   pure-anchor links are skipped; a `#fragment` suffix is stripped
   before the existence check).

2. INVENTORY — the bench/test names the docs talk about must match the
   tree in BOTH directions:
   * every `bench_*` / `test_*` token named anywhere in the scanned docs
     must exist as a source file under bench/ or tests/ (a doc naming a
     deleted binary is stale);
   * every bench binary in bench/bench_*.cpp must be named in
     docs/benchmarks.md (a binary the benchmark guide does not cover is
     undocumented), and every test in tests/test_*.cpp must be named
     somewhere in the scanned docs.

Exit status: 0 = docs in sync, 1 = stale link or inventory drift.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

DOC_FILES = [ROOT / "README.md", ROOT / "DESIGN.md"] + sorted(
    (ROOT / "docs").glob("*.md"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
TOKEN_RE = re.compile(r"\b(?:bench|test)_[A-Za-z0-9_]+\b")

failures = 0


def fail(msg):
    global failures
    print(f"FAIL: {msg}")
    failures += 1


def check_links(doc):
    text = doc.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (doc.parent / target.split("#", 1)[0]).resolve()
        if not path.exists():
            fail(f"{doc.relative_to(ROOT)}: broken link '{target}'")


def source_names(directory, prefix):
    return {p.stem for p in (ROOT / directory).glob(f"{prefix}_*")
            if p.suffix in (".cpp", ".hpp")}


def main():
    for doc in DOC_FILES:
        if not doc.exists():
            fail(f"expected doc file missing: {doc.relative_to(ROOT)}")
    if failures:
        print(f"docs gate: {failures} failure(s)")
        return 1

    for doc in DOC_FILES:
        check_links(doc)

    benches = source_names("bench", "bench")
    tests = source_names("tests", "test")
    known = benches | tests

    # Forward: every name the docs use must exist in the tree.
    mentioned = set()
    for doc in DOC_FILES:
        for token in TOKEN_RE.findall(doc.read_text(encoding="utf-8")):
            mentioned.add(token)
            if token not in known:
                fail(f"{doc.relative_to(ROOT)}: names '{token}' but no "
                     f"bench/{token}.cpp or tests/{token}.cpp exists")

    # Reverse: every bench binary must be covered by the benchmark guide,
    # and every test must be named somewhere in the scanned docs.
    bench_doc = (ROOT / "docs" / "benchmarks.md").read_text(encoding="utf-8")
    bench_doc_names = set(TOKEN_RE.findall(bench_doc))
    for name in sorted(benches - {"bench_common"}):
        if name not in bench_doc_names:
            fail(f"docs/benchmarks.md does not cover bench/{name}.cpp")
    for name in sorted(tests):
        if (ROOT / "tests" / f"{name}.cpp").exists() and name not in mentioned:
            fail(f"tests/{name}.cpp is not named in any scanned doc "
                 f"(README.md, DESIGN.md, docs/*.md)")

    if failures:
        print(f"docs gate: {failures} failure(s)")
        return 1
    print(f"docs gate: {len(DOC_FILES)} files, {len(benches)} bench sources, "
          f"{len(tests)} tests — links resolve, inventory in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
