#!/usr/bin/env bash
# CI gate, identical locally and hosted: tier-1 verify (configure + build +
# ctest) plus the Table IX cost benchmark as a compile-and-run smoke test of
# the perf-critical path.
#
# Usage: scripts/check.sh [--sanitize[=LIST]] [build-dir]
#
#   --sanitize            shorthand for --sanitize=address,undefined
#   --sanitize=LIST       instrument with -fsanitize=LIST; LIST=thread runs
#                         only the threaded tests (PPO smoke + parallel
#                         rollout), matching the hosted TSan job
#   build-dir             defaults to ./build (or ./build-<sanitizers>)
#
# Honors CMAKE_BUILD_TYPE from the environment (the CI matrix sets it);
# otherwise the project default (Release) applies.
set -euo pipefail
cd "$(dirname "$0")/.."

# --- fail-fast coloring: every step is announced, the first failing step is
# --- named in red, and a clean run ends in green. Colors only on a tty
# --- (or when FORCE_COLOR is set) so logs stay clean.
if [ -t 1 ] || [ -n "${FORCE_COLOR:-}" ]; then
  RED=$'\033[1;31m' GREEN=$'\033[1;32m' BLUE=$'\033[1;34m' RESET=$'\033[0m'
else
  RED="" GREEN="" BLUE="" RESET=""
fi
CURRENT_STEP="startup"
step() {
  CURRENT_STEP="$*"
  printf '%s== %s ==%s\n' "$BLUE" "$*" "$RESET"
}
trap 'printf "%sFAILED during: %s%s\n" "$RED" "$CURRENT_STEP" "$RESET" >&2' ERR

SANITIZE=""
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE="address,undefined" ;;
    --sanitize=*) SANITIZE="${arg#--sanitize=}" ;;
    -h|--help)
      sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    -*)
      # A typo like --sanitise must not silently become an UNsanitized
      # build directory that then passes green.
      printf '%sunknown option: %s%s\n' "$RED" "$arg" "$RESET" >&2
      exit 2
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
if [ -z "$BUILD_DIR" ]; then
  if [ -n "$SANITIZE" ]; then
    BUILD_DIR="build-${SANITIZE//,/-}"
  else
    BUILD_DIR="build"
  fi
fi

CMAKE_ARGS=(-DRLSCHED_SANITIZE="$SANITIZE")
if [ -n "${CMAKE_BUILD_TYPE:-}" ]; then
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE="$CMAKE_BUILD_TYPE")
fi

# Make any sanitizer finding fatal so ctest actually fails the pipeline.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

step "configure ($BUILD_DIR${SANITIZE:+, sanitize=$SANITIZE})"
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"

step "build"
cmake --build "$BUILD_DIR" -j "$(nproc)"

step "ctest"
if [ "$SANITIZE" = "thread" ]; then
  # TSan job: only the tests that exercise the thread pool — the rest are
  # single-threaded and already covered by the other jobs.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R 'test_ppo_smoke|test_parallel_rollout'
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi

if [ -z "$SANITIZE" ]; then
  step "Table IX cost smoke (decision latency must stay flat)"
  if [ -x "$BUILD_DIR/bench/bench_table9_cost" ]; then
    # Keep the smoke cheap: short measurement time, skip the training-epoch
    # benchmark (it alone dominates wall clock and is exercised by ctest's
    # PPO smoke test anyway).
    "$BUILD_DIR/bench/bench_table9_cost" \
      --benchmark_min_time=0.01 \
      --benchmark_filter='BM_SjfSortAndPick|BM_RlDecision|BM_PolicyParameterCount'
  else
    echo "bench_table9_cost not built (google-benchmark missing) - skipped"
  fi
fi

printf '%s== all checks passed ==%s\n' "$GREEN" "$RESET"
