#!/usr/bin/env bash
# CI gate, identical locally and hosted: tier-1 verify (configure + build +
# ctest) plus the Table IX cost benchmark as a compile-and-run smoke test of
# the perf-critical path.
#
# Usage: scripts/check.sh [--sanitize[=LIST]] [--coverage] [--perf] [--docs]
#                         [build-dir]
#
#   --sanitize            shorthand for --sanitize=address,undefined
#   --sanitize=LIST       instrument with -fsanitize=LIST; LIST=thread runs
#                         only the threaded tests (PPO smoke + parallel
#                         rollout), matching the hosted TSan job
#   --coverage            instrument for line coverage, run ctest, and print
#                         a per-file + total line-coverage summary (llvm-cov
#                         for clang builds, gcov for gcc); defaults the
#                         build type to Debug and skips the perf smoke
#   --perf                build Release and run the perf gates against
#                         bench/baseline.json via scripts/perf_gate.py —
#                         the same gates the hosted `perf` CI job runs:
#                         bench_batch_inference (+-25% on batching
#                         speedups, 2x hard floor at B=32 vs B=1),
#                         bench_sched_scaling (backlog-flatness of the
#                         indexed scheduling core 1k->64k, >=10x
#                         decisions/sec vs the frozen ReferenceEnv at 64k,
#                         adversarial staircase mix within 2x of benign),
#                         bench_decision_latency (int8 kernel-policy
#                         inference >= 5x float32 at B=32), and
#                         bench_serve_load (session daemon, closed-loop
#                         1k/10k bursts plus open-loop Poisson arrivals
#                         over a 100k-session table, in-process AND over
#                         loopback sockets, plus an overload row at
#                         1.5x capacity into a bounded shed-oldest
#                         queue: bitwise batch/shard/wire invariance,
#                         completed+shed+cancelled == submitted on
#                         every row, >= batch/2 windows packed per
#                         forward on closed-loop rows, the overload
#                         row must shed and its accepted p99 is
#                         hard-capped). The perf build
#                         configures -DRLSCHED_INDEX_STATS=ON so the
#                         scaling bench reports (and the gate pins)
#                         backfill node visits per query.
#                         The table benches run in --json mode, which
#                         solves the optimality-gap study alone (no RL
#                         training): bench_table5_bsld / bench_table6_util
#                         gate the exact solver's bound-admissibility and
#                         exact-beats-every-heuristic invariants.
#                         Skips ctest (the matrix jobs own correctness).
#   --docs                run the documentation gates only (no compiler):
#                         scripts/check_docs.py checks every relative link
#                         in README.md/DESIGN.md/docs/ resolves and that
#                         the bench/test inventory named in the docs
#                         matches the tree in both directions
#   build-dir             defaults to ./build (or ./build-<sanitizers>,
#                         ./build-coverage)
#
# Honors CMAKE_BUILD_TYPE from the environment (the CI matrix sets it);
# otherwise the project default (Release) applies.
set -euo pipefail
cd "$(dirname "$0")/.."

# --- fail-fast coloring: every step is announced, the first failing step is
# --- named in red, and a clean run ends in green. Colors only on a tty
# --- (or when FORCE_COLOR is set) so logs stay clean.
if [ -t 1 ] || [ -n "${FORCE_COLOR:-}" ]; then
  RED=$'\033[1;31m' GREEN=$'\033[1;32m' BLUE=$'\033[1;34m' RESET=$'\033[0m'
else
  RED="" GREEN="" BLUE="" RESET=""
fi
CURRENT_STEP="startup"
step() {
  CURRENT_STEP="$*"
  printf '%s== %s ==%s\n' "$BLUE" "$*" "$RESET"
}
trap 'printf "%sFAILED during: %s%s\n" "$RED" "$CURRENT_STEP" "$RESET" >&2' ERR

SANITIZE=""
COVERAGE=""
PERF=""
DOCS=""
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE="address,undefined" ;;
    --sanitize=*) SANITIZE="${arg#--sanitize=}" ;;
    --coverage) COVERAGE=1 ;;
    --perf) PERF=1 ;;
    --docs) DOCS=1 ;;
    -h|--help)
      sed -n '2,30p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    -*)
      # A typo like --sanitise must not silently become an UNsanitized
      # build directory that then passes green.
      printf '%sunknown option: %s%s\n' "$RED" "$arg" "$RESET" >&2
      exit 2
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
if [ -n "$DOCS" ]; then
  # Pure documentation gates: no compiler, no build directory. Refusing the
  # combination keeps "check.sh --docs --perf passed" from meaning less
  # than it reads.
  if [ -n "$SANITIZE" ] || [ -n "$COVERAGE" ] || [ -n "$PERF" ]; then
    printf '%s--docs cannot combine with --sanitize/--coverage/--perf%s\n' \
      "$RED" "$RESET" >&2
    exit 2
  fi
  command -v python3 >/dev/null || {
    printf '%spython3 is required for the docs gate%s\n' "$RED" "$RESET" >&2
    exit 1
  }
  step "docs gate (relative links resolve, bench/test inventory in sync)"
  python3 scripts/check_docs.py
  printf '%s== docs checks passed ==%s\n' "$GREEN" "$RESET"
  exit 0
fi
if [ -z "$BUILD_DIR" ]; then
  if [ -n "$SANITIZE" ]; then
    BUILD_DIR="build-${SANITIZE//,/-}"
  elif [ -n "$COVERAGE" ]; then
    BUILD_DIR="build-coverage"
  else
    BUILD_DIR="build"
  fi
fi
if [ -n "$PERF" ]; then
  # Perf numbers from an instrumented or un-optimized build are noise.
  if [ -n "$SANITIZE" ] || [ -n "$COVERAGE" ]; then
    printf '%s--perf cannot combine with --sanitize/--coverage%s\n' \
      "$RED" "$RESET" >&2
    exit 2
  fi
  CMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}"
fi

CMAKE_ARGS=(-DRLSCHED_SANITIZE="$SANITIZE")
if [ -n "${RLSCHED_SIMD:-}" ]; then
  # Lane-width override (1 = scalar fallback); one CI matrix cell builds
  # with RLSCHED_SIMD=1 so the fallback kernels stay exercised.
  CMAKE_ARGS+=(-DRLSCHED_SIMD="$RLSCHED_SIMD")
fi
if [ -n "${RLSCHED_INDEX_STATS:-}" ]; then
  # Compile the PendingIndex descent counters in (the scalar CI cell sets
  # this so the worst-case-log assertions run without vector units too).
  CMAKE_ARGS+=(-DRLSCHED_INDEX_STATS="$RLSCHED_INDEX_STATS")
fi
if [ -n "$PERF" ]; then
  # The scaling gate pins backfill node visits per query — a pure
  # algorithmic count that needs the instrumented index. The counters are
  # plain increments costing ~2% on the backfilled rows; the baseline was
  # recorded with them on.
  CMAKE_ARGS+=(-DRLSCHED_INDEX_STATS=ON)
fi
if [ -n "$COVERAGE" ]; then
  CMAKE_ARGS+=(-DRLSCHED_COVERAGE=ON)
  # Coverage numbers on optimized code blame the wrong lines; default to
  # Debug unless the caller insists otherwise.
  CMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Debug}"
fi
if [ -n "${CMAKE_BUILD_TYPE:-}" ]; then
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE="$CMAKE_BUILD_TYPE")
fi

# Make any sanitizer finding fatal so ctest actually fails the pipeline.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

step "configure ($BUILD_DIR${SANITIZE:+, sanitize=$SANITIZE})"
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"

step "build"
cmake --build "$BUILD_DIR" -j "$(nproc)"

if [ -n "$COVERAGE" ]; then
  COVERAGE_FLAVOR="$(cat "$BUILD_DIR/coverage-flavor.txt")"
  if [ "$COVERAGE_FLAVOR" = llvm ]; then
    # One profile per test process, merged below.
    rm -rf "$BUILD_DIR/profiles"
    mkdir -p "$BUILD_DIR/profiles"
    export LLVM_PROFILE_FILE="$PWD/$BUILD_DIR/profiles/%m-%p.profraw"
  else
    # Stale counters from a previous run would merge into (or, after a
    # rebuild, stamp-mismatch against) this run's data — start clean.
    find "$BUILD_DIR" -name '*.gcda' -delete
  fi
fi

if [ -n "$PERF" ]; then
  command -v python3 >/dev/null || {
    printf '%spython3 is required for the perf gate%s\n' "$RED" "$RESET" >&2
    exit 1
  }
  step "batched-inference perf gate (bench/baseline.json, +-25% on speedups)"
  "$BUILD_DIR/bench/bench_batch_inference" --json \
    > "$BUILD_DIR/bench_batch_inference.json"
  python3 scripts/perf_gate.py bench/baseline.json \
    "$BUILD_DIR/bench_batch_inference.json" --tolerance 0.25
  step "scheduling-core scaling gate (flat 1k->64k, >=10x vs reference, adversarial <= 2x benign)"
  "$BUILD_DIR/bench/bench_sched_scaling" --json \
    > "$BUILD_DIR/bench_sched_scaling.json"
  python3 scripts/perf_gate.py bench/baseline.json \
    "$BUILD_DIR/bench_sched_scaling.json" --tolerance 0.25
  step "quantized decision-latency gate (int8 >= 5x f32 at B=32)"
  "$BUILD_DIR/bench/bench_decision_latency" --json \
    > "$BUILD_DIR/bench_decision_latency.json"
  python3 scripts/perf_gate.py bench/baseline.json \
    "$BUILD_DIR/bench_decision_latency.json" --tolerance 0.25
  step "serve daemon load gate (1k/10k closed + 100k open-loop + 1.5x overload shed, inproc + socket, bitwise invariance)"
  "$BUILD_DIR/bench/bench_serve_load" --sessions 1000,10000 --open-loop \
    --json > "$BUILD_DIR/bench_serve_load.json"
  python3 scripts/perf_gate.py bench/baseline.json \
    "$BUILD_DIR/bench_serve_load.json" --tolerance 0.25
  step "optimality-gap gate, bsld windows (bound <= exact <= every heuristic)"
  "$BUILD_DIR/bench/bench_table5_bsld" --json \
    > "$BUILD_DIR/bench_table5_bsld.json"
  python3 scripts/perf_gate.py bench/baseline.json \
    "$BUILD_DIR/bench_table5_bsld.json" --tolerance 0.25
  step "optimality-gap gate, makespan windows (bound <= exact <= every heuristic)"
  "$BUILD_DIR/bench/bench_table6_util" --json \
    > "$BUILD_DIR/bench_table6_util.json"
  python3 scripts/perf_gate.py bench/baseline.json \
    "$BUILD_DIR/bench_table6_util.json" --tolerance 0.25
  printf '%s== perf gates passed ==%s\n' "$GREEN" "$RESET"
  exit 0
fi

step "ctest"
if [ "$SANITIZE" = "thread" ]; then
  # TSan job: only the tests that exercise threads — the rollout pool,
  # the serve daemon's dispatcher/client concurrency, the socket
  # server's accept/event/completion threads, and the fault-injection
  # chaos suite (retry/failover races dispatcher threads against
  # injected disconnects) — the rest are single-threaded and already
  # covered by the other jobs.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R 'test_ppo_smoke|test_parallel_rollout|test_serve_daemon|test_serve_server|test_serve_faults'
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi

if [ -n "$COVERAGE" ]; then
  step "line-coverage summary ($COVERAGE_FLAVOR)"
  if [ "$COVERAGE_FLAVOR" = llvm ]; then
    llvm-profdata merge -sparse "$BUILD_DIR"/profiles/*.profraw \
      -o "$BUILD_DIR/coverage.profdata"
    # Report over every test binary (the library is linked statically into
    # each); restrict the listing to the library's own sources.
    OBJECT_ARGS=()
    FIRST_BIN=""
    for t in "$BUILD_DIR"/tests/test_*; do
      [ -x "$t" ] || continue
      if [ -z "$FIRST_BIN" ]; then FIRST_BIN="$t"; else OBJECT_ARGS+=(-object "$t"); fi
    done
    llvm-cov report "$FIRST_BIN" "${OBJECT_ARGS[@]}" \
      -instr-profile="$BUILD_DIR/coverage.profdata" \
      -ignore-filename-regex='(tests|bench|examples)/'
  else
    # gcov flavor: aggregate "Lines executed" over the library's objects.
    (cd "$BUILD_DIR" &&
     find . -path '*rlsched.dir*' -name '*.gcda' -print0 |
       xargs -0 gcov -n 2>/dev/null) |
      awk '/^File /{file=$0; sub(/^File /,"",file); gsub(/\x27/,"",file)}
           /^No executable lines/{file=""}
           /^Lines executed:/{
             # A Lines line with no pending File is gcov'\''s whole-run
             # total — skip it, we aggregate ourselves.
             if (file != "" && file !~ /(tests|bench|examples)\// &&
                 file !~ /^\/usr/) {
               pct=$0; sub(/^Lines executed:/,"",pct); sub(/%.*/,"",pct)
               n=$0; sub(/.*% of /,"",n)
               # Headers appear once per including TU; keep one entry per
               # file — the widest instrumentation, best coverage on ties —
               # so the TOTAL does not weight headers N times (llvm-cov
               # deduplicates these by merging counts; with only per-TU
               # summaries this is the closest approximation).
               n += 0  # force numeric: sub() yields strings, and a
                       # string compare would rank "9" above "120"
               if (!(file in lines)) order[++nfiles]=file
               cov=pct/100.0*n
               if (n > lines[file] ||
                   (n == lines[file] && cov > covered[file])) {
                 lines[file]=n; covered[file]=cov
               }
             }
             file=""
           }
           END{
             for (i=1; i<=nfiles; ++i) {
               f=order[i]
               printf "%7.2f%% of %5d  %s\n",
                      100.0*covered[f]/lines[f], lines[f], f
               c += covered[f]; t += lines[f]
             }
             if (t > 0)
               printf "TOTAL line coverage: %.2f%% (%d of %d lines)\n",
                      100.0*c/t, c, t
             else { print "no coverage data found"; exit 1 }
           }'
  fi
fi

if [ -z "$SANITIZE" ] && [ -z "$COVERAGE" ]; then
  step "Table IX cost smoke (decision latency must stay flat)"
  if [ -x "$BUILD_DIR/bench/bench_table9_cost" ]; then
    # Keep the smoke cheap: short measurement time, skip the training-epoch
    # benchmark (it alone dominates wall clock and is exercised by ctest's
    # PPO smoke test anyway).
    "$BUILD_DIR/bench/bench_table9_cost" \
      --benchmark_min_time=0.01 \
      --benchmark_filter='BM_SjfSortAndPick|BM_RlDecision|BM_PolicyParameterCount'
  else
    echo "bench_table9_cost not built (google-benchmark missing) - skipped"
  fi
fi

printf '%s== all checks passed ==%s\n' "$GREEN" "$RESET"
