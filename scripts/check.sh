#!/usr/bin/env bash
# CI gate: tier-1 verify (configure + build + ctest) plus the Table IX cost
# benchmark as a compile-and-run smoke test of the perf-critical path.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== Table IX cost smoke (decision latency must stay flat) =="
if [ -x "$BUILD_DIR/bench/bench_table9_cost" ]; then
  # Keep the smoke cheap: short measurement time, skip the training-epoch
  # benchmark (it alone dominates wall clock and is exercised by ctest's
  # PPO smoke test anyway).
  "$BUILD_DIR/bench/bench_table9_cost" \
    --benchmark_min_time=0.01 \
    --benchmark_filter='BM_SjfSortAndPick|BM_RlDecision|BM_PolicyParameterCount'
else
  echo "bench_table9_cost not built (google-benchmark missing) - skipped"
fi

echo "== all checks passed =="
