#!/usr/bin/env python3
"""Perf-regression gate for bench_batch_inference (the CI `perf` job).

Usage: perf_gate.py BASELINE.json CURRENT.json [--tolerance 0.25]

Two kinds of checks, deliberately different in strictness:

* Batching SPEEDUP RATIOS (b8/b1, b32/b1 per metric) are compared against
  the checked-in baseline with the given tolerance and FAIL the gate when
  they regress below baseline * (1 - tolerance). Ratios divide out the
  host's absolute speed, so they are meaningful on any runner generation.

* ABSOLUTE decisions/sec are reported, and a drop below the same tolerance
  band only WARNS: hosted CI machines legitimately differ by more than any
  useful tolerance, and a hard absolute gate would be pure flakiness.

* HARD FLOORS, host-independent by construction (the ISSUE's acceptance
  criterion): batched inference must deliver >= 2x decisions/sec at B=32
  vs B=1 on the weight-bound evaluation sweep (eval_mlp) and on the
  trainer's rollout decision point (rollout_kernel). The kernel-policy
  evaluation sweep is exempt from the floor — its network is already
  batched over the 128-job window internally, so its honest curve is flat
  (gated only against ratio regression) — but batching must never cost it
  more than the tolerance either.

Exit status: 0 = gate passed, 1 = regression or floor violation.
"""

import json
import sys

FLOOR_METRICS = {"eval_mlp": 2.0, "rollout_kernel": 2.0}
RATIOS = [("b8", "b1"), ("b32", "b1")]


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    tolerance = 0.25
    if "--tolerance" in argv:
        tolerance = float(argv[argv.index("--tolerance") + 1])
    with open(argv[1]) as f:
        baseline_doc = json.load(f)
    with open(argv[2]) as f:
        current_doc = json.load(f)

    # A scalar-fallback build or a resized pool produces numbers the
    # baseline was never recorded for — say so instead of failing with
    # confusing ratios.
    for field in ("simd_lanes", "pool_windows"):
        if baseline_doc.get(field) != current_doc.get(field):
            return fail(
                f"bench config mismatch: {field} is "
                f"{current_doc.get(field)} here but the baseline was "
                f"recorded at {baseline_doc.get(field)} — refresh "
                f"bench/baseline.json for this build configuration")

    baseline = baseline_doc["metrics"]
    current = current_doc["metrics"]

    failures = 0
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures += fail(f"metric '{name}' missing from current run")
            continue

        for hi, lo in RATIOS:
            base_ratio = base[hi] / base[lo]
            cur_ratio = cur[hi] / cur[lo]
            floor = base_ratio * (1.0 - tolerance)
            status = "ok" if cur_ratio >= floor else "FAIL"
            print(f"{name:16s} {hi}/{lo} speedup {cur_ratio:7.2f}x "
                  f"(baseline {base_ratio:.2f}x, gate >= {floor:.2f}x) "
                  f"{status}")
            if cur_ratio < floor:
                failures += fail(
                    f"{name} {hi}/{lo} batching speedup regressed: "
                    f"{cur_ratio:.2f}x < {floor:.2f}x")

        for b in ("b1", "b8", "b32"):
            if cur[b] < base[b] * (1.0 - tolerance):
                print(f"WARN: {name} {b} absolute throughput "
                      f"{cur[b]:.0f}/s is {cur[b] / base[b]:.2f}x the "
                      f"baseline {base[b]:.0f}/s (host difference or real "
                      f"regression — ratios above are the gate)")

        floor = FLOOR_METRICS.get(name)
        if floor is not None:
            got = cur["b32"] / cur["b1"]
            status = "ok" if got >= floor else "FAIL"
            print(f"{name:16s} hard floor: B=32 vs B=1 {got:7.2f}x "
                  f"(required >= {floor:.1f}x) {status}")
            if got < floor:
                failures += fail(
                    f"{name} batched inference floor violated: "
                    f"{got:.2f}x < {floor:.1f}x at B=32 vs B=1")

    if failures:
        print(f"perf gate: {failures} failure(s)")
        return 1
    print("perf gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
