#!/usr/bin/env python3
"""Perf-regression gate for the CI `perf` job.

Usage: perf_gate.py BASELINE.json CURRENT.json [--tolerance 0.25]

BASELINE.json holds one entry per bench under "benches"; the gate
dispatches on CURRENT.json's "bench" field:

bench_batch_inference — batched-inference engine:

* Batching SPEEDUP RATIOS (b8/b1, b32/b1 per metric) are compared against
  the checked-in baseline with the given tolerance and FAIL the gate when
  they regress below baseline * (1 - tolerance). Ratios divide out the
  host's absolute speed, so they are meaningful on any runner generation.

* HARD FLOORS, host-independent by construction: batched inference must
  deliver >= 2x decisions/sec at B=32 vs B=1 on the weight-bound
  evaluation sweep (eval_mlp) and on the trainer's rollout decision point
  (rollout_kernel). The kernel-policy evaluation sweep is exempt — its
  network is already batched over the 128-job window internally, so its
  honest curve is flat (gated only against ratio regression).

bench_sched_scaling — indexed scheduling core on storm backlogs:

* BACKLOG-FLATNESS: per-decision cost from 1k to 64k pending (the n1k/n64k
  decisions-per-sec ratio) must stay within tolerance of the recorded
  baseline ratio for every indexed metric, and under an absolute cap of
  2.5x for the genuinely flat paths (fcfs_plain: pure queue maintenance;
  kernel: inference-dominated decision). fcfs_easy is exempt from the cap:
  deeper storms legitimately backfill more jobs per decision, so its
  honest curve is sublinear-but-not-flat and only the baseline-ratio check
  applies.

* SPEEDUP FLOORS at the 64k backlog, measured in the SAME run against the
  frozen ReferenceEnv (ref_* metrics) so host speed divides out: >= 10x
  decisions/sec on fcfs_plain and fcfs_easy (the seed-core comparison the
  tentpole targets), >= 2x on kernel (where policy inference, not the
  simulator, dominates both cores by design).

* ADVERSARIAL STAIRCASE MIX: fcfs_easy_adv (anticorrelated procs/req_time
  ramps — the shape that degrades a corner-only backfill descent to O(P))
  must stay within a hard 2x of the benign fcfs_easy throughput at the 64k
  backlog, and on RLSCHED_INDEX_STATS builds the measured backfill NODE
  VISITS per query — a pure algorithmic count, host-independent — are
  gated directly: adversarial <= 2x benign at 64k, and both mixes within
  tolerance of the recorded baseline counts.

* EXACT-WINDOW row (exact_w8): the branch-and-bound planner's node budget
  caps per-decision work independent of backlog depth, so its 1k-to-64k
  ratio gates against the recorded baseline ratio. The bench's "optgap"
  self-check block gates HARD within the run: on one storm window the
  admissible bound must sit at or below the PROVED optimum, which must sit
  at or below every greedy heuristic.

* ABSOLUTE decisions/sec and indexed-vs-reference speedups are also
  compared against the baseline but only WARN: hosted CI machines
  legitimately differ by more than any useful tolerance.

bench_table5_bsld / bench_table6_util (--json mode) — optimality-gap study
on standalone contended windows (sched/exact.hpp):

* HARD, host-independent by construction: on every window the admissible
  lower bound must sit at or below the exact objective, and on every
  PROVED window (search exhausted) the exact objective must sit at or
  below every heuristic's greedy objective — the solver's two load-bearing
  contracts, checked within the current run with only round-trip epsilon.

* objective/window/windows/max_nodes are RUN configuration: a mismatch
  with the baseline is a config error and fails hard.

* Proved-window counts, node counts, and per-heuristic average gap ratios
  are compared against the baseline but only WARN: branch-and-bound
  pruning follows floating-point comparisons, so compilers that contract
  differently (-ffp-contract) can legitimately prove a different subset
  within the node budget.

bench_serve_load — multi-tenant session daemon, closed-loop bursts
(in-process and over loopback sockets) plus open-loop Poisson arrivals:

* HARD, host-independent: all three bitwise invariance self-checks must
  pass (batch-B == batch-1 serial; N-dispatcher sharded == single
  dispatcher; socket == in-process), every submitted request must
  complete on every row, and the average observation windows packed per
  batched forward must reach >= batch/2 on every CLOSED-LOOP row — a
  pure algorithmic count proving cross-session batching engages.
  Open-loop rows (ol_*/sock_ol_* prefixes) are exempt from the
  windows/forward floor: Poisson arrivals are sparse by design.

* batch/jobs/dispatchers are RUN configuration (like simd_lanes): a
  mismatch with the baseline is a config error and fails hard.

* Aggregate decisions/sec and p99 latency are compared against the
  baseline but only WARN (absolute host speed; open-loop p99 measures
  queueing delay at the offered rate).

bench_decision_latency — quantized kernel-policy decision path:

* HARD FLOOR: int8 decisions/sec >= 5x float32 at B=32 (same run, same
  host, so machine speed divides out). int8/f32 ratios at B=1 and B=32
  are additionally gated against the baseline with the tolerance band.

* quant_isa is a HOST property (the int8 kernel dispatches on CPUID at
  load): a run whose quant_isa differs from the baseline produces honest
  numbers the floor was never recorded for, so the gate WARNS and skips
  rather than failing. simd_lanes/pool_windows are BUILD properties — a
  mismatch there is a config error and fails hard.

Exit status: 0 = gate passed, 1 = regression or floor violation,
2 = usage/config error.
"""

import json
import sys

failures = 0


def fail(msg):
    global failures
    print(f"FAIL: {msg}")
    failures += 1


def warn_absolute(name, base, cur, keys, tolerance):
    for k in keys:
        if cur[k] < base[k] * (1.0 - tolerance):
            print(f"WARN: {name} {k} absolute throughput {cur[k]:.0f}/s is "
                  f"{cur[k] / base[k]:.2f}x the baseline {base[k]:.0f}/s "
                  f"(host difference or real regression — ratios are the "
                  f"gate)")


def check_batch_inference(baseline_doc, current_doc, tolerance):
    # A scalar-fallback build or a resized pool produces numbers the
    # baseline was never recorded for — say so instead of failing with
    # confusing ratios.
    for field in ("simd_lanes", "pool_windows"):
        if baseline_doc.get(field) != current_doc.get(field):
            fail(f"bench config mismatch: {field} is "
                 f"{current_doc.get(field)} here but the baseline was "
                 f"recorded at {baseline_doc.get(field)} — refresh "
                 f"bench/baseline.json for this build configuration")
            return

    floor_metrics = {"eval_mlp": 2.0, "rollout_kernel": 2.0}
    baseline = baseline_doc["metrics"]
    current = current_doc["metrics"]

    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            fail(f"metric '{name}' missing from current run")
            continue

        for hi, lo in (("b8", "b1"), ("b32", "b1")):
            base_ratio = base[hi] / base[lo]
            cur_ratio = cur[hi] / cur[lo]
            floor = base_ratio * (1.0 - tolerance)
            status = "ok" if cur_ratio >= floor else "FAIL"
            print(f"{name:16s} {hi}/{lo} speedup {cur_ratio:7.2f}x "
                  f"(baseline {base_ratio:.2f}x, gate >= {floor:.2f}x) "
                  f"{status}")
            if cur_ratio < floor:
                fail(f"{name} {hi}/{lo} batching speedup regressed: "
                     f"{cur_ratio:.2f}x < {floor:.2f}x")

        warn_absolute(name, base, cur, ("b1", "b8", "b32"), tolerance)

        floor = floor_metrics.get(name)
        if floor is not None:
            got = cur["b32"] / cur["b1"]
            status = "ok" if got >= floor else "FAIL"
            print(f"{name:16s} hard floor: B=32 vs B=1 {got:7.2f}x "
                  f"(required >= {floor:.1f}x) {status}")
            if got < floor:
                fail(f"{name} batched inference floor violated: "
                     f"{got:.2f}x < {floor:.1f}x at B=32 vs B=1")


def check_sched_scaling(baseline_doc, current_doc, tolerance):
    # (indexed metric, its reference twin, 64k speedup floor, flatness cap)
    plan = [
        ("fcfs_plain", "ref_fcfs_plain", 10.0, 2.5),
        ("fcfs_easy", "ref_fcfs_easy", 10.0, None),
        ("kernel", "ref_kernel", 2.0, 2.5),
    ]
    baseline = baseline_doc["metrics"]
    current = current_doc["metrics"]

    for name, ref_name, speed_floor, flat_cap in plan:
        cur = current.get(name)
        cur_ref = current.get(ref_name)
        if cur is None or cur_ref is None:
            fail(f"metric '{name}'/'{ref_name}' missing from current run")
            continue
        base = baseline.get(name)
        base_ref = baseline.get(ref_name)
        if base is None or base_ref is None:
            fail(f"metric '{name}'/'{ref_name}' missing from baseline — "
                 f"refresh bench/baseline.json with the full bench output")
            continue

        # Backlog flatness: per-decision cost at 64k vs 1k == n1k/n64k dps.
        base_flat = base["n1k"] / base["n64k"]
        cur_flat = cur["n1k"] / cur["n64k"]
        limit = base_flat * (1.0 + tolerance)
        if flat_cap is not None:
            limit = min(limit, flat_cap)  # both claims must hold
        status = "ok" if cur_flat <= limit else "FAIL"
        cap_note = f", cap {flat_cap:.1f}x" if flat_cap is not None else ""
        print(f"{name:16s} 64k/1k per-decision cost {cur_flat:7.2f}x "
              f"(baseline {base_flat:.2f}x, gate <= {limit:.2f}x{cap_note}) "
              f"{status}")
        if cur_flat > limit:
            fail(f"{name} backlog scaling regressed: per-decision cost "
                 f"grew {cur_flat:.2f}x from 1k to 64k (gate <= "
                 f"{limit:.2f}x)")

        # Hard speedup floor vs the reference core, same run & host.
        speedup = cur["n64k"] / cur_ref["n64k"]
        status = "ok" if speedup >= speed_floor else "FAIL"
        print(f"{name:16s} 64k speedup vs reference {speedup:7.1f}x "
              f"(required >= {speed_floor:.0f}x) {status}")
        if speedup < speed_floor:
            fail(f"{name} indexed-core speedup floor violated: "
                 f"{speedup:.1f}x < {speed_floor:.0f}x vs {ref_name} at "
                 f"64k backlog")

        base_speedup = base["n64k"] / base_ref["n64k"]
        if speedup < base_speedup * (1.0 - tolerance):
            print(f"WARN: {name} 64k speedup {speedup:.1f}x is below the "
                  f"baseline {base_speedup:.1f}x band (host cache/memory "
                  f"differences move this; the floors above are the gate)")

        warn_absolute(name, base, cur, ("n1k", "n8k", "n64k"), tolerance)

    # The exact-window planner row: the branch-and-bound node budget caps
    # per-decision work independent of backlog depth, so its backlog curve
    # gates against the recorded baseline ratio like the other indexed
    # paths (no reference twin — the seed core never had an exact solver).
    cur_ex = current.get("exact_w8")
    base_ex = baseline.get("exact_w8")
    if cur_ex is None:
        fail("metric 'exact_w8' missing from current run")
    elif base_ex is None:
        fail("metric 'exact_w8' missing from baseline — refresh "
             "bench/baseline.json with the full bench output")
    else:
        base_flat = base_ex["n1k"] / base_ex["n64k"]
        cur_flat = cur_ex["n1k"] / cur_ex["n64k"]
        limit = base_flat * (1.0 + tolerance)
        status = "ok" if cur_flat <= limit else "FAIL"
        print(f"{'exact_w8':16s} 64k/1k per-decision cost {cur_flat:7.2f}x "
              f"(baseline {base_flat:.2f}x, gate <= {limit:.2f}x) {status}")
        if cur_flat > limit:
            fail(f"exact_w8 backlog scaling regressed: per-decision cost "
                 f"grew {cur_flat:.2f}x from 1k to 64k (gate <= "
                 f"{limit:.2f}x)")
        warn_absolute("exact_w8", base_ex, cur_ex, ("n1k", "n8k", "n64k"),
                      tolerance)

    # Optimality-gap self-check on the storm window: bound <= exact <=
    # every greedy heuristic, with the optimum PROVED (unlimited budget on
    # 8 jobs). Pure solver contracts, host-independent — they gate HARD.
    og = current_doc.get("optgap")
    if og is None:
        fail("'optgap' block missing from current run")
    else:
        ok = (og.get("proved") is True
              and og["bound"] <= og["exact"] + 1e-9 * (1.0 + abs(og["exact"]))
              and og["exact"] <= og["fcfs"] + 1e-9 * (1.0 + abs(og["fcfs"]))
              and og["exact"] <= og["sjf"] + 1e-9 * (1.0 + abs(og["sjf"])))
        print(f"{'optgap':16s} bound {og['bound']:.4g} <= exact "
              f"{og['exact']:.4g} (proved={og.get('proved')}) <= fcfs "
              f"{og['fcfs']:.4g} / sjf {og['sjf']:.4g} (hard gate) "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            fail("optimality-gap invariant violated on the storm window: "
                 "need proved bound <= exact <= every greedy heuristic "
                 "(run test_exact_window)")

    # Adversarial staircase mix throughput: the two mixes do genuinely
    # different per-decision work (the adversarial storm keeps the machine
    # blocked, so every decision runs a live reservation + full backfill
    # scan), so wall-clock only WARNS against the recorded slowdown band.
    # The worst-case claim itself gates on NODE VISITS below — a pure
    # algorithmic count, identical on every host.
    cur_adv = current.get("fcfs_easy_adv")
    base_adv = baseline.get("fcfs_easy_adv")
    if cur_adv is None:
        fail("metric 'fcfs_easy_adv' missing from current run")
    elif base_adv is None:
        fail("metric 'fcfs_easy_adv' missing from baseline — refresh "
             "bench/baseline.json with the full bench output")
    else:
        slowdown = current["fcfs_easy"]["n64k"] / cur_adv["n64k"]
        base_slow = baseline["fcfs_easy"]["n64k"] / base_adv["n64k"]
        print(f"{'fcfs_easy_adv':16s} adversarial vs benign at 64k "
              f"{slowdown:7.2f}x slower (baseline {base_slow:.2f}x)")
        if slowdown > base_slow * (1.0 + tolerance):
            print(f"WARN: adversarial mix slowed {slowdown:.2f}x vs the "
                  f"baseline {base_slow:.2f}x band — check the node-visit "
                  f"gate below for the algorithmic signal")
        warn_absolute("fcfs_easy_adv", base_adv, cur_adv,
                      ("n1k", "n8k", "n64k"), tolerance)

    # Node visits per backfill query: a pure algorithmic count, identical
    # on every host, so it gates HARD against the baseline. Only
    # RLSCHED_INDEX_STATS builds report it (check.sh --perf configures
    # the perf build with it ON).
    if not current_doc.get("index_stats"):
        print("WARN: node-visit gate skipped — bench built without "
              "RLSCHED_INDEX_STATS (check.sh --perf turns it on)")
        return
    cur_vpq = current_doc.get("visits_per_query", {})
    base_vpq = baseline_doc.get("visits_per_query", {})
    for mix in ("fcfs_easy", "fcfs_easy_adv"):
        if mix not in cur_vpq or mix not in base_vpq:
            fail(f"visits_per_query '{mix}' missing from "
                 f"{'current run' if mix not in cur_vpq else 'baseline'}")
            return
        limit = base_vpq[mix]["n64k"] * (1.0 + tolerance)
        got = cur_vpq[mix]["n64k"]
        status = "ok" if got <= limit else "FAIL"
        print(f"{mix:16s} node visits/query at 64k {got:7.2f} "
              f"(baseline {base_vpq[mix]['n64k']:.2f}, gate <= "
              f"{limit:.2f}) {status}")
        if got > limit:
            fail(f"{mix} backfill descent regressed: {got:.2f} node "
                 f"visits per query at 64k (gate <= {limit:.2f})")
    ratio = cur_vpq["fcfs_easy_adv"]["n64k"] / max(
        cur_vpq["fcfs_easy"]["n64k"], 1e-9)
    status = "ok" if ratio <= 2.0 else "FAIL"
    print(f"{'visits ratio':16s} adversarial/benign at 64k {ratio:7.2f}x "
          f"(gate <= 2.00x) {status}")
    if ratio > 2.0:
        fail(f"adversarial backfill descent visits {ratio:.2f}x the "
             f"benign mix's nodes per query at 64k (gate <= 2.00x)")


def check_optgap_table(baseline_doc, current_doc, tolerance):
    # The window generator and solver budget are RUN configuration: gap
    # ratios recorded at another shape are honest numbers the baseline was
    # never recorded for — config error, same policy as simd_lanes.
    for field in ("objective", "window", "windows", "max_nodes"):
        if baseline_doc.get(field) != current_doc.get(field):
            fail(f"bench config mismatch: {field} is "
                 f"{current_doc.get(field)} here but the baseline was "
                 f"recorded at {baseline_doc.get(field)} — refresh "
                 f"bench/baseline.json for this configuration")
            return

    def gap_avg(trace_doc, heur_vals):
        total = 0.0
        for i, v in enumerate(heur_vals):
            denom = (trace_doc["exact"][i] if trace_doc["proved"][i]
                     else trace_doc["bound"][i])
            total += v / max(denom, 1e-12)
        return total / len(heur_vals)

    base_traces = baseline_doc["traces"]
    cur_traces = current_doc["traces"]
    for name, base in sorted(base_traces.items()):
        cur = cur_traces.get(name)
        if cur is None:
            fail(f"trace '{name}' missing from current run")
            continue

        exact, bound, proved = cur["exact"], cur["bound"], cur["proved"]
        proved_ct = sum(proved)

        # HARD within-run invariants, host-independent by construction.
        # The JSON round-trips doubles at %.17g, so only a relative-epsilon
        # cushion against a lossy serializer is allowed here.
        for i in range(len(exact)):
            if bound[i] > exact[i] + 1e-9 * (1.0 + abs(exact[i])):
                fail(f"{name} window {i}: lower bound {bound[i]:.17g} "
                     f"EXCEEDS the exact objective {exact[i]:.17g} — the "
                     f"bound is inadmissible (run test_exact_window)")
        for hname, vals in sorted(cur["heuristics"].items()):
            for i, v in enumerate(vals):
                if proved[i] and exact[i] > v + 1e-9 * (1.0 + abs(v)):
                    fail(f"{name}/{hname} window {i}: proved optimum "
                         f"{exact[i]:.17g} EXCEEDS the heuristic objective "
                         f"{v:.17g} — the 'exact' solver is not exact")

        # Gap ratios and proved counts drift with compiler FP contraction:
        # baseline comparisons WARN only.
        base_proved = sum(base["proved"])
        print(f"{name:16s} proved {proved_ct}/{len(proved)} windows "
              f"(baseline {base_proved}/{len(base['proved'])}), "
              f"{cur['nodes']} nodes")
        if proved_ct < base_proved:
            print(f"WARN: {name} proved only {proved_ct} windows vs "
                  f"{base_proved} in the baseline (FP contraction moves "
                  f"pruning; the within-run invariants above are the gate)")
        for hname, vals in sorted(cur["heuristics"].items()):
            base_vals = base["heuristics"].get(hname)
            if base_vals is None:
                fail(f"{name}/{hname} missing from baseline — refresh "
                     f"bench/baseline.json with the full bench output")
                continue
            cur_gap = gap_avg(cur, vals)
            base_gap = gap_avg(base, base_vals)
            print(f"{name:16s} {hname:8s} avg gap {cur_gap:7.3f}x "
                  f"(baseline {base_gap:.3f}x)")
            if cur_gap > base_gap * (1.0 + tolerance):
                print(f"WARN: {name}/{hname} average gap {cur_gap:.3f}x is "
                      f"above the baseline {base_gap:.3f}x band")


def check_decision_latency(baseline_doc, current_doc, tolerance):
    # simd_lanes/pool_windows are BUILD properties: a mismatch means the
    # baseline was never recorded for this binary — config error.
    for field in ("simd_lanes", "pool_windows"):
        if baseline_doc.get(field) != current_doc.get(field):
            fail(f"bench config mismatch: {field} is "
                 f"{current_doc.get(field)} here but the baseline was "
                 f"recorded at {baseline_doc.get(field)} — refresh "
                 f"bench/baseline.json for this build configuration")
            return
    # quant_isa is a HOST property (CPUID dispatch at weight-load time):
    # a generic host produces honest int8 numbers the floor was never
    # recorded against, so skip with a warning instead of failing.
    if baseline_doc.get("quant_isa") != current_doc.get("quant_isa"):
        print(f"WARN: quantized-inference gate skipped — this host "
              f"dispatches quant_isa={current_doc.get('quant_isa')} but "
              f"the baseline was recorded on "
              f"{baseline_doc.get('quant_isa')}")
        return

    baseline = baseline_doc["metrics"]
    current = current_doc["metrics"]
    for name in ("kernel_f32", "kernel_int8"):
        if name not in current:
            fail(f"metric '{name}' missing from current run")
            return

    for b in ("b1", "b32"):
        base_ratio = baseline["kernel_int8"][b] / baseline["kernel_f32"][b]
        cur_ratio = current["kernel_int8"][b] / current["kernel_f32"][b]
        floor = base_ratio * (1.0 - tolerance)
        status = "ok" if cur_ratio >= floor else "FAIL"
        print(f"{'int8/f32':16s} {b} speedup {cur_ratio:7.2f}x (baseline "
              f"{base_ratio:.2f}x, gate >= {floor:.2f}x) {status}")
        if cur_ratio < floor:
            fail(f"int8/f32 {b} speedup regressed: {cur_ratio:.2f}x < "
                 f"{floor:.2f}x")

    got = current["kernel_int8"]["b32"] / current["kernel_f32"]["b32"]
    status = "ok" if got >= 5.0 else "FAIL"
    print(f"{'int8/f32':16s} hard floor at B=32 {got:7.2f}x "
          f"(required >= 5.0x) {status}")
    if got < 5.0:
        fail(f"quantized inference floor violated: int8 is only "
             f"{got:.2f}x float32 at B=32 (required >= 5.0x)")

    for name in ("kernel_f32", "kernel_int8"):
        warn_absolute(name, baseline[name], current[name], ("b1", "b32"),
                      tolerance)


def check_serve_load(baseline_doc, current_doc, tolerance):
    # batch/jobs/dispatchers are RUN configuration: numbers at another
    # width are honest but the baseline was never recorded for them —
    # config error, same policy as simd_lanes.
    for field in ("batch", "jobs", "dispatchers"):
        if baseline_doc.get(field) != current_doc.get(field):
            fail(f"bench config mismatch: {field} is "
                 f"{current_doc.get(field)} here but the baseline was "
                 f"recorded at {baseline_doc.get(field)} — refresh "
                 f"bench/baseline.json for this run configuration")
            return

    # The three bitwise invariance self-checks are the daemon's
    # load-bearing contracts, host-independent by construction; a fast
    # daemon with different answers is broken, full stop.
    invariants = (
        ("invariant", "cross-session batching invariance violated: "
         "batched daemon results differ bitwise from batch-1 serial "
         "results"),
        ("shard_invariant", "dispatcher sharding invariance violated: "
         "N-dispatcher results differ bitwise from the single-dispatcher "
         "daemon"),
        ("wire_invariant", "wire framing invariance violated: socket "
         "results differ bitwise from in-process results"),
    )
    for key, msg in invariants:
        ok = current_doc.get(key) is True
        print(f"{key:16s} {'true' if ok else current_doc.get(key)} "
              f"(hard gate) {'ok' if ok else 'FAIL'}")
        if not ok:
            fail(msg)

    batch = current_doc.get("batch", 0)
    floor = batch / 2.0
    baseline = baseline_doc["metrics"]
    current = current_doc["metrics"]
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            fail(f"metric '{name}' missing from current run")
            continue

        # Exactly-once-or-cancelled accounting: every submitted request
        # ends in exactly one terminal state. Pre-overload rows have zero
        # shed/cancelled, so this is a strict generalization of the old
        # completed == submitted gate.
        completed = cur.get("completed", 0)
        shed = cur.get("shed", 0)
        cancelled = cur.get("cancelled", 0)
        if completed + shed + cancelled != cur.get("submitted"):
            fail(f"{name}: {completed} completed + {shed} shed + "
                 f"{cancelled} cancelled != {cur.get('submitted')} "
                 f"submitted — the daemon lost or double-counted work")

        # The overload row must actually OVERLOAD: if nothing was shed the
        # offered rate never exceeded capacity and the graceful-degradation
        # path went untested.
        if name.startswith("ov_") and shed == 0:
            fail(f"{name}: overload row shed nothing — offered rate did "
                 f"not exceed capacity, bounded-queue shedding untested")

        # Windows per forward is a pure algorithmic count (identical on
        # every host): near `batch` when cross-session batching engages,
        # 1.0 when the dispatcher quietly degrades to serial service.
        # Open-loop rows (ol_*/sock_ol_*) are exempt: Poisson arrivals are
        # sparse by design, so their honest windows/forward sits near 1
        # and only the completion accounting above gates them.
        if name.startswith(("ol_", "sock_ol_", "ov_")):
            print(f"{name:16s} windows/forward "
                  f"{cur.get('windows_per_forward', 0.0):7.2f} "
                  f"(open-loop/overload row: no floor)")
        else:
            wpf = cur.get("windows_per_forward", 0.0)
            status = "ok" if wpf >= floor else "FAIL"
            print(f"{name:16s} windows/forward {wpf:7.2f} "
                  f"(batch {batch}, gate >= {floor:.1f}) {status}")
            if wpf < floor:
                fail(f"{name} cross-session batching disengaged: "
                     f"{wpf:.2f} windows per forward (gate >= {floor:.1f} "
                     f"at batch {batch})")

        warn_absolute(name, base, cur, ("dps",), tolerance)
        if name.startswith("ov_"):
            # Bounded-p99 HARD gate: the overload row exists to prove the
            # bounded queue keeps accepted-request latency at
            # depth x service-time instead of growing with the backlog. An
            # unbounded-queue regression inflates p99 by orders of
            # magnitude (it scales with the run length), so a generous 4x
            # band over the baseline separates "slower host" from "queue
            # no longer bounded".
            ceiling = base["p99_ms"] * (1.0 + tolerance) * 4.0
            status = "ok" if cur["p99_ms"] <= ceiling else "FAIL"
            print(f"{name:16s} overload p99 {cur['p99_ms']:9.1f} ms "
                  f"(gate <= {ceiling:.1f} ms) {status}")
            if cur["p99_ms"] > ceiling:
                fail(f"{name}: accepted-request p99 {cur['p99_ms']:.1f} ms "
                     f"breached the bounded-queue ceiling {ceiling:.1f} ms "
                     f"— shedding is no longer keeping latency bounded")
        elif cur["p99_ms"] > base["p99_ms"] * (1.0 + tolerance):
            print(f"WARN: {name} p99 latency {cur['p99_ms']:.1f} ms is "
                  f"above the baseline {base['p99_ms']:.1f} ms band (host "
                  f"speed difference or real regression — the hard gates "
                  f"above are the signal)")


CHECKERS = {
    "bench_batch_inference": check_batch_inference,
    "bench_decision_latency": check_decision_latency,
    "bench_sched_scaling": check_sched_scaling,
    "bench_serve_load": check_serve_load,
    "bench_table5_bsld": check_optgap_table,
    "bench_table6_util": check_optgap_table,
}


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    tolerance = 0.25
    if "--tolerance" in argv:
        tolerance = float(argv[argv.index("--tolerance") + 1])
    with open(argv[1]) as f:
        baseline_root = json.load(f)
    with open(argv[2]) as f:
        current_doc = json.load(f)

    bench = current_doc.get("bench")
    checker = CHECKERS.get(bench)
    if checker is None:
        print(f"unknown bench '{bench}' in {argv[2]}")
        return 2
    benches = baseline_root.get("benches", {})
    baseline_doc = benches.get(bench)
    if baseline_doc is None:
        print(f"no baseline entry for '{bench}' in {argv[1]}")
        return 2

    checker(baseline_doc, current_doc, tolerance)

    if failures:
        print(f"perf gate [{bench}]: {failures} failure(s)")
        return 1
    print(f"perf gate [{bench}]: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
