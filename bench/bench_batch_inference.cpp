// Batched-inference engine throughput, and the data for the CI perf gate.
//
// Measures decisions/sec at batch widths B in {1, 8, 32} for three paths:
//
//   eval_kernel     kernel-policy evaluation sweep: pack + logits + masked
//                   argmax per window (the Table IX decision). This net is
//                   already batched over its 128-job window internally, so
//                   the curve is FLAT in B — reported to prove batching
//                   never hurts it (the window-blocked schedule; DESIGN.md).
//   eval_mlp        mlp_v1 evaluation sweep: the weight-bound case (~0.5 MB
//                   streamed per unbatched forward) where B x window
//                   batching delivers the GEMV->GEMM win the ISSUE targets;
//                   the CI gate requires >= 2x decisions/sec at B=32 vs B=1.
//   rollout_kernel  the PPO trainer's rollout decision point — kernel
//                   policy logits PLUS a value-net estimate per window,
//                   exactly what collect_group() computes per step. The
//                   value net (768-input) dominates unbatched; the gate
//                   requires >= 2x at B=32 vs B=1 here too.
//
// The bench self-checks before timing: batched actions must equal the
// unbatched argmax bitwise, and the steady-state timed loops must perform
// ZERO heap allocation (counting global operator new) — a perf number from
// an allocating or action-changing engine is meaningless, so either
// violation exits nonzero.
//
// Output: a human table on stderr, and with --json a machine block on
// stdout for scripts/perf_gate.py (compared against bench/baseline.json).
// RLSCHED_BENCH_SEED varies the workload.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "../tests/counting_alloc.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/ops.hpp"
#include "nn/simd.hpp"
#include "rl/batch_eval.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sim/env.hpp"
#include "util/env.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rlsched;

volatile float g_sink = 0.0f;  ///< keeps the value forwards observable

constexpr std::size_t kPool = 160;  // observations; divisible by 8 and 32
constexpr std::size_t kWidths[] = {1, 8, 32};
constexpr double kMinSeconds = 0.2;
// Best-of-N: throughput on shared CI hosts dips under neighbor
// interference but never exceeds the machine's true capability, so the
// max over repetitions is the low-noise estimator of each path's speed.
constexpr int kRepetitions = 3;

struct ObsPool {
  std::vector<rl::Observation> obs;
  std::vector<const rl::Observation*> ptr;
};

/// Decision points sampled from a congested episode: every window is full
/// of real pending jobs, like the Table IX measurement.
ObsPool make_pool(std::uint64_t seed) {
  const auto trace = workload::make_trace("SDSC-SP2", kPool + 512, seed);
  const rl::ObservationBuilder builder;
  sim::SchedulingEnv env(trace.processors());
  env.reset(trace.sequence(0, kPool + 256));
  ObsPool pool;
  pool.obs.resize(kPool);
  pool.ptr.resize(kPool);
  for (std::size_t k = 0; k < kPool; ++k) {
    builder.build_into(env, pool.obs[k]);
    pool.ptr[k] = &pool.obs[k];
    env.step(0);
  }
  return pool;
}

template <typename F>
double decisions_per_sec(F&& sweep) {
  sweep();  // warmup: sizes every batch scratch
  const unsigned long long allocs_before = g_allocs;
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t decisions = 0;
    double elapsed = 0.0;
    do {
      sweep();
      decisions += kPool;
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    } while (elapsed < kMinSeconds);
    best = std::max(best, static_cast<double>(decisions) / elapsed);
  }
  if (g_allocs != allocs_before) {
    std::fprintf(stderr,
                 "FATAL: timed decision loop allocated %llu times after "
                 "warmup\n",
                 g_allocs - allocs_before);
    std::exit(1);
  }
  return best;
}

void check_actions_match(const rl::Policy& policy, const ObsPool& pool,
                         const std::vector<std::uint32_t>& batched_actions) {
  for (std::size_t k = 0; k < kPool; ++k) {
    const rl::Logits single = policy.logits(pool.obs[k]);
    const std::size_t a = nn::argmax_masked(
        single.data(), pool.obs[k].mask.data(), rl::kMaxObservable);
    if (batched_actions[k] != a) {
      std::fprintf(stderr,
                   "FATAL: batched action %u != unbatched %zu at window "
                   "%zu\n",
                   batched_actions[k], a, k);
      std::exit(1);
    }
  }
}

struct MetricRow {
  std::string name;
  double dps[3];  // one per kWidths entry
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const auto seed = static_cast<std::uint64_t>(
      util::env_long("RLSCHED_BENCH_SEED", 42, 0));
  const ObsPool pool = make_pool(seed);

  util::Rng rng(seed ^ 0xB47C);
  const auto kernel =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, rng);
  const auto mlp =
      rl::make_policy(rl::PolicyKind::MlpV1, rl::kMaxObservable, rng);
  nn::FlatMlp value_net(
      {rl::kJobFeatures * rl::kMaxObservable, 32, 32, 1});
  std::vector<float> value_params(value_net.param_count());
  value_net.init(value_params.data(), rng);

  std::vector<float> logits(kPool * rl::kMaxObservable);
  std::vector<std::uint32_t> actions(kPool);
  std::vector<float> vx(rl::kJobFeatures * rl::kMaxObservable * 32);

  std::vector<MetricRow> rows;
  for (const rl::Policy* policy : {kernel.get(), mlp.get()}) {
    MetricRow row;
    row.name = policy->kind() == rl::PolicyKind::Kernel ? "eval_kernel"
                                                        : "eval_mlp";
    for (std::size_t wi = 0; wi < 3; ++wi) {
      const std::size_t B = kWidths[wi];
      row.dps[wi] = decisions_per_sec([&] {
        for (std::size_t g = 0; g < kPool; g += B) {
          rl::batched_argmax(*policy, pool.ptr.data() + g, B,
                             logits.data(), actions.data() + g);
        }
      });
    }
    check_actions_match(*policy, pool, actions);
    rows.push_back(row);
  }

  {
    // Rollout decision point: policy scores + value estimate per window,
    // as in PPOTrainer::collect_group (value input is the SoA-transposed
    // observation features, packed inside the timed region exactly as the
    // trainer packs them).
    MetricRow row;
    row.name = "rollout_kernel";
    constexpr std::size_t obs_floats =
        rl::kJobFeatures * rl::kMaxObservable;
    for (std::size_t wi = 0; wi < 3; ++wi) {
      const std::size_t B = kWidths[wi];
      row.dps[wi] = decisions_per_sec([&] {
        for (std::size_t g = 0; g < kPool; g += B) {
          rl::batched_argmax(*kernel, pool.ptr.data() + g, B, logits.data(),
                             actions.data() + g);
          for (std::size_t i = 0; i < B; ++i) {
            const float* f = pool.obs[g + i].features.data();
            for (std::size_t x = 0; x < obs_floats; ++x) {
              vx[x * B + i] = f[x];
            }
          }
          const float* v =
              value_net.forward_batch(value_params.data(), vx.data(), B);
          g_sink = g_sink + v[0];
        }
      });
    }
    rows.push_back(row);
  }

  std::fprintf(stderr, "batched inference engine (SIMD lanes %zu, pool %zu"
               " windows, seed %llu)\n",
               nn::kSimdLanes, kPool,
               static_cast<unsigned long long>(seed));
  std::fprintf(stderr, "%-16s %14s %14s %14s %10s\n", "path",
               "B=1 dec/s", "B=8 dec/s", "B=32 dec/s", "32 vs 1");
  for (const MetricRow& r : rows) {
    std::fprintf(stderr, "%-16s %14.0f %14.0f %14.0f %9.2fx\n",
                 r.name.c_str(), r.dps[0], r.dps[1], r.dps[2],
                 r.dps[2] / r.dps[0]);
  }

  if (json) {
    std::printf("{\n  \"bench\": \"bench_batch_inference\",\n");
    std::printf("  \"simd_lanes\": %zu,\n  \"pool_windows\": %zu,\n",
                nn::kSimdLanes, kPool);
    std::printf("  \"metrics\": {\n");
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::printf("    \"%s\": {\"b1\": %.1f, \"b8\": %.1f, \"b32\": %.1f}%s\n",
                  rows[r].name.c_str(), rows[r].dps[0], rows[r].dps[1],
                  rows[r].dps[2], r + 1 < rows.size() ? "," : "");
    }
    std::printf("  }\n}\n");
  }
  return 0;
}
