// Archive-scale streaming ingestion benchmark + RSS gate.
//
// Generates a multi-million-job synthetic SWF archive as a directory of
// shard files (written segment by segment, so generation itself is also
// O(segment) memory), then:
//
//   1. replays a HALF-length prefix and the FULL archive through
//      trace::ShardedReader -> SchedulingEnv streaming reset() under EASY
//      backfilling, recording peak RSS after each — the gate is that
//      doubling the trace length must not move peak RSS (O(shard), not
//      O(trace)), while per-job metric percentiles (P2 estimators) and
//      Table II characteristics accumulate incrementally across shards;
//   2. materializes the full archive (Trace::load_swf) and replays it
//      identically — the RSS delta shows what streaming avoids, and the
//      streamed RunResult must match the materialized one BITWISE.
//
// Exit status is the gate: nonzero when the RSS gate or the equivalence
// check fails.
//
// Knobs:
//   RLSCHED_BENCH_STREAM_JOBS   total jobs in the archive (default 2000000)
//   RLSCHED_BENCH_STREAM_CHUNK  streaming chunk size       (default 8192)
// Files are written under ./bench_streaming_data and removed on exit.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "trace/sharded_reader.hpp"
#include "trace/trace.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

namespace {
using namespace rlsched;
namespace fs = std::filesystem;

/// Process-lifetime peak RSS in MiB (Linux VmHWM; 0 elsewhere). The high
/// water mark only ever grows, so phases must run smallest-footprint first.
double peak_rss_mib() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
#endif
  return 0.0;
}

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct StreamStats {
  sim::RunResult result;
  double seconds = 0.0;
  double peak_rss = 0.0;       ///< MiB, process high water after the run
  std::size_t peak_buffer = 0; ///< max live jobs buffered by the env
  double p50_bsld = 0.0, p99_bsld = 0.0;
  trace::Characteristics traits;
};

struct HookState {
  util::P2Quantile p50{0.5};
  util::P2Quantile p99{0.99};
};

void bsld_hook(void* ctx, const trace::Job& j) {
  auto* h = static_cast<HookState*>(ctx);
  const double bsld = sim::bounded_slowdown(j.wait_time(), j.run_time);
  h->p50.add(bsld);
  h->p99.add(bsld);
}

StreamStats run_streamed(const std::string& dir, std::size_t n_shards,
                         std::size_t chunk) {
  // Consume only the first n_shards files of the archive directory.
  trace::ShardedReader probe(dir);
  std::vector<std::string> shard_paths(
      probe.shard_paths().begin(),
      probe.shard_paths().begin() +
          static_cast<std::ptrdiff_t>(n_shards));

  StreamStats s;
  HookState hooks;
  trace::CharacteristicsAccumulator traits;
  sim::SchedulingEnv env(probe.processors(), {.backfill = true});
  env.set_start_hook(&bsld_hook, &hooks);

  // One reader per shard file, characteristics accumulated across the
  // shard boundary by merge(); the env sees them as one continuous stream
  // via a trivial concatenating source.
  struct ConcatSource final : trace::JobSource {
    std::vector<std::unique_ptr<trace::ShardedReader>> readers;
    std::vector<trace::CharacteristicsAccumulator> per_shard;
    std::size_t at = 0;
    std::string label = "concat";
    int procs = 0;
    const std::string& name() const override { return label; }
    int processors() const override { return procs; }
    void rewind() override {
      at = 0;
      for (auto& r : readers) r->rewind();
      for (auto& acc : per_shard) acc = {};
    }
    std::size_t fetch(std::size_t max_jobs,
                      std::vector<trace::Job>& out) override {
      while (at < readers.size()) {
        const std::size_t before = out.size();
        const std::size_t got = readers[at]->fetch(max_jobs, out);
        for (std::size_t i = before; i < out.size(); ++i) {
          per_shard[at].add(out[i]);
        }
        if (got > 0) return got;
        ++at;
      }
      return 0;
    }
  } source;
  source.procs = probe.processors();
  for (const auto& p : shard_paths) {
    // Only the archive's first shard carries the MaxProcs header, so the
    // per-shard readers take it as a hint.
    source.readers.push_back(std::make_unique<trace::ShardedReader>(
        p, "", trace::ShardedReaderConfig{.processors_hint = source.procs}));
    source.per_shard.emplace_back();
  }

  const double t0 = now_seconds();
  env.reset(source, chunk);
  while (!env.done()) {
    s.peak_buffer = std::max(s.peak_buffer, env.buffered_jobs());
    env.step(0);  // FCFS head + EASY backfilling around it
  }
  s.seconds = now_seconds() - t0;
  s.result = env.result();
  for (const auto& acc : source.per_shard) traits.merge(acc);
  s.traits = traits.finish("stream", source.procs);
  s.p50_bsld = hooks.p50.value();
  s.p99_bsld = hooks.p99.value();
  s.peak_rss = peak_rss_mib();
  return s;
}

}  // namespace

int main() {
  using namespace rlsched;
  const auto total_jobs = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_STREAM_JOBS", 2000000, 10000, 100000000));
  const auto chunk = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_STREAM_CHUNK", 8192, 1, 10000000));
  const std::size_t n_shards = 8;
  const std::size_t per_shard = total_jobs / n_shards;
  const std::string dir = "bench_streaming_data";

  // --- generate the archive shard by shard (O(segment) memory) ---
  std::printf("generating %zu-job synthetic archive (%zu shards) ...\n",
              per_shard * n_shards, n_shards);
  fs::remove_all(dir);
  fs::create_directory(dir);
  double submit_offset = 0.0;
  int processors = 0;
  for (std::size_t sh = 0; sh < n_shards; ++sh) {
    const auto seg = workload::make_trace("HPC2N", per_shard, 1000 + sh);
    processors = seg.processors();
    char name[64];
    std::snprintf(name, sizeof(name), "%s/shard_%02zu.swf", dir.c_str(), sh);
    std::ofstream out(name);
    if (sh == 0) out << "; MaxProcs: " << processors << "\n";
    out << std::setprecision(12);
    double last = 0.0;
    for (std::size_t i = 0; i < seg.size(); ++i) {
      const trace::Job& j = seg[i];
      const double submit = j.submit_time + submit_offset;
      last = submit;
      out << (j.id + static_cast<std::int64_t>(sh * per_shard)) << ' '
          << submit << " -1 " << j.run_time << ' ' << j.requested_procs
          << " -1 -1 " << j.requested_procs << ' ' << j.requested_time
          << " -1 1 " << j.user << " -1 -1 -1 -1 -1 -1\n";
    }
    submit_offset = last;
  }

  // --- phase 1: streamed replays, half then full (RSS grows monotonically,
  // --- so the smaller run must come first for the gate to be meaningful) --
  const double rss_baseline = peak_rss_mib();
  std::printf("streaming replay: %zu of %zu shards ...\n", n_shards / 2,
              n_shards);
  const auto half = run_streamed(dir, n_shards / 2, chunk);
  std::printf("streaming replay: all %zu shards ...\n", n_shards);
  const auto full = run_streamed(dir, n_shards, chunk);

  // --- phase 2: materialized baseline on the full archive ---
  std::printf("materialized replay: all %zu shards ...\n", n_shards);
  const double t0 = now_seconds();
  trace::Trace archive;
  {
    // load_swf takes one file: concatenate the shards via a reader.
    trace::ShardedReader reader(dir, "archive");
    std::vector<trace::Job> jobs;
    jobs.reserve(per_shard * n_shards);
    while (reader.fetch(1u << 20, jobs) > 0) {
    }
    archive = trace::Trace("archive", reader.processors(), std::move(jobs));
  }
  sim::SchedulingEnv env(archive.processors(), {.backfill = true});
  env.reset(archive.jobs());
  while (!env.done()) env.step(0);
  const auto materialized = env.result();
  const double mat_seconds = now_seconds() - t0;
  const double rss_materialized = peak_rss_mib();

  // --- report ---
  util::Table t("sharded streaming vs materialized ingestion (EASY/FCFS)");
  t.set_header({"run", "jobs", "peak RSS MiB", "peak buffer", "seconds",
                "avg bsld", "p99 bsld"});
  t.add_row({"streamed 1/2", std::to_string(half.result.jobs),
             util::Table::fmt(half.peak_rss, 4),
             std::to_string(half.peak_buffer),
             util::Table::fmt(half.seconds, 2),
             util::Table::fmt(half.result.avg_bounded_slowdown, 3),
             util::Table::fmt(half.p99_bsld, 3)});
  t.add_row({"streamed full", std::to_string(full.result.jobs),
             util::Table::fmt(full.peak_rss, 4),
             std::to_string(full.peak_buffer),
             util::Table::fmt(full.seconds, 2),
             util::Table::fmt(full.result.avg_bounded_slowdown, 3),
             util::Table::fmt(full.p99_bsld, 3)});
  t.add_row({"materialized", std::to_string(materialized.jobs),
             util::Table::fmt(rss_materialized, 4), "-",
             util::Table::fmt(mat_seconds, 2),
             util::Table::fmt(materialized.avg_bounded_slowdown, 3), "-"});
  std::cout << t << "\n";
  std::printf("cross-shard characteristics: %zu jobs, %zu users, "
              "mean interarrival %.2fs, p50 bsld %.3f\n",
              full.traits.jobs, full.traits.distinct_users,
              full.traits.mean_interarrival, full.p50_bsld);

  // --- gates ---
  int rc = 0;
  // Peak RSS independent of trace length: doubling the streamed trace may
  // move the high water mark only marginally (allocator noise), far below
  // the materialized footprint of the added half.
  const double growth = full.peak_rss - half.peak_rss;
  const double added_half_mib =
      static_cast<double>(per_shard * (n_shards / 2) * sizeof(trace::Job)) /
      (1024.0 * 1024.0);
  // Tolerance: a tenth of what materializing the added half would cost,
  // floored at 8 MiB of allocator noise (matters only for scaled-down
  // RLSCHED_BENCH_STREAM_JOBS smoke runs).
  const double tolerance = std::max(0.1 * added_half_mib, 8.0);
  std::printf("RSS gate: half->full growth %.1f MiB, tolerance %.1f MiB "
              "(baseline %.1f; the added half materialized would be >= "
              "%.1f MiB): %s\n",
              growth, tolerance, rss_baseline, added_half_mib,
              growth < tolerance ? "PASS" : "FAIL");
  if (!(growth < tolerance)) rc = 1;

  if (sim::bitwise_equal(full.result, materialized)) {
    std::printf("equivalence gate: streamed == materialized (bitwise): "
                "PASS\n");
  } else {
    std::printf("equivalence gate: streamed != materialized: FAIL\n");
    rc = 1;
  }

  fs::remove_all(dir);
  return rc;
}
