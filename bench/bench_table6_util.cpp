// Table VI reproduction: resource utilization of the five heuristics and
// RLScheduler (trained on the utilization reward) on four workloads.
// Shape targets: utilization is the more stable metric — differences across
// schedulers are small — and a heuristic that wins on bsld can lose here.
#include "bench_common.hpp"
int main() {
  return rlsched::bench::run_scheduling_table(
      "Table VI: scheduling towards resource utilization",
      rlsched::sim::Metric::Utilization,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"});
}
