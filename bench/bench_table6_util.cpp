// Table VI reproduction: resource utilization of the five heuristics and
// RLScheduler (trained on the utilization reward) on four workloads.
// Shape targets: utilization is the more stable metric — differences across
// schedulers are small — and a heuristic that wins on bsld can lose here.
//
// The table carries an EXACT column and an optimality-gap summary against
// the window-makespan proxy (utilization's exact counterpart on a finite
// window). `--json` emits the gap study alone for scripts/perf_gate.py.
#include <cstring>

#include "bench_common.hpp"
int main(int argc, char** argv) {
  rlsched::bench::TableOptions opts;
  opts.json_bench = "bench_table6_util";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) opts.json = true;
  }
  return rlsched::bench::run_scheduling_table(
      "Table VI: scheduling towards resource utilization",
      rlsched::sim::Metric::Utilization,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"}, opts);
}
