// Fig 7 reproduction: the distribution of SJF average bounded slowdown over
// randomly sampled 256-job sequences of PIK-IPLEX, with the median / mean /
// 2*mean markers the trajectory filter derives its range R from (SS IV-C).
#include <iostream>

#include "bench_common.hpp"
#include "rl/filter.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rlsched;
  const auto scale = bench::bench_scale();
  const auto trace = workload::make_trace("PIK-IPLEX", 10000, scale.seed);

  const std::size_t samples = std::max<std::size_t>(scale.eval_seqs * 20, 60);
  util::Rng rng(scale.seed ^ 0xF16ULL);
  std::vector<double> values;
  values.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto seq = trace.sample_sequence(rng, 256);
    values.push_back(rl::sjf_metric(seq, trace.processors(),
                                    sim::Metric::BoundedSlowdown));
  }

  const auto s = util::summarize(values);
  std::cout << "== Fig 7: distribution of SJF bsld over " << samples
            << " sampled 256-job PIK sequences ==\n";
  // Log-ish binning via a linear histogram over [0, p99] plus overflow info.
  util::Histogram hist(0.0, std::max(s.p99, 1.0), 20);
  for (const double v : values) hist.add(v);
  std::cout << hist.ascii(40);
  std::cout << "\nmedian = " << bench::cell(s.median)
            << "\nmean   = " << bench::cell(s.mean)
            << "\n2*mean = " << bench::cell(2 * s.mean)
            << "\nskewness = " << bench::cell(s.skewness)
            << "\nmax    = " << bench::cell(s.max) << "\n";

  const auto range = rl::compute_filter_range(
      trace, sim::Metric::BoundedSlowdown, 256, samples, scale.seed ^ 0xF16ULL);
  std::cout << "\ntrajectory-filter range R = (" << bench::cell(range.lo)
            << ", " << bench::cell(range.hi) << "]\n"
            << "(paper Fig 7: median ~1, mean ~730, R = (1, 1460) — a\n"
               "heavily right-skewed distribution where most sequences are\n"
               "'easy' and a thin tail is 'hard')\n";
  return 0;
}
