// Table VII reproduction: apply the model RL-X (trained on trace X) to
// every trace Y, against the best and worst heuristic on Y. The paper's
// stability claim (SS V-E): a transplanted model degrades in a controlled
// way — never worse than picking an inappropriate heuristic.
#include <iostream>
#include <limits>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlsched;
  const auto scale = bench::bench_scale();
  const std::vector<std::string> model_traces = {"Lublin-1", "SDSC-SP2",
                                                 "HPC2N", "Lublin-2"};
  const std::vector<std::string> eval_traces = {
      "Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2", "ANL-Intrepid"};
  const auto metric = sim::Metric::BoundedSlowdown;

  // Train (or load) the four models once.
  std::vector<bench::TrainedModel> models;
  for (const auto& t : model_traces) {
    models.push_back(bench::train_or_load(t, metric, rl::PolicyKind::Kernel,
                                          false, scale));
  }

  for (const bool backfill : {false, true}) {
    util::Table table(std::string("Table VII: RL-X applied to trace Y, "
                                  "bounded slowdown") +
                      (backfill ? " - with backfilling"
                                : " - without backfilling"));
    std::vector<std::string> header = {"Trace", "Best Heur", "Worst Heur"};
    for (const auto& t : model_traces) header.push_back("RL-" + t);
    table.set_header(header);

    for (const auto& y : eval_traces) {
      const auto trace = workload::make_trace(y, 10000, scale.seed);
      const auto seqs = bench::eval_sequences(trace, scale.eval_seqs,
                                              scale.eval_len, scale.seed);
      double best = std::numeric_limits<double>::infinity();
      double worst = 0.0;
      std::string best_name, worst_name;
      for (const auto& h : sched::all_heuristics()) {
        const double v = bench::heuristic_avg(seqs, trace.processors(),
                                              h.priority, backfill, metric,
                                              h.kind);
        if (v < best) {
          best = v;
          best_name = h.name;
        }
        if (v > worst) {
          worst = v;
          worst_name = h.name;
        }
      }
      std::vector<std::string> row = {
          y, bench::cell(best) + " (" + best_name + ")",
          bench::cell(worst) + " (" + worst_name + ")"};
      for (const auto& m : models) {
        row.push_back(bench::cell(bench::rl_avg(
            *m.scheduler, seqs, trace.processors(), backfill, metric)));
      }
      table.add_row(row);
    }
    std::cout << table << "\n";
  }
  std::cout << "(paper: every RL-X lands between the best and worst\n"
               "heuristic on every Y — transplanted models degrade\n"
               "gracefully, never catastrophically)\n";
  return 0;
}
