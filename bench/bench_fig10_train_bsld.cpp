// Fig 10 reproduction: RLScheduler training curves targeting average
// bounded slowdown on two real-world-like (HPC2N, SDSC-SP2) and two
// synthetic (Lublin-1, Lublin-2) workloads. Paper result: convergence on
// all four within the epoch budget, with per-trace convergence patterns.
#include "bench_common.hpp"
int main() {
  return rlsched::bench::run_training_curves(
      "Fig 10: training curves, bounded slowdown",
      rlsched::sim::Metric::BoundedSlowdown,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"});
}
