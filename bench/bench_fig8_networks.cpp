// Fig 8 reproduction: training-efficiency comparison of the kernel-based
// policy network against MLP v1/v2/v3 and LeNet (Table IV configurations)
// on Lublin-1 and SDSC-SP2, targeting average bounded slowdown. The paper's
// result: the kernel network converges fastest and best; LeNet's pooling /
// dense layers mix job order and degrade learning.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlsched;
  auto scale = bench::bench_scale();
  // The flat-MLP and LeNet heads cost several times the kernel network per
  // epoch; cap this ablation's budget so the suite stays laptop-sized. The
  // paper's message — kernel converges fastest at an equal epoch budget —
  // is visible well within 8 epochs.
  scale.epochs = std::min<std::size_t>(scale.epochs, 8);
  const rl::PolicyKind kinds[] = {rl::PolicyKind::Kernel, rl::PolicyKind::MlpV1,
                                  rl::PolicyKind::MlpV2, rl::PolicyKind::MlpV3,
                                  rl::PolicyKind::LeNet};

  for (const char* trace_name : {"Lublin-1", "SDSC-SP2"}) {
    util::Table table(std::string("Fig 8: training curves on ") + trace_name +
                      " (cells: avg bsld per epoch; lower is better)");
    std::vector<std::string> header = {"epoch"};
    for (const auto k : kinds) header.push_back(rl::policy_kind_name(k));
    table.set_header(header);

    std::vector<std::vector<double>> curves;
    for (const auto kind : kinds) {
      auto model = bench::train_or_load(
          trace_name, sim::Metric::BoundedSlowdown, kind, false, scale);
      curves.push_back(model.curve);
    }
    for (std::size_t e = 0; e < scale.epochs; ++e) {
      std::vector<std::string> row = {std::to_string(e)};
      for (const auto& c : curves) {
        row.push_back(e < c.size() ? bench::cell(c[e]) : "-");
      }
      table.add_row(row);
    }
    std::cout << table << "\n";

    // Convergence summary: last-epoch value per network.
    std::cout << "final epoch: ";
    for (std::size_t k = 0; k < curves.size(); ++k) {
      std::cout << rl::policy_kind_name(kinds[k]) << "="
                << (curves[k].empty() ? std::string("-")
                                      : bench::cell(curves[k].back()))
                << "  ";
    }
    std::cout << "\n\n";
  }
  std::cout << "(paper: kernel reaches a good policy within ~20 epochs and\n"
               "dominates the flat MLPs and LeNet at equal epoch budgets)\n";
  return 0;
}
