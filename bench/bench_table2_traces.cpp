// Table II reproduction: characteristics of the six evaluation job traces
// (cluster size, mean inter-arrival, mean requested runtime, mean requested
// processors), printed next to the values the paper reports.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

namespace {
struct PaperRow {
  const char* name;
  int size;
  double it, rt, nt;
};
// Values from Table II of the paper.
constexpr PaperRow kPaper[] = {
    {"SDSC-SP2", 128, 1055, 6687, 11},
    {"HPC2N", 240, 538, 17024, 6},
    {"PIK-IPLEX", 2560, 140, 30889, 12},
    {"ANL-Intrepid", 163840, 301, 5176, 5063},
    {"Lublin-1", 256, 771, 4862, 22},
    {"Lublin-2", 256, 460, 1695, 39},
};
}  // namespace

int main() {
  using namespace rlsched;
  const auto scale = bench::bench_scale();

  util::Table table("Table II: job trace characteristics (ours vs paper)");
  table.set_header({"Trace", "size", "it(s)", "it paper", "rt(s)", "rt paper",
                    "nt", "nt paper", "users"});
  for (const auto& row : kPaper) {
    const auto trace = workload::make_trace(row.name, 10000, scale.seed);
    const auto c = trace.characteristics();
    table.add_row({row.name, std::to_string(c.processors),
                   bench::cell(c.mean_interarrival), bench::cell(row.it),
                   bench::cell(c.mean_requested_time), bench::cell(row.rt),
                   bench::cell(c.mean_requested_procs), bench::cell(row.nt),
                   std::to_string(c.distinct_users)});
  }
  std::cout << table << "\nAll traces are synthesized (see DESIGN.md); the\n"
               "generators are calibrated to the paper's published "
               "characteristics.\n";
  return 0;
}
