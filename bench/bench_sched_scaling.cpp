// Scheduling-core scaling: decisions/sec on a standing PIK-IPLEX-shaped
// storm backlog of {1k, 8k, 64k} pending jobs — the data for the CI
// backlog-scaling perf gate (scripts/perf_gate.py vs bench/baseline.json).
//
// Three decision paths, each on BOTH cores:
//
//   fcfs_plain  step(0), no backfilling: pure queue/window/timeline
//               maintenance. This curve must be FLAT from 1k to 64k — it
//               is the polylog-core claim, and the gate pins it.
//   fcfs_easy   step(0) with EASY backfilling: the head decision is free
//               (window slot 0) so the number measures the SIMULATOR —
//               reservations + backfill search. NOT flat per decision:
//               deeper storms legitimately backfill MORE JOBS per decision
//               (the bench prints starts/decision), so this curve is gated
//               against its recorded baseline ratio, not a constant.
//   fcfs_easy_adv  the same loop on an ADVERSARIAL staircase mix:
//               anticorrelated procs/req_time ramps put every subtree's
//               (min procs, min req_time) corner on two different jobs —
//               the shape that degrades a corner-only backfill descent to
//               O(P) node visits per query. The Pareto-staircase index
//               must stay within 2x of the benign mix (the perf gate
//               pins the ratio), and on RLSCHED_INDEX_STATS builds this
//               bench additionally ASSERTS the worst-case-log node-visit
//               bound per query on both mixes.
//   kernel      ObservationBuilder + kernel-policy logits + masked argmax
//               + step(): the Table IX decision cost on top of the core.
//
//   ref_*       the same loops on the frozen naive ReferenceEnv
//               (sim/reference_env.hpp) — the seed-core denominator of the
//               >= 10x speedup floor the gate enforces at 64k.
//
// The indexed core must hold a FLAT per-decision cost from 1k to 64k on
// fcfs_plain and kernel (n1k/n64k decisions-per-sec ratio within
// tolerance of the baseline); the reference core degrades by O(backlog),
// so it runs fewer repetitions at 64k to keep the bench affordable — the
// measured decision range itself is identical for both cores.
//
// Self-checks before timing: both cores must produce a bitwise-identical
// RunResult on a full 1k-storm episode, and the indexed timed loops must
// perform ZERO heap allocation after reset (counting operator new) — a
// perf number from a diverging or allocating core is meaningless, so
// either violation exits nonzero.
//
// Output: human table on stderr; --json machine block on stdout for
// scripts/perf_gate.py. RLSCHED_BENCH_SEED varies the workload.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "../tests/counting_alloc.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "nn/ops.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sched/exact.hpp"
#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "sim/pending_index.hpp"
#include "sim/reference_env.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rlsched;

constexpr std::size_t kBacklogs[] = {1000, 8000, 64000};
const char* const kBacklogKeys[] = {"n1k", "n8k", "n64k"};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// A storm: PIK-IPLEX-shaped runtimes/widths/users, every job submitted in
/// one burst so the whole trace is a standing backlog from t = 0.
struct Storm {
  int processors;
  std::vector<trace::Job> jobs;  ///< the full 64k job set; cells slice it
};

Storm make_storm(std::uint64_t seed) {
  auto trace = workload::make_trace("PIK-IPLEX", kBacklogs[2], seed);
  Storm s{trace.processors(), trace.jobs()};
  for (trace::Job& j : s.jobs) {
    // One simultaneous burst: every job is pending from the first decision
    // on, so the measured queue is a standing n-deep backlog (any positive
    // submit spread would trickle arrivals in one at a time — an
    // event-driven clock jumps to the next arrival, never building depth).
    // Queue order on the tied submits is the generator's job order.
    j.submit_time = 0.0;
    j.reset_schedule_state();
  }
  return s;
}

std::vector<trace::Job> slice(const Storm& s, std::size_t n) {
  return {s.jobs.begin(), s.jobs.begin() + static_cast<std::ptrdiff_t>(n)};
}

/// Adversarial storm on the same cluster: the staircase-shaped mix from
/// test_sched_core_equiv at backlog scale. Ramps of jobs with procs
/// ascending while req_time descends mean a subtree's (min procs, min
/// req_time) corner combines two DIFFERENT jobs — the plain corner prune
/// passes while no actual job fits, which is what degrades a corner-only
/// descent to O(P) visits per query. Full-width blockers pin the machine
/// so most decisions answer the EASY query against a live reservation
/// horizon.
Storm make_adversarial_storm(std::uint64_t seed, int processors) {
  util::Rng rng(seed ^ 0xA5D1u);
  Storm s{processors, {}};
  s.jobs.reserve(kBacklogs[2]);
  std::int64_t id = 1;
  while (s.jobs.size() < kBacklogs[2]) {
    trace::Job blocker{};
    blocker.id = id++;
    blocker.submit_time = 0.0;
    blocker.run_time = 60.0 + static_cast<double>(rng.below(5)) * 30.0;
    blocker.requested_time = blocker.run_time;
    blocker.requested_procs = processors;
    s.jobs.push_back(blocker);
    const std::size_t steps = 96 + rng.below(64);
    for (std::size_t st = 0; st < steps && s.jobs.size() < kBacklogs[2];
         ++st) {
      trace::Job j{};
      j.id = id++;
      j.submit_time = 0.0;
      j.requested_procs = std::min(
          1 + static_cast<int>(
                  (st * static_cast<std::size_t>(processors)) / steps),
          processors);
      j.requested_time = static_cast<double>((steps - st) * 15 + 30);
      j.run_time =
          rng.uniform() < 0.2
              ? 0.0
              : std::min(j.requested_time,
                         static_cast<double>(5 + 10 * rng.below(6)));
      j.user = static_cast<int>(rng.below(3));
      s.jobs.push_back(j);
    }
  }
  return s;
}

/// Time `decisions` scheduling decisions at a standing backlog, after
/// warming the episode until the machine is CONTENDED (free processors
/// below a quarter of the cluster, capped at decisions/2 warm steps) — the
/// storm regime where heads wait and the EASY reservation + backfill
/// machinery runs on most decisions, not the trivial start-immediately
/// prefix.
template <class Env, class DriveFn, class OnResetFn>
double decisions_per_sec_r(Env& env, const std::vector<trace::Job>& jobs,
                           std::size_t decisions, int reps, bool check_allocs,
                           DriveFn&& drive, OnResetFn&& on_reset) {
  double best = 0.0;
  const int contended = std::max(1, env.processors() / 4);
  for (int rep = 0; rep < reps; ++rep) {
    env.reset(jobs);
    on_reset();
    for (std::size_t w = 0;
         w < decisions / 2 && !env.done() &&
         env.free_processors() >= contended;
         ++w) {
      drive(env);
    }
    const unsigned long long allocs_before = g_allocs;
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t d = 0;
    for (; d < decisions && !env.done(); ++d) drive(env);
    const double elapsed = seconds_since(t0);
    if (check_allocs && g_allocs != allocs_before) {
      std::fprintf(stderr,
                   "FATAL: indexed-core timed loop allocated %llu times\n",
                   g_allocs - allocs_before);
      std::exit(1);
    }
    if (d == 0 || elapsed <= 0.0) continue;
    best = std::max(best, static_cast<double>(d) / elapsed);
  }
  return best;
}

template <class Env, class DriveFn>
double decisions_per_sec(Env& env, const std::vector<trace::Job>& jobs,
                         std::size_t decisions, int reps, bool check_allocs,
                         DriveFn&& drive) {
  return decisions_per_sec_r(env, jobs, decisions, reps, check_allocs,
                             std::forward<DriveFn>(drive), [] {});
}

struct Row {
  std::string name;
  double dps[3];
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const auto seed = static_cast<std::uint64_t>(
      util::env_long("RLSCHED_BENCH_SEED", 42, 0));
  const Storm storm = make_storm(seed);

  util::Rng rng(seed ^ 0x5CA1E);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, rng);
  const rl::ObservationBuilder builder;
  const sim::EnvConfig cfg{.backfill = true};

  const auto fcfs_step = [](auto& env) { env.step(0); };
  const auto kernel_step = [&](auto& env) {
    rl::Observation obs;
    builder.build_into(env, obs);
    const rl::Logits logits = policy->logits(obs);
    env.step(nn::argmax_masked(logits.data(), obs.mask.data(),
                               rl::kMaxObservable));
  };

  const Storm adv = make_adversarial_storm(seed, storm.processors);

  // --- self-check: full 1k-storm episodes, both cores, bitwise equal ---
  for (const Storm* s : {&storm, &adv}) {
    const auto jobs = slice(*s, kBacklogs[0]);
    sim::SchedulingEnv env(s->processors, cfg);
    sim::ReferenceEnv ref(s->processors, cfg);
    env.reset(jobs);
    ref.reset(jobs);
    while (!env.done()) fcfs_step(env);
    while (!ref.done()) fcfs_step(ref);
    if (!sim::bitwise_equal(env.result(), ref.result())) {
      std::fprintf(stderr,
                   "FATAL: indexed core != reference core on the 1k %s "
                   "storm (run test_sched_core_equiv)\n",
                   s == &adv ? "adversarial" : "benign");
      return 1;
    }
  }

  // --- self-check: optimality-gap invariants on one storm window ---
  // Unlimited node budget on 8 jobs proves the optimum; by construction
  // the admissible bound is bitwise <= the optimum and the optimum <= any
  // greedy order's objective. A run violating either has a broken solver,
  // so it exits nonzero like the core-equivalence check above.
  sched::ExactConfig ocfg;
  ocfg.window = 8;
  ocfg.max_nodes = 0;  // unlimited: the gap claim needs a proved optimum
  sched::ExactWindowScheduler osolver(ocfg);
  sched::WindowProblem owin;
  owin.now = 0.0;
  owin.processors = storm.processors;
  // Contended machine: a sliver free now, the rest released in staircase
  // steps — orderings genuinely differ, so the gap ratios are nontrivial.
  owin.free = std::max(1, storm.processors / 16);
  {
    std::int32_t busy = storm.processors - owin.free;
    for (int step = 0; busy > 0; ++step) {
      const std::int32_t r = std::max<std::int32_t>(1, busy / 2);
      owin.releases.push_back({120.0 * (step + 1), r});
      busy -= r;
    }
  }
  // Adversarial-storm jobs (short runtimes, a full-width blocker leading a
  // procs ramp): induced waits dwarf the runtimes, so bounded slowdown —
  // and the heuristic gap — actually moves with the chosen order.
  owin.jobs.assign(adv.jobs.begin(), adv.jobs.begin() + 8);
  const auto oexact = osolver.solve(owin);
  const auto ofcfs = osolver.evaluate_greedy(owin, sched::fcfs_priority());
  const auto osjf = osolver.evaluate_greedy(owin, sched::sjf_priority());
  if (!oexact.proved || oexact.bound > oexact.objective ||
      oexact.objective > ofcfs.objective ||
      oexact.objective > osjf.objective) {
    std::fprintf(stderr,
                 "FATAL: optimality-gap invariant violated on the storm "
                 "window (bound %.17g, exact %.17g proved=%d, fcfs %.17g, "
                 "sjf %.17g) — run test_exact_window\n",
                 oexact.bound, oexact.objective, oexact.proved ? 1 : 0,
                 ofcfs.objective, osjf.objective);
    return 1;
  }

  std::vector<Row> rows = {{"fcfs_plain", {}},    {"fcfs_easy", {}},
                           {"fcfs_easy_adv", {}}, {"kernel", {}},
                           {"exact_w8", {}},
                           {"ref_fcfs_plain", {}}, {"ref_fcfs_easy", {}},
                           {"ref_kernel", {}}};
  const sim::EnvConfig plain_cfg{.backfill = false};
  sim::SchedulingEnv env(storm.processors, cfg);
  sim::SchedulingEnv env_plain(storm.processors, plain_cfg);
  sim::ReferenceEnv ref(storm.processors, cfg);
  sim::ReferenceEnv ref_plain(storm.processors, plain_cfg);
  // The exact-window planner as a decision path: branch-and-bound over the
  // first 8 observable jobs, replanned when the plan drains. The node
  // budget caps per-decision work independent of backlog depth, so this
  // row must scale flat like the other indexed paths. The plan binds env
  // JOB INDICES, so each repetition rearms after reset (decisions_per_sec_r
  // below) — a stale plan would silently alias the fresh episode.
  sched::ExactConfig exact_cfg;
  exact_cfg.window = 8;
  exact_cfg.max_nodes = 20000;
  sched::ExactWindowPolicy exact_pol(env, exact_cfg);
  const auto exact_step = [&exact_pol](auto& e) {
    e.step(exact_pol.next_action());
  };
  // Visits-per-query on the two backfilled mixes (RLSCHED_INDEX_STATS
  // builds; zeros otherwise). Sampled across each row's warm + timed
  // decisions — same regime either way.
  double vpq_easy[3] = {}, vpq_adv[3] = {};
  const auto vpq_sample = [&env] {
    const std::uint64_t q = env.pending_index().fit_queries();
    const double v = static_cast<double>(env.pending_index().fit_visits());
    env.pending_index().reset_fit_stats();
    return q > 0 ? v / static_cast<double>(q) : 0.0;
  };
  for (std::size_t bi = 0; bi < 3; ++bi) {
    const std::size_t n = kBacklogs[bi];
    const auto jobs = slice(storm, n);
    const auto jobs_adv = slice(adv, n);
    // Keep the backlog STANDING: measure a prefix of the episode so the
    // pending queue stays ~n deep. Both cores run the SAME warm + measured
    // decision range — the per-decision work mix at a given episode
    // position is identical, so decisions/sec divide cleanly.
    const std::size_t k = std::min<std::size_t>(n / 3, 2000);
    const int reps_idx = 3;
    const int reps_ref = n >= kBacklogs[2] ? 1 : 2;
    rows[0].dps[bi] =
        decisions_per_sec(env_plain, jobs, k, reps_idx, true, fcfs_step);
    env.pending_index().reset_fit_stats();
    rows[1].dps[bi] =
        decisions_per_sec(env, jobs, k, reps_idx, true, fcfs_step);
    vpq_easy[bi] = vpq_sample();
    rows[2].dps[bi] =
        decisions_per_sec(env, jobs_adv, k, reps_idx, true, fcfs_step);
    vpq_adv[bi] = vpq_sample();
    rows[3].dps[bi] =
        decisions_per_sec(env, jobs, k, reps_idx, true, kernel_step);
    rows[4].dps[bi] = decisions_per_sec_r(env, jobs, k, 2, true, exact_step,
                                          [&exact_pol] { exact_pol.rearm(); });
    rows[5].dps[bi] =
        decisions_per_sec(ref_plain, jobs, k, reps_ref, false, fcfs_step);
    rows[6].dps[bi] =
        decisions_per_sec(ref, jobs, k, reps_ref, false, fcfs_step);
    rows[7].dps[bi] =
        decisions_per_sec(ref, jobs, k, reps_ref, false, kernel_step);
    if constexpr (sim::PendingIndex::kStatsEnabled) {
      // The measurable worst-case-log claim: node visits per backfill
      // query stay within a small multiple of log2(backlog) on BOTH
      // mixes. A corner-only descent blows through this on the
      // adversarial ramps (O(P) visits); the Pareto staircase must not.
      const double bound =
          8.0 * std::log2(static_cast<double>(n)) + 16.0;
      const struct { const char* mix; double vpq; } checks[] = {
          {"benign", vpq_easy[bi]}, {"adversarial", vpq_adv[bi]}};
      for (const auto& c : checks) {
        if (c.vpq > bound) {
          std::fprintf(stderr,
                       "FATAL: %s backfill descent visited %.1f nodes per "
                       "query at backlog %zu (log bound %.1f)\n",
                       c.mix, c.vpq, n, bound);
          return 1;
        }
      }
    }
  }

  std::fprintf(stderr,
               "scheduling-core scaling (PIK-IPLEX storm, %d procs, seed "
               "%llu)\n",
               storm.processors, static_cast<unsigned long long>(seed));
  std::fprintf(stderr, "%-14s %12s %12s %12s %10s %12s\n", "path",
               "1k dec/s", "8k dec/s", "64k dec/s", "1k/64k", "us/dec@64k");
  for (const Row& r : rows) {
    std::fprintf(stderr, "%-14s %12.0f %12.0f %12.0f %9.2fx %12.2f\n",
                 r.name.c_str(), r.dps[0], r.dps[1], r.dps[2],
                 r.dps[0] / r.dps[2], 1e6 / r.dps[2]);
  }
  std::fprintf(stderr,
               "indexed vs reference at 64k: fcfs_plain %.1fx, fcfs_easy "
               "%.1fx, kernel %.1fx; adversarial vs benign easy %.2fx\n",
               rows[0].dps[2] / rows[5].dps[2],
               rows[1].dps[2] / rows[6].dps[2],
               rows[3].dps[2] / rows[7].dps[2],
               rows[1].dps[2] / rows[2].dps[2]);
  if constexpr (sim::PendingIndex::kStatsEnabled) {
    std::fprintf(stderr,
                 "backfill node visits/query: benign {%.1f, %.1f, %.1f}, "
                 "adversarial {%.1f, %.1f, %.1f}\n",
                 vpq_easy[0], vpq_easy[1], vpq_easy[2], vpq_adv[0],
                 vpq_adv[1], vpq_adv[2]);
  }
  std::fprintf(stderr,
               "optgap on one 8-job storm window: bound %.4g <= exact %.4g "
               "(proved) <= fcfs %.4g (%.3fx), sjf %.4g (%.3fx)\n",
               oexact.bound, oexact.objective, ofcfs.objective,
               ofcfs.objective / oexact.objective, osjf.objective,
               osjf.objective / oexact.objective);

  if (json) {
    std::printf("{\n  \"bench\": \"bench_sched_scaling\",\n");
    std::printf("  \"backlogs\": [%zu, %zu, %zu],\n", kBacklogs[0],
                kBacklogs[1], kBacklogs[2]);
    std::printf("  \"index_stats\": %s,\n",
                sim::PendingIndex::kStatsEnabled ? "true" : "false");
    std::printf("  \"optgap\": {\"window\": 8, \"proved\": %s, "
                "\"bound\": %.17g, \"exact\": %.17g, \"fcfs\": %.17g, "
                "\"sjf\": %.17g},\n",
                oexact.proved ? "true" : "false", oexact.bound,
                oexact.objective, ofcfs.objective, osjf.objective);
    std::printf("  \"metrics\": {\n");
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::printf("    \"%s\": {", rows[r].name.c_str());
      for (std::size_t b = 0; b < 3; ++b) {
        std::printf("\"%s\": %.1f%s", kBacklogKeys[b], rows[r].dps[b],
                    b + 1 < 3 ? ", " : "");
      }
      std::printf("}%s\n", r + 1 < rows.size() ? "," : "");
    }
    std::printf("  },\n  \"visits_per_query\": {\n");
    std::printf("    \"fcfs_easy\": {\"n1k\": %.2f, \"n8k\": %.2f, "
                "\"n64k\": %.2f},\n",
                vpq_easy[0], vpq_easy[1], vpq_easy[2]);
    std::printf("    \"fcfs_easy_adv\": {\"n1k\": %.2f, \"n8k\": %.2f, "
                "\"n64k\": %.2f}\n",
                vpq_adv[0], vpq_adv[1], vpq_adv[2]);
    std::printf("  }\n}\n");
  }
  return 0;
}
