// Table IX reproduction: computational cost of RLScheduler, measured with
// google-benchmark on this host:
//   * SJF sorting 128 pending jobs and picking one        (paper: 0.71 ms*)
//   * RLScheduler DNN making a decision for 128 jobs      (paper: 0.30 ms*)
//   * one training epoch                                  (paper: 123 s)
// (*the paper's numbers are for Python implementations; ours are native C++
//  so the absolute values are far smaller — the shape target is that a DNN
//  decision is the same order as, or cheaper than, a heuristic sort, and
//  decision latency does not grow with queue depth beyond MAX_OBSV_SIZE.)
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "nn/ops.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"

namespace {

using namespace rlsched;

sim::SchedulingEnv make_busy_env(std::size_t pending) {
  // One running job fills the machine; `pending` jobs queue behind it.
  const auto trace = workload::make_trace("SDSC-SP2", pending + 8, 42);
  std::vector<trace::Job> jobs;
  trace::Job filler;
  filler.id = 0;
  filler.submit_time = 0.0;
  filler.run_time = 1e7;
  filler.requested_procs = 128;
  filler.requested_time = 1e7;
  jobs.push_back(filler);
  for (std::size_t i = 0; i < pending; ++i) {
    trace::Job j = trace[i];
    j.submit_time = 1.0;
    j.reset_schedule_state();
    jobs.push_back(j);
  }
  sim::SchedulingEnv env(128);
  env.reset(std::move(jobs));
  env.step(0);  // start the filler; everything else is now pending
  return env;
}

void BM_SjfSortAndPick(benchmark::State& state) {
  auto env = make_busy_env(static_cast<std::size_t>(state.range(0)));
  const auto obs = env.observable();
  const double now = env.now();
  const auto sjf = sched::sjf_priority();
  for (auto _ : state) {
    // Sort a copy of the pending window by priority and pick the head —
    // what a production SJF implementation does per scheduling event.
    std::vector<std::size_t> order(obs.begin(), obs.end());
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return sjf(env.jobs()[a], now) < sjf(env.jobs()[b], now);
              });
    benchmark::DoNotOptimize(order.front());
  }
}
BENCHMARK(BM_SjfSortAndPick)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_RlDecision(benchmark::State& state) {
  auto env = make_busy_env(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(1);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, rng);
  const rl::ObservationBuilder builder;
  for (auto _ : state) {
    const auto obs = builder.build(env);
    const auto logits = policy->logits(obs);
    benchmark::DoNotOptimize(nn::argmax_masked(logits, obs.mask));
  }
}
// Decision cost must stay flat beyond MAX_OBSV_SIZE = 128: extra pending
// jobs are cut off before the network ever sees them.
BENCHMARK(BM_RlDecision)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_TrainingEpoch(benchmark::State& state) {
  const auto scale = bench::bench_scale();
  const auto trace = workload::make_trace("Lublin-1", 10000, scale.seed);
  rl::PPOConfig cfg;
  cfg.trajectories_per_epoch = scale.trajectories;
  cfg.pi_iters = scale.pi_iters;
  cfg.v_iters = scale.pi_iters;
  cfg.minibatch = scale.minibatch;
  cfg.seed = scale.seed;
  rl::PPOTrainer trainer(trace, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train_epoch().avg_metric);
  }
}
BENCHMARK(BM_TrainingEpoch)->Unit(benchmark::kSecond)->Iterations(1);

void BM_PolicyParameterCount(benchmark::State& state) {
  util::Rng rng(1);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->parameter_count());
  }
  state.counters["parameters"] =
      static_cast<double>(policy->parameter_count());
}
BENCHMARK(BM_PolicyParameterCount);

}  // namespace

BENCHMARK_MAIN();
