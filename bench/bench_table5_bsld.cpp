// Table V reproduction: average bounded slowdown of FCFS/WFP3/UNICEP/SJF/F1
// and RLScheduler on four workloads, with and without backfilling.
// Shape targets from the paper: heuristics are inconsistent across traces
// (e.g. SJF best on Lublin-2, worst on SDSC-SP2 with backfilling); RL is
// best or close-to-best everywhere.
//
// The table carries an EXACT column (the bounded-window exact planner from
// sched/exact.hpp driven through the live env) and an optimality-gap
// summary solved on standalone contended windows. `--json` emits the gap
// study alone as the machine block scripts/perf_gate.py consumes.
#include <cstring>

#include "bench_common.hpp"
int main(int argc, char** argv) {
  rlsched::bench::TableOptions opts;
  opts.json_bench = "bench_table5_bsld";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) opts.json = true;
  }
  return rlsched::bench::run_scheduling_table(
      "Table V: scheduling towards bounded slowdown",
      rlsched::sim::Metric::BoundedSlowdown,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"}, opts);
}
