// Table V reproduction: average bounded slowdown of FCFS/WFP3/UNICEP/SJF/F1
// and RLScheduler on four workloads, with and without backfilling.
// Shape targets from the paper: heuristics are inconsistent across traces
// (e.g. SJF best on Lublin-2, worst on SDSC-SP2 with backfilling); RL is
// best or close-to-best everywhere.
#include "bench_common.hpp"
int main() {
  return rlsched::bench::run_scheduling_table(
      "Table V: scheduling towards bounded slowdown",
      rlsched::sim::Metric::BoundedSlowdown,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"});
}
