// Scheduling-as-a-service load bench: drive the serve::Daemon — in process
// and over loopback sockets through serve::Server, same harness — with
// thousands of independent sessions and measure what the session table,
// dispatcher shards, and cross-session batched inference deliver:
//
//   dps                  aggregate scheduling decisions/sec across all
//                        sessions while the burst (or arrival window) drains
//   p50_ms / p99_ms      request latency percentiles. Closed-loop rows
//                        measure submit-to-completion over the burst;
//                        open-loop rows measure INTENDED-ARRIVAL-to-
//                        completion under Poisson arrivals, so p99 includes
//                        the queueing delay a client at that offered rate
//                        actually sees (a closed loop can never show it:
//                        its arrival process stalls with the server)
//   windows_per_forward  average observation windows packed per batched
//                        policy forward: the algorithmic, host-independent
//                        signal that cross-session batching engages (the
//                        CI gate requires >= batch/2 on closed-loop rows;
//                        open-loop arrivals are sparse by design and carry
//                        no floor)
//
// Rows ("metrics" keys in --json, gated by scripts/perf_gate.py):
//   s<N>            closed-loop burst, in-process, N sessions
//   sock_s<N>       the same burst through a live serve::Server socket
//   ol_s<N>         open-loop Poisson arrivals over an N-session table
//                   (the 100k point: mostly-idle sessions must be ~free —
//                   envs attach lazily at admission)
//   sock_ol_s<N>    open-loop arrivals through the socket
//
// Self-checks before timing (a perf number from a broken daemon is
// meaningless) — all three report as booleans in --json and any violation
// exits nonzero:
//   invariant        batch-B results bitwise equal batch-1 serial results
//   shard_invariant  N-dispatcher sharded daemon bitwise equals the
//                    single-dispatcher daemon on the same requests
//   wire_invariant   socket results bitwise equal in-process results
//
// Configuration, runner-style: defaults < --config FILE (flat JSON) < CLI
// flags, every numeric through the strict util::parse_* helpers (garbage,
// zero, or out-of-range values are fatal, never silently defaulted):
//
//   bench_serve_load --sessions 1000,10000 --jobs 64 --batch 8 \
//                    --dispatchers 2 --transport both --open-loop \
//                    --ol-sessions 100000 --ol-requests 20000 --rate 0 \
//                    --seed 42 --trace Lublin-1 [--json] [--config f.json]
//
// --rate is offered arrivals/sec for the open-loop rows; 0 = auto-derive
// ~0.7x the measured closed-loop capacity so the queue is loaded but
// stable. Output: a human table on stderr; with --json a machine block on
// stdout for scripts/perf_gate.py.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rl/policy.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/server.hpp"
#include "sim/env.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rlsched;

struct Options {
  std::vector<std::size_t> sessions = {1000, 10000};
  std::size_t jobs = 64;         ///< jobs per session request
  std::size_t batch = 8;         ///< daemon batch width B
  std::size_t dispatchers = 2;   ///< shards for socket/open-loop rows
  std::uint64_t seed = 42;
  std::string trace = "Lublin-1";
  std::string transport = "both";  ///< inproc | socket | both
  bool open_loop = false;
  std::size_t ol_sessions = 100000;
  std::size_t ol_requests = 20000;
  double rate = 0.0;  ///< offered arrivals/sec; 0 = auto (~0.7x capacity)
  bool json = false;
};

[[noreturn]] void fatal_flag(const char* what, const std::string& text) {
  std::fprintf(stderr, "FATAL: invalid %s: '%s'\n", what, text.c_str());
  std::exit(2);
}

std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const char* what) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    std::size_t v = 0;
    if (!util::parse_count(item, &v)) fatal_flag(what, item);
    out.push_back(v);
  }
  if (out.empty()) fatal_flag(what, text);
  return out;
}

std::size_t parse_count_or_die(const std::string& text, const char* what) {
  std::size_t v = 0;
  if (!util::parse_count(text, &v)) fatal_flag(what, text);
  return v;
}

/// Minimal flat-JSON config reader: {"sessions": [1000,10000], "jobs": 64,
/// "batch": 8, "dispatchers": 2, "seed": 42, "trace": "Lublin-1",
/// "rate": 0.5, ...}. No dependency, no nesting — exactly the
/// runner-config subset the bench documents. Numerics go through the same
/// strict parsers as the CLI: a typo in a config file is fatal, not a
/// silent default.
void load_config(const std::string& path, Options& opt) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FATAL: cannot read config %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const auto value_of = [&](const char* key) -> std::string {
    const std::string quoted = std::string("\"") + key + "\"";
    const std::size_t at = text.find(quoted);
    if (at == std::string::npos) return {};
    std::size_t start = text.find(':', at + quoted.size());
    if (start == std::string::npos) return {};
    ++start;
    while (start < text.size() && std::isspace(
        static_cast<unsigned char>(text[start]))) {
      ++start;
    }
    std::size_t end = start;
    if (start < text.size() && text[start] == '[') {
      end = text.find(']', start);
      if (end == std::string::npos) return {};
      return text.substr(start + 1, end - start - 1);
    }
    if (start < text.size() && text[start] == '"') {
      end = text.find('"', start + 1);
      if (end == std::string::npos) return {};
      return text.substr(start + 1, end - start - 1);
    }
    while (end < text.size() && text[end] != ',' && text[end] != '}' &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    return text.substr(start, end - start);
  };

  if (const std::string v = value_of("sessions"); !v.empty()) {
    opt.sessions = parse_size_list(v, "config sessions");
  }
  if (const std::string v = value_of("jobs"); !v.empty()) {
    opt.jobs = parse_count_or_die(v, "config jobs");
  }
  if (const std::string v = value_of("batch"); !v.empty()) {
    opt.batch = parse_count_or_die(v, "config batch");
  }
  if (const std::string v = value_of("dispatchers"); !v.empty()) {
    opt.dispatchers = parse_count_or_die(v, "config dispatchers");
  }
  if (const std::string v = value_of("seed"); !v.empty()) {
    opt.seed = parse_count_or_die(v, "config seed");
  }
  if (const std::string v = value_of("ol_sessions"); !v.empty()) {
    opt.ol_sessions = parse_count_or_die(v, "config ol_sessions");
  }
  if (const std::string v = value_of("ol_requests"); !v.empty()) {
    opt.ol_requests = parse_count_or_die(v, "config ol_requests");
  }
  if (const std::string v = value_of("rate"); !v.empty()) {
    if (!util::parse_double(v, &opt.rate, 0.0, 1e12)) {
      fatal_flag("config rate", v);
    }
  }
  if (const std::string v = value_of("trace"); !v.empty()) {
    opt.trace = v;
  }
  if (const std::string v = value_of("transport"); !v.empty()) {
    opt.transport = v;
  }
}

Options parse_options(int argc, char** argv) {
  Options opt;
  opt.batch = util::env_batch("RLSCHED_BATCH", opt.batch);
  opt.seed = static_cast<std::uint64_t>(
      util::env_long("RLSCHED_BENCH_SEED", static_cast<long>(opt.seed), 0));
  // Config file first, then CLI flags override it.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      load_config(argv[i + 1], opt);
    }
  }
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "FATAL: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--open-loop") == 0) {
      opt.open_loop = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      opt.sessions = parse_size_list(next(), "--sessions");
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      opt.jobs = parse_count_or_die(next(), "--jobs");
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      opt.batch = parse_count_or_die(next(), "--batch");
    } else if (std::strcmp(argv[i], "--dispatchers") == 0) {
      opt.dispatchers = parse_count_or_die(next(), "--dispatchers");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = parse_count_or_die(next(), "--seed");
    } else if (std::strcmp(argv[i], "--ol-sessions") == 0) {
      opt.ol_sessions = parse_count_or_die(next(), "--ol-sessions");
    } else if (std::strcmp(argv[i], "--ol-requests") == 0) {
      opt.ol_requests = parse_count_or_die(next(), "--ol-requests");
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      const std::string v = next();
      if (!util::parse_double(v, &opt.rate, 0.0, 1e12)) {
        fatal_flag("--rate", v);
      }
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = next();
    } else if (std::strcmp(argv[i], "--transport") == 0) {
      opt.transport = next();
    } else if (std::strcmp(argv[i], "--config") == 0) {
      ++i;  // consumed in the first pass
    } else {
      std::fprintf(stderr, "FATAL: unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opt.transport != "inproc" && opt.transport != "socket" &&
      opt.transport != "both") {
    fatal_flag("--transport (inproc|socket|both)", opt.transport);
  }
  return opt;
}

/// Per-session job sequences, deterministic in (trace, seed): session i
/// schedules its own sampled sequence, so no two sessions share state.
std::vector<std::vector<trace::Job>> session_sequences(
    const trace::Trace& trace, std::size_t n, std::size_t jobs,
    std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5E55ULL);
  std::vector<std::vector<trace::Job>> seqs;
  seqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seqs.push_back(trace.sample_sequence(rng, jobs));
  }
  return seqs;
}

/// Identically-seeded policy replicas: one registry id per dispatcher
/// shard (shard = policy id mod dispatchers), identical weights so every
/// assignment produces bitwise the same schedules.
std::vector<std::unique_ptr<rl::Policy>> make_policies(std::size_t n,
                                                       std::uint64_t seed) {
  std::vector<std::unique_ptr<rl::Policy>> out;
  for (std::size_t i = 0; i < n; ++i) {
    util::Rng rng(seed ^ 0xD0E5ULL);
    out.push_back(
        rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, rng));
  }
  return out;
}

struct LoadResult {
  std::string name;
  std::size_t sessions = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;       ///< kResourceExhausted completions (overload)
  std::size_t cancelled = 0;  ///< kCancelled completions
  double dps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double windows_per_forward = 0.0;
  double rate_rps = 0.0;  ///< offered arrivals/sec; 0 = closed loop
};

void finish_result(LoadResult& out, std::vector<double>& latencies,
                   double elapsed, const serve::DaemonStats& before,
                   const serve::DaemonStats& after) {
  std::sort(latencies.begin(), latencies.end());
  out.p50_ms = util::percentile_sorted(latencies, 0.50) * 1e3;
  out.p99_ms = util::percentile_sorted(latencies, 0.99) * 1e3;
  const std::uint64_t decisions = after.decisions - before.decisions;
  const std::uint64_t forwards = after.forwards - before.forwards;
  const std::uint64_t windows = after.forward_windows - before.forward_windows;
  out.dps = elapsed > 0.0 ? static_cast<double>(decisions) / elapsed : 0.0;
  out.windows_per_forward =
      forwards > 0
          ? static_cast<double>(windows) / static_cast<double>(forwards)
          : 0.0;
}

[[noreturn]] void die(const char* what, const core::Status& s) {
  std::fprintf(stderr, "FATAL: %s: %s\n", what, s.to_string().c_str());
  std::exit(1);
}

/// One closed-loop burst, in process: S sessions, one request each,
/// submitted up front, drained on this thread. Fills `runs` (when
/// non-null) with each session's RunResult for the invariance checks.
LoadResult run_closed_inproc(const rl::Policy& policy, std::size_t batch,
                             const std::vector<std::vector<trace::Job>>& seqs,
                             int processors, std::vector<sim::RunResult>* runs) {
  serve::DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  serve::Daemon daemon(cfg);
  const std::uint32_t pid = daemon.register_policy(policy);

  std::vector<serve::RequestId> requests(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    serve::SessionConfig sc;
    sc.processors = processors;
    sc.policy = pid;
    auto sid = daemon.create_session(sc);
    if (!sid.ok()) die("create_session", sid.status());
    core::ScheduleRequest req;
    req.jobs = &seqs[i];
    req.backfill = true;
    auto rid = daemon.submit(sid.value(), req);
    if (!rid.ok()) die("submit", rid.status());
    requests[i] = rid.value();
  }

  const serve::DaemonStats before = daemon.stats();
  const auto t0 = std::chrono::steady_clock::now();
  const auto drained = daemon.drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!drained.ok()) die("drain", drained.status());

  LoadResult out;
  out.sessions = out.submitted = seqs.size();
  std::vector<double> latencies;
  latencies.reserve(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    serve::Completion c;
    const core::Status s = daemon.try_take(requests[i], &c);
    if (!s.ok() || !c.status.ok()) die("completion", !s.ok() ? s : c.status);
    ++out.completed;
    latencies.push_back(c.latency_seconds);
    if (runs != nullptr) runs->push_back(c.result.run());
  }
  finish_result(out, latencies, elapsed, before, daemon.stats());
  return out;
}

/// The sharded, started-daemon flavor of the closed burst: N dispatcher
/// threads, P identically-weighted policies spread across them, requests
/// resolved with wait(). Gated bitwise against the single-dispatcher run.
LoadResult run_closed_sharded(
    const std::vector<std::unique_ptr<rl::Policy>>& policies,
    std::size_t batch, std::size_t dispatchers,
    const std::vector<std::vector<trace::Job>>& seqs, int processors,
    std::vector<sim::RunResult>* runs) {
  serve::DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  cfg.dispatchers = dispatchers;
  serve::Daemon daemon(cfg);
  std::vector<std::uint32_t> pids;
  for (const auto& p : policies) pids.push_back(daemon.register_policy(*p));
  daemon.start();

  std::vector<serve::RequestId> requests(seqs.size());
  std::vector<serve::SessionId> sessions(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    serve::SessionConfig sc;
    sc.processors = processors;
    sc.policy = pids[i % pids.size()];
    auto sid = daemon.create_session(sc);
    if (!sid.ok()) die("create_session", sid.status());
    sessions[i] = sid.value();
  }

  const serve::DaemonStats before = daemon.stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    core::ScheduleRequest req;
    req.jobs = &seqs[i];
    req.backfill = true;
    auto rid = daemon.submit(sessions[i], req);
    if (!rid.ok()) die("submit", rid.status());
    requests[i] = rid.value();
  }
  LoadResult out;
  out.sessions = out.submitted = seqs.size();
  std::vector<double> latencies;
  latencies.reserve(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    serve::Completion c;
    const core::Status s = daemon.wait(requests[i], &c);
    if (!s.ok() || !c.status.ok()) die("wait", !s.ok() ? s : c.status);
    ++out.completed;
    latencies.push_back(c.latency_seconds);
    if (runs != nullptr) runs->push_back(c.result.run());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  finish_result(out, latencies, elapsed, before, daemon.stats());
  daemon.stop();
  return out;
}

/// The same burst through a live serve::Server loopback socket, pipelined:
/// all requests fired via send_schedule, completions collected by tag.
LoadResult run_closed_socket(
    const std::vector<std::unique_ptr<rl::Policy>>& policies,
    std::size_t batch, std::size_t dispatchers,
    const std::vector<std::vector<trace::Job>>& seqs, int processors,
    std::vector<sim::RunResult>* runs) {
  serve::DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  cfg.dispatchers = dispatchers;
  serve::Daemon daemon(cfg);
  std::vector<std::uint32_t> pids;
  for (const auto& p : policies) pids.push_back(daemon.register_policy(*p));
  serve::Server server(daemon);
  if (!server.status().ok()) die("server", server.status());
  serve::Client client;
  if (core::Status s = client.connect("127.0.0.1", server.port()); !s.ok()) {
    die("connect", s);
  }

  std::vector<serve::SessionId> sessions(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    serve::SessionConfig sc;
    sc.processors = processors;
    sc.policy = pids[i % pids.size()];
    auto sid = client.create_session(sc);
    if (!sid.ok()) die("create_session", sid.status());
    sessions[i] = sid.value();
  }

  const serve::DaemonStats before = daemon.stats();
  const auto t0 = std::chrono::steady_clock::now();
  // Submit and collect concurrently: the pipelined client is one sender +
  // one reader, and a reader keeps the server's reply stream from backing
  // up into its write buffers at 10k+ completions.
  std::vector<double> latencies(seqs.size(), 0.0);
  if (runs != nullptr) runs->assign(seqs.size(), sim::RunResult{});
  std::thread collector([&] {
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      std::uint64_t tag = 0;
      serve::Completion c;
      if (core::Status s = client.recv_completion(&tag, &c); !s.ok()) {
        die("recv_completion", s);
      }
      if (!c.status.ok() || tag >= seqs.size()) die("completion", c.status);
      latencies[tag] = c.latency_seconds;
      if (runs != nullptr) (*runs)[tag] = c.result.run();
    }
  });
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    core::ScheduleRequest req;
    req.jobs = &seqs[i];
    req.backfill = true;
    if (core::Status s = client.send_schedule(sessions[i], req, i); !s.ok()) {
      die("send_schedule", s);
    }
  }
  collector.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LoadResult out;
  out.sessions = out.submitted = out.completed = seqs.size();
  finish_result(out, latencies, elapsed, before, daemon.stats());
  return out;
}

/// Open-loop Poisson arrivals over a large, mostly-idle session table.
/// `nrequests` arrivals at `rate`/sec spread round-robin over `nsessions`
/// sessions, each scheduling one of a small pool of shared sequences.
/// Latency for arrival i = (actual submit - INTENDED arrival) + the
/// daemon's submit-to-completion time: what an open-loop client at that
/// offered rate observes, queueing delay included, even when the
/// submitter itself falls behind.
LoadResult run_open_loop(
    const std::vector<std::unique_ptr<rl::Policy>>& policies,
    std::size_t batch, std::size_t dispatchers, bool socket,
    const std::vector<std::vector<trace::Job>>& seq_pool, int processors,
    std::size_t nsessions, std::size_t nrequests, double rate,
    std::uint64_t seed) {
  serve::DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  cfg.dispatchers = dispatchers;
  serve::Daemon daemon(cfg);
  std::vector<std::uint32_t> pids;
  for (const auto& p : policies) pids.push_back(daemon.register_policy(*p));

  std::unique_ptr<serve::Server> server;
  serve::Client client;
  if (socket) {
    server = std::make_unique<serve::Server>(daemon);
    if (!server->status().ok()) die("server", server->status());
    if (core::Status s = client.connect("127.0.0.1", server->port());
        !s.ok()) {
      die("connect", s);
    }
  } else {
    daemon.start();
  }

  std::vector<serve::SessionId> sessions(nsessions);
  for (std::size_t i = 0; i < nsessions; ++i) {
    serve::SessionConfig sc;
    sc.processors = processors;
    sc.policy = pids[i % pids.size()];
    auto sid = socket ? client.create_session(sc) : daemon.create_session(sc);
    if (!sid.ok()) die("create_session", sid.status());
    sessions[i] = sid.value();
  }

  // Pre-draw the Poisson arrival schedule (exponential gaps).
  util::Rng rng(seed ^ 0xA221ULL);
  std::vector<double> arrival(nrequests);
  double t = 0.0;
  for (std::size_t i = 0; i < nrequests; ++i) {
    t += -std::log(1.0 - rng.uniform()) / rate;
    arrival[i] = t;
  }

  std::vector<double> submit_lag(nrequests, 0.0);  ///< actual - intended
  std::vector<double> service(nrequests, 0.0);     ///< submit-to-complete
  std::vector<serve::RequestId> requests(socket ? 0 : nrequests);
  const serve::DaemonStats before = daemon.stats();
  const auto t0 = std::chrono::steady_clock::now();

  std::thread collector;
  if (socket) {
    collector = std::thread([&] {
      for (std::size_t i = 0; i < nrequests; ++i) {
        std::uint64_t tag = 0;
        serve::Completion c;
        if (core::Status s = client.recv_completion(&tag, &c); !s.ok()) {
          die("recv_completion", s);
        }
        if (!c.status.ok() || tag >= nrequests) die("completion", c.status);
        service[tag] = c.latency_seconds;
      }
    });
  }
  for (std::size_t i = 0; i < nrequests; ++i) {
    const auto due = t0 + std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(arrival[i]));
    std::this_thread::sleep_until(due);
    core::ScheduleRequest req;
    req.jobs = &seq_pool[i % seq_pool.size()];
    req.backfill = true;
    const serve::SessionId sid = sessions[i % nsessions];
    const double now = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    submit_lag[i] = std::max(0.0, now - arrival[i]);
    if (socket) {
      if (core::Status s = client.send_schedule(sid, req, i); !s.ok()) {
        die("send_schedule", s);
      }
    } else {
      auto rid = daemon.submit(sid, req);
      if (!rid.ok()) die("submit", rid.status());
      requests[i] = rid.value();
    }
  }
  if (socket) {
    collector.join();
  } else {
    for (std::size_t i = 0; i < nrequests; ++i) {
      serve::Completion c;
      const core::Status s = daemon.wait(requests[i], &c);
      if (!s.ok() || !c.status.ok()) die("wait", !s.ok() ? s : c.status);
      service[i] = c.latency_seconds;
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LoadResult out;
  out.sessions = nsessions;
  out.submitted = out.completed = nrequests;
  out.rate_rps = rate;
  std::vector<double> latencies(nrequests);
  for (std::size_t i = 0; i < nrequests; ++i) {
    latencies[i] = submit_lag[i] + service[i];
  }
  finish_result(out, latencies, elapsed, before, daemon.stats());
  if (!socket) daemon.stop();
  return out;
}

/// The overload row: Poisson arrivals OFFERED ABOVE CAPACITY (the caller
/// passes ~1.5x the measured closed-loop rate) into a daemon with a
/// BOUNDED per-shard queue and the shed-oldest admission policy. A healthy
/// overloaded server degrades gracefully: the excess is shed as delivered
/// kResourceExhausted completions, the accepted requests see a p99 bounded
/// by the queue depth (not by the unbounded backlog an uncontrolled queue
/// would grow), and the books balance exactly:
/// completed + shed + cancelled == submitted. p50/p99 here are over
/// ACCEPTED (served-OK) requests only — the shed ones by definition got a
/// near-instant answer.
LoadResult run_overload(
    const std::vector<std::unique_ptr<rl::Policy>>& policies,
    std::size_t batch, std::size_t dispatchers,
    const std::vector<std::vector<trace::Job>>& seq_pool, int processors,
    std::size_t nsessions, std::size_t nrequests, double rate,
    std::uint64_t seed) {
  serve::DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  cfg.dispatchers = dispatchers;
  cfg.max_queue_depth = 4 * batch;  // per shard: the graceful-degradation knob
  cfg.shed_policy = serve::ShedPolicy::kShedOldest;
  serve::Daemon daemon(cfg);
  std::vector<std::uint32_t> pids;
  for (const auto& p : policies) pids.push_back(daemon.register_policy(*p));
  daemon.start();

  std::vector<serve::SessionId> sessions(nsessions);
  for (std::size_t i = 0; i < nsessions; ++i) {
    serve::SessionConfig sc;
    sc.processors = processors;
    sc.policy = pids[i % pids.size()];
    auto sid = daemon.create_session(sc);
    if (!sid.ok()) die("create_session", sid.status());
    sessions[i] = sid.value();
  }

  util::Rng rng(seed ^ 0x0E41ULL);
  std::vector<double> arrival(nrequests);
  double t = 0.0;
  for (std::size_t i = 0; i < nrequests; ++i) {
    t += -std::log(1.0 - rng.uniform()) / rate;
    arrival[i] = t;
  }

  std::vector<double> submit_lag(nrequests, 0.0);
  std::vector<serve::RequestId> requests(nrequests);
  const serve::DaemonStats before = daemon.stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < nrequests; ++i) {
    const auto due = t0 + std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(arrival[i]));
    std::this_thread::sleep_until(due);
    core::ScheduleRequest req;
    req.jobs = &seq_pool[i % seq_pool.size()];
    req.backfill = true;
    const double now = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    submit_lag[i] = std::max(0.0, now - arrival[i]);
    // Shed-oldest NEVER bounces the new arrival — older queued work pays.
    auto rid = daemon.submit(sessions[i % nsessions], req);
    if (!rid.ok()) die("submit", rid.status());
    requests[i] = rid.value();
  }

  LoadResult out;
  out.sessions = nsessions;
  out.submitted = nrequests;
  out.rate_rps = rate;
  std::vector<double> accepted;
  accepted.reserve(nrequests);
  for (std::size_t i = 0; i < nrequests; ++i) {
    serve::Completion c;
    const core::Status s = daemon.wait(requests[i], &c);
    if (!s.ok()) die("wait", s);
    if (c.status.ok()) {
      ++out.completed;
      accepted.push_back(submit_lag[i] + c.latency_seconds);
    } else if (c.status.code() == core::StatusCode::kResourceExhausted) {
      ++out.shed;
    } else if (c.status.code() == core::StatusCode::kCancelled) {
      ++out.cancelled;
    } else {
      die("overload completion", c.status);
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  daemon.stop();
  const serve::DaemonStats after = daemon.stats();
  // The daemon's own books must agree with what the bench observed.
  if (after.requests_shed - before.requests_shed != out.shed ||
      out.completed + out.shed + out.cancelled != out.submitted) {
    std::fprintf(stderr, "FATAL: overload accounting diverged: "
                 "%zu completed + %zu shed + %zu cancelled != %zu submitted\n",
                 out.completed, out.shed, out.cancelled, out.submitted);
    std::exit(1);
  }
  finish_result(out, accepted, elapsed, before, after);
  return out;
}

bool bitwise_runs_equal(const std::vector<sim::RunResult>& a,
                        const std::vector<sim::RunResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!sim::bitwise_equal(a[i], b[i])) return false;
  }
  return true;
}

void print_row(const LoadResult& r) {
  std::fprintf(stderr, "%-16s %9zu %10zu %14.0f %12.3f %12.3f %10.2f\n",
               r.name.c_str(), r.sessions, r.submitted, r.dps, r.p50_ms,
               r.p99_ms, r.windows_per_forward);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto trace = workload::make_trace(
      opt.trace, std::max<std::size_t>(4000, 4 * opt.jobs), opt.seed);
  const int procs = trace.processors();
  const auto policies = make_policies(std::max<std::size_t>(
      opt.dispatchers, 1), opt.seed);
  const rl::Policy& policy = *policies.front();

  // --- self-checks at reduced scale (each runs every session twice) ----
  const std::size_t check_sessions =
      std::min<std::size_t>(256, *std::min_element(opt.sessions.begin(),
                                                   opt.sessions.end()));
  const auto check_seqs = session_sequences(trace, check_sessions, opt.jobs,
                                            opt.seed);

  // 1. Cross-session batching: batch-B results == batch-1 serial results.
  std::vector<sim::RunResult> batched, serial;
  const LoadResult check_run =
      run_closed_inproc(policy, opt.batch, check_seqs, procs, &batched);
  (void)run_closed_inproc(policy, 1, check_seqs, procs, &serial);
  const bool invariant = bitwise_runs_equal(batched, serial);

  // 2. Dispatcher sharding: N shards == 1 shard, identical weights.
  std::vector<sim::RunResult> sharded, single;
  (void)run_closed_sharded(policies, opt.batch,
                           std::max<std::size_t>(opt.dispatchers, 2),
                           check_seqs, procs, &sharded);
  (void)run_closed_sharded(policies, opt.batch, 1, check_seqs, procs,
                           &single);
  const bool shard_invariant = bitwise_runs_equal(sharded, single) &&
                               bitwise_runs_equal(sharded, batched);

  // 3. Wire framing: socket results == in-process results.
  std::vector<sim::RunResult> wired;
  (void)run_closed_socket(policies, opt.batch, opt.dispatchers, check_seqs,
                          procs, &wired);
  const bool wire_invariant = bitwise_runs_equal(wired, batched);

  for (const auto& [ok, what] :
       {std::pair<bool, const char*>{invariant, "batch-B vs batch-1"},
        {shard_invariant, "N-dispatcher vs single-dispatcher"},
        {wire_invariant, "socket vs in-process"}}) {
    if (!ok) {
      std::fprintf(stderr, "FATAL: %s results diverged bitwise over %zu "
                   "sessions\n", what, check_sessions);
    }
  }
  const bool all_ok = invariant && shard_invariant && wire_invariant;
  if (!all_ok && !opt.json) return 1;

  std::fprintf(stderr,
               "serve load: trace %s, %zu jobs/session, batch %zu, %zu "
               "dispatchers, seed %llu; invariance over %zu sessions: "
               "batch %s, shard %s, wire %s\n",
               opt.trace.c_str(), opt.jobs, opt.batch, opt.dispatchers,
               static_cast<unsigned long long>(opt.seed), check_sessions,
               invariant ? "OK" : "VIOLATED",
               shard_invariant ? "OK" : "VIOLATED",
               wire_invariant ? "OK" : "VIOLATED");
  std::fprintf(stderr, "%-16s %9s %10s %14s %12s %12s %10s\n", "row",
               "sessions", "requests", "dec/s", "p50 ms", "p99 ms",
               "win/fwd");

  const bool want_inproc = opt.transport != "socket";
  const bool want_socket = opt.transport != "inproc";
  std::vector<LoadResult> results;

  if (want_inproc) {
    for (const std::size_t scale : opt.sessions) {
      const auto seqs = session_sequences(trace, scale, opt.jobs, opt.seed);
      LoadResult r = run_closed_inproc(policy, opt.batch, seqs, procs,
                                       nullptr);
      r.name = "s" + std::to_string(scale);
      print_row(r);
      results.push_back(std::move(r));
    }
  }
  if (want_socket) {
    const std::size_t scale = opt.sessions.front();
    const auto seqs = session_sequences(trace, scale, opt.jobs, opt.seed);
    LoadResult r = run_closed_socket(policies, opt.batch, opt.dispatchers,
                                     seqs, procs, nullptr);
    r.name = "sock_s" + std::to_string(scale);
    print_row(r);
    results.push_back(std::move(r));
  }

  if (opt.open_loop) {
    // Offered rate: ~0.7x the measured closed-loop request capacity keeps
    // the queue loaded but stable (above 1.0x an open-loop queue grows
    // without bound and p99 measures the runway, not the daemon).
    const double capacity_rps =
        check_run.dps / static_cast<double>(opt.jobs);
    const double rate =
        opt.rate > 0.0 ? opt.rate : 0.7 * capacity_rps;
    // A shared pool of sequences keeps the 100k-session table affordable:
    // the scale point measures session-table + queueing behavior, not
    // sampling memory.
    const std::size_t pool_n = std::min<std::size_t>(256, opt.ol_requests);
    const auto seq_pool =
        session_sequences(trace, pool_n, opt.jobs, opt.seed);
    for (const bool socket : {false, true}) {
      if (socket ? !want_socket : !want_inproc) continue;
      LoadResult r = run_open_loop(policies, opt.batch, opt.dispatchers,
                                   socket, seq_pool, procs, opt.ol_sessions,
                                   opt.ol_requests, rate, opt.seed);
      r.name = (socket ? "sock_ol_s" : "ol_s") +
               std::to_string(opt.ol_sessions);
      print_row(r);
      results.push_back(std::move(r));
    }
    if (want_inproc) {
      // Overload: offer 1.5x the measured capacity into a bounded queue
      // with shed-oldest admission. Gated on graceful degradation: sheds
      // happen (kResourceExhausted), accepted-request p99 stays bounded by
      // the queue depth, and completed + shed + cancelled == submitted.
      const std::size_t ov_sessions = opt.sessions.front();
      const std::size_t ov_requests =
          std::min<std::size_t>(opt.ol_requests, 10000);
      LoadResult r = run_overload(policies, opt.batch, opt.dispatchers,
                                  seq_pool, procs, ov_sessions, ov_requests,
                                  1.5 * capacity_rps, opt.seed);
      r.name = "ov_s" + std::to_string(ov_sessions);
      print_row(r);
      std::fprintf(stderr,
                   "%-16s overload accounting: %zu ok + %zu shed + %zu "
                   "cancelled == %zu offered\n",
                   r.name.c_str(), r.completed, r.shed, r.cancelled,
                   r.submitted);
      results.push_back(std::move(r));
    }
  }

  if (opt.json) {
    std::printf("{\n  \"bench\": \"bench_serve_load\",\n");
    std::printf("  \"batch\": %zu,\n  \"jobs\": %zu,\n  \"dispatchers\": "
                "%zu,\n", opt.batch, opt.jobs, opt.dispatchers);
    std::printf("  \"invariant\": %s,\n", invariant ? "true" : "false");
    std::printf("  \"shard_invariant\": %s,\n",
                shard_invariant ? "true" : "false");
    std::printf("  \"wire_invariant\": %s,\n",
                wire_invariant ? "true" : "false");
    std::printf("  \"metrics\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const LoadResult& r = results[i];
      std::printf(
          "    \"%s\": {\"dps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": "
          "%.4f, \"windows_per_forward\": %.3f, \"rate_rps\": %.1f, "
          "\"submitted\": %zu, \"completed\": %zu, \"shed\": %zu, "
          "\"cancelled\": %zu}%s\n",
          r.name.c_str(), r.dps, r.p50_ms, r.p99_ms, r.windows_per_forward,
          r.rate_rps, r.submitted, r.completed, r.shed, r.cancelled,
          i + 1 < results.size() ? "," : "");
    }
    std::printf("  }\n}\n");
  }
  return all_ok ? 0 : 1;
}
