// Scheduling-as-a-service load bench: drive the serve::Daemon with
// thousands of independent sessions — each its own simulated cluster with
// a queued ScheduleRequest — and measure what the session table plus
// cross-session batched inference deliver:
//
//   dps                  aggregate scheduling decisions/sec across all
//                        sessions while the dispatcher drains the burst
//   p50_ms / p99_ms      submit-to-completion latency percentiles over the
//                        closed-loop burst (queueing included — that is
//                        the latency a multi-tenant client sees)
//   windows_per_forward  average observation windows packed per batched
//                        policy forward: the algorithmic, host-independent
//                        signal that cross-session batching engages (the
//                        CI gate requires >= batch/2)
//
// Self-check before timing (a perf number from a broken daemon is
// meaningless): every session's result at the configured batch width must
// be BITWISE identical to the same requests served at batch 1 — exits
// nonzero on violation and reports "invariant": false in --json.
//
// Configuration, runner-style: defaults < --config FILE (flat JSON) < CLI
// flags. The same keys work in both:
//
//   bench_serve_load --sessions 1000,10000 --jobs 64 --batch 8 \
//                    --seed 42 --trace Lublin-1 [--json] [--config f.json]
//
// Output: a human table on stderr; with --json a machine block on stdout
// for scripts/perf_gate.py ("s<N>" metric per session scale).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rl/policy.hpp"
#include "serve/daemon.hpp"
#include "sim/env.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rlsched;

struct Options {
  std::vector<std::size_t> sessions = {1000, 10000};
  std::size_t jobs = 64;     ///< jobs per session request
  std::size_t batch = 8;     ///< daemon batch width B
  std::uint64_t seed = 42;
  std::string trace = "Lublin-1";
  bool json = false;
};

std::vector<std::size_t> parse_size_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<std::size_t>(std::stoull(item)));
    }
  }
  return out;
}

/// Minimal flat-JSON config reader: {"sessions": [1000,10000], "jobs": 64,
/// "batch": 8, "seed": 42, "trace": "Lublin-1"}. No dependency, no nesting
/// — exactly the runner-config subset the bench documents.
void load_config(const std::string& path, Options& opt) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FATAL: cannot read config %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const auto value_of = [&](const char* key) -> std::string {
    const std::string quoted = std::string("\"") + key + "\"";
    const std::size_t at = text.find(quoted);
    if (at == std::string::npos) return {};
    std::size_t start = text.find(':', at + quoted.size());
    if (start == std::string::npos) return {};
    ++start;
    while (start < text.size() && std::isspace(
        static_cast<unsigned char>(text[start]))) {
      ++start;
    }
    std::size_t end = start;
    if (start < text.size() && text[start] == '[') {
      end = text.find(']', start);
      if (end == std::string::npos) return {};
      return text.substr(start + 1, end - start - 1);
    }
    if (start < text.size() && text[start] == '"') {
      end = text.find('"', start + 1);
      if (end == std::string::npos) return {};
      return text.substr(start + 1, end - start - 1);
    }
    while (end < text.size() && text[end] != ',' && text[end] != '}' &&
           !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    return text.substr(start, end - start);
  };

  if (const std::string v = value_of("sessions"); !v.empty()) {
    opt.sessions = parse_size_list(v);
  }
  if (const std::string v = value_of("jobs"); !v.empty()) {
    opt.jobs = static_cast<std::size_t>(std::stoull(v));
  }
  if (const std::string v = value_of("batch"); !v.empty()) {
    opt.batch = static_cast<std::size_t>(std::stoull(v));
  }
  if (const std::string v = value_of("seed"); !v.empty()) {
    opt.seed = static_cast<std::uint64_t>(std::stoull(v));
  }
  if (const std::string v = value_of("trace"); !v.empty()) {
    opt.trace = v;
  }
}

Options parse_options(int argc, char** argv) {
  Options opt;
  opt.batch = util::env_batch("RLSCHED_BATCH", opt.batch);
  opt.seed = static_cast<std::uint64_t>(
      util::env_long("RLSCHED_BENCH_SEED", static_cast<long>(opt.seed), 0));
  // Config file first, then CLI flags override it.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      load_config(argv[i + 1], opt);
    }
  }
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "FATAL: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      opt.sessions = parse_size_list(next());
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      opt.jobs = static_cast<std::size_t>(std::stoull(next()));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      opt.batch = static_cast<std::size_t>(std::stoull(next()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = static_cast<std::uint64_t>(std::stoull(next()));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = next();
    } else if (std::strcmp(argv[i], "--config") == 0) {
      ++i;  // consumed in the first pass
    } else {
      std::fprintf(stderr, "FATAL: unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (opt.sessions.empty() || opt.jobs == 0 || opt.batch == 0) {
    std::fprintf(stderr, "FATAL: sessions/jobs/batch must be nonzero\n");
    std::exit(2);
  }
  return opt;
}

/// Per-session job sequences, deterministic in (trace, seed): session i
/// schedules its own sampled sequence, so no two sessions share state.
std::vector<std::vector<trace::Job>> session_sequences(
    const trace::Trace& trace, std::size_t n, std::size_t jobs,
    std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5E55ULL);
  std::vector<std::vector<trace::Job>> seqs;
  seqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seqs.push_back(trace.sample_sequence(rng, jobs));
  }
  return seqs;
}

struct LoadResult {
  std::size_t sessions = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  double dps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double windows_per_forward = 0.0;
};

/// One closed-loop burst: S sessions, one request each, submitted up
/// front, drained on this thread. Returns throughput + latency
/// percentiles; fills `runs` (when non-null) with each session's
/// RunResult for the invariance check.
LoadResult run_load(const rl::Policy& policy, std::size_t batch,
                    const std::vector<std::vector<trace::Job>>& seqs,
                    int processors, std::vector<sim::RunResult>* runs) {
  serve::DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  serve::Daemon daemon(cfg);
  const std::uint32_t pid = daemon.register_policy(policy);

  std::vector<serve::SessionId> sessions(seqs.size());
  std::vector<serve::RequestId> requests(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    serve::SessionConfig sc;
    sc.processors = processors;
    sc.policy = pid;
    auto sid = daemon.create_session(sc);
    if (!sid.ok()) {
      std::fprintf(stderr, "FATAL: create_session: %s\n",
                   sid.status().to_string().c_str());
      std::exit(1);
    }
    sessions[i] = sid.value();
    core::ScheduleRequest req;
    req.jobs = &seqs[i];
    req.backfill = true;
    auto rid = daemon.submit(sessions[i], req);
    if (!rid.ok()) {
      std::fprintf(stderr, "FATAL: submit: %s\n",
                   rid.status().to_string().c_str());
      std::exit(1);
    }
    requests[i] = rid.value();
  }

  const serve::DaemonStats before = daemon.stats();
  const auto t0 = std::chrono::steady_clock::now();
  const auto drained = daemon.drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!drained.ok()) {
    std::fprintf(stderr, "FATAL: drain: %s\n",
                 drained.status().to_string().c_str());
    std::exit(1);
  }
  const serve::DaemonStats after = daemon.stats();

  LoadResult out;
  out.sessions = seqs.size();
  out.submitted = seqs.size();
  std::vector<double> latencies;
  latencies.reserve(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    serve::Completion c;
    const core::Status s = daemon.try_take(requests[i], &c);
    if (!s.ok() || !c.status.ok()) {
      std::fprintf(stderr, "FATAL: completion %zu: %s\n", i,
                   (!s.ok() ? s : c.status).to_string().c_str());
      std::exit(1);
    }
    ++out.completed;
    latencies.push_back(c.latency_seconds);
    if (runs != nullptr) runs->push_back(c.result.run());
  }
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    const std::size_t at = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[at] * 1e3;
  };
  out.p50_ms = pct(0.50);
  out.p99_ms = pct(0.99);
  const std::uint64_t decisions = after.decisions - before.decisions;
  const std::uint64_t forwards = after.forwards - before.forwards;
  const std::uint64_t windows = after.forward_windows - before.forward_windows;
  out.dps = elapsed > 0.0 ? static_cast<double>(decisions) / elapsed : 0.0;
  out.windows_per_forward =
      forwards > 0 ? static_cast<double>(windows) / static_cast<double>(forwards)
                   : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto trace = workload::make_trace(
      opt.trace, std::max<std::size_t>(4000, 4 * opt.jobs), opt.seed);
  util::Rng policy_rng(opt.seed ^ 0xD0E5ULL);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, policy_rng);

  // Invariance self-check at a reduced scale (it runs every session
  // TWICE): batched results must be bitwise the batch-1 results.
  const std::size_t check_sessions =
      std::min<std::size_t>(256, *std::min_element(opt.sessions.begin(),
                                                   opt.sessions.end()));
  const auto check_seqs = session_sequences(trace, check_sessions, opt.jobs,
                                            opt.seed);
  std::vector<sim::RunResult> batched, serial;
  (void)run_load(*policy, opt.batch, check_seqs, trace.processors(),
                 &batched);
  (void)run_load(*policy, 1, check_seqs, trace.processors(), &serial);
  bool invariant = batched.size() == serial.size();
  for (std::size_t i = 0; invariant && i < batched.size(); ++i) {
    invariant = sim::bitwise_equal(batched[i], serial[i]);
  }
  if (!invariant) {
    std::fprintf(stderr,
                 "FATAL: cross-session batching changed results (batch %zu "
                 "vs 1 over %zu sessions)\n",
                 opt.batch, check_sessions);
    if (!opt.json) return 1;
  }

  std::fprintf(stderr,
               "serve load: trace %s, %zu jobs/session, batch %zu, seed "
               "%llu, invariance %s over %zu sessions\n",
               opt.trace.c_str(), opt.jobs, opt.batch,
               static_cast<unsigned long long>(opt.seed),
               invariant ? "OK" : "VIOLATED", check_sessions);
  std::fprintf(stderr, "%-10s %14s %12s %12s %16s\n", "sessions", "dec/s",
               "p50 ms", "p99 ms", "windows/forward");

  std::vector<std::pair<std::size_t, LoadResult>> results;
  for (const std::size_t scale : opt.sessions) {
    const auto seqs = session_sequences(trace, scale, opt.jobs, opt.seed);
    const LoadResult r =
        run_load(*policy, opt.batch, seqs, trace.processors(), nullptr);
    std::fprintf(stderr, "%-10zu %14.0f %12.3f %12.3f %16.2f\n", scale,
                 r.dps, r.p50_ms, r.p99_ms, r.windows_per_forward);
    results.emplace_back(scale, r);
  }

  if (opt.json) {
    std::printf("{\n  \"bench\": \"bench_serve_load\",\n");
    std::printf("  \"batch\": %zu,\n  \"jobs\": %zu,\n", opt.batch,
                opt.jobs);
    std::printf("  \"invariant\": %s,\n", invariant ? "true" : "false");
    std::printf("  \"metrics\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [scale, r] = results[i];
      std::printf(
          "    \"s%zu\": {\"dps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": "
          "%.4f, \"windows_per_forward\": %.3f, \"submitted\": %zu, "
          "\"completed\": %zu}%s\n",
          scale, r.dps, r.p50_ms, r.p99_ms, r.windows_per_forward,
          r.submitted, r.completed, i + 1 < results.size() ? "," : "");
    }
    std::printf("  }\n}\n");
  }
  return invariant ? 0 : 1;
}
