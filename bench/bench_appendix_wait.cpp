// Appendix B reproduction (Fig 13 + Table XI): average job waiting time.
#include "bench_common.hpp"
int main() {
  using rlsched::sim::Metric;
  int rc = rlsched::bench::run_training_curves(
      "Fig 13: training curves, job waiting time", Metric::WaitTime,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"});
  rc |= rlsched::bench::run_scheduling_table(
      "Table XI: scheduling towards job waiting time", Metric::WaitTime,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"});
  return rc;
}
