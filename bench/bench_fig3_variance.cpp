// Fig 3 reproduction: average bounded slowdown of SJF over consecutive
// 256-job windows of the PIK-IPLEX trace. The paper's point: the metric sits
// near 1 most of the time but spikes by orders of magnitude in short bursts
// — the variance that destabilizes naive RL training.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlsched;
  const auto scale = bench::bench_scale();
  const auto trace = workload::make_trace("PIK-IPLEX", 10000, scale.seed);
  const auto sjf = sched::sjf_priority();

  constexpr std::size_t kWindow = 256;
  constexpr std::size_t kStride = 128;

  std::vector<double> series;
  for (std::size_t start = 0; start + kWindow <= trace.size();
       start += kStride) {
    const auto seq = trace.sequence(start, kWindow);
    series.push_back(bench::heuristic_value(
        seq, trace.processors(), sjf, false, sim::Metric::BoundedSlowdown,
        sim::PriorityKind::TimeInvariant));
  }

  util::Table table("Fig 3: SJF avg bounded slowdown over the PIK timeline");
  table.set_header({"window_start_job", "bsld"});
  for (std::size_t i = 0; i < series.size(); ++i) {
    table.add_row({std::to_string(i * kStride), bench::cell(series[i])});
  }
  std::cout << table;

  const auto s = util::summarize(series);
  std::cout << "\nwindows=" << s.count << "  median=" << bench::cell(s.median)
            << "  mean=" << bench::cell(s.mean)
            << "  p95=" << bench::cell(s.p95)
            << "  max=" << bench::cell(s.max) << "\n";
  const double near_one =
      static_cast<double>(std::count_if(series.begin(), series.end(),
                                        [](double v) { return v < 10.0; })) /
      static_cast<double>(series.size());
  std::cout << "fraction of windows with bsld < 10: "
            << bench::cell(100.0 * near_one)
            << "%  (paper: most of the timeline sits near 1, with rare\n"
               "spikes orders of magnitude higher — max/median ratio here: "
            << bench::cell(s.max / std::max(s.median, 1.0)) << "x)\n";
  return 0;
}
