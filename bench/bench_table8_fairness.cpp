// Table VIII reproduction: bounded job slowdown under the Maximal fairness
// aggregator (max over per-user average bounded slowdown, SS V-F) on the two
// traces with user information, SDSC-SP2 and HPC2N. RLScheduler trains
// directly on the fairness reward; the heuristics cannot adapt to it.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlsched;
  const auto scale = bench::bench_scale();
  const auto metric = sim::Metric::FairBoundedSlowdown;
  const std::vector<std::string> traces = {"SDSC-SP2", "HPC2N"};

  for (const bool backfill : {false, true}) {
    util::Table table(std::string("Table VIII: bsld with Maximal fairness") +
                      (backfill ? " - with backfilling"
                                : " - without backfilling"));
    std::vector<std::string> header = {"Trace"};
    for (const auto& h : sched::all_heuristics()) header.push_back(h.name);
    header.push_back("RL");
    table.set_header(header);

    for (const auto& t : traces) {
      const auto trace = workload::make_trace(t, 10000, scale.seed);
      const auto seqs = bench::eval_sequences(trace, scale.eval_seqs,
                                              scale.eval_len, scale.seed);
      std::vector<std::string> row = {t};
      for (const auto& h : sched::all_heuristics()) {
        row.push_back(bench::cell(bench::heuristic_avg(
            seqs, trace.processors(), h.priority, backfill, metric,
            h.kind)));
      }
      auto model = bench::train_or_load(t, metric, rl::PolicyKind::Kernel,
                                        false, scale);
      row.push_back(bench::cell(bench::rl_avg(
          *model.scheduler, seqs, trace.processors(), backfill, metric)));
      table.add_row(row);
    }
    std::cout << table << "\n";
  }
  std::cout
      << "(paper: RL wins on both traces; the margin is large on SDSC-SP2\n"
         "and small on HPC2N, whose submissions are dominated by one user\n"
         "so fairness rarely binds)\n";
  return 0;
}
