#pragma once
// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// Scaling: the paper trains for ~100 epochs of 100x256-job trajectories on a
// multi-core Xeon; this harness defaults to a reduced budget that finishes
// on a single laptop core while preserving the qualitative shape of every
// result. Environment variables restore paper scale:
//
//   RLSCHED_BENCH_EPOCHS     training epochs per model          (default 15)
//   RLSCHED_BENCH_TRAJ       trajectories per epoch             (default 12)
//   RLSCHED_BENCH_PI_ITERS   policy/value update iters          (default 10)
//   RLSCHED_BENCH_MINIBATCH  transitions per update iteration   (default 512;
//                            0 means FULL BATCH — every collected
//                            transition in one update step)
//   RLSCHED_BENCH_EVAL_SEQS  evaluation sequences per cell      (default 5)
//   RLSCHED_BENCH_EVAL_LEN   jobs per evaluation sequence       (default 512)
//   RLSCHED_BENCH_SEED       master seed                        (default 42)
//   RLSCHED_WORKERS          rollout/update threads             (default 1;
//                            clamped to hardware concurrency — training
//                            results are bitwise identical for every
//                            worker count, only wall clock changes)
//   RLSCHED_BATCH            inference batch width B            (default 8;
//                            windows per batched policy forward in rollout
//                            collection and evaluation sweeps; validated
//                            like RLSCHED_WORKERS — garbage/0/negative
//                            rejected, clamped to util::kMaxBatchWindows.
//                            Bitwise identical results for every value)
//   RLSCHED_MODEL_DIR        trained-model cache directory
//                            (default ./rlsched_models)
//
// Values are validated (util/env.hpp): a non-numeric value falls back to
// the default with a warning on stderr, and out-of-range values clamp.
//
// Paper scale: EPOCHS=100 TRAJ=100 PI_ITERS=80 MINIBATCH=0 EVAL_SEQS=10
// EVAL_LEN=1024.

#include <memory>
#include <string>
#include <vector>

#include "core/rlscheduler.hpp"
#include "sched/exact.hpp"
#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "workload/synthetic.hpp"

namespace rlsched::bench {

struct Scale {
  std::size_t epochs;
  std::size_t trajectories;
  std::size_t pi_iters;
  std::size_t minibatch;
  std::size_t eval_seqs;
  std::size_t eval_len;
  std::uint64_t seed;
  std::size_t workers;
  std::size_t batch;
  std::string model_dir;
};

/// Read the scale from the environment (defaults above).
Scale bench_scale();

/// Trained model plus its per-epoch metric curve.
struct TrainedModel {
  std::unique_ptr<core::RLScheduler> scheduler;
  std::vector<double> curve;  ///< avg metric per epoch (empty if cache hit
                              ///< and curve file missing)
  bool from_cache = false;
};

/// Train an RLScheduler on `trace_name` for the given goal, or load it from
/// the on-disk cache when an identical configuration was trained before.
/// The cache key covers every input that affects the result.
TrainedModel train_or_load(const std::string& trace_name, sim::Metric metric,
                           rl::PolicyKind policy, bool filter,
                           const Scale& scale);

/// The paper's standard evaluation protocol: `n` random contiguous
/// sequences of `len` jobs from the trace, shared across schedulers.
std::vector<std::vector<trace::Job>> eval_sequences(const trace::Trace& trace,
                                                    std::size_t n,
                                                    std::size_t len,
                                                    std::uint64_t seed);

/// Metric of one heuristic on one sequence. Pass the heuristic's
/// PriorityKind (sched::Heuristic::kind) so time-invariant baselines run
/// on the env's O(log P) min-key index.
double heuristic_value(const std::vector<trace::Job>& seq, int processors,
                       const sim::PriorityFn& priority, bool backfill,
                       sim::Metric metric,
                       sim::PriorityKind kind = sim::PriorityKind::TimeVarying);

/// Average metric of a heuristic over shared sequences.
double heuristic_avg(const std::vector<std::vector<trace::Job>>& seqs,
                     int processors, const sim::PriorityFn& priority,
                     bool backfill, sim::Metric metric,
                     sim::PriorityKind kind = sim::PriorityKind::TimeVarying);

/// Average metric of a trained RL model over shared sequences (optionally on
/// a foreign cluster size, for the generalization table).
double rl_avg(const core::RLScheduler& model,
              const std::vector<std::vector<trace::Job>>& seqs,
              int processors, bool backfill, sim::Metric metric);

/// Pretty float for table cells.
std::string cell(double v);

/// Shared driver for the training-curve figures (Figs 10-13): train (or
/// load) one kernel-policy model per trace for `metric` and print the
/// per-epoch metric curves side by side.
int run_training_curves(const std::string& title, sim::Metric metric,
                        const std::vector<std::string>& traces);

/// Optimality-gap study configuration: W standalone contended windows of K
/// jobs per trace, solved exactly (node-budgeted branch-and-bound) and
/// replayed greedily under every heuristic. The node budget is chosen so
/// well-pruned windows prove optimality while pathological ones fall back
/// to the admissible bound (proved=false) — both paths stay exercised.
struct GapStudyConfig {
  std::size_t window = 8;       ///< jobs per window (K)
  std::size_t windows = 12;     ///< windows per trace (W)
  std::uint64_t max_nodes = 60000;  ///< B&B budget per window
};

/// Per-trace gap-study results: exact/bound/proved per window plus every
/// heuristic's greedy objective on the same windows. The per-window gap is
/// heuristic / exact on proved windows and heuristic / bound otherwise
/// (still an upper bound on the true gap — the bound is admissible).
struct TraceGapStudy {
  std::string trace;
  std::vector<double> exact;  ///< solver objective per window
  std::vector<double> bound;  ///< admissible root lower bound per window
  std::vector<int> proved;    ///< 1 = search exhausted, objective optimal
  std::uint64_t nodes = 0;    ///< total B&B placements across windows
  std::vector<std::string> heuristic_names;
  std::vector<std::vector<double>> heuristic;  ///< [heuristic][window]
};

/// Run the gap study on `windows` deterministic windows sampled from the
/// trace (seeded by `seed` and the trace name — identical across runs and
/// hosts for a given build).
TraceGapStudy run_gap_study(const std::string& trace_name,
                            sched::ExactObjective objective,
                            const GapStudyConfig& gap, std::uint64_t seed);

/// Metric -> exact-solver objective: Utilization maps to the window
/// makespan proxy, everything else to total bounded slowdown.
sched::ExactObjective exact_objective_for(sim::Metric metric);

/// Average metric of the exact-window policy (ExactWindowPolicy driven
/// through the live env, rearmed per sequence) over shared sequences.
double exact_avg(const std::vector<std::vector<trace::Job>>& seqs,
                 int processors, bool backfill, sim::Metric metric,
                 sched::ExactObjective objective);

/// Options for run_scheduling_table. When `json_bench` is set the table
/// gains an EXACT column and an optimality-gap summary, and `json = true`
/// switches to the machine-readable gap block alone (no RL training — the
/// CI perf job runs this mode) for scripts/perf_gate.py.
struct TableOptions {
  const char* json_bench = nullptr;  ///< JSON "bench" field; nullptr = off
  bool json = false;                 ///< emit the gap JSON block only
};

/// Shared driver for the scheduling-results tables (Tables V, VI, X, XI):
/// evaluate the five heuristics plus the RL model trained on each trace,
/// with and without backfilling, and print the paper's row layout.
int run_scheduling_table(const std::string& title, sim::Metric metric,
                         const std::vector<std::string>& traces,
                         const TableOptions& opts = {});

}  // namespace rlsched::bench
