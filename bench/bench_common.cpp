#include "bench_common.hpp"

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/env.hpp"
#include "util/table.hpp"

namespace rlsched::bench {

Scale bench_scale() {
  // Every knob goes through the validated parser: garbage falls back to
  // the default, and values destined for std::size_t are clamped
  // non-negative so they can never wrap to huge budgets.
  Scale s;
  s.epochs = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_EPOCHS", 15, 0));
  s.trajectories = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_TRAJ", 12, 1));
  s.pi_iters = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_PI_ITERS", 10, 0));
  s.minibatch = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_MINIBATCH", 512, 0));  // 0 = full batch
  s.eval_seqs = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_EVAL_SEQS", 5, 1));
  s.eval_len = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_EVAL_LEN", 512, 1));
  s.seed = static_cast<std::uint64_t>(
      util::env_long("RLSCHED_BENCH_SEED", 42, 0));
  // One parser for the runtime knobs, shared with the façade and the serve
  // daemon: RLSCHED_WORKERS / RLSCHED_BATCH resolve in RuntimeConfig.
  const core::RuntimeConfig runtime = core::RuntimeConfig::from_env();
  s.workers = runtime.workers;
  s.batch = runtime.batch;
  s.model_dir = util::env_string("RLSCHED_MODEL_DIR", "rlsched_models");
  return s;
}

namespace {
core::RLSchedulerConfig scheduler_config(sim::Metric metric,
                                         rl::PolicyKind policy, bool filter,
                                         const Scale& scale) {
  core::RLSchedulerConfig cfg;
  cfg.metric = metric;
  cfg.policy = policy;
  cfg.trajectory_filtering = filter;
  cfg.seq_len = 256;  // paper SS V-A: 256 jobs per training trajectory
  cfg.trajectories_per_epoch = scale.trajectories;
  cfg.pi_iters = scale.pi_iters;
  cfg.v_iters = scale.pi_iters;
  cfg.minibatch = scale.minibatch;
  cfg.seed = scale.seed;
  // Deliberately NOT part of the model cache key: collection and update are
  // bitwise worker-count independent, so the trained model is the same file
  // whether 1 or 16 workers produced it. The inference batch width shares
  // that property (order-stable batched reductions — see DESIGN.md), so it
  // stays out of the key too.
  cfg.runtime.workers = scale.workers;
  cfg.runtime.batch = scale.batch;
  return cfg;
}

std::string cache_key(const std::string& trace_name, sim::Metric metric,
                      rl::PolicyKind policy, bool filter, const Scale& s) {
  std::ostringstream key;
  key << trace_name << '_' << sim::metric_name(metric) << '_';
  for (const char c : rl::policy_kind_name(policy)) {
    key << (std::isalnum(static_cast<unsigned char>(c)) ? c : '-');
  }
  key << (filter ? "_filt" : "_nofilt") << "_e" << s.epochs << "_t"
      << s.trajectories << "_i" << s.pi_iters << "_m" << s.minibatch << "_s"
      << s.seed;
  return key.str();
}
}  // namespace

TrainedModel train_or_load(const std::string& trace_name, sim::Metric metric,
                           rl::PolicyKind policy, bool filter,
                           const Scale& scale) {
  auto trace = workload::make_trace(trace_name, 10000, scale.seed);
  TrainedModel out;
  out.scheduler = std::make_unique<core::RLScheduler>(
      trace, scheduler_config(metric, policy, filter, scale));

  const std::string key = cache_key(trace_name, metric, policy, filter, scale);
  const std::filesystem::path dir(scale.model_dir);
  const auto model_path = dir / (key + ".model.txt");
  const auto curve_path = dir / (key + ".curve.csv");

  if (std::filesystem::exists(model_path)) {
    out.scheduler->load(model_path.string());
    out.from_cache = true;
    std::ifstream curve(curve_path);
    double v = 0.0;
    while (curve >> v) out.curve.push_back(v);
    return out;
  }

  const auto history = out.scheduler->train(scale.epochs);
  for (const auto& e : history.epochs) out.curve.push_back(e.avg_metric);

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (!ec) {
    out.scheduler->save(model_path.string());
    std::ofstream curve(curve_path);
    curve << std::setprecision(10);
    for (const double v : out.curve) curve << v << '\n';
  }
  return out;
}

std::vector<std::vector<trace::Job>> eval_sequences(const trace::Trace& trace,
                                                    std::size_t n,
                                                    std::size_t len,
                                                    std::uint64_t seed) {
  util::Rng rng(seed ^ 0xEEA1ULL);
  std::vector<std::vector<trace::Job>> seqs;
  seqs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seqs.push_back(trace.sample_sequence(rng, len));
  }
  return seqs;
}

double heuristic_value(const std::vector<trace::Job>& seq, int processors,
                       const sim::PriorityFn& priority, bool backfill,
                       sim::Metric metric, sim::PriorityKind kind) {
  sim::EnvConfig cfg;
  cfg.backfill = backfill;
  sim::SchedulingEnv env(processors, cfg);
  env.reset(seq);
  return env.run_priority(priority, kind).value(metric);
}

double heuristic_avg(const std::vector<std::vector<trace::Job>>& seqs,
                     int processors, const sim::PriorityFn& priority,
                     bool backfill, sim::Metric metric,
                     sim::PriorityKind kind) {
  double sum = 0.0;
  for (const auto& s : seqs) {
    sum += heuristic_value(s, processors, priority, backfill, metric, kind);
  }
  return seqs.empty() ? 0.0 : sum / static_cast<double>(seqs.size());
}

double rl_avg(const core::RLScheduler& model,
              const std::vector<std::vector<trace::Job>>& seqs,
              int processors, bool backfill, sim::Metric metric) {
  // Batched inference sweep (RLSCHED_BATCH windows per policy forward);
  // runs[i] is bitwise identical to a single-sequence request of seqs[i].
  core::ScheduleRequest req;
  req.sequences = &seqs;
  req.processors = processors;
  req.backfill = backfill;
  const core::StatusOr<core::ScheduleResult> result = model.schedule(req);
  double sum = 0.0;
  for (const sim::RunResult& r : result.value().runs) {
    sum += r.value(metric);
  }
  return seqs.empty() ? 0.0 : sum / static_cast<double>(seqs.size());
}

std::string cell(double v) {
  std::ostringstream out;
  if (v >= 100.0) {
    out << std::fixed << std::setprecision(0) << v;
  } else if (v >= 1.0) {
    out << std::fixed << std::setprecision(2) << v;
  } else {
    out << std::fixed << std::setprecision(3) << v;
  }
  return out.str();
}

int run_training_curves(const std::string& title, sim::Metric metric,
                        const std::vector<std::string>& traces) {
  const auto scale = bench_scale();
  util::Table table(title + " (cells: avg " + sim::metric_name(metric) +
                    " of the epoch's sampled sequences)");
  std::vector<std::string> header = {"epoch"};
  for (const auto& t : traces) header.push_back(t);
  table.set_header(header);

  std::vector<std::vector<double>> curves;
  for (const auto& t : traces) {
    curves.push_back(
        train_or_load(t, metric, rl::PolicyKind::Kernel, false, scale).curve);
  }
  for (std::size_t e = 0; e < scale.epochs; ++e) {
    std::vector<std::string> row = {std::to_string(e)};
    for (const auto& c : curves) {
      row.push_back(e < c.size() ? cell(c[e]) : "-");
    }
    table.add_row(row);
  }
  std::cout << table << '\n';
  std::cout << "first->last epoch: ";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (!curves[i].empty()) {
      std::cout << traces[i] << " " << cell(curves[i].front()) << "->"
                << cell(curves[i].back()) << "  ";
    }
  }
  std::cout << '\n';
  return 0;
}

namespace {
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Per-window gap denominator: the proved optimum when the search
/// exhausted, the admissible lower bound otherwise (the ratio is then an
/// UPPER bound on the true gap — still a safe claim).
double gap_denominator(const TraceGapStudy& g, std::size_t w) {
  const double d = g.proved[w] ? g.exact[w] : g.bound[w];
  return d > 1e-12 ? d : 1e-12;
}

double avg_gap(const TraceGapStudy& g, std::size_t h) {
  double sum = 0.0;
  for (std::size_t w = 0; w < g.exact.size(); ++w) {
    sum += g.heuristic[h][w] / gap_denominator(g, w);
  }
  return g.exact.empty() ? 0.0 : sum / static_cast<double>(g.exact.size());
}

void print_gap_json(const char* bench, sched::ExactObjective objective,
                    const GapStudyConfig& cfg,
                    const std::vector<TraceGapStudy>& gaps) {
  // Doubles print at %.17g so the JSON round-trips bitwise into
  // scripts/perf_gate.py's within-run invariant checks.
  std::printf("{\n  \"bench\": \"%s\",\n", bench);
  std::printf("  \"objective\": \"%s\",\n",
              sched::exact_objective_name(objective));
  std::printf("  \"window\": %zu,\n  \"windows\": %zu,\n", cfg.window,
              cfg.windows);
  std::printf("  \"max_nodes\": %llu,\n",
              static_cast<unsigned long long>(cfg.max_nodes));
  std::printf("  \"traces\": {\n");
  for (std::size_t t = 0; t < gaps.size(); ++t) {
    const TraceGapStudy& g = gaps[t];
    std::printf("    \"%s\": {\n", g.trace.c_str());
    std::printf("      \"nodes\": %llu,\n",
                static_cast<unsigned long long>(g.nodes));
    const auto list = [](const std::vector<double>& v) {
      for (std::size_t i = 0; i < v.size(); ++i) {
        std::printf("%.17g%s", v[i], i + 1 < v.size() ? ", " : "");
      }
    };
    std::printf("      \"proved\": [");
    for (std::size_t i = 0; i < g.proved.size(); ++i) {
      std::printf("%d%s", g.proved[i], i + 1 < g.proved.size() ? ", " : "");
    }
    std::printf("],\n      \"exact\": [");
    list(g.exact);
    std::printf("],\n      \"bound\": [");
    list(g.bound);
    std::printf("],\n      \"heuristics\": {\n");
    for (std::size_t h = 0; h < g.heuristic_names.size(); ++h) {
      std::printf("        \"%s\": [", g.heuristic_names[h].c_str());
      list(g.heuristic[h]);
      std::printf("]%s\n", h + 1 < g.heuristic_names.size() ? "," : "");
    }
    std::printf("      }\n    }%s\n", t + 1 < gaps.size() ? "," : "");
  }
  std::printf("  }\n}\n");
}
}  // namespace

sched::ExactObjective exact_objective_for(sim::Metric metric) {
  return metric == sim::Metric::Utilization ? sched::ExactObjective::Makespan
                                            : sched::ExactObjective::
                                                  TotalBoundedSlowdown;
}

TraceGapStudy run_gap_study(const std::string& trace_name,
                            sched::ExactObjective objective,
                            const GapStudyConfig& gap, std::uint64_t seed) {
  const auto trace = workload::make_trace(trace_name, 10000, seed);
  const int procs = trace.processors();
  const auto& pool = trace.jobs();
  const auto& heuristics = sched::all_heuristics();

  sched::ExactConfig cfg;
  cfg.window = gap.window;
  cfg.max_nodes = gap.max_nodes;
  cfg.objective = objective;
  sched::ExactWindowScheduler solver(cfg);
  solver.reserve(static_cast<std::size_t>(procs));

  TraceGapStudy out;
  out.trace = trace_name;
  for (const auto& h : heuristics) {
    out.heuristic_names.push_back(h.name);
    out.heuristic.emplace_back();
  }

  // Deterministic window generator: the substream is named by the master
  // seed and the trace, independent of evaluation order.
  util::Rng rng = util::Rng::substream(seed ^ 0x9A70ULL, fnv1a(trace_name));
  for (std::size_t w = 0; w < gap.windows; ++w) {
    sched::WindowProblem p;
    p.now = 0.0;
    p.processors = procs;
    // Contended machine: a minority of processors free now, the busy rest
    // released in staircase steps over the next few hundred seconds.
    p.free = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(procs)));
    std::int32_t busy = procs - p.free;
    double t = 0.0;
    while (busy > 0) {
      t += rng.uniform(30.0, 600.0);
      const auto r = static_cast<std::int32_t>(
          1 + rng.below(static_cast<std::uint64_t>(busy)));
      p.releases.push_back({t, r});
      busy -= r;
    }
    for (std::size_t k = 0; k < gap.window; ++k) {
      trace::Job j = pool[rng.below(pool.size())];
      j.submit_time = -rng.uniform(0.0, 600.0);  // pending for a while
      j.reset_schedule_state();
      p.jobs.push_back(j);
    }

    const auto sol = solver.solve(p);
    out.exact.push_back(sol.objective);
    out.bound.push_back(sol.bound);
    out.proved.push_back(sol.proved ? 1 : 0);
    out.nodes += sol.nodes;
    for (std::size_t h = 0; h < heuristics.size(); ++h) {
      out.heuristic[h].push_back(
          solver.evaluate_greedy(p, heuristics[h].priority).objective);
    }
  }
  return out;
}

double exact_avg(const std::vector<std::vector<trace::Job>>& seqs,
                 int processors, bool backfill, sim::Metric metric,
                 sched::ExactObjective objective) {
  sim::EnvConfig cfg;
  cfg.backfill = backfill;
  sim::SchedulingEnv env(processors, cfg);
  sched::ExactConfig ecfg;
  ecfg.window = 8;
  ecfg.max_nodes = 20000;  // keeps the table affordable; unproved windows
                           // fall back to the budgeted incumbent
  ecfg.objective = objective;
  sched::ExactWindowPolicy policy(env, ecfg);
  double sum = 0.0;
  for (const auto& s : seqs) {
    env.reset(s);
    policy.rearm();  // fresh episode invalidates the plan's job indices
    sum += env.run_priority(policy.priority(), sched::ExactWindowPolicy::kKind)
               .value(metric);
  }
  return seqs.empty() ? 0.0 : sum / static_cast<double>(seqs.size());
}

int run_scheduling_table(const std::string& title, sim::Metric metric,
                         const std::vector<std::string>& traces,
                         const TableOptions& opts) {
  const auto scale = bench_scale();
  const auto heuristics = sched::all_heuristics();
  const bool with_gap = opts.json_bench != nullptr;
  const sched::ExactObjective objective = exact_objective_for(metric);
  const GapStudyConfig gap_cfg;

  std::vector<TraceGapStudy> gaps;
  if (with_gap) {
    for (const auto& t : traces) {
      gaps.push_back(run_gap_study(t, objective, gap_cfg, scale.seed));
    }
  }

  if (opts.json) {
    // Machine mode is the CI perf job's path: the gap study alone, no RL
    // training and no full-sequence evaluation.
    print_gap_json(opts.json_bench, objective, gap_cfg, gaps);
    return 0;
  }

  for (const bool backfill : {false, true}) {
    util::Table table(title + (backfill ? " - with backfilling"
                                        : " - without backfilling"));
    std::vector<std::string> header = {"Trace"};
    for (const auto& h : heuristics) header.push_back(h.name);
    if (with_gap) header.push_back("EXACT");
    header.push_back("RL");
    table.set_header(header);

    for (const auto& t : traces) {
      const auto trace = workload::make_trace(t, 10000, scale.seed);
      const auto seqs =
          eval_sequences(trace, scale.eval_seqs, scale.eval_len, scale.seed);
      std::vector<double> values;
      for (const auto& h : heuristics) {
        values.push_back(heuristic_avg(seqs, trace.processors(), h.priority,
                                       backfill, metric, h.kind));
      }
      if (with_gap) {
        values.push_back(exact_avg(seqs, trace.processors(), backfill, metric,
                                   objective));
      }
      auto model =
          train_or_load(t, metric, rl::PolicyKind::Kernel, false, scale);
      values.push_back(rl_avg(*model.scheduler, seqs, trace.processors(),
                              backfill, metric));
      std::vector<std::string> row = {t};
      for (const double v : values) row.push_back(cell(v));
      table.add_row(row);
    }
    std::cout << table << '\n';
  }
  std::cout << "protocol: " << scale.eval_seqs << " random sequences of "
            << scale.eval_len << " jobs per trace, shared across schedulers\n"
            << "(paper: 10 sequences of 1024 jobs; set RLSCHED_BENCH_EVAL_*"
               " env vars for paper scale)\n";

  if (with_gap) {
    util::Table table("Optimality gap vs exact window bound (window=" +
                      std::to_string(gap_cfg.window) + ", " +
                      std::to_string(gap_cfg.windows) +
                      " windows/trace; gap = heuristic objective / proved "
                      "optimum, / lower bound on unproved windows)");
    std::vector<std::string> header = {"Trace"};
    for (const auto& h : heuristics) header.push_back(h.name);
    header.push_back("proved");
    table.set_header(header);
    for (const auto& g : gaps) {
      std::size_t proved = 0;
      for (const int p : g.proved) proved += static_cast<std::size_t>(p);
      std::vector<std::string> row = {g.trace};
      for (std::size_t h = 0; h < g.heuristic_names.size(); ++h) {
        row.push_back(cell(avg_gap(g, h)) + "x");
      }
      row.push_back(std::to_string(proved) + "/" +
                    std::to_string(g.proved.size()));
      table.add_row(row);
    }
    std::cout << table << '\n';
    std::cout << "EXACT column above: the window planner driven through the "
                 "live env (window 8, 20k-node budget); the gap table is "
                 "solved on standalone contended windows where optimality "
                 "is provable.\n";
  }
  return 0;
}

}  // namespace rlsched::bench
