// Fig 9 reproduction: RLScheduler training on PIK-IPLEX-2009 with and
// without trajectory filtering. The paper's result: unfiltered training is
// destabilized by rare 'hard' sequences (and wastes samples on 'easy' ones);
// with the R = (median, 2*mean) filter the run converges.
#include <iostream>

#include "bench_common.hpp"
#include "rl/filter.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace rlsched;
  const auto scale = bench::bench_scale();

  auto with = bench::train_or_load("PIK-IPLEX", sim::Metric::BoundedSlowdown,
                                   rl::PolicyKind::Kernel, /*filter=*/true,
                                   scale);
  auto without = bench::train_or_load("PIK-IPLEX", sim::Metric::BoundedSlowdown,
                                      rl::PolicyKind::Kernel, /*filter=*/false,
                                      scale);

  util::Table table(
      "Fig 9: PIK-IPLEX training, with vs without trajectory filtering "
      "(avg bsld of the epoch's sampled sequences)");
  table.set_header({"epoch", "with filtering", "without filtering"});
  for (std::size_t e = 0; e < scale.epochs; ++e) {
    table.add_row({std::to_string(e),
                   e < with.curve.size() ? bench::cell(with.curve[e]) : "-",
                   e < without.curve.size() ? bench::cell(without.curve[e])
                                            : "-"});
  }
  std::cout << table;

  const auto trace = workload::make_trace("PIK-IPLEX", 10000, scale.seed);
  // Recompute with the trainer's own probe constants so the printed R is
  // exactly the range the filtered run trained with.
  const auto range = rl::compute_filter_range(
      trace, sim::Metric::BoundedSlowdown, 256, rl::kFilterProbeSamples,
      scale.seed ^ rl::kFilterSeedSalt);
  std::cout << "\nfilter range R = (" << bench::cell(range.lo) << ", "
            << bench::cell(range.hi) << "]  (paper: R = (1, 1460))\n";

  // Stability summary: epoch-to-epoch variability of each curve.
  auto spread = [](const std::vector<double>& c) {
    util::RunningStats s;
    for (const double v : c) s.add(v);
    return s.stddev();
  };
  std::cout << "curve stddev: with=" << bench::cell(spread(with.curve))
            << "  without=" << bench::cell(spread(without.curve))
            << "\n(paper: the filtered run converges; the unfiltered one "
               "oscillates and may not converge within the budget)\n";
  return 0;
}
