// Fig 11 reproduction: training curves targeting resource utilization.
// Paper result: still converges, but with more bumps — utilization has a
// narrow range, so variance is proportionally more visible.
#include "bench_common.hpp"
int main() {
  return rlsched::bench::run_training_curves(
      "Fig 11: training curves, resource utilization",
      rlsched::sim::Metric::Utilization,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"});
}
