// Collection-phase scaling benchmark for trajectory-parallel PPO rollouts.
// Times the rollout-collection phase of a training epoch at 1, 2, 4, ...
// workers (up to hardware concurrency, always including 4 so the ISSUE's
// >= 3x-at-4-workers gate is measurable on any 4+-core host) and verifies
// that every worker count produced the bitwise-identical trajectory set.
//
// Knobs: RLSCHED_BENCH_TRAJ (trajectories/epoch, default 16) and
// RLSCHED_BENCH_SEED; pi/v iterations are forced to 0 so the timing
// isolates collection. Pass worker counts as argv to override the sweep,
// e.g. `bench_rollout_scaling 1 8 16`.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "rl/ppo.hpp"
#include "util/env.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rlsched;

struct Fingerprint {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  void add(std::uint64_t v) { hash = (hash ^ v) * 1099511628211ULL; }
};

std::uint64_t float_bits(float f) {
  std::uint32_t u;
  static_assert(sizeof(u) == sizeof(f));
  __builtin_memcpy(&u, &f, sizeof(u));
  return u;
}

// Bitwise fingerprint of the epoch's merged trajectories.
std::uint64_t trajectory_fingerprint(const rl::PPOTrainer& t) {
  Fingerprint fp;
  fp.add(t.steps());
  for (std::size_t i = 0; i < t.steps(); ++i) {
    fp.add(t.actions()[i]);
    fp.add(float_bits(t.logps()[i]));
    fp.add(float_bits(t.values()[i]));
    fp.add(float_bits(t.advantages()[i]));
    fp.add(float_bits(t.observation(i).features[0]));
  }
  for (const float r : t.terminal_rewards()) fp.add(float_bits(r));
  return fp.hash;
}

}  // namespace

int main(int argc, char** argv) {
  const auto seed = static_cast<std::uint64_t>(
      util::env_long("RLSCHED_BENCH_SEED", 42, 0));
  const auto trajectories = static_cast<std::size_t>(
      util::env_long("RLSCHED_BENCH_TRAJ", 16, 1));
  constexpr std::size_t kTimedEpochs = 3;

  std::vector<std::size_t> counts;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      char* end = nullptr;
      const long w = std::strtol(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || w <= 0) {
        std::fprintf(stderr, "invalid worker count '%s' (want integers >= 1)\n",
                     argv[i]);
        return 2;
      }
      counts.push_back(static_cast<std::size_t>(w));
    }
  } else {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    for (std::size_t w = 1; w <= std::max<std::size_t>(hw, 4); w *= 2) {
      counts.push_back(w);
    }
    if (std::find(counts.begin(), counts.end(), std::size_t{4}) ==
        counts.end()) {
      counts.push_back(4);
    }
  }

  const auto trace = workload::make_trace("Lublin-1", 10000, seed);

  rl::PPOConfig cfg;
  cfg.seq_len = 256;
  cfg.trajectories_per_epoch = trajectories;
  cfg.pi_iters = 0;  // isolate the collection phase
  cfg.v_iters = 0;
  cfg.seed = seed;

  std::printf("rollout collection scaling: %zu trajectories x %zu jobs, "
              "seed %llu (host concurrency %u)\n",
              trajectories, cfg.seq_len,
              static_cast<unsigned long long>(seed),
              std::thread::hardware_concurrency());
  std::printf("%-8s  %-14s  %-9s  %s\n", "workers", "collect s/ep", "speedup",
              "trajectories");

  double base = 0.0;
  std::uint64_t base_fp = 0;
  for (const std::size_t w : counts) {
    rl::PPOConfig c = cfg;
    c.n_workers = w;
    rl::PPOTrainer trainer(trace, c);
    trainer.train_epoch();  // warmup: reserves capacity, spins up the pool
    double collect = 0.0;
    for (std::size_t e = 0; e < kTimedEpochs; ++e) {
      collect += trainer.train_epoch().collect_seconds;
    }
    collect /= static_cast<double>(kTimedEpochs);
    const std::uint64_t fp = trajectory_fingerprint(trainer);
    if (w == counts.front()) {
      base = collect;
      base_fp = fp;
    }
    std::printf("%-8zu  %-14.4f  %-9.2f  %s\n", w, collect,
                base > 0.0 ? base / collect : 0.0,
                fp == base_fp ? "bitwise-identical" : "MISMATCH");
    if (fp != base_fp) {
      std::fprintf(stderr,
                   "FATAL: %zu-worker trajectories differ from %zu-worker\n",
                   w, counts.front());
      return 1;
    }
  }
  return 0;
}
