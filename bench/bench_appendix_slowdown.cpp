// Appendix A reproduction (Fig 12 + Table X): average (unbounded) job
// slowdown — like bounded slowdown but without the 10-second interactive
// threshold, so short jobs inflate the values.
#include "bench_common.hpp"
int main() {
  using rlsched::sim::Metric;
  int rc = rlsched::bench::run_training_curves(
      "Fig 12: training curves, job slowdown", Metric::Slowdown,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"});
  rc |= rlsched::bench::run_scheduling_table(
      "Table X: scheduling towards job slowdown", Metric::Slowdown,
      {"Lublin-1", "SDSC-SP2", "HPC2N", "Lublin-2"});
  return rc;
}
