// Kernel-policy decision latency: float32 vs int8 quantized inference,
// and the data for the CI perf gate (scripts/perf_gate.py).
//
// Measures decisions/sec (and µs per decision) at batch widths B in
// {1, 32} for two paths over the SAME congested observation pool:
//
//   kernel_f32    the float batched-argmax decision (pack + logits +
//                 masked argmax), i.e. the Table IX baseline path.
//   kernel_int8   the quantized decision: u8 activation packing, VNNI /
//                 scalar int8 MACs with fused requantization, dequantized
//                 head, same masked argmax. The CI gate requires int8 to
//                 be >= 5x the float decisions/sec at B=32 on hosts whose
//                 quant backend matches the recorded baseline.
//
// Self-checks before timing (a perf number from a broken engine is
// meaningless; either violation exits nonzero):
//   * the quantized batched rows are BITWISE equal to the unbatched
//     quantized forward (batching is a throughput knob, never semantics);
//   * every quantized logit is within a per-logit error bound of the
//     float logit (8% of the fixture's logit amax, the bound gated
//     bitwise-strictly in tests/test_quant.cpp);
//   * with quantization disabled the quant entry points reproduce the
//     float path bit-for-bit;
//   * the steady-state timed loops perform ZERO heap allocation
//     (counting global operator new).
//
// Output: a human table on stderr, and with --json a machine block on
// stdout carrying quant_isa and simd_lanes so the gate can tell a real
// regression from a host without the recorded backend (VNNI is a host
// property, unlike the build-property simd_lanes). RLSCHED_BENCH_SEED
// varies the workload.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "../tests/counting_alloc.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "nn/quant.hpp"
#include "nn/simd.hpp"
#include "rl/batch_eval.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sim/env.hpp"
#include "util/env.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rlsched;

constexpr std::size_t kPool = 160;  // observations; divisible by 32
constexpr std::size_t kWidths[] = {1, 32};
constexpr double kMinSeconds = 0.2;
// Best-of-N: throughput on shared CI hosts dips under neighbor
// interference but never exceeds the machine's true capability, so the
// max over repetitions is the low-noise estimator of each path's speed.
constexpr int kRepetitions = 3;

struct ObsPool {
  std::vector<rl::Observation> obs;
  std::vector<const rl::Observation*> ptr;
};

/// Decision points sampled from a congested episode: every window is full
/// of real pending jobs, like the Table IX measurement.
ObsPool make_pool(std::uint64_t seed) {
  const auto trace = workload::make_trace("SDSC-SP2", kPool + 512, seed);
  const rl::ObservationBuilder builder;
  sim::SchedulingEnv env(trace.processors());
  env.reset(trace.sequence(0, kPool + 256));
  ObsPool pool;
  pool.obs.resize(kPool);
  pool.ptr.resize(kPool);
  for (std::size_t k = 0; k < kPool; ++k) {
    builder.build_into(env, pool.obs[k]);
    pool.ptr[k] = &pool.obs[k];
    env.step(0);
  }
  return pool;
}

template <typename F>
double decisions_per_sec(F&& sweep) {
  sweep();  // warmup: sizes every batch scratch
  const unsigned long long allocs_before = g_allocs;
  double best = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t decisions = 0;
    double elapsed = 0.0;
    do {
      sweep();
      decisions += kPool;
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    } while (elapsed < kMinSeconds);
    best = std::max(best, static_cast<double>(decisions) / elapsed);
  }
  if (g_allocs != allocs_before) {
    std::fprintf(stderr,
                 "FATAL: timed decision loop allocated %llu times after "
                 "warmup\n",
                 g_allocs - allocs_before);
    std::exit(1);
  }
  return best;
}

void self_check(rl::Policy& policy, const ObsPool& pool) {
  // Quant OFF: the quant entry points must be the float path, bitwise.
  {
    const rl::Logits f = policy.logits(pool.obs[0]);
    const rl::Logits q = policy.logits_quant(pool.obs[0]);
    if (std::memcmp(f.data(), q.data(), sizeof(f)) != 0) {
      std::fprintf(stderr, "FATAL: quant-off path differs from float\n");
      std::exit(1);
    }
  }
  if (!policy.enable_quant(pool.ptr.data(), pool.ptr.size())) {
    std::fprintf(stderr, "FATAL: enable_quant failed\n");
    std::exit(1);
  }

  // Batched quant rows == unbatched quant forward, bitwise.
  std::vector<float> slab(32 * rl::kMaxObservable);
  std::vector<std::uint32_t> actions(32);
  rl::batched_argmax_quant(policy, pool.ptr.data(), 32, slab.data(),
                           actions.data());
  for (std::size_t k = 0; k < 32; ++k) {
    const rl::Logits q = policy.logits_quant(pool.obs[k]);
    if (std::memcmp(slab.data() + k * rl::kMaxObservable, q.data(),
                    sizeof(q)) != 0) {
      std::fprintf(stderr, "FATAL: batched quant row %zu != unbatched\n", k);
      std::exit(1);
    }
  }

  // Per-logit error bound vs float (the strict per-window gates live in
  // tests/test_quant.cpp; here the bound guards against a mis-calibrated
  // fixture producing a fast-but-wrong perf number).
  float amax = 0.0f;
  for (const rl::Observation& o : pool.obs) {
    const rl::Logits f = policy.logits(o);
    for (std::size_t j = 0; j < o.count; ++j) {
      amax = std::max(amax, std::fabs(f[j]));
    }
  }
  const float tol = 0.08f * std::max(amax, 1e-3f);
  for (const rl::Observation& o : pool.obs) {
    const rl::Logits f = policy.logits(o);
    const rl::Logits q = policy.logits_quant(o);
    for (std::size_t j = 0; j < o.count; ++j) {
      if (std::fabs(q[j] - f[j]) > tol) {
        std::fprintf(stderr,
                     "FATAL: quant logit error %.4g beyond bound %.4g\n",
                     static_cast<double>(std::fabs(q[j] - f[j])),
                     static_cast<double>(tol));
        std::exit(1);
      }
    }
  }
}

struct MetricRow {
  std::string name;
  double dps[2];  // one per kWidths entry
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const auto seed = static_cast<std::uint64_t>(
      util::env_long("RLSCHED_BENCH_SEED", 42, 0));
  const ObsPool pool = make_pool(seed);

  util::Rng rng(seed ^ 0xD11C);
  const auto kernel =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, rng);
  self_check(*kernel, pool);

  std::vector<float> logits(kPool * rl::kMaxObservable);
  std::vector<std::uint32_t> actions(kPool);

  std::vector<MetricRow> rows;
  for (const bool quant : {false, true}) {
    MetricRow row;
    row.name = quant ? "kernel_int8" : "kernel_f32";
    for (std::size_t wi = 0; wi < 2; ++wi) {
      const std::size_t B = kWidths[wi];
      row.dps[wi] = decisions_per_sec([&] {
        for (std::size_t g = 0; g < kPool; g += B) {
          if (quant) {
            rl::batched_argmax_quant(*kernel, pool.ptr.data() + g, B,
                                     logits.data(), actions.data() + g);
          } else {
            rl::batched_argmax(*kernel, pool.ptr.data() + g, B,
                               logits.data(), actions.data() + g);
          }
        }
      });
    }
    rows.push_back(row);
  }

  std::fprintf(stderr,
               "decision latency: f32 vs int8 (quant isa %s, SIMD lanes "
               "%zu, pool %zu windows, seed %llu)\n",
               nn::quant_isa(), nn::kSimdLanes, kPool,
               static_cast<unsigned long long>(seed));
  std::fprintf(stderr, "%-14s %14s %14s %12s %12s\n", "path", "B=1 dec/s",
               "B=32 dec/s", "B=1 us/dec", "B=32 us/dec");
  for (const MetricRow& r : rows) {
    std::fprintf(stderr, "%-14s %14.0f %14.0f %12.3f %12.3f\n",
                 r.name.c_str(), r.dps[0], r.dps[1], 1e6 / r.dps[0],
                 1e6 / r.dps[1]);
  }
  std::fprintf(stderr, "int8 vs f32: %.2fx at B=1, %.2fx at B=32\n",
               rows[1].dps[0] / rows[0].dps[0],
               rows[1].dps[1] / rows[0].dps[1]);

  if (json) {
    std::printf("{\n  \"bench\": \"bench_decision_latency\",\n");
    std::printf("  \"simd_lanes\": %zu,\n  \"quant_isa\": \"%s\",\n",
                nn::kSimdLanes, nn::quant_isa());
    std::printf("  \"pool_windows\": %zu,\n", kPool);
    std::printf("  \"metrics\": {\n");
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::printf("    \"%s\": {\"b1\": %.1f, \"b32\": %.1f}%s\n",
                  rows[r].name.c_str(), rows[r].dps[0], rows[r].dps[1],
                  r + 1 < rows.size() ? "," : "");
    }
    std::printf("  }\n}\n");
  }
  return 0;
}
