#pragma once
// Batched greedy inference over the scheduling environment.
//
// The kernel policy scores one 128-job observation window per forward pass;
// evaluation sweeps pay full weight traffic per window. This layer packs B
// pending decision points — one per live environment — into ONE forward
// whose job axis spans B x 128 (see Policy::logits_batch), then unpacks a
// per-window masked argmax. Batching is invisible in the results: every
// logits row is bitwise identical to the unbatched forward of that window,
// so actions, schedules, and metrics match the one-env-at-a-time path
// exactly (tests/test_batched_inference.cpp gates this at B in {1,3,8,32}).
//
// The evaluator advances its environments in lockstep: each iteration
// builds observations for the still-running envs, scores them in one
// batch, steps each env with its own argmax, and drops finished envs from
// the live set. Envs and scratch slabs are pooled across evaluate() calls
// (SchedulingEnv::reconfigure), so steady-state sweeps do not allocate.

#include <cstdint>
#include <vector>

#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sim/env.hpp"
#include "trace/job.hpp"

namespace rlsched::rl {

/// One batched greedy decision: logits for `n` windows in one forward pass
/// plus per-window masked argmax. `logits_slab` is caller-owned scratch of
/// n * kMaxObservable floats; `actions[k]` receives window k's decision —
/// bitwise identical to the unbatched argmax of logits(*obs[k]).
void batched_argmax(const Policy& policy, const Observation* const* obs,
                    std::size_t n, float* logits_slab,
                    std::uint32_t* actions);

/// Same contract through the quantized forward (Policy::logits_quant_batch).
/// With quantization disabled on the policy this IS batched_argmax — the
/// float fallback makes the switch bitwise-invisible.
void batched_argmax_quant(const Policy& policy, const Observation* const* obs,
                          std::size_t n, float* logits_slab,
                          std::uint32_t* actions);

class BatchedEvaluator {
 public:
  /// `batch` = max windows per forward (clamped up from 0 to 1). The
  /// policy's batch scratch grows once to this width and is then reused.
  explicit BatchedEvaluator(const Policy& policy, std::size_t batch);

  /// Greedy-schedule every sequence in lockstep groups of at most `batch`.
  /// out[i] is bitwise identical to the unbatched greedy rollout of
  /// seqs[i] on the same cluster.
  void evaluate(const std::vector<std::vector<trace::Job>>& seqs,
                int processors, bool backfill, sim::RunResult* out);

  std::size_t batch() const { return batch_; }

  /// Route decisions through the policy's quantized forward. No-op in
  /// effect unless the policy has quantization enabled; off by default so
  /// existing sweeps are bitwise untouched.
  void set_use_quant(bool on) { use_quant_ = on; }
  bool use_quant() const { return use_quant_; }

 private:
  const Policy& policy_;
  std::size_t batch_;
  bool use_quant_ = false;
  ObservationBuilder builder_;
  std::vector<sim::SchedulingEnv> envs_;  ///< pooled across calls
  std::vector<Observation> obs_;
  std::vector<const Observation*> obs_ptr_;
  std::vector<float> logits_;
  std::vector<std::uint32_t> actions_;
  std::vector<std::uint32_t> alive_;  ///< window slot -> env index
};

}  // namespace rlsched::rl
