#pragma once
// Trajectory filtering (paper SS IV-C): score candidate training sequences
// with a fast SJF rollout and keep only those inside R = (median, 2*mean] of
// the trace's SJF-metric distribution — dropping both trivially 'easy'
// sequences (no gradient signal) and the rare pathological ones that blow
// up the variance (Fig 3/9).

#include <cstdint>
#include <vector>

#include "sim/env.hpp"
#include "trace/trace.hpp"

namespace rlsched::rl {

/// Metric of a plain SJF (no backfill) rollout of `seq` — the paper's cheap
/// difficulty probe for a candidate sequence.
double sjf_metric(const std::vector<trace::Job>& seq, int processors,
                  sim::Metric metric);

struct FilterRange {
  double lo = 0.0;  ///< exclusive (median)
  double hi = 0.0;  ///< inclusive (2 * mean)
  bool contains(double v) const { return v > lo && v <= hi; }
};

/// Probe parameters PPOTrainer uses when estimating R lazily; exported so
/// the Fig 9 bench reports exactly the range training used.
inline constexpr std::size_t kFilterProbeSamples = 50;
inline constexpr std::uint64_t kFilterSeedSalt = 0x5eedULL;

/// Estimate R from `samples` random `seq_len`-job sequences of the trace.
FilterRange compute_filter_range(const trace::Trace& trace, sim::Metric metric,
                                 std::size_t seq_len, std::size_t samples,
                                 std::uint64_t seed);

}  // namespace rlsched::rl
