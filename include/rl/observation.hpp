#pragma once
// Fixed-size observation tensor for the policy networks. The builder writes
// into a flat float array in struct-of-arrays layout (feature-major, job
// axis contiguous) so the kernel network's batched GEMV loops stream it.
// Everything is std::array — building and copying an Observation performs
// no heap allocation.

#include <array>
#include <cstdint>

#include "sim/env.hpp"

namespace rlsched::rl {

/// Window size seen by every policy (paper MAX_OBSV_SIZE). Mirrors the
/// simulator's cutoff: decision cost is flat in the backlog length.
inline constexpr std::size_t kMaxObservable = sim::kMaxObservable;

/// Per-job features, all normalized to O(1) ranges:
///   0: log1p(wait time) / 12
///   1: log1p(requested runtime) / 12
///   2: log1p(requested procs) / log1p(cluster procs)
///   3: job fits in the currently free processors (0/1)
///   4: free processor fraction of the cluster
///   5: valid-slot bias (1 for real jobs, 0 for padding)
inline constexpr std::size_t kJobFeatures = 6;

struct Observation {
  /// SoA: features[f * kMaxObservable + j] is feature f of window slot j.
  std::array<float, kJobFeatures * kMaxObservable> features;
  std::array<std::uint8_t, kMaxObservable> mask;  ///< 1 = real job
  std::uint32_t count = 0;                        ///< valid slots
};

using Logits = std::array<float, kMaxObservable>;

class ObservationBuilder {
 public:
  /// Snapshot the env's observable window. Returns by value (arrays only —
  /// no heap traffic); padding slots are zeroed and masked out.
  Observation build(const sim::SchedulingEnv& env) const;

  /// Snapshot directly into caller-owned storage (e.g. a rollout slot or a
  /// batch-packing loop) — same result as build(), one copy fewer.
  void build_into(const sim::SchedulingEnv& env, Observation& out) const;
};

}  // namespace rlsched::rl
