#pragma once
// Fixed-size observation tensor for the policy networks. The builder writes
// into a flat float array in struct-of-arrays layout (feature-major, job
// axis contiguous) so the kernel network's batched GEMV loops stream it.
// Everything is std::array — building and copying an Observation performs
// no heap allocation.

#include <array>
#include <cmath>
#include <cstdint>

#include "sim/env.hpp"

namespace rlsched::rl {

/// Window size seen by every policy (paper MAX_OBSV_SIZE). Mirrors the
/// simulator's cutoff: decision cost is flat in the backlog length.
inline constexpr std::size_t kMaxObservable = sim::kMaxObservable;

/// Per-job features, all normalized to O(1) ranges:
///   0: log1p(wait time) / 12
///   1: log1p(requested runtime) / 12
///   2: log1p(requested procs) / log1p(cluster procs)
///   3: job fits in the currently free processors (0/1)
///   4: free processor fraction of the cluster
///   5: valid-slot bias (1 for real jobs, 0 for padding)
inline constexpr std::size_t kJobFeatures = 6;

struct Observation {
  /// SoA: features[f * kMaxObservable + j] is feature f of window slot j.
  std::array<float, kJobFeatures * kMaxObservable> features;
  std::array<std::uint8_t, kMaxObservable> mask;  ///< 1 = real job
  std::uint32_t count = 0;                        ///< valid slots
};

using Logits = std::array<float, kMaxObservable>;

class ObservationBuilder {
 public:
  /// Snapshot the env's observable window. Returns by value (arrays only —
  /// no heap traffic); padding slots are zeroed and masked out. Templated
  /// over the core so the differential tests can observe the frozen
  /// ReferenceEnv through the exact same feature code.
  template <class Env>
  Observation build(const Env& env) const {
    Observation obs;
    build_into(env, obs);
    return obs;
  }

  /// Snapshot directly into caller-owned storage (e.g. a rollout slot or a
  /// batch-packing loop) — same result as build(), one copy fewer.
  template <class Env>
  void build_into(const Env& env, Observation& out) const {
    out.features.fill(0.0f);
    out.mask.fill(0);

    const auto window = env.observable();
    const auto& jobs = env.jobs();
    const double now = env.now();
    // Loop-invariant: one read for the whole window, not one per feature
    // row.
    const int free_procs = env.free_processors();
    const float free_frac = static_cast<float>(free_procs) /
                            static_cast<float>(env.processors());
    const float procs_norm =
        1.0f / std::log1p(static_cast<float>(env.processors()));

    out.count = static_cast<std::uint32_t>(window.size());
    float* f0 = out.features.data();  // wait
    float* f1 = f0 + kMaxObservable;  // requested time
    float* f2 = f1 + kMaxObservable;  // requested procs
    float* f3 = f2 + kMaxObservable;  // fits now
    float* f4 = f3 + kMaxObservable;  // free fraction
    float* f5 = f4 + kMaxObservable;  // valid bias
    for (std::size_t j = 0; j < window.size(); ++j) {
      const trace::Job& job = jobs[window[j]];
      const float wait = static_cast<float>(now - job.submit_time);
      f0[j] = std::log1p(wait > 0.0f ? wait : 0.0f) * (1.0f / 12.0f);
      f1[j] = std::log1p(static_cast<float>(job.requested_time)) *
              (1.0f / 12.0f);
      f2[j] =
          std::log1p(static_cast<float>(job.requested_procs)) * procs_norm;
      f3[j] = job.requested_procs <= free_procs ? 1.0f : 0.0f;
      f4[j] = free_frac;
      f5[j] = 1.0f;
      out.mask[j] = 1;
    }
  }
};

}  // namespace rlsched::rl
