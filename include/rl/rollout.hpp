#pragma once
// Per-trajectory rollout storage. Each trajectory of an epoch gets its own
// slot, written by whichever pool worker collected it; the trainer then
// merges slots in trajectory-index order, so the flattened epoch buffer is
// identical no matter how many workers ran or how they interleaved.
// Capacity is reserved once (a trajectory makes at most seq_len decisions);
// clear() keeps it, so steady-state collection performs no heap allocation.

#include <cstdint>
#include <vector>

#include "rl/observation.hpp"

namespace rlsched::rl {

struct RolloutBuffer {
  std::vector<Observation> obs;
  std::vector<std::uint32_t> act;
  std::vector<float> logp;
  std::vector<float> val;
  float reward = 0.0f;  ///< terminal reward (normalized per epoch later)
  double metric = 0.0;  ///< cfg.metric of the finished rollout

  void reserve(std::size_t steps) {
    obs.reserve(steps);
    act.reserve(steps);
    logp.reserve(steps);
    val.reserve(steps);
  }

  void clear() {
    obs.clear();
    act.clear();
    logp.clear();
    val.clear();
    reward = 0.0f;
    metric = 0.0;
  }

  std::size_t size() const { return act.size(); }
};

}  // namespace rlsched::rl
