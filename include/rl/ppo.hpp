#pragma once
// Proximal Policy Optimization over the scheduling environment: GAE
// advantages, clipped surrogate objective, minibatched Adam updates, and a
// separate value network. Trajectory and gradient buffers are allocated
// once at construction and reused across epochs — the steady-state training
// loop performs no heap allocation.
//
// Parallelism (n_workers > 1): the two per-epoch costs are both fanned out
// over a reusable thread pool, and both are constructed to be bitwise
// worker-count independent — the same seed produces the same trajectories,
// advantages, and updated parameters whether 1 or K workers ran:
//
//  * rollout collection — embarrassingly parallel. Each pool worker owns a
//    SchedulingEnv, a policy clone (for its activation scratch), a value-net
//    scratch, and a sequence buffer; each TRAJECTORY owns a counter-based
//    RNG substream keyed by (seed, trajectory index), and lands in its own
//    RolloutBuffer slot. The merge walks slots in index order.
//  * minibatch gradient accumulation — each minibatch is cut into fixed
//    64-sample chunks; workers accumulate into per-CHUNK gradient scratch,
//    and the reduction sums chunks in chunk order. Chunk boundaries depend
//    only on the batch, never on the worker count, so float summation order
//    is reproducible.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/ops.hpp"
#include "rl/composite.hpp"
#include "rl/filter.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "rl/rollout.hpp"
#include "sim/env.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/synthetic.hpp"

namespace rlsched::rl {

class BatchedEvaluator;

struct PPOConfig {
  sim::Metric metric = sim::Metric::BoundedSlowdown;
  PolicyKind policy = PolicyKind::Kernel;
  bool trajectory_filtering = false;
  CompositeReward composite;  ///< overrides `metric` as reward when set

  std::size_t seq_len = 256;  ///< jobs per trajectory (paper SS V-A)
  std::size_t trajectories_per_epoch = 10;
  std::size_t pi_iters = 10;
  std::size_t v_iters = 10;
  /// Transitions per update; 0 means FULL BATCH (all collected transitions
  /// in a single Adam step per iteration).
  std::size_t minibatch = 512;
  std::uint64_t seed = 42;
  bool backfill = false;  ///< backfilling during training rollouts
  /// Rollout/update threads (RLSCHED_WORKERS). Results are bitwise
  /// identical for every value; 0 is treated as 1.
  std::size_t n_workers = 1;
  /// Inference batch width B (RLSCHED_BATCH): rollout collection advances
  /// up to B trajectories in lockstep per worker and scores their windows
  /// in ONE policy forward (job axis B x 128); evaluate_batch() groups
  /// sequences the same way. Bitwise identical results for every value —
  /// like n_workers, B is a throughput knob, never a semantics knob — so
  /// it is not part of the model cache key. 0 is treated as 1.
  std::size_t batch = 8;

  float pi_lr = 3e-4f;
  float v_lr = 1e-3f;
  float clip = 0.2f;
  float gamma = 1.0f;   ///< finite episodes with terminal reward
  float lam = 0.97f;    ///< GAE lambda
  float target_kl = 0.05f;  ///< early-stop threshold per policy iteration
};

struct EpochStats {
  std::size_t epoch = 0;
  double avg_metric = 0.0;  ///< cfg.metric averaged over the epoch's rollouts
  double seconds = 0.0;
  double collect_seconds = 0.0;  ///< rollout-collection share of `seconds`
  double update_seconds = 0.0;   ///< policy+value-update share of `seconds`
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
};

class PPOTrainer {
 public:
  PPOTrainer(const trace::Trace& trace, PPOConfig cfg);
  ~PPOTrainer();

  /// Collect trajectories_per_epoch rollouts and run the PPO update.
  EpochStats train_epoch();

  /// Greedy (argmax) rollout of the current policy on an arbitrary
  /// sequence/cluster.
  sim::RunResult evaluate(const std::vector<trace::Job>& seq, int processors,
                          bool backfill) const;

  /// Greedy rollout over a streamed job source (e.g. trace::ShardedReader):
  /// the episode is pulled in `chunk_jobs` batches with O(backlog + chunk)
  /// peak memory and yields bitwise the same schedule as evaluate() on the
  /// materialized jobs. Rewinds `source` first.
  sim::RunResult evaluate_stream(trace::JobSource& source, int processors,
                                 bool backfill,
                                 std::size_t chunk_jobs = 4096) const;

  /// Batched greedy rollouts: schedules the sequences in lockstep groups
  /// of cfg.batch, scoring up to batch observation windows per policy
  /// forward. out[i] is bitwise identical to evaluate(seqs[i], ...) — the
  /// evaluation sweeps in the benches go through this path.
  std::vector<sim::RunResult> evaluate_batch(
      const std::vector<std::vector<trace::Job>>& seqs, int processors,
      bool backfill) const;

  const Policy& policy() const { return *policy_; }
  Policy& policy() { return *policy_; }
  const PPOConfig& config() const { return cfg_; }
  std::size_t worker_count() const { return pool_.workers(); }

  // Read-only views of the most recent epoch's merged buffers (determinism
  // tests and the scaling bench compare these across worker counts).
  std::size_t steps() const { return steps_; }
  const Observation& observation(std::size_t i) const { return *obs_ptr_[i]; }
  const std::vector<std::uint32_t>& actions() const { return act_buf_; }
  const std::vector<float>& logps() const { return logp_buf_; }
  const std::vector<float>& values() const { return val_buf_; }
  const std::vector<float>& advantages() const { return adv_buf_; }
  const std::vector<float>& returns() const { return ret_buf_; }
  const std::vector<float>& terminal_rewards() const { return traj_reward_; }
  const std::vector<std::size_t>& trajectory_ends() const { return traj_end_; }
  const std::vector<float>& value_params() const { return value_params_; }

  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  /// Per-worker mutable state. Policies and the value net keep activation
  /// scratch inside, so each worker gets its own instances; parameters are
  /// synced from the canonical copies before each fan-out.
  struct Worker;

  /// Minibatch chunk width for parallel gradient accumulation. Fixed (not
  /// derived from the worker count) so the reduction order — and therefore
  /// the trained parameters — never depend on how many threads ran.
  static constexpr std::size_t kGradChunk = 64;

  void collect_trajectories();
  /// Lockstep-collect the trajectories of group `g` (global indices
  /// [g*batch, g*batch + nb)): every decision step batches the live lanes'
  /// windows into one policy forward and one value forward. Per-lane RNG
  /// substreams keep the result bitwise identical for every batch width.
  void collect_group(std::size_t group, std::uint64_t round, Worker& w);
  void sync_worker_policies();
  void reset_perm();
  void compute_advantages();
  void update_policy();
  void update_value();
  double reward_of(const sim::RunResult& r) const;

  trace::Trace trace_;
  PPOConfig cfg_;
  std::size_t batch_ = 1;  ///< cfg.batch with 0 clamped to 1
  util::Rng rng_;
  ObservationBuilder builder_;

  std::unique_ptr<Policy> policy_;
  /// Lazily built on the first evaluate_batch() and reused: its env pool
  /// and batch slabs persist, so repeated sweeps stop allocating.
  mutable std::unique_ptr<BatchedEvaluator> evaluator_;
  nn::FlatMlp value_net_;
  std::vector<float> value_params_;
  nn::Adam pi_opt_, v_opt_;

  std::vector<std::unique_ptr<Worker>> workers_;
  util::ThreadPool pool_;

  // per-trajectory collection slots + merged per-epoch views
  std::vector<RolloutBuffer> slots_;
  std::vector<const Observation*> obs_ptr_;  ///< slot storage, merged order
  std::vector<std::uint32_t> act_buf_;
  std::vector<float> logp_buf_, val_buf_, adv_buf_, ret_buf_;
  std::vector<std::size_t> traj_end_;  ///< exclusive end index per rollout
  std::vector<float> traj_reward_;     ///< terminal reward per rollout
  std::size_t steps_ = 0;
  std::uint64_t collect_round_ = 0;  ///< feeds the per-trajectory substreams

  // update scratch
  std::vector<float> pi_grad_, v_grad_;
  std::vector<std::vector<float>> chunk_grad_;  ///< one slab per chunk
  std::vector<double> chunk_kl_;
  std::vector<std::uint32_t> perm_;

  FilterRange filter_range_;
  bool filter_ready_ = false;
  std::size_t epoch_ = 0;
  double epoch_metric_sum_ = 0.0;
};

}  // namespace rlsched::rl
