#pragma once
// Proximal Policy Optimization over the scheduling environment: GAE
// advantages, clipped surrogate objective, minibatched Adam updates, and a
// separate value network. Trajectory and gradient buffers are allocated
// once at construction and reused across epochs — the steady-state training
// loop performs no heap allocation.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/ops.hpp"
#include "rl/composite.hpp"
#include "rl/filter.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sim/env.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace rlsched::rl {

struct PPOConfig {
  sim::Metric metric = sim::Metric::BoundedSlowdown;
  PolicyKind policy = PolicyKind::Kernel;
  bool trajectory_filtering = false;
  CompositeReward composite;  ///< overrides `metric` as reward when set

  std::size_t seq_len = 256;  ///< jobs per trajectory (paper SS V-A)
  std::size_t trajectories_per_epoch = 10;
  std::size_t pi_iters = 10;
  std::size_t v_iters = 10;
  /// Transitions per update; 0 means FULL BATCH (all collected transitions
  /// in a single Adam step per iteration).
  std::size_t minibatch = 512;
  std::uint64_t seed = 42;
  bool backfill = false;  ///< backfilling during training rollouts

  float pi_lr = 3e-4f;
  float v_lr = 1e-3f;
  float clip = 0.2f;
  float gamma = 1.0f;   ///< finite episodes with terminal reward
  float lam = 0.97f;    ///< GAE lambda
  float target_kl = 0.05f;  ///< early-stop threshold per policy iteration
};

struct EpochStats {
  std::size_t epoch = 0;
  double avg_metric = 0.0;  ///< cfg.metric averaged over the epoch's rollouts
  double seconds = 0.0;
};

struct TrainHistory {
  std::vector<EpochStats> epochs;
};

class PPOTrainer {
 public:
  PPOTrainer(const trace::Trace& trace, PPOConfig cfg);

  /// Collect trajectories_per_epoch rollouts and run the PPO update.
  EpochStats train_epoch();

  /// Greedy (argmax) rollout of the current policy on an arbitrary
  /// sequence/cluster.
  sim::RunResult evaluate(const std::vector<trace::Job>& seq, int processors,
                          bool backfill) const;

  const Policy& policy() const { return *policy_; }
  Policy& policy() { return *policy_; }
  const PPOConfig& config() const { return cfg_; }

  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  void collect_trajectories();
  void reset_perm();
  void compute_advantages();
  void update_policy();
  void update_value();
  double reward_of(const sim::RunResult& r) const;

  trace::Trace trace_;
  PPOConfig cfg_;
  util::Rng rng_;
  sim::SchedulingEnv env_;
  ObservationBuilder builder_;

  std::unique_ptr<Policy> policy_;
  nn::FlatMlp value_net_;
  std::vector<float> value_params_;
  nn::Adam pi_opt_, v_opt_;

  // trajectory buffers, capacity trajectories_per_epoch * seq_len
  std::vector<Observation> obs_buf_;
  std::vector<std::uint32_t> act_buf_;
  std::vector<float> logp_buf_, val_buf_, adv_buf_, ret_buf_;
  std::vector<std::size_t> traj_end_;  ///< exclusive end index per rollout
  std::vector<float> traj_reward_;     ///< terminal reward per rollout
  std::size_t steps_ = 0;

  // update scratch
  std::vector<float> pi_grad_, v_grad_, probs_;
  std::vector<std::uint32_t> perm_;

  FilterRange filter_range_;
  bool filter_ready_ = false;
  std::size_t epoch_ = 0;
  double epoch_metric_sum_ = 0.0;
};

}  // namespace rlsched::rl
