#pragma once
// Policy networks: the paper's kernel-based network (a small MLP applied
// with shared weights to every observable job — per-job scoring, order
// equivariant) plus the Table IV baselines: flat MLPs v1-v3 and a
// LeNet-style convolutional head. All parameters live in one flat float
// vector; logits() and backward() never allocate after construction.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rl/observation.hpp"
#include "util/rng.hpp"

namespace rlsched::rl {

enum class PolicyKind { Kernel, MlpV1, MlpV2, MlpV3, LeNet };

std::string policy_kind_name(PolicyKind k);

class Policy {
 public:
  virtual ~Policy() = default;

  /// One logit per observable slot. Masking happens in the caller.
  virtual Logits logits(const Observation& obs) const = 0;

  /// Accumulate d(loss)/d(params) for d(loss)/d(logits) into `gparams`
  /// (length parameter_count()). Reuses the activations of the most recent
  /// logits() call — callers must pair backward() with a logits() on the
  /// same observation (the PPO update loop does).
  virtual void backward(const Observation& obs, const Logits& dlogits,
                        float* gparams) const = 0;

  /// Score `n` stacked observation windows in ONE forward pass. `out` is
  /// window-major: the logits of window k land at
  /// out[k * kMaxObservable + j]. Row k is bitwise identical to
  /// logits(*obs[k]) — batching can never change a decision. The kernel
  /// policy overrides this with a true B x 128 GEMV (job axis J spans the
  /// whole batch); the MLP baselines batch along the sample axis; the
  /// default loops logits(). Batch scratch grows to the largest n ever
  /// seen, then is reused — the steady-state loop performs no allocation.
  virtual void logits_batch(const Observation* const* obs, std::size_t n,
                            float* out) const;

  /// Prewarm batch scratch for up to `n` windows so subsequent batched
  /// calls never allocate (zero-alloc loops size everything up front; the
  /// default no-op suits policies whose fallback batched path has no batch
  /// scratch).
  virtual void reserve_batch(std::size_t n) const { (void)n; }

  /// True when backward_batch() reuses the activations of the most recent
  /// logits_batch() instead of recomputing per window. The PPO update takes
  /// its batched-chunk path only for such policies; the others keep the
  /// original per-sample pairing (no hidden extra forwards).
  virtual bool supports_batched_update() const { return false; }

  /// Accumulate gradients for the batch scored by the MOST RECENT
  /// logits_batch() on the same (obs, n). `dlogits` is window-major like
  /// logits_batch()'s output. Windows with win_active[k] == 0 (when
  /// non-null) contribute nothing — bitwise identical to skipping their
  /// backward() call, which is how the PPO update drops clip-saturated
  /// samples. Gradient reductions are order-stable per window (window
  /// order, lane-stratified within — see nn/ops.hpp), so the accumulated
  /// gradient is bitwise identical to sequential per-window backward()
  /// calls: batch size never leaks into trained parameters.
  virtual void backward_batch(const Observation* const* obs, std::size_t n,
                              const float* dlogits,
                              const std::uint8_t* win_active,
                              float* gparams) const;

  virtual PolicyKind kind() const = 0;

  // --- int8 quantized inference (see nn/quant.hpp) ---
  //
  // Quantize-on-load: enable_quant() snapshots the CURRENT parameters
  // into packed int8 weights and calibrates static activation scales from
  // the given observations; parameter updates after that point do not
  // flow into the quantized path until it is re-enabled. The float path
  // is untouched and remains the default — with quantization disabled
  // every logits_quant* call is the exact float computation, so schedules
  // are bitwise unchanged.

  /// True for policies with a native int8 path (the kernel policy).
  virtual bool supports_quant() const { return false; }

  /// Quantize current weights and calibrate activation scales from `n`
  /// representative observations (n == 0 falls back to unit scales).
  /// Returns false (and stays on float) for unsupported policies.
  virtual bool enable_quant(const Observation* const* calib, std::size_t n) {
    (void)calib;
    (void)n;
    return false;
  }
  virtual void disable_quant() {}
  virtual bool quant_enabled() const { return false; }

  /// Quantized counterparts of logits() / logits_batch(). Batched rows
  /// are bitwise identical to the unbatched quantized forward; with
  /// quantization disabled both defer to the float path exactly.
  virtual Logits logits_quant(const Observation& obs) const {
    return logits(obs);
  }
  virtual void logits_quant_batch(const Observation* const* obs,
                                  std::size_t n, float* out) const {
    logits_batch(obs, n, out);
  }

  std::size_t parameter_count() const { return params_.size(); }
  std::vector<float>& param_vector() { return params_; }
  const std::vector<float>& param_vector() const { return params_; }

 protected:
  std::vector<float> params_;
};

/// Build a policy for a `max_observable`-slot window (must not exceed
/// kMaxObservable; the bundled benches pass rl::kMaxObservable).
std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    std::size_t max_observable,
                                    util::Rng& rng);

}  // namespace rlsched::rl
