#pragma once
// Policy networks: the paper's kernel-based network (a small MLP applied
// with shared weights to every observable job — per-job scoring, order
// equivariant) plus the Table IV baselines: flat MLPs v1-v3 and a
// LeNet-style convolutional head. All parameters live in one flat float
// vector; logits() and backward() never allocate after construction.

#include <memory>
#include <string>
#include <vector>

#include "rl/observation.hpp"
#include "util/rng.hpp"

namespace rlsched::rl {

enum class PolicyKind { Kernel, MlpV1, MlpV2, MlpV3, LeNet };

std::string policy_kind_name(PolicyKind k);

class Policy {
 public:
  virtual ~Policy() = default;

  /// One logit per observable slot. Masking happens in the caller.
  virtual Logits logits(const Observation& obs) const = 0;

  /// Accumulate d(loss)/d(params) for d(loss)/d(logits) into `gparams`
  /// (length parameter_count()). Reuses the activations of the most recent
  /// logits() call — callers must pair backward() with a logits() on the
  /// same observation (the PPO update loop does).
  virtual void backward(const Observation& obs, const Logits& dlogits,
                        float* gparams) const = 0;

  virtual PolicyKind kind() const = 0;

  std::size_t parameter_count() const { return params_.size(); }
  std::vector<float>& param_vector() { return params_; }
  const std::vector<float>& param_vector() const { return params_; }

 protected:
  std::vector<float> params_;
};

/// Build a policy for a `max_observable`-slot window (must not exceed
/// kMaxObservable; the bundled benches pass rl::kMaxObservable).
std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    std::size_t max_observable,
                                    util::Rng& rng);

}  // namespace rlsched::rl
