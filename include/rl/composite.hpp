#pragma once
// Weighted multi-objective rewards (paper SS V-F): the trainer maximizes
// sum_i w_i * reward_sign(m_i) * value(m_i). Swapping the optimization goal
// is a config change, never a scheduler-code change.

#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/env.hpp"

namespace rlsched::rl {

class CompositeReward {
 public:
  CompositeReward() = default;
  CompositeReward(
      std::initializer_list<std::pair<sim::Metric, double>> terms)
      : terms_(terms) {}

  bool empty() const { return terms_.empty(); }

  double reward(const sim::RunResult& r) const {
    double sum = 0.0;
    for (const auto& [metric, weight] : terms_) {
      sum += weight * sim::reward_sign(metric) * r.value(metric);
    }
    return sum;
  }

  std::string describe() const {
    std::ostringstream out;
    bool first = true;
    for (const auto& [metric, weight] : terms_) {
      if (!first) out << " + ";
      out << weight << "*" << (sim::reward_sign(metric) > 0 ? "" : "-")
          << sim::metric_name(metric);
      first = false;
    }
    return first ? "(empty)" : out.str();
  }

 private:
  std::vector<std::pair<sim::Metric, double>> terms_;
};

}  // namespace rlsched::rl
