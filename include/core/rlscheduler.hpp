#pragma once
// Public façade: one object that owns a workload, trains the paper's PPO
// policy on it, schedules unseen sequences, and persists models.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rl/composite.hpp"
#include "rl/ppo.hpp"
#include "sim/env.hpp"
#include "trace/trace.hpp"

namespace rlsched::core {

struct RLSchedulerConfig {
  sim::Metric metric = sim::Metric::BoundedSlowdown;
  rl::PolicyKind policy = rl::PolicyKind::Kernel;
  bool trajectory_filtering = false;
  rl::CompositeReward composite;  ///< optional multi-objective reward

  std::size_t seq_len = 256;
  std::size_t trajectories_per_epoch = 10;
  std::size_t pi_iters = 10;
  std::size_t v_iters = 10;
  std::size_t minibatch = 512;  ///< 0 = full batch
  std::uint64_t seed = 42;
  /// Rollout-collection / update threads (see RLSCHED_WORKERS). Trained
  /// models are bitwise identical for every worker count; 0 acts as 1.
  std::size_t n_workers = 1;
  /// Inference batch width B (see RLSCHED_BATCH): windows per batched
  /// policy forward in rollout collection and schedule_many(). Like
  /// n_workers, bitwise irrelevant to every result — a pure throughput
  /// knob; 0 acts as 1.
  std::size_t batch = 8;
};

class RLScheduler {
 public:
  using EpochCallback = std::function<void(const rl::EpochStats&)>;

  RLScheduler(const trace::Trace& trace, RLSchedulerConfig cfg);
  ~RLScheduler();
  RLScheduler(RLScheduler&&) noexcept;
  RLScheduler& operator=(RLScheduler&&) noexcept;

  /// Train for `epochs` epochs; `on_epoch` (when set) fires after each one.
  rl::TrainHistory train(std::size_t epochs,
                         const EpochCallback& on_epoch = {});

  /// Greedy-schedule `seq` on the training cluster.
  sim::RunResult schedule(const std::vector<trace::Job>& seq,
                          bool backfill) const;

  /// Greedy-schedule on a foreign cluster size (generalization protocol).
  sim::RunResult schedule_on(const std::vector<trace::Job>& seq,
                             int processors, bool backfill) const;

  /// Greedy-schedule many sequences with batched inference: up to
  /// cfg.batch observation windows per policy forward (B x 128 job axis).
  /// out[i] is bitwise identical to schedule_on(seqs[i], ...) — the
  /// evaluation sweeps in the benches use this entry point.
  std::vector<sim::RunResult> schedule_many(
      const std::vector<std::vector<trace::Job>>& seqs, int processors,
      bool backfill) const;

  /// Greedy-schedule a streamed source (archive-scale traces that never
  /// materialize — see trace::ShardedReader) on its own cluster size.
  /// Bitwise identical to schedule_on() of the materialized jobs.
  sim::RunResult schedule_stream(trace::JobSource& source, bool backfill,
                                 std::size_t chunk_jobs = 4096) const;

  void save(const std::string& path) const;
  void load(const std::string& path);

  rl::PPOTrainer& trainer() { return *trainer_; }
  const rl::PPOTrainer& trainer() const { return *trainer_; }
  const RLSchedulerConfig& config() const { return cfg_; }

 private:
  RLSchedulerConfig cfg_;
  int processors_ = 0;
  std::unique_ptr<rl::PPOTrainer> trainer_;
};

}  // namespace rlsched::core
