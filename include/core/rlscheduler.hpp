#pragma once
// Public façade: one object that owns a workload, trains the paper's PPO
// policy on it, schedules unseen sequences, and persists models.
//
// Scheduling goes through ONE entry point — schedule(const
// ScheduleRequest&) — whose request struct names the job source
// (materialized sequence, batch of sequences, or a streamed
// trace::JobSource), the cluster size, backfilling, and the streaming
// chunk; errors come back as core::Status instead of ad-hoc exceptions.
// The pre-redesign overload set (schedule/schedule_on/schedule_many/
// schedule_stream) survives as deprecated inline shims over the same
// entry point with BITWISE-identical results (tests/test_api_facade.cpp
// gates this across the equivalence matrix); see README "Migrating off
// the façade overloads".

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/status.hpp"
#include "rl/composite.hpp"
#include "rl/ppo.hpp"
#include "sim/env.hpp"
#include "trace/trace.hpp"

namespace rlsched::core {

struct RLSchedulerConfig {
  sim::Metric metric = sim::Metric::BoundedSlowdown;
  rl::PolicyKind policy = rl::PolicyKind::Kernel;
  bool trajectory_filtering = false;
  rl::CompositeReward composite;  ///< optional multi-objective reward

  std::size_t seq_len = 256;
  std::size_t trajectories_per_epoch = 10;
  std::size_t pi_iters = 10;
  std::size_t v_iters = 10;
  std::size_t minibatch = 512;  ///< 0 = full batch
  std::uint64_t seed = 42;
  /// Worker threads and inference batch width B. Zero fields defer to the
  /// environment (RLSCHED_WORKERS / RLSCHED_BATCH) and then the built-in
  /// defaults — the precedence chain lives in RuntimeConfig::resolved(),
  /// shared with the serve:: daemon. Both knobs are bitwise-irrelevant to
  /// every result (pure throughput), so they stay out of model cache keys.
  RuntimeConfig runtime;
};

class RLScheduler {
 public:
  using EpochCallback = std::function<void(const rl::EpochStats&)>;

  RLScheduler(const trace::Trace& trace, RLSchedulerConfig cfg);
  ~RLScheduler();
  RLScheduler(RLScheduler&&) noexcept;
  RLScheduler& operator=(RLScheduler&&) noexcept;

  /// Train for `epochs` epochs; `on_epoch` (when set) fires after each one.
  rl::TrainHistory train(std::size_t epochs,
                         const EpochCallback& on_epoch = {});

  /// Greedy-schedule the request's job source with the current policy.
  /// request.processors == 0 means the training cluster for materialized
  /// sources and the stream's own recorded cluster for streamed ones.
  /// Sequence batches sweep with batched inference (runtime.batch windows
  /// per policy forward) — runs[i] is bitwise identical to a single-sequence
  /// request of sequences[i]. Malformed requests and engine rejections
  /// (e.g. out-of-order streamed submits) come back as a non-OK Status.
  StatusOr<ScheduleResult> schedule(const ScheduleRequest& request) const;

  // --- deprecated façade overloads -------------------------------------
  // Thin shims over schedule(const ScheduleRequest&): same engine calls,
  // bitwise-identical results. They keep the historical throwing contract
  // by rethrowing a non-OK Status as std::runtime_error.

  [[deprecated("build a core::ScheduleRequest{.jobs=&seq} instead")]]
  sim::RunResult schedule(const std::vector<trace::Job>& seq,
                          bool backfill) const {
    ScheduleRequest req;
    req.jobs = &seq;
    req.backfill = backfill;
    return take_single(schedule(req));
  }

  [[deprecated("build a core::ScheduleRequest with .processors instead")]]
  sim::RunResult schedule_on(const std::vector<trace::Job>& seq,
                             int processors, bool backfill) const {
    ScheduleRequest req;
    req.jobs = &seq;
    req.processors = processors;
    req.backfill = backfill;
    return take_single(schedule(req));
  }

  [[deprecated("build a core::ScheduleRequest{.sequences=&seqs} instead")]]
  std::vector<sim::RunResult> schedule_many(
      const std::vector<std::vector<trace::Job>>& seqs, int processors,
      bool backfill) const {
    ScheduleRequest req;
    req.sequences = &seqs;
    req.processors = processors;
    req.backfill = backfill;
    return std::move(take(schedule(req)).runs);
  }

  [[deprecated("build a core::ScheduleRequest{.stream=&source} instead")]]
  sim::RunResult schedule_stream(trace::JobSource& source, bool backfill,
                                 std::size_t chunk_jobs = 4096) const {
    ScheduleRequest req;
    req.stream = &source;
    req.backfill = backfill;
    req.chunk_jobs = chunk_jobs;
    return take_single(schedule(req));
  }

  void save(const std::string& path) const;
  void load(const std::string& path);

  rl::PPOTrainer& trainer() { return *trainer_; }
  const rl::PPOTrainer& trainer() const { return *trainer_; }
  const RLSchedulerConfig& config() const { return cfg_; }

 private:
  static ScheduleResult take(StatusOr<ScheduleResult>&& r) {
    if (!r.ok()) throw std::runtime_error(r.status().to_string());
    return std::move(r).value();
  }
  static sim::RunResult take_single(StatusOr<ScheduleResult>&& r) {
    return take(std::move(r)).runs.front();
  }

  RLSchedulerConfig cfg_;
  int processors_ = 0;
  std::unique_ptr<rl::PPOTrainer> trainer_;
};

}  // namespace rlsched::core
