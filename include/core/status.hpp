#pragma once
// Status-based error model for the public API (core::RLScheduler's request
// entry point and the serve:: daemon speak the same vocabulary). The old
// façade overloads reported every failure as an ad-hoc std::runtime_error
// thrown from arbitrary depth; the redesigned entry points return a Status
// (or StatusOr<T>) instead, so in-process callers and the daemon's wire
// protocol share one enumerable error surface. The deprecated shims keep
// the throwing contract by converting a non-OK Status back into
// std::runtime_error.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace rlsched::core {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     ///< malformed request (bad source combination, ...)
  kNotFound,            ///< unknown session / policy / request id
  kFailedPrecondition,  ///< valid request in the wrong state (no dispatcher)
  kResourceExhausted,   ///< session table full
  kUnavailable,         ///< result not ready yet — poll again
  kCancelled,           ///< session destroyed while the request was queued
  kInternal,            ///< engine invariant violation (bug, not bad input)
  kDeadlineExceeded,    ///< request deadline expired before completion
  kAborted,             ///< gave up after retries (client-side terminal)
};

/// Largest defined StatusCode — the wire decoder's bounds check. Update in
/// lockstep when a new enumerator is appended.
inline constexpr StatusCode kMaxStatusCode = StatusCode::kAborted;

const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() = default;  ///< OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK Status — never both, never neither.
/// value() on an error aborts with the status text (same fatal-check
/// discipline as the tier-1 test macros); check ok() first on fallible
/// paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    if (status_.ok()) {
      std::fprintf(stderr,
                   "rlsched: StatusOr constructed from OK status without a "
                   "value\n");
      std::abort();
    }
  }
  StatusOr(T value)  // NOLINT(implicit)
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return checked(); }
  const T& value() const& { return const_cast<StatusOr*>(this)->checked(); }
  T&& value() && { return std::move(checked()); }

  T* operator->() { return &checked(); }
  const T* operator->() const { return &const_cast<StatusOr*>(this)->checked(); }

 private:
  T& checked() {
    if (!value_.has_value()) {
      std::fprintf(stderr, "rlsched: StatusOr::value() on error status %s\n",
                   status_.to_string().c_str());
      std::abort();
    }
    return *value_;
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace rlsched::core
