#pragma once
// The redesigned request/response contract of the public API. One request
// struct replaces the façade's four positional-argument overloads
// (schedule / schedule_on / schedule_many / schedule_stream), and the same
// structs are the wire contract of the serve:: daemon — an in-process call
// and a daemon request describe work identically.
//
// A ScheduleRequest names exactly ONE job source:
//   * jobs       — one materialized sequence (old schedule/schedule_on)
//   * sequences  — a batch of sequences swept with batched inference
//                  (old schedule_many)
//   * stream     — a trace::JobSource pulled in chunk_jobs batches with
//                  O(backlog + chunk) memory (old schedule_stream)
// plus the knobs the overloads used to take positionally: processors
// (0 = caller default: the training cluster in-process, the session's
// cluster in the daemon, the stream's own recorded cluster for streams)
// and backfill. Results come back as a ScheduleResult (one RunResult per
// scheduled sequence) behind a Status instead of an ad-hoc exception.

#include <cstddef>
#include <vector>

#include "core/status.hpp"
#include "sim/env.hpp"
#include "trace/job.hpp"
#include "trace/job_source.hpp"

namespace rlsched::core {

struct ScheduleRequest {
  // Exactly one of the three sources must be non-null. The pointed-to data
  // is borrowed for the duration of the call; the daemon's submit() copies
  // jobs/sequences into its queue (streams stay borrowed — keep the source
  // alive until the request completes).
  const std::vector<trace::Job>* jobs = nullptr;
  const std::vector<std::vector<trace::Job>>* sequences = nullptr;
  trace::JobSource* stream = nullptr;

  /// Cluster size to schedule on; 0 = the caller's default (see above).
  int processors = 0;
  /// EASY backfilling around the selected head job.
  bool backfill = false;
  /// Streamed ingestion chunk (stream source only).
  std::size_t chunk_jobs = 4096;
  /// Optional completion deadline, in seconds relative to submission;
  /// 0 = no deadline. An expired request completes with kDeadlineExceeded
  /// instead of a result: rejected at admission if it expired while queued,
  /// abandoned between inference steps if it expires mid-dispatch.
  double deadline_seconds = 0.0;
};

struct ScheduleResult {
  /// One entry per scheduled sequence, in request order. Single-source
  /// requests (jobs / stream) produce exactly one entry.
  std::vector<sim::RunResult> runs;

  const sim::RunResult& run() const { return runs.front(); }
};

/// Shape-validate a request (source combination, chunk size, processors
/// sign). Shared by the in-process entry point and the daemon so both
/// reject malformed requests identically.
Status validate(const ScheduleRequest& request);

/// The process-wide runtime knobs (rollout/update worker threads and the
/// inference batch width B), with the precedence chain
///
///     explicit config  >  environment  >  built-in default
///
/// defined HERE and nowhere else. A zero field means "unset — defer to the
/// environment"; from_env() reads RLSCHED_WORKERS / RLSCHED_BATCH through
/// the validated parsers (garbage/0/negative rejected, workers clamped to
/// hardware concurrency, batch clamped to util::kMaxBatchWindows) and falls
/// back to the built-in defaults. Both knobs are bitwise-irrelevant to
/// every result — they only move throughput — so resolution never needs to
/// be part of a model cache key.
struct RuntimeConfig {
  static constexpr std::size_t kDefaultWorkers = 1;
  static constexpr std::size_t kDefaultBatch = 8;

  std::size_t workers = 0;  ///< 0 = unset (environment, then default)
  std::size_t batch = 0;    ///< 0 = unset (environment, then default)

  /// Environment layer: concrete values (never 0) from RLSCHED_WORKERS /
  /// RLSCHED_BATCH where set and valid, built-in defaults otherwise.
  static RuntimeConfig from_env();

  /// Collapse the precedence chain: explicit fields of *this win, unset
  /// (zero) fields take the environment/default value. The returned config
  /// has no zero fields.
  RuntimeConfig resolved() const;
};

}  // namespace rlsched::core
