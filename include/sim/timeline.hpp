#pragma once
// Incremental completion timeline — the running set of the simulator kept
// permanently ordered by completion time, with a cached free-capacity
// prefix, so an EASY reservation is an O(log R) lookup instead of the
// seed's copy-whole-heap-and-sort per backfill pass.
//
// Representation: a slab vector sorted by end time. Completions are
// consumed from the front as simulation time advances (`head_` marks the
// live region; the dead prefix is recycled by amortized compaction, the
// same discipline as SchedulingEnv::maybe_compact()). A job start is a
// binary-search insert — O(live) memmove worst case, but the live size R
// is bounded by the PROCESSOR count (every running job holds >= 1 proc),
// never by the backlog, so this is small and cache-linear where the heap
// it replaces was O(log R) with pointer-chasing pops.
//
// The prefix cache `prefix_[i]` holds the cumulative processor count of
// slab entries [0, i] measured from the slab origin, so popping the front
// invalidates NOTHING (popped procs are tracked in `popped_`); only an
// insert (job start) or a compaction invalidates, and only from the insert
// position on (`valid_` watermark). reservation() repairs the prefix
// lazily and then answers by binary search: O(log R) plus O(positions
// repaired), exactly the "O(log R) lookup plus O(positions advanced)"
// contract.
//
// Determinism: reservation() accumulates equal-end-time completions as one
// GROUP before testing the capacity crossing — order-free semantics shared
// bitwise with ReferenceEnv::reservation() (see reference_env.hpp).
//
// Allocation contract: reset(expected) reserves for `expected` inserts;
// a materialized episode performs zero heap allocation afterwards (the
// slab length never exceeds the number of inserts). Streaming episodes may
// grow the slab amortized, matching the env's streaming contract.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rlsched::sim {

class Timeline {
 public:
  struct Completion {
    double end;
    std::int32_t procs;
  };

  /// Drop all completions and reserve capacity for `expected` inserts.
  /// Capacity is retained across resets (warm envs stop allocating).
  void reset(std::size_t expected);

  bool empty() const { return head_ == items_.size(); }
  std::size_t size() const { return items_.size() - head_; }

  /// Earliest pending completion time. Precondition: !empty().
  double next_end() const { return items_[head_].end; }

  /// Record a started job completing at `end` and releasing `procs`.
  void insert(double end, std::int32_t procs);

  /// Retire every completion with end <= t; returns the processors freed.
  int pop_until(double t);

  /// Earliest completion time at which `free_now` plus retired processors
  /// reaches `needed`, with *spare = (total free at that time) - needed,
  /// equal-end completions accumulated as one group. Falls back to `now`
  /// (spare = max(0, total - needed)) if capacity never reaches `needed` —
  /// unreachable when requests are clamped to the machine size, kept for
  /// bitwise parity with the reference core.
  double reservation(int free_now, int needed, double now, int* spare);

  /// The live running set, sorted by end time (length == size(), bounded by
  /// the processor count). Read-only snapshot for window extraction — the
  /// exact solver builds its free-capacity staircase from it. Valid until
  /// the next insert/pop/reset.
  std::span<const Completion> live() const {
    return {items_.data() + head_, items_.size() - head_};
  }

 private:
  void maybe_compact();
  /// Extend the prefix cache through index `i` (slab coordinates).
  void repair_to(std::size_t i);

  std::vector<Completion> items_;     ///< [head_, size) live, sorted by end
  std::vector<std::int64_t> prefix_;  ///< cumulative procs from slab origin
  std::size_t head_ = 0;              ///< first live slab index
  std::size_t valid_ = 0;             ///< prefix_ valid for [0, valid_)
  std::int64_t popped_ = 0;           ///< total procs of retired entries
};

}  // namespace rlsched::sim
