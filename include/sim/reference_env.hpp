#pragma once
// The FROZEN naive scheduling core — the seed implementation kept verbatim
// (O(backlog) pending-queue scans and erases, O(R log R) copy-and-sort
// reservations) so the indexed core in sim/env.hpp can be differentially
// gated against it forever:
//
//  * tests/test_sched_core_equiv.cpp asserts bitwise-identical RunResults
//    and per-job start times between SchedulingEnv and ReferenceEnv across
//    fuzzed traces, every heuristic, the kernel policy, backfill on/off,
//    materialized and streamed ingestion;
//  * bench/bench_sched_scaling.cpp measures the >= 10x decisions/sec
//    speedup the indexed core must deliver over this one on a 64k-job
//    storm backlog (gated in CI by scripts/perf_gate.py).
//
// Do NOT optimize this class. Its only job is to be obviously correct and
// stay byte-for-byte equivalent in behavior to the documented semantics.
// The one deliberate delta from the original seed code (mirrored in the
// indexed core): reservation() accumulates completions in equal-end-time
// GROUPS before testing the capacity crossing, so the spare-processor
// count no longer depends on std::sort's unstable permutation of tied
// completion times — the semantics had to become order-free before an
// incremental structure could reproduce them bitwise.
//
// Shares Metric/RunResult/EnvConfig/PriorityFn/bounded_slowdown with
// sim/env.hpp — one definition each, so the two cores cannot drift on the
// metric formulas themselves.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/env.hpp"
#include "trace/job_source.hpp"

namespace rlsched::sim {

class ReferenceEnv {
 public:
  explicit ReferenceEnv(int processors, EnvConfig cfg = {});

  void reconfigure(int processors, EnvConfig cfg) {
    processors_ = processors;
    free_ = processors;
    cfg_ = cfg;
    if (cfg_.max_observable == 0 || cfg_.max_observable > kMaxObservable) {
      cfg_.max_observable = kMaxObservable;
    }
  }

  void reset(const std::vector<trace::Job>& jobs);
  void reset(std::vector<trace::Job>&& jobs);
  void reset(trace::JobSource& source, std::size_t chunk_jobs = 4096);

  using StartHook = void (*)(void* ctx, const trace::Job& job);
  void set_start_hook(StartHook hook, void* ctx) {
    start_hook_ = hook;
    start_hook_ctx_ = ctx;
  }

  bool step(std::size_t action);

  /// `kind` is accepted for signature parity with SchedulingEnv and
  /// ignored: the reference always does the O(backlog) min-scan, which IS
  /// the semantics the indexed key path must reproduce.
  RunResult run_priority(const PriorityFn& priority,
                         PriorityKind kind = PriorityKind::TimeVarying);

  std::span<const std::uint32_t> observable() const;

  const std::vector<trace::Job>& jobs() const { return jobs_; }
  double now() const { return now_; }
  int processors() const { return processors_; }
  int free_processors() const { return free_; }
  bool done() const { return drained_ && started_ == total_jobs_; }
  std::size_t total_jobs() const { return total_jobs_; }
  std::size_t buffered_jobs() const { return jobs_.size(); }

  RunResult result() const;

 private:
  struct Completion {
    double end;
    std::int32_t procs;
  };
  struct CompletionLater {
    bool operator()(const Completion& a, const Completion& b) const {
      return a.end > b.end;
    }
  };

  void prepare();
  void begin_episode();
  bool refill();
  void maybe_compact();
  void compact();
  void arrive_until_now();
  void advance_one_event();
  void ensure_pending();
  void start_job(std::uint32_t idx);
  void start_with_wait(std::uint32_t idx);
  void try_backfill(const trace::Job& head);
  double reservation(int needed, int* spare);

  int processors_;
  EnvConfig cfg_;

  std::vector<trace::Job> jobs_;
  std::vector<std::uint32_t> pending_;
  std::vector<Completion> running_;
  std::vector<Completion> shadow_;
  std::vector<int> user_ids_;
  std::vector<double> user_bsld_sum_;
  std::vector<std::uint32_t> user_count_;

  double now_ = 0.0;
  int free_ = 0;
  std::size_t next_arrival_ = 0;
  std::size_t started_ = 0;

  trace::JobSource* source_ = nullptr;
  std::size_t chunk_jobs_ = 0;
  bool drained_ = true;
  std::size_t total_jobs_ = 0;
  double last_ingested_submit_ = 0.0;
  std::size_t dead_in_buffer_ = 0;
  std::vector<std::uint32_t> remap_;

  StartHook start_hook_ = nullptr;
  void* start_hook_ctx_ = nullptr;

  double sum_bsld_ = 0.0, sum_sld_ = 0.0, sum_wait_ = 0.0, sum_turn_ = 0.0;
  double busy_area_ = 0.0;
  double min_submit_ = 0.0, max_end_ = 0.0;
};

}  // namespace rlsched::sim
