#pragma once
// Event-driven scheduling simulator — the hot core of the system.
//
// Design for throughput at ARCHIVE-SCALE backlogs (the Table IX decision
// cost gate, now flat from 1k to 64k pending jobs — bench_sched_scaling):
//  * the running set is an incrementally ordered completion TIMELINE with
//    a cached free-capacity prefix (sim/timeline.hpp): an EASY reservation
//    is an O(log R) lookup invalidated only by job start/completion,
//    instead of the seed's copy-the-heap-and-sort per backfill pass;
//  * the pending queue is an order-stable INDEXED tombstone structure
//    (sim/pending_index.hpp): a Fenwick tree over queue positions keeps
//    the observable window dense in O(log P), a (min procs, min requested
//    time) segment tree answers "first job in queue order that fits
//    free/spare/window" for EASY backfill without rescanning the backlog,
//    and a min-key segment tree gives time-invariant heuristics an
//    O(log P) argmin — no mid-vector erases anywhere on the hot path;
//  * a free-processor counter instead of a bitmap — starting/finishing a
//    job is O(1) bookkeeping plus the index updates;
//  * the observable window handed to policies is a zero-copy span of at
//    most max_observable job ids, maintained incrementally;
//  * all metric accounting (bounded slowdown, utilization, wait, fairness)
//    is incremental at job start — results are O(users) to read, not O(n);
//  * every schedule, metric, and trained parameter is BITWISE IDENTICAL
//    to the retained naive core (sim/reference_env.hpp): the indexes
//    reorganize the search, never the comparisons — enforced forever by
//    tests/test_sched_core_equiv.cpp (same determinism discipline as
//    RLSCHED_WORKERS/RLSCHED_BATCH);
//  * ingestion is pluggable: reset() with a materialized vector keeps the
//    zero-allocation contract below; reset() with a trace::JobSource
//    streams the episode in chunks with O(backlog + chunk) peak memory and
//    a schedule bitwise identical to the materialized run (amortized
//    allocation is accepted there — buffers grow/compact with the
//    backlog, never with the trace);
//  * after reset() every container stays within reserved capacity: the
//    step()/run_priority() loop performs ZERO heap allocation (enforced by
//    tests/test_zero_alloc.cpp with a counting global operator new), and
//    reset() itself reuses capacity across same-length episodes, so a
//    long-lived env re-reset per episode stops allocating after warmup.
//
// Threading contract: a SchedulingEnv is NOT internally synchronized —
// every method (including the const ones, which read mutable-free state)
// must be called from one thread at a time. Parallel rollout collection
// therefore gives each pool worker its OWN env instance; distinct envs
// share nothing and may run fully concurrently.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/pending_index.hpp"
#include "sim/timeline.hpp"
#include "trace/job_source.hpp"
#include "trace/trace.hpp"

namespace rlsched::sim {

/// Policies never see more than this many pending jobs (paper MAX_OBSV_SIZE):
/// decision cost stays flat as the backlog grows.
inline constexpr std::size_t kMaxObservable = 128;

enum class Metric {
  BoundedSlowdown,
  Slowdown,
  WaitTime,
  Turnaround,
  Utilization,
  FairBoundedSlowdown,  ///< max over users of their avg bounded slowdown
};

std::string metric_name(Metric m);

/// +1 when larger is better (Utilization), -1 otherwise. Rewards are
/// reward_sign(m) * value(m).
int reward_sign(Metric m);

/// The paper's interactive threshold for bounded slowdown (seconds).
inline constexpr double kBoundedSlowdownThreshold = 10.0;

/// Per-job bounded slowdown — the same formula the simulator's incremental
/// accumulators use, exported so streaming consumers (start-hook percentile
/// estimators in the benches/examples) cannot drift from it.
inline double bounded_slowdown(double wait, double run) {
  const double run_floor =
      run > kBoundedSlowdownThreshold ? run : kBoundedSlowdownThreshold;
  const double s = (wait + run) / run_floor;
  return s > 1.0 ? s : 1.0;
}

/// Priority score for heuristic scheduling: LOWER runs first.
using PriorityFn = std::function<double(const trace::Job&, double now)>;

/// How a priority function depends on the decision clock.
///
/// TimeInvariant promises priority(job, t1) == priority(job, t2) bitwise
/// for all t (FCFS/SJF/F1 qualify: they read only immutable job fields).
/// run_priority() then serves each decision from an incrementally
/// maintained min-key index in O(log P) instead of an O(P) scan — with a
/// schedule guaranteed identical to the scan (same doubles, leftmost on
/// ties). TimeVarying (the safe default) keeps the scan: wait-time scores
/// like WFP3/UNICEP reorder as the clock moves, so no static index can
/// serve them without changing tie-rounding behavior. Scores should be
/// finite: +/-inf TimeInvariant scores fall back to the scan for the
/// affected decisions (correct, just unindexed), and NaN scores are
/// unsupported in either kind (the scan's strict-< makes NaN ordering
/// position-dependent).
enum class PriorityKind {
  TimeVarying,
  TimeInvariant,
};

struct RunResult {
  std::size_t jobs = 0;
  double avg_bounded_slowdown = 0.0;
  double avg_slowdown = 0.0;
  double avg_wait = 0.0;
  double avg_turnaround = 0.0;
  double utilization = 0.0;
  double makespan = 0.0;
  double max_user_bounded_slowdown = 0.0;

  double value(Metric m) const;
};

/// Field-by-field bitwise equality (memcmp on the doubles, so -0.0 != 0.0
/// and identical NaNs compare equal). This is the comparator behind the
/// streamed-vs-materialized and indexed-vs-reference equivalence gates in
/// the tests and benches: one definition, so the gates cannot check
/// different field sets as RunResult evolves.
bool bitwise_equal(const RunResult& a, const RunResult& b);

/// Per-user average bounded slowdown of an already-scheduled job set,
/// sorted by user id. (Analysis helper; not on the hot path.)
std::vector<std::pair<int, double>> per_user_bounded_slowdown(
    const std::vector<trace::Job>& jobs);

struct EnvConfig {
  bool backfill = false;  ///< EASY backfilling around the selected head job
  std::size_t max_observable = kMaxObservable;
};

class SchedulingEnv {
 public:
  explicit SchedulingEnv(int processors, EnvConfig cfg = {});

  /// Swap in a new cluster size / config before the next reset(). Lets the
  /// batched evaluator pool env instances across evaluate() calls that
  /// target different cluster sizes instead of reconstructing them (all
  /// reserved capacity survives). Only valid between episodes — state from
  /// a running episode is discarded by the next reset() anyway.
  void reconfigure(int processors, EnvConfig cfg) {
    processors_ = processors;
    free_ = processors;
    cfg_ = cfg;
    if (cfg_.max_observable == 0 || cfg_.max_observable > kMaxObservable) {
      cfg_.max_observable = kMaxObservable;
    }
  }

  /// Load a job sequence and advance to the first arrival. Allocation
  /// happens here (and only here): every container reserves for the whole
  /// episode.
  void reset(const std::vector<trace::Job>& jobs);
  void reset(std::vector<trace::Job>&& jobs);

  /// Streamed episode: rewind `source` and pull jobs from it in
  /// `chunk_jobs` batches as simulation time reaches them, instead of
  /// requiring the whole trace up front. Started jobs are recycled out of
  /// the live buffer (amortized O(1) compaction), so peak memory is
  /// O(backlog + chunk) — independent of trace length. The schedule and
  /// every metric are bitwise identical to a materialized reset() of the
  /// same (submit-sorted) jobs; the source must deliver nondecreasing
  /// submit times or this throws std::runtime_error. `source` must outlive
  /// the episode. Note: jobs() only exposes the live buffer in this mode —
  /// use set_start_hook() for per-job schedule records.
  void reset(trace::JobSource& source, std::size_t chunk_jobs = 4096);

  /// Observer fired at every job start, after its schedule state and the
  /// incremental metrics are written. Plain function pointer: zero cost
  /// when unset, no allocation when set. Survives reset(). Streaming
  /// consumers use it to see per-job records the env no longer retains.
  using StartHook = void (*)(void* ctx, const trace::Job& job);
  void set_start_hook(StartHook hook, void* ctx) {
    start_hook_ = hook;
    start_hook_ctx_ = ctx;
  }

  /// One scheduling decision: start the `action`-th job of the observable
  /// window (waiting for processors if needed, EASY-backfilling others
  /// meanwhile when enabled), then advance until another decision is due.
  /// Returns true when every job has been started.
  bool step(std::size_t action);

  /// Run the whole episode under a priority heuristic (min-score first).
  /// Pass PriorityKind::TimeInvariant when `priority` ignores `now`
  /// (sched::Heuristic::kind says so per baseline) to serve decisions from
  /// the O(log P) min-key index; the default keeps the reference-identical
  /// O(P) scan.
  RunResult run_priority(const PriorityFn& priority,
                         PriorityKind kind = PriorityKind::TimeVarying);

  /// Pending jobs visible to a policy: indices into jobs(), arrival order,
  /// at most max_observable of them. Valid until the next step.
  std::span<const std::uint32_t> observable() const {
    return pending_.window();
  }

  const std::vector<trace::Job>& jobs() const { return jobs_; }
  double now() const { return now_; }
  int processors() const { return processors_; }
  int free_processors() const { return free_; }
  bool done() const { return drained_ && started_ == total_jobs_; }
  /// Jobs ingested so far (== jobs().size() for materialized episodes).
  std::size_t total_jobs() const { return total_jobs_; }
  /// Live-buffer length — the streaming-mode memory gauge the RSS bench
  /// tracks; equals the full episode length when materialized.
  std::size_t buffered_jobs() const { return jobs_.size(); }

  /// Read-only view of the pending-queue index, for the descent
  /// instrumentation (bench_sched_scaling's node-visit assertions). The
  /// stats accessors are the only intended use.
  const PendingIndex& pending_index() const { return pending_; }

  /// Read-only view of the running-set timeline. The exact bounded-window
  /// policy (sched/exact.hpp) snapshots live() to build the free-capacity
  /// staircase of its window subproblem. Valid until the next step.
  const Timeline& timeline() const { return timeline_; }

  /// Metrics of the (possibly partial) schedule so far.
  RunResult result() const;

 private:
  void prepare();                 ///< sort, clamp, reserve, advance to t0
  void begin_episode();           ///< zero counters/accumulators/queues
  bool refill();                  ///< pull one chunk; false when drained
  void maybe_compact();           ///< recycle started jobs (streaming only)
  void compact();
  void enqueue(std::uint32_t idx);
  void arrive_until_now();
  void advance_one_event();       ///< jump to next completion/arrival
  void ensure_pending();          ///< advance until a decision is possible
  void start_job(std::uint32_t idx);
  void start_with_wait(std::uint32_t idx);
  void try_backfill(const trace::Job& head);

  int processors_;
  EnvConfig cfg_;

  std::vector<trace::Job> jobs_;
  PendingIndex pending_;  ///< indexed pending queue, arrival order
  Timeline timeline_;     ///< running set ordered by completion time
  std::vector<int> user_ids_;              ///< sorted distinct users
  std::vector<double> user_bsld_sum_;
  std::vector<std::uint32_t> user_count_;

  double now_ = 0.0;
  int free_ = 0;
  std::size_t next_arrival_ = 0;
  std::size_t started_ = 0;

  // streaming state (source_ == nullptr => materialized episode)
  trace::JobSource* source_ = nullptr;
  std::size_t chunk_jobs_ = 0;
  bool drained_ = true;            ///< no further jobs will arrive
  std::size_t total_jobs_ = 0;     ///< ingested so far (== n materialized)
  double last_ingested_submit_ = 0.0;  ///< order guard across refills
  std::size_t dead_in_buffer_ = 0; ///< started jobs awaiting compaction
  std::vector<std::uint32_t> remap_;  ///< compaction scratch

  StartHook start_hook_ = nullptr;
  void* start_hook_ctx_ = nullptr;

  /// Active TimeInvariant priority during run_priority(): arrivals compute
  /// their static key through it. Null outside such an episode.
  const PriorityFn* key_fn_ = nullptr;

  // incremental metric accumulators
  double sum_bsld_ = 0.0, sum_sld_ = 0.0, sum_wait_ = 0.0, sum_turn_ = 0.0;
  double busy_area_ = 0.0;
  double min_submit_ = 0.0, max_end_ = 0.0;
};

}  // namespace rlsched::sim
