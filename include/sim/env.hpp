#pragma once
// Event-driven scheduling simulator — the hot core of the system.
//
// Design for throughput (paper Table IX is the gate):
//  * a binary min-heap of job completions in a capacity-reserved vector:
//    O(log n) per event, no node allocations;
//  * a free-processor counter instead of a bitmap — starting/finishing a job
//    is O(1) bookkeeping plus the heap op;
//  * the pending queue is an arrival-ordered index vector; the observable
//    window handed to policies is a zero-copy span over its prefix;
//  * all metric accounting (bounded slowdown, utilization, wait, fairness)
//    is incremental at job start — results are O(users) to read, not O(n);
//  * after reset() every container stays within reserved capacity: the
//    step()/run_priority() loop performs ZERO heap allocation (enforced by
//    tests/test_zero_alloc.cpp with a counting global operator new), and
//    reset() itself reuses capacity across same-length episodes, so a
//    long-lived env re-reset per episode stops allocating after warmup.
//
// Threading contract: a SchedulingEnv is NOT internally synchronized —
// every method (including the const ones, which read mutable-free state)
// must be called from one thread at a time. Parallel rollout collection
// therefore gives each pool worker its OWN env instance; distinct envs
// share nothing and may run fully concurrently.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace rlsched::sim {

/// Policies never see more than this many pending jobs (paper MAX_OBSV_SIZE):
/// decision cost stays flat as the backlog grows.
inline constexpr std::size_t kMaxObservable = 128;

enum class Metric {
  BoundedSlowdown,
  Slowdown,
  WaitTime,
  Turnaround,
  Utilization,
  FairBoundedSlowdown,  ///< max over users of their avg bounded slowdown
};

std::string metric_name(Metric m);

/// +1 when larger is better (Utilization), -1 otherwise. Rewards are
/// reward_sign(m) * value(m).
int reward_sign(Metric m);

/// Priority score for heuristic scheduling: LOWER runs first.
using PriorityFn = std::function<double(const trace::Job&, double now)>;

struct RunResult {
  std::size_t jobs = 0;
  double avg_bounded_slowdown = 0.0;
  double avg_slowdown = 0.0;
  double avg_wait = 0.0;
  double avg_turnaround = 0.0;
  double utilization = 0.0;
  double makespan = 0.0;
  double max_user_bounded_slowdown = 0.0;

  double value(Metric m) const;
};

/// Per-user average bounded slowdown of an already-scheduled job set,
/// sorted by user id. (Analysis helper; not on the hot path.)
std::vector<std::pair<int, double>> per_user_bounded_slowdown(
    const std::vector<trace::Job>& jobs);

struct EnvConfig {
  bool backfill = false;  ///< EASY backfilling around the selected head job
  std::size_t max_observable = kMaxObservable;
};

class SchedulingEnv {
 public:
  explicit SchedulingEnv(int processors, EnvConfig cfg = {});

  /// Load a job sequence and advance to the first arrival. Allocation
  /// happens here (and only here): every container reserves for the whole
  /// episode.
  void reset(const std::vector<trace::Job>& jobs);
  void reset(std::vector<trace::Job>&& jobs);

  /// One scheduling decision: start the `action`-th job of the observable
  /// window (waiting for processors if needed, EASY-backfilling others
  /// meanwhile when enabled), then advance until another decision is due.
  /// Returns true when every job has been started.
  bool step(std::size_t action);

  /// Run the whole episode under a priority heuristic (min-score first).
  RunResult run_priority(const PriorityFn& priority);

  /// Pending jobs visible to a policy: indices into jobs(), arrival order,
  /// at most max_observable of them.
  std::span<const std::uint32_t> observable() const;

  const std::vector<trace::Job>& jobs() const { return jobs_; }
  double now() const { return now_; }
  int processors() const { return processors_; }
  int free_processors() const { return free_; }
  bool done() const { return started_ == jobs_.size(); }

  /// Metrics of the (possibly partial) schedule so far.
  RunResult result() const;

 private:
  struct Completion {
    double end;
    std::int32_t procs;
  };
  struct CompletionLater {
    bool operator()(const Completion& a, const Completion& b) const {
      return a.end > b.end;
    }
  };

  void prepare();                 ///< sort, clamp, reserve, advance to t0
  void arrive_until_now();
  void advance_one_event();       ///< jump to next completion/arrival
  void ensure_pending();          ///< advance until a decision is possible
  void start_job(std::uint32_t idx);
  void start_with_wait(std::uint32_t idx);
  void try_backfill(const trace::Job& head);
  /// Earliest time enough processors free up for `needed`, plus the count
  /// of processors still spare at that time after the head starts.
  double reservation(int needed, int* spare);

  int processors_;
  EnvConfig cfg_;

  std::vector<trace::Job> jobs_;
  std::vector<std::uint32_t> pending_;     ///< arrival order
  std::vector<Completion> running_;        ///< binary min-heap by end time
  std::vector<Completion> shadow_;         ///< scratch for reservation()
  std::vector<int> user_ids_;              ///< sorted distinct users
  std::vector<double> user_bsld_sum_;
  std::vector<std::uint32_t> user_count_;

  double now_ = 0.0;
  int free_ = 0;
  std::size_t next_arrival_ = 0;
  std::size_t started_ = 0;

  // incremental metric accumulators
  double sum_bsld_ = 0.0, sum_sld_ = 0.0, sum_wait_ = 0.0, sum_turn_ = 0.0;
  double busy_area_ = 0.0;
  double min_submit_ = 0.0, max_end_ = 0.0;
};

}  // namespace rlsched::sim
