#pragma once
// Order-stable indexed pending queue — the backlog structure behind the
// simulator's O(log P)-per-decision scheduling core.
//
// Queue positions are append-only SLOTS in arrival order. Removing a job
// tombstones its slot (no mid-vector erase); amortized compaction drops
// dead slots once they outnumber live ones, mirroring the env's streaming
// maybe_compact() discipline, so every operation stays order-stable and
// amortized O(log P). Three indexes ride on the slots:
//
//  * a Fenwick (binary indexed) tree counting live slots — O(log P)
//    select-k-th-live, which incrementally maintains the DENSE observable
//    window (the first min(live, window_cap) live jobs in queue order)
//    that policies read as a zero-copy span;
//  * a segment tree of (min requested_procs, min requested_time) per
//    subtree — the EASY backfill query "first job in queue order that fits
//    free/spare/window" descends it, pruning every subtree that provably
//    contains no eligible job. Leaf tests reproduce the reference scan's
//    comparisons bitwise, so the job picked is IDENTICAL to a full
//    front-to-back rescan; the descent only visits subtrees whose
//    (min procs, min requested time) pair cannot rule them out, which
//    collapses the seed's O(P) pass-per-start to near-O(log P) on real
//    backlogs (worst case remains O(P) for adversarial procs/time mixes —
//    correctness never depends on the pruning being tight);
//  * a segment tree of min static priority key — O(log P) leftmost-argmin
//    for TIME-INVARIANT heuristics (FCFS/SJF/F1), matching the reference
//    scan's strict-< first-wins tie semantics. Keys are computed once per
//    job (the priority function must ignore `now`; see
//    sim::PriorityKind). Keys must be finite: a NaN or +inf score would
//    tie with the dead-slot sentinel.
//
// Allocation contract: reset(expected, ...) reserves every array for
// `expected` total arrivals; materialized episodes perform zero heap
// allocation afterwards (slot count never exceeds total arrivals, and
// compaction/growth rebuilds resize within reserved capacity). Streaming
// episodes may grow amortized, like the env's job buffer.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rlsched::sim {

class PendingIndex {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// Drop all slots; reserve for `expected` arrivals and a dense window of
  /// `window_cap` jobs. Capacity is retained across resets.
  void reset(std::size_t expected, std::size_t window_cap);

  std::size_t live() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Append an arrival. `key` is the static priority key (pass 0.0 unless
  /// keys_enabled(); the env computes it from the active priority fn).
  void push(std::uint32_t job, std::int32_t procs, double req_time,
            double key);

  /// The observable window: first min(live, window_cap) live jobs in queue
  /// order, dense and zero-copy. Valid until the next mutation.
  std::span<const std::uint32_t> window() const {
    return {win_job_.data(), win_job_.size()};
  }

  /// Remove the w-th window job (w < window().size()); returns its job id.
  std::uint32_t take_window(std::size_t w);

  /// EASY backfill pick: remove and return the FIRST job in queue order
  /// with procs <= free and (now + requested_time <= horizon or
  /// procs <= spare) — the reference core's exact eligibility test.
  /// Returns kNone when no pending job qualifies.
  std::uint32_t take_first_backfill(int free, int spare, double now,
                                    double horizon);

  // --- static-key heuristic index (run_priority TimeInvariant mode) ---

  /// Compute keys for every live slot via `key_of(job)` and activate the
  /// key index. Stays active (push() must supply keys) until
  /// disable_keys().
  template <class KeyFn>
  void enable_keys(KeyFn&& key_of) {
    use_keys_ = true;
    const double inf = kInfKey;
    for (std::size_t pos = 0; pos < job_.size(); ++pos) {
      key_[pos] = job_[pos] != kNone ? key_of(job_[pos]) : inf;
    }
    rebuild_keys();
  }
  void disable_keys() { use_keys_ = false; }
  bool keys_enabled() const { return use_keys_; }

  /// Remove and return the live job with the smallest key (leftmost in
  /// queue order on ties — the scan's strict-< semantics). Precondition:
  /// keys_enabled() and !empty().
  std::uint32_t take_min_key();

  /// Remove and return the live job minimizing score(job), scanning live
  /// slots in queue order with strict-< (first wins) — the fallback for
  /// time-varying priorities, identical to the reference min-scan.
  /// Precondition: !empty().
  template <class ScoreFn>
  std::uint32_t take_min_scan(ScoreFn&& score) {
    std::size_t best = kNposInternal;
    double best_score = 0.0;
    for (std::size_t pos = 0; pos < job_.size(); ++pos) {
      if (job_[pos] == kNone) continue;
      const double s = score(job_[pos]);
      if (best == kNposInternal || s < best_score) {
        best_score = s;
        best = pos;
      }
    }
    if (best == kNposInternal) return kNone;
    const std::uint32_t job = job_[best];
    remove_at(best);
    return job;
  }

  /// Apply the env's streamed-buffer compaction remap to every stored job
  /// id (slot order, indexes, and the window are position-based and
  /// unaffected).
  void remap_jobs(const std::vector<std::uint32_t>& remap) {
    for (std::uint32_t& j : job_) {
      if (j != kNone) j = remap[j];
    }
    for (std::uint32_t& j : win_job_) j = remap[j];
  }

 private:
  static constexpr std::size_t kNposInternal = ~std::size_t{0};
  static constexpr std::size_t kMinCompact = 64;
  static const double kInfKey;

  void fen_add(std::size_t pos, std::int32_t delta);
  std::size_t fen_select(std::size_t k) const;  ///< k-th live slot, k >= 1
  void seg_set(std::size_t pos);
  void seg_clear(std::size_t pos);
  std::size_t find_fit(std::size_t node, int free, int spare, double now,
                       double horizon) const;
  void rebuild();       ///< Fenwick + procs/time (+ keys) from slot arrays
  void rebuild_keys();  ///< key tree only, from key_
  void grow();
  void remove_at(std::size_t pos);
  void refill_window();
  void maybe_compact();
  void compact();

  // slot arrays, queue (arrival) order; job_ == kNone marks a dead slot
  std::vector<std::uint32_t> job_;
  std::vector<std::int32_t> procs_;
  std::vector<double> time_;
  std::vector<double> key_;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;

  std::size_t cap_ = 0;     ///< index leaf capacity (power of two)
  std::size_t cap_hw_ = 0;  ///< high-water cap_ (backed by real capacity)
  std::vector<std::int32_t> fen_;       ///< 1-indexed live-count BIT
  std::vector<std::int32_t> seg_procs_;  ///< [1, 2*cap_): subtree minima
  std::vector<double> seg_time_;
  std::vector<double> seg_key_;
  bool use_keys_ = false;

  std::size_t window_cap_ = 0;
  std::vector<std::uint32_t> win_job_;  ///< dense window, queue order
  std::vector<std::uint32_t> win_pos_;  ///< their slot positions, ascending
};

}  // namespace rlsched::sim
