#pragma once
// Order-stable indexed pending queue — the backlog structure behind the
// simulator's O(log P)-per-decision scheduling core.
//
// Queue positions are append-only SLOTS in arrival order. Removing a job
// tombstones its slot (no mid-vector erase); amortized compaction drops
// dead slots once they outnumber live ones, mirroring the env's streaming
// maybe_compact() discipline, so every operation stays order-stable and
// amortized O(log P). Three indexes ride on the slots:
//
//  * a Fenwick (binary indexed) tree counting live slots — O(log P)
//    select-k-th-live, which incrementally maintains the DENSE observable
//    window (the first min(live, window_cap) live jobs in queue order)
//    that policies read as a zero-copy span;
//  * a segment tree of (min requested_procs, min requested_time) per
//    subtree, augmented (when the backfill index is enabled at reset) with
//    a small PARETO STAIRCASE per node: the undominated set of
//    (procs, req_time) pairs in the subtree, procs ascending / req_time
//    descending, capped at kStairCap points. When a merge overflows the
//    cap, the tail collapses to its lower-left CORNER (min procs, min
//    req_time of the collapsed run) — a point that dominates everything it
//    replaced, so the staircase always UNDER-approximates the subtree in
//    the dominance order and a failed staircase probe proves no job below
//    the node is eligible. The EASY backfill query "first job in queue
//    order that fits free/spare/window" descends the tree pruning each
//    subtree with one O(kStairCap) staircase probe; leaf probes hold the
//    job's exact values, reproducing the reference scan's comparisons
//    bitwise, so the job picked is IDENTICAL to a full front-to-back
//    rescan. Anticorrelated procs/req_time mixes that defeat the plain
//    (min, min) corner — the pairs come from DIFFERENT jobs, so the old
//    prune never fires and the descent degrades to O(P) — are pruned at
//    the root whenever the mix has at most kStairCap modes; richer mixes
//    degrade gracefully toward the corner bound (pruning tightness — not
//    correctness — is the only thing the cap trades away);
//  * a segment tree of min static priority key — O(log P) leftmost-argmin
//    for TIME-INVARIANT heuristics (FCFS/SJF/F1), matching the reference
//    scan's strict-< first-wins tie semantics. Keys are computed once per
//    job (the priority function must ignore `now`; see
//    sim::PriorityKind). Keys must be finite: a NaN or +inf score would
//    tie with the dead-slot sentinel.
//
// Allocation contract: reset(expected, ...) reserves every array for
// `expected` total arrivals; materialized episodes perform zero heap
// allocation afterwards (slot count never exceeds total arrivals, and
// compaction/growth rebuilds resize within reserved capacity). Streaming
// episodes may grow amortized, like the env's job buffer.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

// Debug/bench-only descent instrumentation (node-visit counters for the
// worst-case-log claim). Off by default; a compile-time constant so the
// disabled build carries literally zero cost on the hot path.
#ifndef RLSCHED_INDEX_STATS
#define RLSCHED_INDEX_STATS 0
#endif

namespace rlsched::sim {

class PendingIndex {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// Node-visit instrumentation is compiled in (cmake
  /// -DRLSCHED_INDEX_STATS=ON). When false the counters stay zero and the
  /// increments are compiled out entirely.
  static constexpr bool kStatsEnabled = RLSCHED_INDEX_STATS != 0;

  /// Drop all slots; reserve for `expected` arrivals and a dense window of
  /// `window_cap` jobs. Capacity is retained across resets. `fit_index`
  /// enables the Pareto-staircase backfill index; pass false for episodes
  /// that never call take_first_backfill() (no backfilling) to skip its
  /// per-mutation maintenance — the plain (min, min) subtree corners keep
  /// the query correct either way.
  void reset(std::size_t expected, std::size_t window_cap,
             bool fit_index = true);

  std::size_t live() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Append an arrival. `key` is the static priority key (pass 0.0 unless
  /// keys_enabled(); the env computes it from the active priority fn).
  void push(std::uint32_t job, std::int32_t procs, double req_time,
            double key);

  /// The observable window: first min(live, window_cap) live jobs in queue
  /// order, dense and zero-copy. Valid until the next mutation.
  std::span<const std::uint32_t> window() const {
    return {win_job_.data(), win_job_.size()};
  }

  /// Remove the w-th window job (w < window().size()); returns its job id.
  std::uint32_t take_window(std::size_t w);

  /// EASY backfill pick: remove and return the FIRST job in queue order
  /// with procs <= free and (now + requested_time <= horizon or
  /// procs <= spare) — the reference core's exact eligibility test.
  /// Returns kNone when no pending job qualifies.
  std::uint32_t take_first_backfill(int free, int spare, double now,
                                    double horizon);

  // --- descent instrumentation (kStatsEnabled builds only; zeros else) ---

  /// Backfill queries answered since the last reset_fit_stats().
  std::uint64_t fit_queries() const { return fit_queries_; }
  /// Segment-tree nodes visited across those queries. visits/queries is
  /// the measured worst-case-log evidence bench_sched_scaling asserts on.
  std::uint64_t fit_visits() const { return fit_visits_; }
  void reset_fit_stats() const { fit_queries_ = fit_visits_ = 0; }

  // --- static-key heuristic index (run_priority TimeInvariant mode) ---

  /// Compute keys for every live slot via `key_of(job)` and activate the
  /// key index. Stays active (push() must supply keys) until
  /// disable_keys().
  template <class KeyFn>
  void enable_keys(KeyFn&& key_of) {
    use_keys_ = true;
    const double inf = kInfKey;
    for (std::size_t pos = 0; pos < job_.size(); ++pos) {
      key_[pos] = job_[pos] != kNone ? key_of(job_[pos]) : inf;
    }
    rebuild_keys();
  }
  void disable_keys() { use_keys_ = false; }
  bool keys_enabled() const { return use_keys_; }

  /// Remove and return the live job with the smallest key (leftmost in
  /// queue order on ties — the scan's strict-< semantics). Precondition:
  /// keys_enabled() and !empty().
  std::uint32_t take_min_key();

  /// Remove and return the live job minimizing score(job), scanning live
  /// slots in queue order with strict-< (first wins) — the fallback for
  /// time-varying priorities, identical to the reference min-scan.
  /// Precondition: !empty().
  template <class ScoreFn>
  std::uint32_t take_min_scan(ScoreFn&& score) {
    std::size_t best = kNposInternal;
    double best_score = 0.0;
    for (std::size_t pos = 0; pos < job_.size(); ++pos) {
      if (job_[pos] == kNone) continue;
      const double s = score(job_[pos]);
      if (best == kNposInternal || s < best_score) {
        best_score = s;
        best = pos;
      }
    }
    if (best == kNposInternal) return kNone;
    const std::uint32_t job = job_[best];
    remove_at(best);
    return job;
  }

  /// Apply the env's streamed-buffer compaction remap to every stored job
  /// id (slot order, indexes, and the window are position-based and
  /// unaffected).
  void remap_jobs(const std::vector<std::uint32_t>& remap) {
    for (std::uint32_t& j : job_) {
      if (j != kNone) j = remap[j];
    }
    for (std::uint32_t& j : win_job_) j = remap[j];
  }

 private:
  static constexpr std::size_t kNposInternal = ~std::size_t{0};
  static constexpr std::size_t kMinCompact = 64;
  static const double kInfKey;

  /// Staircase width per node. Mixes with at most this many Pareto modes
  /// are pruned exactly; wider mixes collapse their tail to a corner
  /// (conservative: never prunes a subtree that could hold an eligible
  /// job). 8 covers every adversarial generator in the equivalence suite
  /// while keeping the per-node probe a handful of compares.
  static constexpr std::size_t kStairCap = 8;

  /// One staircase point: procs ascending, req_time strictly descending
  /// along a node's staircase. Points are job values except where a
  /// truncation corner replaced a run (then they lower-bound the run).
  struct StairPt {
    std::int32_t procs;
    double time;
  };

  void fen_add(std::size_t pos, std::int32_t delta);
  std::size_t fen_select(std::size_t k) const;  ///< k-th live slot, k >= 1
  void seg_set(std::size_t pos);
  void seg_clear(std::size_t pos);
  void stair_pull(std::size_t node);  ///< node staircase := merge(children)
  bool stair_admits(std::size_t node, int free, int spare, double now,
                    double horizon) const;
  std::size_t find_fit(std::size_t node, int free, int spare, double now,
                       double horizon) const;
  void rebuild();       ///< Fenwick + procs/time (+ keys) from slot arrays
  void rebuild_keys();  ///< key tree only, from key_
  void grow();
  void remove_at(std::size_t pos);
  void refill_window();
  void maybe_compact();
  void compact();

  // slot arrays, queue (arrival) order; job_ == kNone marks a dead slot
  std::vector<std::uint32_t> job_;
  std::vector<std::int32_t> procs_;
  std::vector<double> time_;
  std::vector<double> key_;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;

  std::size_t cap_ = 0;     ///< index leaf capacity (power of two)
  std::size_t cap_hw_ = 0;  ///< high-water cap_ (backed by real capacity)
  std::vector<std::int32_t> fen_;       ///< 1-indexed live-count BIT
  std::vector<std::int32_t> seg_procs_;  ///< [1, 2*cap_): subtree minima
  std::vector<double> seg_time_;
  std::vector<double> seg_key_;
  bool use_keys_ = false;
  bool fit_index_ = true;  ///< staircases maintained (backfill episodes)
  std::vector<StairPt> stair_;        ///< node n's points at n * kStairCap
  std::vector<std::uint8_t> stair_n_; ///< points per node (0 = empty)
  mutable std::uint64_t fit_queries_ = 0, fit_visits_ = 0;

  std::size_t window_cap_ = 0;
  std::vector<std::uint32_t> win_job_;  ///< dense window, queue order
  std::vector<std::uint32_t> win_pos_;  ///< their slot positions, ascending
};

}  // namespace rlsched::sim
