#pragma once
// The paper's Table III heuristic baselines as branch-light priority
// functions. Scores are "lower runs first"; max-style heuristics from the
// literature are negated.

#include <string>
#include <vector>

#include "sim/env.hpp"

namespace rlsched::sched {

struct Heuristic {
  std::string name;
  sim::PriorityFn priority;
  /// TimeInvariant (FCFS/SJF/F1: the score reads only immutable job
  /// fields) lets SchedulingEnv::run_priority serve decisions from its
  /// O(log P) min-key index; wait-time scores (WFP3/UNICEP) are
  /// TimeVarying and take the reference-identical scan. Pass this as
  /// run_priority's second argument.
  sim::PriorityKind kind = sim::PriorityKind::TimeVarying;
};

/// First-Come-First-Served: earliest submission first.
sim::PriorityFn fcfs_priority();

/// Shortest-Job-First on the user's runtime estimate.
sim::PriorityFn sjf_priority();

/// WFP3: favours long-waiting, short, wide jobs —
/// maximize (wait/request_time)^3 * request_procs.
sim::PriorityFn wfp3_priority();

/// UNICEP: maximize wait / (log2(procs) * request_time).
sim::PriorityFn unicep_priority();

/// F1: the Carastan-Santos & de Camargo learned nonlinear score —
/// minimize log10(request_time)*procs + 870*log10(submit_time).
sim::PriorityFn f1_priority();

/// The five baselines in the paper's order: FCFS, WFP3, UNICEP, SJF, F1.
const std::vector<Heuristic>& all_heuristics();

}  // namespace rlsched::sched
