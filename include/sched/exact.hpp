#pragma once
// Bounded-window exact scheduler — the optimality-gap baseline.
//
// `ExactWindowScheduler` runs depth-first branch-and-bound over job start
// ORDERINGS on a window of K <= kMaxExactWindow pending jobs against a
// free-capacity staircase (free processors now + the running set's
// completion releases). The placement model is the serial decision process
// of SchedulingEnv::run_priority without backfill: jobs start in the chosen
// order, each at the earliest time >= the previous start where the
// staircase admits its processor request, and the objective (total bounded
// slowdown, or window makespan as the utilization proxy) is summed over
// the resulting start vector in WINDOW INDEX order — one arithmetic shared
// by the search, evaluate_order, and evaluate_greedy, and insensitive to
// which permutation produced tied start times — so the optimum is bitwise
// equal to a brute-force permutation enumeration
// (tests/test_exact_window.cpp holds that equality).
//
// Pruning uses an admissible LP-relaxation-style lower bound built from
// the same staircase ideas as sim/pending_index.hpp:
//  * per-job earliest-start relaxation — each unplaced job is probed
//    against the staircase ignoring the other unplaced jobs, which can
//    only UNDER-estimate its true start (competitors only consume
//    capacity), and bounded slowdown is monotone in start time;
//  * fractional-packing area bound (makespan) — the remaining work
//    area sum(procs_j * run_j) must fit under the capacity profile from
//    the frontier on, so the earliest horizon h with enough integrated
//    free area lower-bounds the makespan.
// Both arguments, and why a failed staircase probe proves infeasibility,
// are written out in DESIGN.md ("Exact solver & optimality gap").
//
// The search is node-budgeted: when the budget exhausts mid-search the
// incumbent (always a complete, valid schedule — the first DFS descent
// reaches a leaf before any budget check) is returned with proved=false,
// and the root lower bound still brackets the true optimum from below.
//
// `ExactWindowPolicy` adapts the solver into a sixth Heuristic-compatible
// policy: it plans the first K observable jobs, serves the plan as a
// TimeVarying priority (plan rank = score) or as step() actions, and
// replans when the plan is exhausted — reusing sim/env.cpp, the
// observation builder, and the differential-gate harness unchanged.
//
// Allocation contract: after reserve()/construction every solve() and
// policy decision is heap-allocation-free (fixed kMaxExactWindow arrays;
// release buffers reserved to the processor count), so the adapter runs
// under bench_sched_scaling's counting-operator-new check.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "trace/job.hpp"

namespace rlsched::sched {

/// Hard cap on the branch-and-bound window (bitmask state fits a u32;
/// 16! leaves is already far beyond any sane node budget).
inline constexpr std::size_t kMaxExactWindow = 16;

enum class ExactObjective {
  TotalBoundedSlowdown,  ///< minimize sum of per-job bounded slowdowns
  Makespan,              ///< minimize (max end - now); utilization proxy
};

const char* exact_objective_name(ExactObjective o);

/// One future capacity release: `procs` processors free at time `end`.
struct Release {
  double end = 0.0;
  std::int32_t procs = 0;
};

/// A self-contained window subproblem. `releases` must be sorted by end
/// ascending with end > now (Timeline::live() satisfies both); job
/// requested_procs must be clamped to [1, processors] (the env's prepare()
/// invariant). Jobs carry submit <= now.
struct WindowProblem {
  double now = 0.0;
  std::int32_t processors = 1;
  std::int32_t free = 0;  ///< free processors at `now`
  std::vector<Release> releases;
  std::vector<trace::Job> jobs;  ///< size <= kMaxExactWindow for solve()
};

struct WindowSolution {
  std::array<std::uint32_t, kMaxExactWindow> order{};  ///< job indices
  std::uint32_t count = 0;     ///< == problem jobs count
  double objective = 0.0;      ///< objective of `order`
  double bound = 0.0;          ///< admissible root lower bound
  bool proved = false;         ///< search exhausted => objective is optimal
  std::uint64_t nodes = 0;     ///< branch-and-bound placements explored
};

struct ExactConfig {
  /// Window size policies plan over (clamped to kMaxExactWindow).
  std::size_t window = 8;
  /// Node budget per solve; 0 = unlimited. When it exhausts, the incumbent
  /// is returned with proved=false.
  std::uint64_t max_nodes = 200000;
  ExactObjective objective = ExactObjective::TotalBoundedSlowdown;
};

class ExactWindowScheduler {
 public:
  explicit ExactWindowScheduler(ExactConfig cfg = {});

  const ExactConfig& config() const { return cfg_; }

  /// Pre-size the release buffers so later solve() calls cannot allocate.
  void reserve(std::size_t max_releases);

  /// Branch-and-bound over every ordering of p.jobs (throws
  /// std::invalid_argument above kMaxExactWindow — callers slice windows).
  /// Deterministic: the returned order is the lexicographically first
  /// permutation attaining the incumbent objective, identical to a
  /// strict-< lexicographic enumeration.
  WindowSolution solve(const WindowProblem& p);

  /// Objective of a fixed placement order under the same serial model and
  /// the same accumulation arithmetic as solve(). `order` must be a
  /// permutation of [0, p.jobs.size()).
  double evaluate_order(const WindowProblem& p,
                        std::span<const std::uint32_t> order);

  /// Emulate SchedulingEnv::run_priority's serial decision loop (no
  /// backfill) on the window: scores recomputed at each decision clock,
  /// strict-< minimum with first-in-queue-order winning ties. Returns the
  /// greedy order/objective with proved=false and bound = root bound —
  /// the per-heuristic side of the optimality-gap tables.
  WindowSolution evaluate_greedy(const WindowProblem& p,
                                 const sim::PriorityFn& priority);

  /// The admissible root lower bound alone (fuzzed against enumeration).
  double root_bound(const WindowProblem& p);

 private:
  void load(const WindowProblem& p);
  /// Free capacity at time t given the first `depth` placements.
  std::int64_t cap_at(double t, std::size_t depth) const;
  /// Earliest t >= frontier where capacity admits `procs`; +inf if never.
  double earliest_start(double frontier, std::int32_t procs,
                        std::size_t depth);
  /// Earliest horizon with integrated free area >= work from `frontier`.
  double area_horizon(double frontier, double work, std::size_t depth);
  /// Admissible full-vector bound: placed jobs at their actual term,
  /// unplaced at their earliest-start relaxation, combined with the leaf
  /// arithmetic — bitwise <= every leaf of the subtree.
  double lower_bound(double frontier, std::uint32_t used, std::size_t depth);
  /// Objective of the start vector in start_, summed in WINDOW INDEX
  /// order — permutations that place every job at the same times yield
  /// bitwise-identical objectives (placement-order summation would round
  /// ties differently per permutation and break the enumeration gate).
  double objective_of_starts() const;
  void dfs(std::size_t depth, double frontier);

  ExactConfig cfg_;

  // loaded problem
  std::size_t n_ = 0;
  double now_ = 0.0;
  std::int32_t total_procs_ = 1;
  std::int64_t free_ = 0;
  std::vector<double> rel_end_;        ///< release ends, ascending
  std::vector<std::int64_t> rel_cum_;  ///< rel_cum_[i] = free + procs[0..i)
  std::vector<std::int32_t> rel_procs_;
  std::array<double, kMaxExactWindow> submit_{};
  std::array<double, kMaxExactWindow> run_{};
  std::array<std::int32_t, kMaxExactWindow> procs_{};

  // search state
  std::array<double, kMaxExactWindow> start_{};  ///< per-job start times
  std::array<double, kMaxExactWindow> placed_end_{};
  std::array<std::int32_t, kMaxExactWindow> placed_procs_{};
  std::array<std::uint32_t, kMaxExactWindow> perm_{};
  std::array<std::uint32_t, kMaxExactWindow> best_{};
  std::array<std::uint32_t, kMaxExactWindow> scratch_{};  ///< placed-end sort
  std::uint32_t used_ = 0;  ///< bitmask of placed jobs during dfs
  double best_obj_ = 0.0;
  bool best_found_ = false;
  bool out_of_budget_ = false;
  std::uint64_t nodes_ = 0;
};

/// The solver adapted as the sixth baseline policy over a live env.
/// One adapter serves one env; call rearm() after env.reset() (a fresh
/// episode invalidates the plan's job indices). Materialized episodes
/// only — streaming compaction remaps job indices under the plan.
class ExactWindowPolicy {
 public:
  explicit ExactWindowPolicy(const sim::SchedulingEnv& env,
                             ExactConfig cfg = {});

  /// Score = plan rank (TimeVarying; pass kKind to run_priority). The
  /// returned function references *this, which must outlive the episode.
  sim::PriorityFn priority();
  static constexpr sim::PriorityKind kKind = sim::PriorityKind::TimeVarying;

  /// Planned head as a position in env.observable(), for step() loops.
  std::size_t next_action();

  /// Drop the current plan (mandatory after env.reset()).
  void rearm() { plan_len_ = 0; }

  struct Stats {
    std::uint64_t solves = 0;   ///< branch-and-bound invocations
    std::uint64_t proved = 0;   ///< solves that exhausted the search
    std::uint64_t nodes = 0;    ///< total placements explored
    double objective_sum = 0.0; ///< sum of window objectives
    double bound_sum = 0.0;     ///< sum of window lower bounds
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void maybe_replan();
  bool plan_live() const;
  double rank(const trace::Job& job);

  const sim::SchedulingEnv* env_;
  ExactWindowScheduler solver_;
  WindowProblem prob_;  ///< reused buffers, reserved at construction
  std::array<std::uint32_t, kMaxExactWindow> plan_{};  ///< env job indices
  std::uint32_t plan_len_ = 0;
  Stats stats_;
};

/// Package a policy as a Heuristic row ("EXACT") for table benches.
Heuristic exact_heuristic(ExactWindowPolicy& policy);

}  // namespace rlsched::sched
