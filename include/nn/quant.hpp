#pragma once
// Int8 quantized dense kernels for the policy-inference hot path.
//
// Scheme: per-tensor symmetric int8 WEIGHTS (scale = amax|w| / 127, zero
// point 0) against unsigned 8-bit ACTIVATIONS (scale from a calibration
// sweep; every activation this net sees is non-negative — the observation
// features are log1p-normalized magnitudes and 0/1 flags, and the hidden
// layers are relu'd). Accumulation is exact int32: with at most a few
// hundred input channels, |acc| <= in_dim * 255 * 127 << 2^31, so every
// backend — AVX-512 VNNI, the portable path, the scalar path — computes
// the SAME integer, and bit-equality across them reduces to the shared
// requantization arithmetic. Hidden-layer requantization is INTEGER-ONLY:
// the layer's requant multiplier is constrained to a power of two
// (s_out = s_in * s_w * 2^rshift, chosen by the calibrator), the bias and
// the round-half-up constant are pre-folded into a per-channel int32
// accumulator init, and the fused epilogue is
//
//   u8_out = clamp((dot + acc0[o]) >> rshift, 0, 255)
//
// (arithmetic shift; the 0-side of the clamp IS the relu). That keeps the
// epilogue to one shift + two saturating packs per 64 outputs on the VNNI
// path — the float multiply-round requant it replaces cost more port-0/5
// uops than the MACs themselves on small layers. The power-of-two
// constraint costs at most one bit of output resolution (the calibrator
// rounds the scale UP, so activations never clip more than the measured
// amax would). The final layer dequantizes to float instead:
// out = fma(acc, s_in * s_w, bias_o), single-rounding fmaf scalar ==
// _mm512_fmadd_ps vector, so the library output is bit-identical to the
// naive scalar reference in tests/test_quant.cpp on every backend.
//
// Layout: both operands are packed GROUP-major for the u8x4 . s8x4 -> i32
// MAC that VNNI's vpdpbusd executes natively (and the other backends
// emulate): input channels are grouped in 4s, zero-padded past in_dim;
// activation channel 4g+r of column j lives at aq[(g * J + j) * 4 + r],
// weight (o, 4g+r) at wq[(o * G + g) * 4 + r]. Hidden layers write their
// output directly in this layout (their out_dim is a multiple of 4), so
// the whole stack runs packed end to end without transposes.
//
// The backend is a build-time choice on the nn/simd.hpp axis:
// RLSCHED_SIMD == 1 forces the scalar loops (so the scalar CI cell
// exercises this subsystem too); wider builds take vpdpbusd when the
// target has AVX-512 VNNI and otherwise a portable auto-vectorizable
// path. quant_isa() names the compiled backend so benches record it and
// the perf gate refuses to compare speedup ratios across ISAs.

#include <cstddef>
#include <cstdint>

namespace rlsched::nn {

inline constexpr std::size_t kQuantGroup = 4;  ///< u8x4 . s8x4 MAC unit

/// Input-channel groups covering in_dim (zero-padded to a multiple of 4).
constexpr std::size_t quant_groups(std::size_t in_dim) {
  return (in_dim + kQuantGroup - 1) / kQuantGroup;
}

/// The MAC backend compiled into this build: "avx512vnni", "generic", or
/// "scalar".
const char* quant_isa();

/// Per-tensor symmetric scale amax(|w|) / 127. An all-zero tensor gets
/// scale 1 so quantization maps it to exact zeros (never divides by 0).
float weight_scale(const float* w, std::size_t count);

/// Pack row-major [out_dim x in_dim] float weights into group-major s8:
/// wq[(o * G + g) * 4 + r] = rne(clamp(w[o * in_dim + 4g + r] / scale,
/// -127, 127)), zero past in_dim. wq must hold out_dim * G * 4 bytes.
void pack_weights_s8(const float* w, std::size_t out_dim, std::size_t in_dim,
                     float scale, std::int8_t* wq);

/// Quantize an SoA float activation block (channel i of column j at
/// a[i * stride + j], J columns) into group-major u8 packing;
/// u8 = rne(clamp(a * inv_scale, 0, 255)), inv_scale = 1 / act_scale.
/// Channels past in_dim pack as zero. aq must hold
/// quant_groups(in_dim) * J * 4 bytes.
void pack_acts_u8(const float* a, std::size_t in_dim, std::size_t J,
                  std::size_t stride, float inv_scale, std::uint8_t* aq);

/// One fused hidden layer over packed operands: exact-int32 MACs, then
/// u8 = clamp((dot + acc0[o]) >> rshift, 0, 255) written group-major at
/// out[(o/4 * J + j) * 4 + o%4] — directly the next layer's input.
/// acc0[o] carries the requantized bias plus the round-half-up constant
/// 2^(rshift-1); rshift in [0, 30]. Requires out_dim % 4 == 0 (true for
/// every hidden layer here).
void quant_dense_hidden(const std::uint8_t* aq, const std::int8_t* wq,
                        std::size_t out_dim, std::size_t groups,
                        std::size_t J, int rshift, const std::int32_t* acc0,
                        std::uint8_t* out);

/// Final (dequantizing) layer: out[o * J + j] = fma(acc, m, bias[o]).
void quant_dense_f32(const std::uint8_t* aq, const std::int8_t* wq,
                     std::size_t out_dim, std::size_t groups, std::size_t J,
                     float m, const float* bias, float* out);

}  // namespace rlsched::nn
