#pragma once
// A flat dense stack (ReLU hidden layers, linear output) over caller-owned
// parameters, with manual backprop. Parameters live in one contiguous float
// vector so Adam, save/load, and gradient buffers are trivial memcpy-shaped
// operations. Scratch activations are preallocated at construction — calls
// never allocate.

#include <cstddef>
#include <vector>

#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace rlsched::nn {

class FlatMlp {
 public:
  /// sizes = {input, hidden..., output}.
  explicit FlatMlp(std::vector<std::size_t> sizes);

  std::size_t param_count() const { return param_count_; }
  std::size_t input_size() const { return sizes_.front(); }
  std::size_t output_size() const { return sizes_.back(); }

  /// He-normal init; the output layer is scaled by `out_scale` (a small
  /// value keeps the initial policy near-uniform).
  void init(float* params, util::Rng& rng, float out_scale = 1.0f) const;

  /// Returns a pointer to the output activations (valid until next call).
  const float* forward(const float* params, const float* x) const;

  /// Backprop `dout` (length output_size) through the net, accumulating
  /// into `gparams`. With `recompute` (the default) the forward pass is
  /// refreshed internally; pass false when forward() was just called with
  /// the same (params, x) — the hot training loops always pair the calls,
  /// saving a full forward per sample. `dx` (length input_size) optional.
  void backward(const float* params, const float* x, const float* dout,
                float* gparams, float* dx = nullptr,
                bool recompute = true) const;

 private:
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> w_off_, b_off_, act_off_;
  std::size_t param_count_ = 0;
  mutable std::vector<float> act_;   // activations of every layer
  mutable std::vector<float> dact_;  // gradient scratch
};

}  // namespace rlsched::nn
