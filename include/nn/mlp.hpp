#pragma once
// A flat dense stack (ReLU hidden layers, linear output) over caller-owned
// parameters, with manual backprop. Parameters live in one contiguous float
// vector so Adam, save/load, and gradient buffers are trivial memcpy-shaped
// operations. Scratch activations are preallocated at construction — calls
// never allocate — and grow once when a larger batch is first seen, so the
// steady-state batched loops are allocation-free too.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/ops.hpp"
#include "util/rng.hpp"

namespace rlsched::nn {

class FlatMlp {
 public:
  /// sizes = {input, hidden..., output}.
  explicit FlatMlp(std::vector<std::size_t> sizes);

  std::size_t param_count() const { return param_count_; }
  std::size_t input_size() const { return sizes_.front(); }
  std::size_t output_size() const { return sizes_.back(); }

  /// He-normal init; the output layer is scaled by `out_scale` (a small
  /// value keeps the initial policy near-uniform).
  void init(float* params, util::Rng& rng, float out_scale = 1.0f) const;

  /// Prewarm the batch scratch for up to `n` columns, so a zero-allocation
  /// loop can size everything up front instead of growing on first use
  /// (lazy growth is worker-schedule dependent — a pool worker may see its
  /// first full-size chunk epochs after warmup).
  void reserve_batch(std::size_t n) const { ensure_batch(n); }

  /// Returns a pointer to the output activations (valid until next call).
  const float* forward(const float* params, const float* x) const;

  /// Batched forward over an SoA slab `X` (input_size x n, sample axis
  /// contiguous). Returns (output_size x n); column k is bitwise identical
  /// to forward() of sample k alone. Scratch grows to the largest n ever
  /// seen and is then reused — warm the peak batch once and the loop stops
  /// allocating.
  const float* forward_batch(const float* params, const float* X,
                             std::size_t n) const;

  /// Backprop `dout` (length output_size) through the net, accumulating
  /// into `gparams`. With `recompute` (the default) the forward pass is
  /// refreshed internally; pass false when forward() was just called with
  /// the same (params, x) — the hot training loops always pair the calls,
  /// saving a full forward per sample. `dx` (length input_size) optional.
  void backward(const float* params, const float* x, const float* dout,
                float* gparams, float* dx = nullptr,
                bool recompute = true) const;

  /// Batched backward paired with the most recent forward_batch() on the
  /// same (params, X, n) — activations are reused, never recomputed.
  /// `dOut` is (output_size x n). Gradient reductions across the sample
  /// axis use `window` granularity in sample units (0 = the whole batch as
  /// one order-stable window, 1 = per-sample partials added sequentially —
  /// bitwise identical to n unbatched backward() calls); `win_active`
  /// skips windows (see nn::dense_batch_backward). `dX` optional
  /// (input_size x n).
  void backward_batch(const float* params, const float* X, const float* dOut,
                      float* gparams, std::size_t n, std::size_t window = 0,
                      const std::uint8_t* win_active = nullptr,
                      float* dX = nullptr) const;

 private:
  void ensure_batch(std::size_t n) const;  ///< grow act_/dact_ to n columns

  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> w_off_, b_off_;
  std::vector<std::size_t> act_off_;  ///< per-layer offsets in SAMPLE units
  std::size_t param_count_ = 0;
  std::size_t act_total_ = 0;         ///< activations per sample
  mutable std::size_t batch_cap_ = 1;
  mutable std::vector<float> act_;   // activations of every layer
  mutable std::vector<float> dact_;  // gradient scratch
};

}  // namespace rlsched::nn
