#pragma once
// Cache-friendly neural-net primitives for the policy/value networks.
// Everything operates on caller-owned flat float buffers — no tensors, no
// allocation, no dispatch. Batched variants keep the job axis J contiguous
// (struct-of-arrays), so the inner loops vectorize across pending jobs —
// and J may span B stacked observation windows (B x 128 for the kernel
// policy), which is how batched inference amortizes weight traffic.
//
// Determinism contract of the dense kernels:
//  * forward and dA are elementwise along J — each output element depends
//    only on its own column, accumulated in i (respectively o) order — so
//    a batched call is trivially bitwise identical to per-window calls;
//  * reductions along J (gW, gb) are ORDER-STABLE: one partial sum per
//    window, added in window order, each partial computed with kSimdLanes
//    lane accumulators over full lane blocks, the fixed pairwise lane tree,
//    then the ragged tail sequentially (nn/simd.hpp). A batched backward is
//    therefore bitwise identical to sequential single-window backwards —
//    batch size can never leak into trained parameters. The lane width is
//    a build constant (like -march), never a runtime knob.

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "nn/simd.hpp"

namespace rlsched::nn {

// ---------------------------------------------------------------------------
// Dense layers over an SoA batch: A is (in x J), C is (out x J),
// W is (out x in) row-major, b is (out).
// ---------------------------------------------------------------------------

/// Register-tiled GEMV/GEMM microkernel: kRowBlock output rows x kTileVecs
/// vector lanes of the job axis are accumulated entirely in registers, so
/// each C element is written exactly once and each A element is loaded once
/// per row block (the naive loop re-loads and re-stores the C row for every
/// input — 3 memory ops per FMA — and that, not FLOPs, bounds the seed's
/// decision latency). The per-ELEMENT arithmetic order is unchanged (bias
/// first, inputs in ascending i, relu last), so the tiled kernel is bitwise
/// identical to the naive reference whatever the tile shape.
inline constexpr std::size_t kRowBlock = 4;   ///< output rows per microtile
inline constexpr std::size_t kTileVecs = 2;   ///< vectors per j-microtile

namespace detail {

/// One row block over one j-range: `rows` <= kRowBlock output rows.
template <std::size_t Rows>
inline void dense_row_block(const float* __restrict W,
                            const float* __restrict b,
                            const float* __restrict A, float* __restrict C,
                            std::size_t o0, std::size_t in, std::size_t J,
                            bool relu) {
  constexpr std::size_t tile = kTileVecs * kSimdLanes;
  const std::size_t Jt = J - J % tile;
  for (std::size_t jt = 0; jt < Jt; jt += tile) {
    VecF acc[Rows][kTileVecs];
    RLSCHED_UNROLL
    for (std::size_t r = 0; r < Rows; ++r) {
      const VecF vb = vsplat(b[o0 + r]);
      RLSCHED_UNROLL
      for (std::size_t t = 0; t < kTileVecs; ++t) acc[r][t] = vb;
    }
    for (std::size_t i = 0; i < in; ++i) {
      const float* __restrict a = A + i * J + jt;
      VecF av[kTileVecs];
      RLSCHED_UNROLL
      for (std::size_t t = 0; t < kTileVecs; ++t) {
        av[t] = vload(a + t * kSimdLanes);
      }
      RLSCHED_UNROLL
      for (std::size_t r = 0; r < Rows; ++r) {
        const VecF vw = vsplat(W[(o0 + r) * in + i]);
        RLSCHED_UNROLL
        for (std::size_t t = 0; t < kTileVecs; ++t) {
          acc[r][t] += vw * av[t];
        }
      }
    }
    RLSCHED_UNROLL
    for (std::size_t r = 0; r < Rows; ++r) {
      float* row = C + (o0 + r) * J + jt;
      RLSCHED_UNROLL
      for (std::size_t t = 0; t < kTileVecs; ++t) {
        vstore(row + t * kSimdLanes,
               relu ? vmax0(acc[r][t]) : acc[r][t]);
      }
    }
  }
  // Single-vector middle tier: batches narrower than a full microtile
  // (e.g. a 8-12 column value-net chunk) must still vectorize.
  std::size_t j = Jt;
  for (; j + kSimdLanes <= J; j += kSimdLanes) {
    VecF acc[Rows];
    RLSCHED_UNROLL
    for (std::size_t r = 0; r < Rows; ++r) acc[r] = vsplat(b[o0 + r]);
    for (std::size_t i = 0; i < in; ++i) {
      const VecF av = vload(A + i * J + j);
      RLSCHED_UNROLL
      for (std::size_t r = 0; r < Rows; ++r) {
        acc[r] += vsplat(W[(o0 + r) * in + i]) * av;
      }
    }
    RLSCHED_UNROLL
    for (std::size_t r = 0; r < Rows; ++r) {
      vstore(C + (o0 + r) * J + j, relu ? vmax0(acc[r]) : acc[r]);
    }
  }
  // Ragged tail: same order, scalar accumulators.
  for (; j < J; ++j) {
    for (std::size_t r = 0; r < Rows; ++r) {
      float s = b[o0 + r];
      const float* w = W + (o0 + r) * in;
      for (std::size_t i = 0; i < in; ++i) s += w[i] * A[i * J + j];
      if (relu) s = s > 0.0f ? s : 0.0f;
      C[(o0 + r) * J + j] = s;
    }
  }
}

}  // namespace detail

inline void dense_batch_forward(const float* __restrict W,
                                const float* __restrict b,
                                const float* __restrict A,
                                float* __restrict C, std::size_t out,
                                std::size_t in, std::size_t J, bool relu) {
  std::size_t o = 0;
  for (; o + kRowBlock <= out; o += kRowBlock) {
    detail::dense_row_block<kRowBlock>(W, b, A, C, o, in, J, relu);
  }
  switch (out - o) {
    case 3: detail::dense_row_block<3>(W, b, A, C, o, in, J, relu); break;
    case 2: detail::dense_row_block<2>(W, b, A, C, o, in, J, relu); break;
    case 1: detail::dense_row_block<1>(W, b, A, C, o, in, J, relu); break;
    default: break;
  }
}

/// Order-stable reduction of one window: lane accumulators over full lane
/// blocks, fixed pairwise lane tree, ragged tail appended sequentially.
inline float window_sum(const float* __restrict d, std::size_t n) {
  VecF acc = vsplat(0.0f);
  const std::size_t nv = n - n % kSimdLanes;
  std::size_t j = 0;
  for (; j < nv; j += kSimdLanes) acc += vload(d + j);
  float s = lane_tree_sum(acc);
  for (; j < n; ++j) s += d[j];
  return s;
}

/// Order-stable dot product of one window (same lane order as window_sum).
inline float window_dot(const float* __restrict d, const float* __restrict a,
                        std::size_t n) {
  VecF acc = vsplat(0.0f);
  const std::size_t nv = n - n % kSimdLanes;
  std::size_t j = 0;
  for (; j < nv; j += kSimdLanes) acc += vload(d + j) * vload(a + j);
  float s = lane_tree_sum(acc);
  for (; j < n; ++j) s += d[j] * a[j];
  return s;
}

/// Backward of dense_batch_forward, generalized to batched inputs. `C` is
/// the post-activation output and `dC` its incoming gradient (modified in
/// place when relu). Accumulates into gW/gb; writes dA when non-null.
///
/// The job axis may cover `J / window` stacked independent windows
/// (`window` == 0 means one window spanning all of J; otherwise J must be
/// a multiple of `window`). Per-parameter reductions form one order-stable
/// partial per window and add partials in window order, so a batched call
/// is bitwise identical to sequential single-window calls. `win_active`,
/// when non-null, holds one byte per window: windows with 0 are skipped
/// entirely — no gW/gb contribution, dA region untouched, dC ignored (the
/// PPO update drops clip-saturated samples this way, exactly as the
/// unbatched path skips their backward call).
inline void dense_batch_backward(const float* __restrict W,
                                 const float* __restrict A,
                                 const float* __restrict C,
                                 float* __restrict dC, float* __restrict dA,
                                 float* __restrict gW, float* __restrict gb,
                                 std::size_t out, std::size_t in,
                                 std::size_t J, bool relu,
                                 std::size_t window = 0,
                                 const std::uint8_t* win_active = nullptr) {
  const std::size_t win = window == 0 ? J : window;
  const std::size_t nwin = win == 0 ? 0 : J / win;
  const std::size_t wv_blocks = win - win % kSimdLanes;
  if (relu) {
    for (std::size_t o = 0; o < out; ++o) {
      float* d = dC + o * J;
      const float* c = C + o * J;
      for (std::size_t w = 0; w < nwin; ++w) {
        if (win_active != nullptr && win_active[w] == 0) continue;
        float* dw = d + w * win;
        const float* cw = c + w * win;
        std::size_t j = 0;
        for (; j < wv_blocks; j += kSimdLanes) {
          vstore(dw + j, vmask_relu(vload(cw + j), vload(dw + j)));
        }
        for (; j < win; ++j) {
          if (cw[j] <= 0.0f) dw[j] = 0.0f;
        }
      }
    }
  }
  for (std::size_t o = 0; o < out; ++o) {
    const float* d = dC + o * J;
    for (std::size_t w = 0; w < nwin; ++w) {
      if (win_active != nullptr && win_active[w] == 0) continue;
      gb[o] += window_sum(d + w * win, win);
    }
    float* gw = gW + o * in;
    for (std::size_t i = 0; i < in; ++i) {
      const float* a = A + i * J;
      for (std::size_t w = 0; w < nwin; ++w) {
        if (win_active != nullptr && win_active[w] == 0) continue;
        gw[i] += window_dot(d + w * win, a + w * win, win);
      }
    }
  }
  if (dA != nullptr) {
    for (std::size_t i = 0; i < in; ++i) {
      float* da = dA + i * J;
      for (std::size_t w = 0; w < nwin; ++w) {
        if (win_active != nullptr && win_active[w] == 0) continue;
        float* daw = da + w * win;
        const VecF vz = vsplat(0.0f);
        std::size_t j = 0;
        for (; j < wv_blocks; j += kSimdLanes) vstore(daw + j, vz);
        for (; j < win; ++j) daw[j] = 0.0f;
      }
    }
    for (std::size_t o = 0; o < out; ++o) {
      const float* d = dC + o * J;
      const float* w_row = W + o * in;
      for (std::size_t i = 0; i < in; ++i) {
        float* da = dA + i * J;
        const float wv = w_row[i];
        const VecF vw = vsplat(wv);
        for (std::size_t w = 0; w < nwin; ++w) {
          if (win_active != nullptr && win_active[w] == 0) continue;
          float* daw = da + w * win;
          const float* dw = d + w * win;
          std::size_t j = 0;
          for (; j < wv_blocks; j += kSimdLanes) {
            vstore(daw + j, vload(daw + j) + vw * vload(dw + j));
          }
          for (; j < win; ++j) daw[j] += wv * dw[j];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 1-D convolution along the job axis (LeNet baseline): A is (ci x L),
// C is (co x L), W is (co x ci x k) with odd k and same-padding.
// ---------------------------------------------------------------------------

inline void conv1d_forward(const float* W, const float* b, const float* A,
                           float* C, std::size_t co, std::size_t ci,
                           std::size_t L, std::size_t k, bool relu) {
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(k / 2);
  for (std::size_t o = 0; o < co; ++o) {
    float* row = C + o * L;
    for (std::size_t x = 0; x < L; ++x) row[x] = b[o];
    for (std::size_t i = 0; i < ci; ++i) {
      const float* a = A + i * L;
      const float* w = W + (o * ci + i) * k;
      for (std::size_t t = 0; t < k; ++t) {
        const float wv = w[t];
        const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(t) - half;
        const std::size_t lo = off < 0 ? static_cast<std::size_t>(-off) : 0;
        const std::size_t hi =
            off > 0 ? L - static_cast<std::size_t>(off) : L;
        for (std::size_t x = lo; x < hi; ++x) {
          row[x] += wv * a[static_cast<std::size_t>(
                        static_cast<std::ptrdiff_t>(x) + off)];
        }
      }
    }
    if (relu) {
      for (std::size_t x = 0; x < L; ++x) row[x] = row[x] > 0.0f ? row[x] : 0.0f;
    }
  }
}

inline void conv1d_backward(const float* W, const float* A, const float* C,
                            float* dC, float* dA, float* gW, float* gb,
                            std::size_t co, std::size_t ci, std::size_t L,
                            std::size_t k, bool relu) {
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(k / 2);
  if (relu) {
    for (std::size_t o = 0; o < co; ++o) {
      float* d = dC + o * L;
      const float* c = C + o * L;
      for (std::size_t x = 0; x < L; ++x) {
        if (c[x] <= 0.0f) d[x] = 0.0f;
      }
    }
  }
  if (dA != nullptr) {
    for (std::size_t i = 0; i < ci * L; ++i) dA[i] = 0.0f;
  }
  for (std::size_t o = 0; o < co; ++o) {
    const float* d = dC + o * L;
    for (std::size_t x = 0; x < L; ++x) gb[o] += d[x];
    for (std::size_t i = 0; i < ci; ++i) {
      const float* a = A + i * L;
      float* gw = gW + (o * ci + i) * k;
      const float* w = W + (o * ci + i) * k;
      float* da = dA != nullptr ? dA + i * L : nullptr;
      for (std::size_t t = 0; t < k; ++t) {
        const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(t) - half;
        const std::size_t lo = off < 0 ? static_cast<std::size_t>(-off) : 0;
        const std::size_t hi =
            off > 0 ? L - static_cast<std::size_t>(off) : L;
        float acc = 0.0f;
        for (std::size_t x = lo; x < hi; ++x) {
          const std::size_t src = static_cast<std::size_t>(
              static_cast<std::ptrdiff_t>(x) + off);
          acc += d[x] * a[src];
          if (da != nullptr) da[src] += d[x] * w[t];
        }
        gw[t] += acc;
      }
    }
  }
}

/// Halving average pool along the length axis: (c x L) -> (c x L/2).
inline void avgpool2_forward(const float* A, float* C, std::size_t c,
                             std::size_t L) {
  const std::size_t half = L / 2;
  for (std::size_t i = 0; i < c; ++i) {
    const float* a = A + i * L;
    float* o = C + i * half;
    for (std::size_t x = 0; x < half; ++x) {
      o[x] = 0.5f * (a[2 * x] + a[2 * x + 1]);
    }
  }
}

inline void avgpool2_backward(const float* dC, float* dA, std::size_t c,
                              std::size_t L) {
  const std::size_t half = L / 2;
  for (std::size_t i = 0; i < c; ++i) {
    const float* d = dC + i * half;
    float* da = dA + i * L;
    for (std::size_t x = 0; x < L; ++x) da[x] = 0.0f;
    for (std::size_t x = 0; x < half; ++x) {
      da[2 * x] = 0.5f * d[x];
      da[2 * x + 1] = 0.5f * d[x];
    }
  }
}

// ---------------------------------------------------------------------------
// Masked categorical head
// ---------------------------------------------------------------------------

/// Index of the largest value whose mask byte is non-zero; ties break to the
/// LOWEST index (deterministic), and an all-masked input returns 0.
///
/// Two passes: a branchless masked max (which vectorizes — the one-pass
/// first-max scan carries a (best, found) recurrence that cannot), then the
/// first index attaining it. Bit-identical to the one-pass scan for every
/// NaN-free input: a strictly-greater update also keeps the FIRST index
/// attaining the maximum, which is exactly what the equality scan returns
/// (+-0.0 compare equal under both, so mixed zero signs tie to the lowest
/// index either way). This scan runs once per scheduling decision, after
/// dense layers that amortize to ~2 float ops per logit — at that scale the
/// branchy scalar scan was a measurable slice of total decision latency.
inline std::size_t argmax_masked(const float* v, const std::uint8_t* mask,
                                 std::size_t n) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  float best_v = kNegInf;
  std::size_t i = 0;
#if RLSCHED_SIMD > 1
  // Lane-parallel masked max. Max is an exact select (no rounding), so the
  // lane partitioning cannot change best_v, and the index comes from the
  // sequential equality scan below — the result is identical at every
  // lane width, unlike the summing kernels.
  const VecF vninf = vsplat(kNegInf);
  VecF vb = vninf;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    vb = vmax(vb, vselect_bytes(mask + i, vload(v + i), vninf));
  }
  for (std::size_t l = 0; l < kSimdLanes; ++l) {
    best_v = vb[l] > best_v ? vb[l] : best_v;
  }
#endif
  for (; i < n; ++i) {
    const float x = mask[i] != 0 ? v[i] : kNegInf;
    best_v = x > best_v ? x : best_v;
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (mask[k] != 0 && v[k] == best_v) return k;
  }
  return 0;
}

template <std::size_t N>
std::size_t argmax_masked(const std::array<float, N>& v,
                          const std::array<std::uint8_t, N>& mask) {
  return argmax_masked(v.data(), mask.data(), N);
}

/// Numerically-stable softmax over the masked entries; masked-out
/// probabilities are exactly 0. All-masked input yields all zeros.
inline void softmax_masked(const float* logits, const std::uint8_t* mask,
                           float* probs, std::size_t n) {
  float peak = -1e30f;
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] != 0 && (!any || logits[i] > peak)) {
      peak = logits[i];
      any = true;
    }
  }
  if (!any) {
    for (std::size_t i = 0; i < n; ++i) probs[i] = 0.0f;
    return;
  }
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    probs[i] = mask[i] != 0 ? std::exp(logits[i] - peak) : 0.0f;
    sum += probs[i];
  }
  const float inv = 1.0f / sum;
  for (std::size_t i = 0; i < n; ++i) probs[i] *= inv;
}

// ---------------------------------------------------------------------------
// Adam optimizer over a flat parameter vector
// ---------------------------------------------------------------------------

class Adam {
 public:
  Adam(std::size_t n, float lr)
      : lr_(lr), m_(n, 0.0f), v_(n, 0.0f) {}

  void set_lr(float lr) { lr_ = lr; }

  void step(float* params, const float* grad) {
    ++t_;
    const float b1t = 1.0f - std::pow(0.9f, static_cast<float>(t_));
    const float b2t = 1.0f - std::pow(0.999f, static_cast<float>(t_));
    const std::size_t n = m_.size();
    for (std::size_t i = 0; i < n; ++i) {
      m_[i] = 0.9f * m_[i] + 0.1f * grad[i];
      v_[i] = 0.999f * v_[i] + 0.001f * grad[i] * grad[i];
      const float mh = m_[i] / b1t;
      const float vh = v_[i] / b2t;
      params[i] -= lr_ * mh / (std::sqrt(vh) + 1e-8f);
    }
  }

 private:
  float lr_;
  std::uint64_t t_ = 0;
  std::vector<float> m_, v_;
};

}  // namespace rlsched::nn
