#pragma once
// Cache-friendly neural-net primitives for the policy/value networks.
// Everything operates on caller-owned flat float buffers — no tensors, no
// allocation, no dispatch. Batched variants keep the job axis J contiguous
// (struct-of-arrays), so the inner loops vectorize across pending jobs.

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlsched::nn {

// ---------------------------------------------------------------------------
// Dense layers over an SoA batch: A is (in x J), C is (out x J),
// W is (out x in) row-major, b is (out).
// ---------------------------------------------------------------------------

inline void dense_batch_forward(const float* __restrict W,
                                const float* __restrict b,
                                const float* __restrict A,
                                float* __restrict C, std::size_t out,
                                std::size_t in, std::size_t J, bool relu) {
  for (std::size_t o = 0; o < out; ++o) {
    float* __restrict row = C + o * J;
    const float bias = b[o];
    for (std::size_t j = 0; j < J; ++j) row[j] = bias;
    const float* __restrict w = W + o * in;
    for (std::size_t i = 0; i < in; ++i) {
      const float wv = w[i];
      const float* __restrict a = A + i * J;
      for (std::size_t j = 0; j < J; ++j) row[j] += wv * a[j];
    }
    if (relu) {
      for (std::size_t j = 0; j < J; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
    }
  }
}

/// Backward of dense_batch_forward. `C` is the post-activation output and
/// `dC` its incoming gradient (modified in place when relu). Accumulates
/// into gW/gb; writes dA when non-null.
inline void dense_batch_backward(const float* __restrict W,
                                 const float* __restrict A,
                                 const float* __restrict C,
                                 float* __restrict dC, float* __restrict dA,
                                 float* __restrict gW, float* __restrict gb,
                                 std::size_t out, std::size_t in,
                                 std::size_t J, bool relu) {
  if (relu) {
    for (std::size_t o = 0; o < out; ++o) {
      float* d = dC + o * J;
      const float* c = C + o * J;
      for (std::size_t j = 0; j < J; ++j) {
        if (c[j] <= 0.0f) d[j] = 0.0f;
      }
    }
  }
  for (std::size_t o = 0; o < out; ++o) {
    const float* d = dC + o * J;
    float acc = 0.0f;
    for (std::size_t j = 0; j < J; ++j) acc += d[j];
    gb[o] += acc;
    float* gw = gW + o * in;
    for (std::size_t i = 0; i < in; ++i) {
      const float* a = A + i * J;
      float s = 0.0f;
      for (std::size_t j = 0; j < J; ++j) s += d[j] * a[j];
      gw[i] += s;
    }
  }
  if (dA != nullptr) {
    for (std::size_t i = 0; i < in; ++i) {
      float* da = dA + i * J;
      for (std::size_t j = 0; j < J; ++j) da[j] = 0.0f;
    }
    for (std::size_t o = 0; o < out; ++o) {
      const float* d = dC + o * J;
      const float* w = W + o * in;
      for (std::size_t i = 0; i < in; ++i) {
        float* da = dA + i * J;
        const float wv = w[i];
        for (std::size_t j = 0; j < J; ++j) da[j] += wv * d[j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 1-D convolution along the job axis (LeNet baseline): A is (ci x L),
// C is (co x L), W is (co x ci x k) with odd k and same-padding.
// ---------------------------------------------------------------------------

inline void conv1d_forward(const float* W, const float* b, const float* A,
                           float* C, std::size_t co, std::size_t ci,
                           std::size_t L, std::size_t k, bool relu) {
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(k / 2);
  for (std::size_t o = 0; o < co; ++o) {
    float* row = C + o * L;
    for (std::size_t x = 0; x < L; ++x) row[x] = b[o];
    for (std::size_t i = 0; i < ci; ++i) {
      const float* a = A + i * L;
      const float* w = W + (o * ci + i) * k;
      for (std::size_t t = 0; t < k; ++t) {
        const float wv = w[t];
        const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(t) - half;
        const std::size_t lo = off < 0 ? static_cast<std::size_t>(-off) : 0;
        const std::size_t hi =
            off > 0 ? L - static_cast<std::size_t>(off) : L;
        for (std::size_t x = lo; x < hi; ++x) {
          row[x] += wv * a[static_cast<std::size_t>(
                        static_cast<std::ptrdiff_t>(x) + off)];
        }
      }
    }
    if (relu) {
      for (std::size_t x = 0; x < L; ++x) row[x] = row[x] > 0.0f ? row[x] : 0.0f;
    }
  }
}

inline void conv1d_backward(const float* W, const float* A, const float* C,
                            float* dC, float* dA, float* gW, float* gb,
                            std::size_t co, std::size_t ci, std::size_t L,
                            std::size_t k, bool relu) {
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(k / 2);
  if (relu) {
    for (std::size_t o = 0; o < co; ++o) {
      float* d = dC + o * L;
      const float* c = C + o * L;
      for (std::size_t x = 0; x < L; ++x) {
        if (c[x] <= 0.0f) d[x] = 0.0f;
      }
    }
  }
  if (dA != nullptr) {
    for (std::size_t i = 0; i < ci * L; ++i) dA[i] = 0.0f;
  }
  for (std::size_t o = 0; o < co; ++o) {
    const float* d = dC + o * L;
    for (std::size_t x = 0; x < L; ++x) gb[o] += d[x];
    for (std::size_t i = 0; i < ci; ++i) {
      const float* a = A + i * L;
      float* gw = gW + (o * ci + i) * k;
      const float* w = W + (o * ci + i) * k;
      float* da = dA != nullptr ? dA + i * L : nullptr;
      for (std::size_t t = 0; t < k; ++t) {
        const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(t) - half;
        const std::size_t lo = off < 0 ? static_cast<std::size_t>(-off) : 0;
        const std::size_t hi =
            off > 0 ? L - static_cast<std::size_t>(off) : L;
        float acc = 0.0f;
        for (std::size_t x = lo; x < hi; ++x) {
          const std::size_t src = static_cast<std::size_t>(
              static_cast<std::ptrdiff_t>(x) + off);
          acc += d[x] * a[src];
          if (da != nullptr) da[src] += d[x] * w[t];
        }
        gw[t] += acc;
      }
    }
  }
}

/// Halving average pool along the length axis: (c x L) -> (c x L/2).
inline void avgpool2_forward(const float* A, float* C, std::size_t c,
                             std::size_t L) {
  const std::size_t half = L / 2;
  for (std::size_t i = 0; i < c; ++i) {
    const float* a = A + i * L;
    float* o = C + i * half;
    for (std::size_t x = 0; x < half; ++x) {
      o[x] = 0.5f * (a[2 * x] + a[2 * x + 1]);
    }
  }
}

inline void avgpool2_backward(const float* dC, float* dA, std::size_t c,
                              std::size_t L) {
  const std::size_t half = L / 2;
  for (std::size_t i = 0; i < c; ++i) {
    const float* d = dC + i * half;
    float* da = dA + i * L;
    for (std::size_t x = 0; x < L; ++x) da[x] = 0.0f;
    for (std::size_t x = 0; x < half; ++x) {
      da[2 * x] = 0.5f * d[x];
      da[2 * x + 1] = 0.5f * d[x];
    }
  }
}

// ---------------------------------------------------------------------------
// Masked categorical head
// ---------------------------------------------------------------------------

/// Index of the largest value whose mask byte is non-zero; ties break to the
/// LOWEST index (deterministic), and an all-masked input returns 0.
inline std::size_t argmax_masked(const float* v, const std::uint8_t* mask,
                                 std::size_t n) {
  std::size_t best = 0;
  bool found = false;
  float best_v = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] == 0) continue;
    if (!found || v[i] > best_v) {
      best = i;
      best_v = v[i];
      found = true;
    }
  }
  return best;
}

template <std::size_t N>
std::size_t argmax_masked(const std::array<float, N>& v,
                          const std::array<std::uint8_t, N>& mask) {
  return argmax_masked(v.data(), mask.data(), N);
}

/// Numerically-stable softmax over the masked entries; masked-out
/// probabilities are exactly 0. All-masked input yields all zeros.
inline void softmax_masked(const float* logits, const std::uint8_t* mask,
                           float* probs, std::size_t n) {
  float peak = -1e30f;
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] != 0 && (!any || logits[i] > peak)) {
      peak = logits[i];
      any = true;
    }
  }
  if (!any) {
    for (std::size_t i = 0; i < n; ++i) probs[i] = 0.0f;
    return;
  }
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    probs[i] = mask[i] != 0 ? std::exp(logits[i] - peak) : 0.0f;
    sum += probs[i];
  }
  const float inv = 1.0f / sum;
  for (std::size_t i = 0; i < n; ++i) probs[i] *= inv;
}

// ---------------------------------------------------------------------------
// Adam optimizer over a flat parameter vector
// ---------------------------------------------------------------------------

class Adam {
 public:
  Adam(std::size_t n, float lr)
      : lr_(lr), m_(n, 0.0f), v_(n, 0.0f) {}

  void set_lr(float lr) { lr_ = lr; }

  void step(float* params, const float* grad) {
    ++t_;
    const float b1t = 1.0f - std::pow(0.9f, static_cast<float>(t_));
    const float b2t = 1.0f - std::pow(0.999f, static_cast<float>(t_));
    const std::size_t n = m_.size();
    for (std::size_t i = 0; i < n; ++i) {
      m_[i] = 0.9f * m_[i] + 0.1f * grad[i];
      v_[i] = 0.999f * v_[i] + 0.001f * grad[i] * grad[i];
      const float mh = m_[i] / b1t;
      const float vh = v_[i] / b2t;
      params[i] -= lr_ * mh / (std::sqrt(vh) + 1e-8f);
    }
  }

 private:
  float lr_;
  std::uint64_t t_ = 0;
  std::vector<float> m_, v_;
};

}  // namespace rlsched::nn
