#pragma once
// Compile-time SIMD configuration for the nn/ kernels.
//
// RLSCHED_SIMD is the number of float lanes per vector (1, 2, 4, 8, or 16);
// it defaults to the widest sensible width for the target ISA and can be
// overridden at configure time (cmake -DRLSCHED_SIMD=N). RLSCHED_SIMD=1 is
// the scalar fallback: the SAME algorithms run with one-lane "vectors", so
// every code path stays exercised on targets without vector units.
//
// Determinism contract (see ops.hpp for the kernels that rely on it):
// the lane width is a BUILD-level constant, like -march. Within one build,
// results are bitwise independent of batch size and worker count; across
// builds with different RLSCHED_SIMD the reduction order (and therefore
// float results) may differ, exactly as they may across -march levels.
//
// Vectors are GCC/Clang vector extensions: lane-wise + - * are IEEE-exact
// per lane (a vector add is N independent scalar adds), which is what makes
// the vectorized kernels bit-comparable against a plain scalar reference
// implementing the same lane order (tests/test_ops_simd.cpp).

#include <cstddef>
#include <cstdint>
#include <cstring>

// Full unrolling of the tiny constant-trip microkernel loops (nn/ops.hpp)
// is what keeps their accumulator arrays in registers; -O2 alone does not
// reliably unroll them, and spilled accumulators cost ~2.5x.
#if defined(__clang__)
#define RLSCHED_UNROLL _Pragma("clang loop unroll(full)")
#elif defined(__GNUC__)
#define RLSCHED_UNROLL _Pragma("GCC unroll 16")
#else
#define RLSCHED_UNROLL
#endif

#ifndef RLSCHED_SIMD
#if defined(__AVX512F__) || defined(__AVX2__) || defined(__AVX__)
#define RLSCHED_SIMD 8
#elif defined(__SSE2__) || defined(__ARM_NEON) || defined(__aarch64__)
#define RLSCHED_SIMD 4
#else
#define RLSCHED_SIMD 1
#endif
#endif

namespace rlsched::nn {

inline constexpr std::size_t kSimdLanes = RLSCHED_SIMD;
static_assert(kSimdLanes == 1 || kSimdLanes == 2 || kSimdLanes == 4 ||
                  kSimdLanes == 8 || kSimdLanes == 16,
              "RLSCHED_SIMD must be a power of two in [1, 16]");

#if RLSCHED_SIMD > 1

using VecF = float __attribute__((vector_size(RLSCHED_SIMD * sizeof(float))));

inline VecF vload(const float* p) {
  VecF v;
  std::memcpy(&v, p, sizeof(v));  // unaligned load
  return v;
}

inline void vstore(float* p, VecF v) { std::memcpy(p, &v, sizeof(v)); }

inline VecF vsplat(float x) { return x - VecF{}; }

/// Lane-wise relu, bit-identical to the scalar `v > 0 ? v : 0`.
inline VecF vmax0(VecF v) {
  VecF r;
  for (std::size_t l = 0; l < kSimdLanes; ++l) r[l] = v[l] > 0.0f ? v[l] : 0.0f;
  return r;
}

/// Lane-wise relu gradient mask, bit-identical to the scalar
/// `c <= 0 ? 0 : d` (a pure select — no arithmetic).
inline VecF vmask_relu(VecF c, VecF d) {
  VecF r;
  for (std::size_t l = 0; l < kSimdLanes; ++l) {
    r[l] = c[l] <= 0.0f ? 0.0f : d[l];
  }
  return r;
}

/// Lane-wise exact max — a pure select, no rounding, so any lane
/// partitioning of a max-reduction yields the same result.
inline VecF vmax(VecF a, VecF b) {
  VecF r;
  for (std::size_t l = 0; l < kSimdLanes; ++l) {
    r[l] = a[l] > b[l] ? a[l] : b[l];
  }
  return r;
}

/// Lane l takes x[l] where the mask BYTE m[l] is non-zero, else y[l].
/// Widening the bytes and blending through integer bit ops (not a lane
/// loop over mixed u8/float — that mix defeats auto-vectorization) keeps
/// the select exact and branchless.
using VecU8 = std::uint8_t __attribute__((vector_size(RLSCHED_SIMD)));
using VecI = int __attribute__((vector_size(RLSCHED_SIMD * sizeof(int))));

inline VecF vselect_bytes(const std::uint8_t* m, VecF x, VecF y) {
  VecU8 mb;
  std::memcpy(&mb, m, sizeof(mb));
  const VecI sel = __builtin_convertvector(mb, VecI) != VecI{};  // -1 / 0
  VecI xi, yi;
  std::memcpy(&xi, &x, sizeof(xi));
  std::memcpy(&yi, &y, sizeof(yi));
  const VecI r = (xi & sel) | (yi & ~sel);
  VecF out;
  std::memcpy(&out, &r, sizeof(out));
  return out;
}

/// Combine the lane accumulators with a FIXED pairwise tree:
/// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)) for 8 lanes, and so on. The tree
/// shape is part of the kernel contract — it never depends on runtime sizes.
inline float lane_tree_sum(VecF v) {
  float lane[kSimdLanes];
  vstore(lane, v);
  for (std::size_t w = 1; w < kSimdLanes; w *= 2) {
    for (std::size_t i = 0; i + w < kSimdLanes; i += 2 * w) {
      lane[i] += lane[i + w];
    }
  }
  return lane[0];
}

#else  // RLSCHED_SIMD == 1: scalar fallback, same algorithm with one lane

struct VecF {
  float v;
};

inline VecF vload(const float* p) { return VecF{*p}; }
inline void vstore(float* p, VecF x) { *p = x.v; }
inline VecF vsplat(float x) { return VecF{x}; }
inline VecF vmax0(VecF x) { return VecF{x.v > 0.0f ? x.v : 0.0f}; }
inline VecF vmask_relu(VecF c, VecF d) {
  return VecF{c.v <= 0.0f ? 0.0f : d.v};
}
inline VecF vmax(VecF a, VecF b) { return VecF{a.v > b.v ? a.v : b.v}; }
inline VecF vselect_bytes(const std::uint8_t* m, VecF x, VecF y) {
  return VecF{*m != 0 ? x.v : y.v};
}
inline float lane_tree_sum(VecF x) { return x.v; }
inline VecF operator+(VecF a, VecF b) { return VecF{a.v + b.v}; }
inline VecF operator*(VecF a, VecF b) { return VecF{a.v * b.v}; }
inline VecF& operator+=(VecF& a, VecF b) {
  a.v += b.v;
  return a;
}

#endif

}  // namespace rlsched::nn
