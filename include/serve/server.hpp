#pragma once
// serve::Server — the network front end of the session daemon: a
// non-blocking epoll socket loop speaking the serve/wire.hpp framing of
// the core::ScheduleRequest contract over loopback (or any TCP) sockets.
//
// Thread model:
//
//   accept thread (1, blocking)      event threads (N, epoll_wait)
//   ---------------------------      -----------------------------------
//   accept4(SOCK_NONBLOCK)           edge-triggered + EPOLLONESHOT per
//   register conn in epoll             connection: exactly one thread
//                                      drains and dispatches a given
//                                      connection at a time (no per-frame
//                                      locking), rearmed after each drain
//
// Requests dispatch straight into the shared serve::Daemon (which runs
// its own dispatcher shards); replies are written inline by the event
// thread. The deferred replies (kSchedule, kWait) flow back through the
// daemon's completion hook: the hook — called under the daemon lock —
// only enqueues the finished request id and signals an eventfd, and the
// event thread that wakes on the eventfd routes each id to the connection
// that asked for it. A route registered after its completion fired is
// caught by the `unclaimed` set; a completion fired after registration is
// caught by re-polling try_take() once the route is in place — between
// the two, exactly one side delivers the reply.
//
// Malformed input never crashes the server: payload decode errors get a
// kInvalidArgument reply and the connection closes (a corrupt length
// prefix cannot be resynchronized); a disconnected client's sessions are
// destroyed (queued requests cancel) and its pending deferred replies are
// discarded.
//
// Results over this socket path are BITWISE IDENTICAL to in-process
// Daemon calls: the wire format round-trips doubles by bit pattern and
// the server adds no computation of its own
// (tests/test_serve_server.cpp and bench_serve_load --transport socket
// gate this).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/status.hpp"
#include "serve/daemon.hpp"
#include "serve/fault.hpp"
#include "serve/wire.hpp"

namespace rlsched::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; Server::port() reports it
  std::size_t event_threads = 2;
  /// Chaos-test hook (borrowed; must outlive the server): every socket
  /// recv/send routes through it. Null — the default — is the raw-syscall
  /// fast path.
  FaultInjector* fault = nullptr;
};

class Server {
 public:
  /// Binds, installs the completion hook, start()s the daemon (idempotent)
  /// and spawns the socket threads. The daemon must outlive the server;
  /// one server per daemon (the server owns the daemon's completion hook).
  /// Check status() — a failed bind reports there, not by crashing.
  explicit Server(Daemon& daemon, ServerConfig cfg = {});
  ~Server();  ///< stop()s the socket loop; the daemon keeps running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// OK once listening; the bind/listen/epoll failure otherwise.
  const core::Status& status() const { return init_status_; }
  /// The bound port (resolves an ephemeral request).
  std::uint16_t port() const { return port_; }

  /// Shut the socket loop down: stop accepting, join the threads, close
  /// every connection (destroying the sessions each owned). Idempotent;
  /// the destructor calls it.
  void stop();

 private:
  struct Conn {
    int fd = -1;
    std::atomic<bool> closed{false};
    /// Held for the whole of handle_readable, guarding rbuf. EPOLLONESHOT
    /// already serializes the handlers at the kernel level, so the lock is
    /// uncontended — it exists to make the rearm→epoll_wait handoff between
    /// event threads a real happens-before edge in the memory model (the
    /// syscall pair provides no language-level ordering), not to arbitrate.
    std::mutex read_mu;
    std::vector<std::uint8_t> rbuf;
    std::mutex mu;                 ///< write path + owned sessions
    std::vector<SessionId> owned;  ///< destroyed when the conn closes
  };
  struct Route {
    std::shared_ptr<Conn> conn;
    std::uint64_t tag = 0;
  };

  static void completion_hook(void* ctx, std::uint64_t request_id);

  void accept_loop();
  void event_loop();
  void handle_readable(const std::shared_ptr<Conn>& conn);
  /// Returns false when the connection must close (malformed payload).
  bool dispatch(const std::shared_ptr<Conn>& conn, const wire::Header& h,
                wire::Reader& r);
  /// The kSchedule/kWait deferral protocol (header comment).
  void defer_completion(const std::shared_ptr<Conn>& conn, std::uint64_t tag,
                        std::uint64_t id);
  void deliver_completions();
  void write_frame(const std::shared_ptr<Conn>& conn,
                   const std::vector<std::uint8_t>& bytes);
  void rearm(const Conn& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);

  Daemon& daemon_;
  ServerConfig cfg_;
  core::Status init_status_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::thread accept_thread_;
  std::vector<std::thread> event_threads_;

  std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  /// Deferred-reply bookkeeping; never hold while calling the daemon.
  std::mutex route_mu_;
  std::unordered_map<std::uint64_t, Route> routes_;
  std::unordered_set<std::uint64_t> unclaimed_;  ///< completed, no route yet
  std::unordered_set<std::uint64_t> orphaned_;   ///< route's conn closed

  std::mutex completed_mu_;
  std::vector<std::uint64_t> completed_;  ///< hook -> eventfd handler
};

}  // namespace rlsched::serve
