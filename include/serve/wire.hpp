#pragma once
// Versioned length-prefixed binary framing of the serve:: contract —
// core::ScheduleRequest in, core::ScheduleResult/core::Status out — shared
// by serve::Server and serve::Client and nothing else: the daemon itself
// never sees bytes, only decoded structs.
//
// Frame layout (all integers little-endian):
//
//   offset 0   u32  payload_len   bytes after the header, <= kMaxPayloadBytes
//   offset 4   u8   version       kVersion (2; v1 lacked the request-body
//                                 deadline field and is rejected)
//   offset 5   u8   type          MsgType
//   offset 6   u16  reserved      must be 0
//   offset 8   u64  tag           client correlation id, echoed on the reply
//   offset 16  payload            type-specific, layouts below
//
// Doubles cross the wire as their raw IEEE-754 bit pattern (memcpy through
// a u64), NOT through any text or rounding path, so every latency, runtime,
// and metric round-trips BITWISE — the socket path is gated bitwise
// identical to the in-process Daemon path (tests/test_serve_server.cpp,
// bench_serve_load --transport socket).
//
// Decoding is defensive end to end: every read is bounds-checked against
// the declared payload, declared lengths are checked against what actually
// arrived, array counts are checked against the bytes that could hold
// them, and unknown enum values are rejected — a malformed frame produces a
// kInvalidArgument reply (then a close, since a corrupt length prefix
// cannot be resynchronized), never a crash or an over-allocation.
//
// Payload layouts (requests):
//   kCreateSession   i32 processors, u32 policy
//   kDestroySession  u32 index, u32 gen
//   kSubmit          u32 index, u32 gen, request body (below)
//   kSchedule        same as kSubmit; the reply is deferred until the
//                    request completes (kCompletionReply), so one
//                    round-trip = one scheduled request
//   kTryTake         u64 request_id
//   kWait            u64 request_id (reply deferred until completion)
//
// Request body:
//   u8  kind         0 = single sequence (ScheduleRequest.jobs),
//                    1 = sequence batch (ScheduleRequest.sequences);
//                    streams are not wire-encodable (the client rejects
//                    them locally — a JobSource lives in one process)
//   i32 processors, u8 backfill, u64 chunk_jobs
//   f64 deadline_seconds (0 = none; finite, >= 0 — new in version 2)
//   u32 nseq, then per sequence: u32 njobs, njobs * Job
//   Job = i64 id, f64 submit_time, f64 run_time, f64 requested_time,
//         i32 requested_procs, i32 user, f64 start_time   (48 bytes)
//
// Payload layouts (replies; every reply starts with an encoded Status =
// i32 code, u32 message_len, message bytes):
//   kStatusReply      Status
//   kSessionReply     Status, then on OK: u32 index, u32 gen
//   kSubmitReply      Status, then on OK: u64 request_id
//   kCompletionReply  Status (the take/wait op), then on OK:
//                     Status (the completion itself), f64 latency_seconds,
//                     u32 nruns, nruns * RunResult
//   RunResult = u64 jobs, then f64 avg_bounded_slowdown, avg_slowdown,
//               avg_wait, avg_turnaround, utilization, makespan,
//               max_user_bounded_slowdown                 (64 bytes)

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/api.hpp"
#include "core/status.hpp"
#include "serve/daemon.hpp"

namespace rlsched::serve::wire {

inline constexpr std::uint8_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 16;
/// A declared payload above this is rejected at the header, before any
/// allocation: a corrupt or hostile length prefix must not OOM the server.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kCreateSession = 1,
  kDestroySession = 2,
  kSubmit = 3,
  kSchedule = 4,
  kTryTake = 5,
  kWait = 6,

  kStatusReply = 64,
  kSessionReply = 65,
  kSubmitReply = 66,
  kCompletionReply = 67,
};

struct Header {
  std::uint32_t payload_len = 0;
  std::uint8_t version = 0;
  MsgType type = MsgType::kStatusReply;
  std::uint64_t tag = 0;
};

/// Parse + validate a 16-byte header: version, reserved bytes, payload
/// ceiling. `buf` must hold kHeaderBytes bytes.
core::Status decode_header(const std::uint8_t* buf, Header* out);

/// Bounds-checked sequential reader over one frame's payload. Every getter
/// returns false (and poisons the reader) once the payload is exhausted —
/// a truncated frame fails cleanly at the first missing byte.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  bool u8(std::uint8_t* v) { return fixed(v); }
  bool u16(std::uint16_t* v) { return fixed(v); }
  bool u32(std::uint32_t* v) { return fixed(v); }
  bool u64(std::uint64_t* v) { return fixed(v); }
  bool i32(std::int32_t* v) { return fixed(v); }
  bool i64(std::int64_t* v) { return fixed(v); }
  bool f64(double* v) {
    std::uint64_t bits;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));  // bit pattern, not a value convert
    return true;
  }
  bool bytes(std::size_t n, const std::uint8_t** out) {
    if (remaining() < n) return fail();
    *out = p_;
    p_ += n;
    return true;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool exhausted() const { return p_ == end_; }
  bool failed() const { return failed_; }

 private:
  template <typename T>
  bool fixed(T* v) {
    if (remaining() < sizeof(T)) return fail();
    std::memcpy(v, p_, sizeof(T));  // wire is little-endian, like every
    p_ += sizeof(T);                // target this project builds for
    return true;
  }
  bool fail() {
    failed_ = true;
    p_ = end_;
    return false;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool failed_ = false;
};

// --- primitive append helpers (shared by Server/Client encoders) ---

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_i32(std::vector<std::uint8_t>& out, std::int32_t v);
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);

/// Append a complete frame: header (with payload_len = payload.size())
/// followed by the payload bytes. Aborts if payload exceeds
/// kMaxPayloadBytes — encoders produce bounded frames by construction.
void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint64_t tag, const std::uint8_t* payload,
                  std::size_t payload_len);

// --- request payload encode/decode ---

void encode_create_session(std::vector<std::uint8_t>& out, std::uint64_t tag,
                           const SessionConfig& cfg);
core::Status decode_create_session(Reader& r, SessionConfig* cfg);

void encode_destroy_session(std::vector<std::uint8_t>& out, std::uint64_t tag,
                            SessionId id);
core::Status decode_destroy_session(Reader& r, SessionId* id);

/// Encode a submit/schedule request. Streams are not wire-encodable:
/// returns kInvalidArgument without touching `out`. `type` must be kSubmit
/// or kSchedule.
core::Status encode_submit(std::vector<std::uint8_t>& out, MsgType type,
                           std::uint64_t tag, SessionId id,
                           const core::ScheduleRequest& request);

/// Owned storage behind a decoded ScheduleRequest (the request struct
/// borrows its job sequences by pointer).
struct DecodedRequest {
  std::vector<std::vector<trace::Job>> sequences;
  bool single = false;  ///< encoded from ScheduleRequest.jobs
  int processors = 0;
  bool backfill = false;
  std::size_t chunk_jobs = 4096;
  double deadline_seconds = 0.0;

  /// A ScheduleRequest view into this object; valid while *this lives.
  core::ScheduleRequest view() const {
    core::ScheduleRequest req;
    if (single) {
      req.jobs = &sequences.front();
    } else {
      req.sequences = &sequences;
    }
    req.processors = processors;
    req.backfill = backfill;
    req.chunk_jobs = chunk_jobs;
    req.deadline_seconds = deadline_seconds;
    return req;
  }
};

core::Status decode_submit(Reader& r, SessionId* id, DecodedRequest* out);

void encode_take(std::vector<std::uint8_t>& out, MsgType type,
                 std::uint64_t tag, std::uint64_t request_id);
core::Status decode_take(Reader& r, std::uint64_t* request_id);

// --- reply payload encode/decode ---

void encode_status_reply(std::vector<std::uint8_t>& out, std::uint64_t tag,
                         const core::Status& status);
core::Status decode_status_reply(Reader& r, core::Status* status);

void encode_session_reply(std::vector<std::uint8_t>& out, std::uint64_t tag,
                          const core::Status& status, SessionId id);
core::Status decode_session_reply(Reader& r, core::Status* status,
                                  SessionId* id);

void encode_submit_reply(std::vector<std::uint8_t>& out, std::uint64_t tag,
                         const core::Status& status, std::uint64_t request_id);
core::Status decode_submit_reply(Reader& r, core::Status* status,
                                 std::uint64_t* request_id);

/// `completion` may be null iff !status.ok() (nothing to deliver).
void encode_completion_reply(std::vector<std::uint8_t>& out, std::uint64_t tag,
                             const core::Status& status,
                             const Completion* completion);
core::Status decode_completion_reply(Reader& r, core::Status* status,
                                     Completion* completion);

}  // namespace rlsched::serve::wire
