#pragma once
// Scheduling-as-a-service: a long-lived multi-tenant session daemon that
// multiplexes thousands of concurrent scheduling sessions — independent
// simulated clusters, what-if queries, replay streams — onto ONE batched
// inference engine.
//
// Architecture:
//
//   clients (any thread)                 dispatcher (one thread at a time)
//   --------------------                 --------------------------------
//   create_session / destroy_session     admit: pop a session's next queued
//   submit(ScheduleRequest) -> id          request, reset its pooled env
//   try_take / wait(id)                  step:  group ACTIVE episodes by
//         |                                policy, pack up to B observation
//         v                                windows per group into one
//   session table (mutex-guarded):        B x 128 batched policy forward
//     slot = { generation, config,        (rl::batched_argmax), step each
//              pooled SchedulingEnv,      env with its own argmax
//              request queue }          complete: store the Completion,
//                                         re-admit the session's next
//                                         request, recycle envs of closed
//                                         sessions into the pool
//
// The daemon speaks the same core::ScheduleRequest / ScheduleResult /
// Status contract as the in-process façade; protocol failures (unknown
// session, table full, cancelled-by-destroy, ...) map onto the same
// core::StatusCode enum.
//
// Cross-session batching is BITWISE INVISIBLE in every result: each
// batched logits row equals the unbatched forward of that window (the
// rl::batched_argmax contract), and sessions share nothing but the policy
// weights, so N sessions drained at batch width B produce exactly the
// results of N sessions served serially (tests/test_serve_daemon.cpp
// gates this, and bench_serve_load re-checks it before every timed run).
//
// Threading contract: the session table, request queues, and completion
// store are internally synchronized — any thread may create/destroy
// sessions, submit, and poll concurrently. Episode execution (envs +
// policy forwards) is serialized on one dispatcher at a time: either the
// background thread after start(), or the caller of drain(). Registered
// policies are driven only by that dispatcher, so their mutable forward
// scratch needs no locking; they must outlive the daemon.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/api.hpp"
#include "core/status.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sim/env.hpp"
#include "trace/job.hpp"

namespace rlsched::serve {

/// Per-session immutable configuration: the simulated cluster the session
/// schedules on and the policy (by registry id) that makes its decisions.
/// Per-request knobs (backfill, processors override for what-if queries,
/// streaming chunk) ride on the core::ScheduleRequest itself.
struct SessionConfig {
  int processors = 0;        ///< cluster size; must be > 0
  std::uint32_t policy = 0;  ///< id from Daemon::register_policy()
};

/// Generation-tagged session handle: destroying a session bumps the slot
/// generation, so a stale handle is detected (kNotFound) instead of
/// silently addressing the slot's next tenant.
struct SessionId {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;
};

struct RequestId {
  std::uint64_t value = 0;  ///< 0 = invalid
};

struct DaemonConfig {
  /// runtime.batch = cross-session windows per batched policy forward
  /// (0 defers to RLSCHED_BATCH, then the built-in default — the same
  /// precedence chain as RLSchedulerConfig). runtime.workers is not used:
  /// episode execution is single-dispatcher by design (the batched forward
  /// is where the parallelism lives).
  core::RuntimeConfig runtime;
  std::size_t max_sessions = 1u << 20;
};

struct DaemonStats {
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_destroyed = 0;
  std::uint64_t live_sessions = 0;
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_completed = 0;  ///< includes failed, not cancelled
  std::uint64_t requests_failed = 0;     ///< completed with a non-OK status
  std::uint64_t requests_cancelled = 0;  ///< dropped by destroy_session
  std::uint64_t episodes = 0;            ///< sequences scheduled
  std::uint64_t decisions = 0;           ///< env steps taken
  std::uint64_t forwards = 0;            ///< batched policy forwards
  std::uint64_t forward_windows = 0;     ///< sum of windows over forwards
};

/// A finished request: the daemon-side status (OK unless the engine
/// rejected the episode or the session was destroyed first), the runs, and
/// the submit-to-completion latency the load bench aggregates into
/// p50/p99.
struct Completion {
  core::Status status;
  core::ScheduleResult result;
  double latency_seconds = 0.0;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig cfg = {});
  ~Daemon();  ///< stop()s the dispatcher; queued requests are dropped

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Register a policy for sessions to reference. The daemon borrows the
  /// policy (caller keeps ownership; it must outlive the daemon) and
  /// prewarms its batch scratch to the daemon's batch width. Only the
  /// dispatcher ever runs forwards on it.
  std::uint32_t register_policy(const rl::Policy& policy);

  core::StatusOr<SessionId> create_session(const SessionConfig& cfg);

  /// Destroy a session. Queued requests complete as kCancelled; an episode
  /// already in flight on the dispatcher finishes and delivers its result
  /// (a replay you asked for is a replay you get), after which the
  /// session's env returns to the pool and the slot generation bumps.
  core::Status destroy_session(SessionId id);

  /// Enqueue a request on a session. jobs/sequences payloads are COPIED
  /// into the queue (the caller's buffers are free immediately); stream
  /// sources are borrowed until completion. request.processors == 0 uses
  /// the session's cluster size; nonzero overrides it for this request
  /// (what-if queries on a foreign cluster reuse the session's env).
  core::StatusOr<RequestId> submit(SessionId id,
                                   const core::ScheduleRequest& request);

  /// Non-blocking completion poll: kUnavailable while pending, kNotFound
  /// for ids never issued (or already taken). A completion is delivered
  /// exactly once.
  core::Status try_take(RequestId id, Completion* out);

  /// Block until `id` completes (requires a running dispatcher or an
  /// already-available completion; kFailedPrecondition otherwise — a
  /// wait that nothing can satisfy must not hang).
  core::Status wait(RequestId id, Completion* out);

  /// Submit + run to completion, for synchronous callers: drains on the
  /// calling thread when no dispatcher is running, waits otherwise.
  core::Status schedule(SessionId id, const core::ScheduleRequest& request,
                        core::ScheduleResult* out);

  /// Serve every queued request to completion on the CALLING thread.
  /// Returns the number of requests completed; kFailedPrecondition while a
  /// background dispatcher owns execution.
  core::StatusOr<std::size_t> drain();

  /// Start / stop the background dispatcher thread. stop() is clean
  /// shutdown: the in-flight batch finishes, queued work stays queued.
  void start();
  void stop();

  std::size_t batch() const { return batch_; }
  std::size_t live_sessions() const;
  DaemonStats stats() const;

 private:
  struct PendingRequest {
    std::uint64_t id = 0;
    std::vector<std::vector<trace::Job>> seqs;  ///< owned copies
    trace::JobSource* stream = nullptr;
    int processors = 0;  ///< resolved against the session at submit
    bool backfill = false;
    std::size_t chunk_jobs = 4096;
    std::chrono::steady_clock::time_point submitted;
  };

  struct Slot {
    std::uint32_t index = 0;
    std::uint32_t gen = 1;
    bool live = false;
    bool closing = false;  ///< destroy requested while an episode ran
    bool active = false;   ///< episode in flight (dispatcher-owned)
    bool ready = false;    ///< queued in ready_ for admission
    SessionConfig cfg;
    std::unique_ptr<sim::SchedulingEnv> env;  ///< pooled across sessions
    std::deque<PendingRequest> queue;

    // Episode state, touched only by the dispatcher while `active`.
    PendingRequest current;
    const rl::Policy* policy = nullptr;
    std::size_t seq_index = 0;
    core::ScheduleResult partial;
  };

  void dispatcher_loop();

  // All of the following run on the dispatcher (under dispatch_mu_).
  std::size_t run_until_idle();
  void admit_ready_sessions();
  bool activate(Slot& slot);  ///< resets env; false = request finished
  void step_active_once();
  bool any_active() const;
  void finish_request(Slot& slot, core::Status status);
  void release_slot_locked(Slot& slot);  ///< mu_ held

  void complete_locked(std::uint64_t id,
                       std::chrono::steady_clock::time_point submitted,
                       core::Status status, core::ScheduleResult result);
  Slot* resolve_locked(SessionId id);

  const std::size_t batch_;
  const std::size_t max_sessions_;

  mutable std::mutex mu_;  ///< session table, queues, completions, stats
  std::condition_variable work_cv_;  ///< dispatcher wakeup
  std::condition_variable done_cv_;  ///< wait() wakeup
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::unique_ptr<sim::SchedulingEnv>> env_pool_;
  std::vector<const rl::Policy*> policies_;
  std::unordered_map<std::uint64_t, Completion> completions_;
  std::unordered_set<std::uint64_t> inflight_;
  std::deque<std::uint32_t> ready_;  ///< slots with admissible work
  std::size_t queued_requests_ = 0;  ///< dispatcher wakeup predicate
  std::uint64_t next_request_id_ = 1;
  DaemonStats stats_;
  bool started_ = false;
  bool stop_ = false;
  std::thread dispatcher_;

  // Hot dispatcher counters, updated without mu_; stats() folds them in.
  std::atomic<std::uint64_t> episodes_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> forward_windows_{0};

  std::mutex dispatch_mu_;  ///< serializes episode execution
  // Dispatcher scratch: active episodes bucketed by policy id, plus the
  // batched-forward slabs (sized once to batch_).
  std::vector<std::vector<Slot*>> active_by_policy_;
  std::vector<Slot*> admit_scratch_;
  std::size_t run_completed_ = 0;
  rl::ObservationBuilder builder_;
  std::vector<rl::Observation> obs_;
  std::vector<const rl::Observation*> obs_ptr_;
  std::vector<float> logits_;
  std::vector<std::uint32_t> actions_;
  std::vector<Slot*> lane_;  ///< window slot -> episode, per chunk
};

}  // namespace rlsched::serve
