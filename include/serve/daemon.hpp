#pragma once
// Scheduling-as-a-service: a long-lived multi-tenant session daemon that
// multiplexes thousands of concurrent scheduling sessions — independent
// simulated clusters, what-if queries, replay streams — onto batched
// inference engines.
//
// Architecture:
//
//   clients (any thread)                 dispatcher shards (1..N threads)
//   --------------------                 --------------------------------
//   create_session / destroy_session     admit: pop a session's next queued
//   submit(ScheduleRequest) -> id          request, attach a pooled env,
//   try_take / wait(id)                    reset it
//         |                              step:  group ACTIVE episodes by
//         v                                policy, pack up to B observation
//   session table (mutex-guarded):        windows per group into one
//     slot = { generation, config,        B x 128 batched policy forward
//              request queue,             (rl::batched_argmax), step each
//              env while active }         env with its own argmax
//                                       complete: store the Completion,
//                                         re-admit the session's next
//                                         request or return the env to the
//                                         pool (idle sessions hold NO env,
//                                         so a 100k-session table stays
//                                         slim)
//
// PER-POLICY SHARDING: policy id p executes on dispatcher shard
// p % dispatchers. Sessions of independent policies batch-forward in
// parallel on different shards; sessions of one policy always execute on
// one shard, so each registered policy's mutable forward scratch is still
// driven by exactly one thread and needs no locking. Because a session's
// episodes depend only on its own env and its policy's weights, N-shard
// execution is BITWISE IDENTICAL to single-dispatcher execution
// (tests/test_serve_daemon.cpp and bench_serve_load gate this). Corollary:
// with dispatchers > 1, registering the SAME rl::Policy object under two
// ids that map to different shards is a data race — give each id its own
// (identically-weighted, if desired) object.
//
// The daemon speaks the same core::ScheduleRequest / ScheduleResult /
// Status contract as the in-process façade; protocol failures (unknown
// session, table full, cancelled-by-destroy, ...) map onto the same
// core::StatusCode enum. serve::Server exposes exactly this contract over
// a socket (serve/wire.hpp).
//
// Cross-session batching is BITWISE INVISIBLE in every result: each
// batched logits row equals the unbatched forward of that window (the
// rl::batched_argmax contract), and sessions share nothing but the policy
// weights, so N sessions drained at batch width B produce exactly the
// results of N sessions served serially (tests/test_serve_daemon.cpp
// gates this, and bench_serve_load re-checks it before every timed run).
//
// Threading contract: the session table, request queues, and completion
// store are internally synchronized — any thread may create/destroy
// sessions, submit, and poll concurrently. Episode execution is serialized
// PER SHARD: either the background threads after start(), or the caller of
// drain() (which serves every shard on the calling thread). Registered
// policies are driven only by their shard's dispatcher; they must outlive
// the daemon.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/status.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sim/env.hpp"
#include "trace/job.hpp"

namespace rlsched::serve {

/// Per-session immutable configuration: the simulated cluster the session
/// schedules on and the policy (by registry id) that makes its decisions.
/// Per-request knobs (backfill, processors override for what-if queries,
/// streaming chunk) ride on the core::ScheduleRequest itself.
struct SessionConfig {
  int processors = 0;        ///< cluster size; must be > 0
  std::uint32_t policy = 0;  ///< id from Daemon::register_policy()
};

/// Generation-tagged session handle: destroying a session bumps the slot
/// generation, so a stale handle is detected (kNotFound) instead of
/// silently addressing the slot's next tenant.
struct SessionId {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;
};

struct RequestId {
  std::uint64_t value = 0;  ///< 0 = invalid
};

/// What submit() does when a shard's queue sits at max_queue_depth.
enum class ShedPolicy : std::uint8_t {
  kRejectNew,   ///< refuse the incoming submit with kResourceExhausted
  kShedOldest,  ///< complete the shard's oldest queued request as
                ///< kResourceExhausted, then accept the new one
};

struct DaemonConfig {
  /// runtime.batch = cross-session windows per batched policy forward
  /// (0 defers to RLSCHED_BATCH, then the built-in default — the same
  /// precedence chain as RLSchedulerConfig). runtime.workers is not used:
  /// per-shard execution is single-threaded by design (the batched forward
  /// is where the within-policy parallelism lives).
  core::RuntimeConfig runtime;
  std::size_t max_sessions = 1u << 20;
  /// Dispatcher shards (0 is treated as 1). Policy id p executes on shard
  /// p % dispatchers; see the sharding contract in the header comment.
  std::size_t dispatchers = 1;
  /// Per-shard bound on QUEUED (admissible, not yet executing) requests;
  /// 0 = unbounded. At the bound, submit() applies shed_policy — overload
  /// degrades to explicit kResourceExhausted answers instead of unbounded
  /// queue growth and unbounded tail latency.
  std::size_t max_queue_depth = 0;
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  /// ~Daemon() drain budget: how long destruction keeps serving queued
  /// work (on the destroying thread) before cancelling the remainder.
  /// 0 = cancel queued work immediately. See shutdown().
  double drain_deadline_seconds = 0.0;
};

struct DaemonStats {
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_destroyed = 0;
  std::uint64_t live_sessions = 0;
  std::uint64_t requests_submitted = 0;
  /// Invariant (gated by tests and the perf gate): requests_submitted ==
  /// requests_completed + requests_cancelled + requests_shed, at every
  /// quiescent point INCLUDING after shutdown()/destruction.
  std::uint64_t requests_completed = 0;  ///< incl. failed; not cancelled/shed
  std::uint64_t requests_failed = 0;     ///< completed with a non-OK status
  std::uint64_t requests_cancelled = 0;  ///< destroy_session or shutdown()
  std::uint64_t requests_shed = 0;       ///< kResourceExhausted under overload
  std::uint64_t requests_rejected = 0;   ///< refused at submit (reject-new;
                                         ///< never counted as submitted)
  std::uint64_t requests_expired = 0;    ///< completed as kDeadlineExceeded
  std::uint64_t episodes = 0;            ///< sequences scheduled
  std::uint64_t decisions = 0;           ///< env steps taken
  std::uint64_t forwards = 0;            ///< batched policy forwards
  std::uint64_t forward_windows = 0;     ///< sum of windows over forwards
};

/// A finished request: the daemon-side status (OK unless the engine
/// rejected the episode or the session was destroyed first), the runs, and
/// the submit-to-completion latency the load bench aggregates into
/// p50/p99.
struct Completion {
  core::Status status;
  core::ScheduleResult result;
  double latency_seconds = 0.0;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig cfg = {});
  /// shutdown(cfg.drain_deadline_seconds): stops the dispatchers, drains
  /// within the configured budget, then delivers kCancelled for whatever
  /// is still queued — accounting balances across destruction.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Register a policy for sessions to reference. The daemon borrows the
  /// policy (caller keeps ownership; it must outlive the daemon) and
  /// prewarms its batch scratch to the daemon's batch width. Only the
  /// owning shard's dispatcher ever runs forwards on it.
  std::uint32_t register_policy(const rl::Policy& policy);

  core::StatusOr<SessionId> create_session(const SessionConfig& cfg);

  /// Destroy a session. Queued requests complete as kCancelled; an episode
  /// already in flight on a dispatcher finishes and delivers its result
  /// (a replay you asked for is a replay you get), after which the
  /// session's env returns to the pool and the slot generation bumps.
  core::Status destroy_session(SessionId id);

  /// Enqueue a request on a session. jobs/sequences payloads are COPIED
  /// into the queue (the caller's buffers are free immediately); stream
  /// sources are borrowed until completion. request.processors == 0 uses
  /// the session's cluster size; nonzero overrides it for this request
  /// (what-if queries on a foreign cluster reuse the session's env).
  core::StatusOr<RequestId> submit(SessionId id,
                                   const core::ScheduleRequest& request);

  /// Non-blocking completion poll: kUnavailable while pending, kNotFound
  /// for ids never issued (or already taken). A completion is delivered
  /// exactly once.
  core::Status try_take(RequestId id, Completion* out);

  /// Block until `id` completes. Requires someone who can complete it: a
  /// running background dispatcher, an active drain()er on another thread,
  /// or an already-available completion — kFailedPrecondition otherwise (a
  /// wait that nothing can satisfy must not hang).
  core::Status wait(RequestId id, Completion* out);

  /// Submit + run to completion, for synchronous callers: drains on the
  /// calling thread when no dispatcher is running, waits otherwise. Racing
  /// start()/stop()/drain() transitions are retried a BOUNDED number of
  /// times; when every retry loses the race (adversarial lifecycle churn),
  /// the call returns a terminal kUnavailable and the submitted request
  /// remains pollable via try_take()/wait() — it never busy-spins.
  core::Status schedule(SessionId id, const core::ScheduleRequest& request,
                        core::ScheduleResult* out);

  /// Serve every queued request to completion on the CALLING thread,
  /// visiting each shard in turn. Returns the number of requests
  /// completed; kFailedPrecondition while a background dispatcher owns
  /// execution. Concurrent drain() calls are legal and serialize per
  /// shard.
  core::StatusOr<std::size_t> drain();

  /// Start / stop the background dispatcher threads (one per shard).
  /// stop() is clean PAUSE: in-flight batches finish, queued work stays
  /// queued (a later start()/drain() serves it).
  void start();
  void stop();

  /// Terminal shutdown with delivery guarantees: stop(), then serve queued
  /// work on the CALLING thread for up to drain_deadline_seconds, then
  /// complete every request still queued as kCancelled. Nothing is ever
  /// silently dropped: after shutdown(), submitted == completed +
  /// cancelled + shed. Sessions stay live (their handles remain valid);
  /// a budget of 0 cancels all queued work immediately and
  /// deterministically.
  void shutdown(double drain_deadline_seconds);

  /// Observer fired inside complete_locked for every finished (or
  /// cancelled) request, with the daemon mutex HELD: the hook must not
  /// call back into the daemon — push the id somewhere and wake your own
  /// consumer (serve::Server uses an eventfd). Set before start().
  using CompletionHook = void (*)(void* ctx, std::uint64_t request_id);
  void set_completion_hook(CompletionHook hook, void* ctx);

  std::size_t batch() const { return batch_; }
  std::size_t dispatchers() const { return shards_.size(); }
  std::size_t live_sessions() const;
  DaemonStats stats() const;

 private:
  struct PendingRequest {
    std::uint64_t id = 0;
    std::vector<std::vector<trace::Job>> seqs;  ///< owned copies
    trace::JobSource* stream = nullptr;
    int processors = 0;  ///< resolved against the session at submit
    bool backfill = false;
    std::size_t chunk_jobs = 4096;
    std::chrono::steady_clock::time_point submitted;
    /// Absolute completion deadline; time_point::max() = none. Enforced at
    /// admission (expired work never attaches an env) and between
    /// inference steps (an expired in-flight episode is abandoned).
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  struct Slot {
    std::uint32_t index = 0;
    std::uint32_t gen = 1;
    bool live = false;
    bool closing = false;  ///< destroy requested while an episode ran
    bool active = false;   ///< episode in flight (dispatcher-owned)
    bool ready = false;    ///< queued in its shard's ready deque
    SessionConfig cfg;
    /// Attached by the dispatcher at admit, returned to the pool when the
    /// session goes idle — an idle session costs its queue, not an env.
    std::unique_ptr<sim::SchedulingEnv> env;
    std::deque<PendingRequest> queue;

    // Episode state, touched only by the owning shard while `active`.
    PendingRequest current;
    const rl::Policy* policy = nullptr;
    std::size_t seq_index = 0;
    core::ScheduleResult partial;
  };

  /// One dispatcher shard: its slice of the ready queue, its wakeup
  /// channel, and all the scratch its executions need. `dispatch_mu`
  /// serializes episode execution on this shard (background thread or
  /// drain()er); everything below it is owned by whoever holds it.
  struct Shard {
    std::size_t id = 0;               ///< index into shards_
    std::deque<std::uint32_t> ready;  ///< mu_-guarded
    std::size_t queued = 0;           ///< mu_-guarded admissible requests
    /// mu_-guarded shard-wide submission order, maintained only under
    /// ShedPolicy::kShedOldest with a queue bound: (slot index, request
    /// id) pairs let shed_oldest_locked find the oldest queued request in
    /// amortized O(1). Entries whose request already left its queue are
    /// stale and skipped; periodic compaction bounds the memory.
    std::deque<std::pair<std::uint32_t, std::uint64_t>> fifo;
    std::condition_variable work_cv;  ///< paired with mu_
    std::thread thread;

    std::mutex dispatch_mu;
    std::vector<std::vector<Slot*>> active_by_policy;
    std::vector<Slot*> admit_scratch;
    std::size_t run_completed = 0;
    rl::ObservationBuilder builder;
    std::vector<rl::Observation> obs;
    std::vector<const rl::Observation*> obs_ptr;
    std::vector<float> logits;
    std::vector<std::uint32_t> actions;
    std::vector<Slot*> lane;  ///< window slot -> episode, per chunk
  };

  std::size_t shard_of(std::uint32_t policy) const {
    return policy % shards_.size();
  }

  void dispatcher_loop(Shard& shard);

  // All of the following run on a shard (under its dispatch_mu).
  std::size_t run_until_idle(
      Shard& shard, std::chrono::steady_clock::time_point deadline =
                        std::chrono::steady_clock::time_point::max());
  void admit_ready_sessions(Shard& shard);
  bool shed_oldest_locked(Shard& shard);  ///< mu_ held
  bool activate(Shard& shard, Slot& slot);  ///< false = request finished
  void step_active_once(Shard& shard);
  static bool any_active(const Shard& shard);
  void finish_request(Shard& shard, Slot& slot, core::Status status);
  void release_slot_locked(Slot& slot);  ///< mu_ held

  void complete_locked(std::uint64_t id,
                       std::chrono::steady_clock::time_point submitted,
                       core::Status status, core::ScheduleResult result);
  Slot* resolve_locked(SessionId id);

  const std::size_t batch_;
  const std::size_t max_sessions_;
  const std::size_t max_queue_depth_;
  const ShedPolicy shed_policy_;
  const double drain_deadline_seconds_;

  mutable std::mutex mu_;  ///< session table, queues, completions, stats
  std::condition_variable done_cv_;  ///< wait() wakeup
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::unique_ptr<sim::SchedulingEnv>> env_pool_;
  std::vector<const rl::Policy*> policies_;
  std::unordered_map<std::uint64_t, Completion> completions_;
  std::unordered_set<std::uint64_t> inflight_;
  std::uint64_t next_request_id_ = 1;
  DaemonStats stats_;
  bool started_ = false;
  bool stop_ = false;
  int active_drainers_ = 0;  ///< wait() liveness: drains count as dispatch
  CompletionHook completion_hook_ = nullptr;
  void* completion_hook_ctx_ = nullptr;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Hot dispatcher counters, updated without mu_; stats() folds them in.
  std::atomic<std::uint64_t> episodes_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> forward_windows_{0};
};

}  // namespace rlsched::serve
