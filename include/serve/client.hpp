#pragma once
// serve::Client — the in-process Daemon surface re-exposed over a
// serve::Server socket: the same create/destroy/submit/try_take/wait/
// schedule verbs with the same core::Status vocabulary, so swapping the
// transport swaps nothing else (and the results are bitwise identical —
// the wire round-trips every double by bit pattern).
//
// Threading: the blocking verbs assume ONE outstanding operation at a
// time (each reads exactly its own reply frame). The pipelined pair
// send_schedule()/recv_completion() supports the open-loop bench split:
// one submitter thread sending (sends are serialized internally), one
// collector thread receiving — never more than one reader.
//
// RESILIENCE (opt-in via ClientConfig): with retry.max_attempts > 0 the
// blocking verbs survive transport failures — jittered exponential-backoff
// retry keyed off a deterministic RNG substream (tests replay exactly per
// seed), reconnect/failover round-robin across the connect() endpoint
// list, and SESSION VIRTUALIZATION: the ids this client hands out are
// local, mapped to whatever the current server issued, and every tracked
// session is re-created on the new server after a failover, so a session
// handle stays valid across server deaths. Retried verbs are the
// idempotent ones (see docs/wire-protocol.md): schedule/submit re-execute
// deterministically, create is made safe by virtualization, destroy is
// idempotent up to kNotFound. RequestIds are NOT virtualized: a pre-
// failover id answers kNotFound on the new server (prefer schedule()).
// When retries exhaust, the verb returns kAborted and the connection is
// closed. The default config (max_attempts == 0) changes nothing.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/api.hpp"
#include "core/status.hpp"
#include "serve/daemon.hpp"
#include "serve/fault.hpp"
#include "serve/wire.hpp"

namespace rlsched::serve {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Jittered exponential backoff; max_attempts == 0 disables resilience
/// entirely (single attempt, no virtualization — the pre-resilience
/// contract, and the default).
struct RetryPolicy {
  int max_attempts = 0;  ///< total tries per verb, incl. the first
  double initial_backoff_seconds = 0.001;
  double max_backoff_seconds = 0.1;
  double multiplier = 2.0;
  /// Substream key for the jitter: retries replay exactly per seed.
  std::uint64_t seed = 1;
};

struct ClientConfig {
  /// 0 = OS default blocking connect; else nonblocking connect + poll.
  double connect_timeout_seconds = 0.0;
  /// 0 = no timeout; else SO_RCVTIMEO/SO_SNDTIMEO on the socket — a stalled
  /// peer surfaces as a transport error (retried when resilient).
  double io_timeout_seconds = 0.0;
  RetryPolicy retry;
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientConfig cfg) : cfg_(std::move(cfg)) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  core::Status connect(const std::string& host, std::uint16_t port);
  /// Failover pool: connects to the first reachable endpoint; resilient
  /// retries rotate round-robin from the current one.
  core::Status connect(std::vector<Endpoint> endpoints);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Wire this client's I/O through a fault injector (tests). Null resets
  /// to the raw syscalls. Set before issuing verbs.
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  // --- blocking verbs (one outstanding op per client) ---
  core::StatusOr<SessionId> create_session(const SessionConfig& cfg);
  core::Status destroy_session(SessionId id);
  /// Streams are rejected locally (kInvalidArgument): a trace::JobSource
  /// cannot cross a process boundary.
  core::StatusOr<RequestId> submit(SessionId id,
                                   const core::ScheduleRequest& request);
  core::Status try_take(RequestId id, Completion* out);
  core::Status wait(RequestId id, Completion* out);
  core::Status schedule(SessionId id, const core::ScheduleRequest& request,
                        core::ScheduleResult* out);

  // --- pipelined path (open-loop load generation) ---
  /// Fire a kSchedule frame tagged `tag` without waiting for the reply.
  core::Status send_schedule(SessionId id,
                             const core::ScheduleRequest& request,
                             std::uint64_t tag);
  /// Block for the next kCompletionReply frame; `*tag` identifies which
  /// send_schedule it answers. A non-OK return is a transport/protocol
  /// failure; per-request failures come back in completion->status.
  core::Status recv_completion(std::uint64_t* tag, Completion* out);

  // --- raw escape hatch (malformed-frame tests) ---
  core::Status send_raw(const std::uint8_t* data, std::size_t len);
  /// Read one frame of any type; returns its header and decoded leading
  /// Status (every reply starts with one).
  core::Status recv_reply(wire::Header* header, core::Status* status);

 private:
  /// A tracked (virtualized) session: what to re-create after failover,
  /// and the id the CURRENT server knows it by.
  struct Tracked {
    SessionConfig cfg;
    SessionId remote;
  };

  bool resilient() const { return cfg_.retry.max_attempts > 0; }
  core::Status send_all(const std::uint8_t* data, std::size_t len);
  core::Status recv_frame(wire::Header* header,
                          std::vector<std::uint8_t>* payload);

  core::Status connect_fd(const std::string& host, std::uint16_t port);
  core::Status reconnect();
  core::Status reestablish_sessions();
  core::Status translate(SessionId local, SessionId* remote) const;
  void backoff_sleep(int attempt);
  template <typename Op>
  core::Status with_retry(const Op& op);

  // Single-attempt verb bodies (remote ids, no retry).
  core::StatusOr<SessionId> create_session_once(const SessionConfig& cfg);
  core::Status destroy_session_once(SessionId id);
  core::StatusOr<RequestId> submit_once(SessionId id,
                                        const core::ScheduleRequest& request);
  core::Status take_once(wire::MsgType type, RequestId id, Completion* out);
  core::Status schedule_once(SessionId id,
                             const core::ScheduleRequest& request,
                             core::ScheduleResult* out);

  int fd_ = -1;
  std::mutex send_mu_;
  std::uint64_t next_tag_ = 1;
  ClientConfig cfg_;
  FaultInjector* fault_ = nullptr;
  std::vector<Endpoint> endpoints_;
  std::size_t current_endpoint_ = 0;
  std::unordered_map<std::uint32_t, Tracked> sessions_;  ///< resilient only
  std::uint32_t next_local_index_ = 0;
  std::uint64_t backoff_stream_ = 0;  ///< substream counter for jitter
};

}  // namespace rlsched::serve
