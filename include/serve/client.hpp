#pragma once
// serve::Client — the in-process Daemon surface re-exposed over a
// serve::Server socket: the same create/destroy/submit/try_take/wait/
// schedule verbs with the same core::Status vocabulary, so swapping the
// transport swaps nothing else (and the results are bitwise identical —
// the wire round-trips every double by bit pattern).
//
// Threading: the blocking verbs assume ONE outstanding operation at a
// time (each reads exactly its own reply frame). The pipelined pair
// send_schedule()/recv_completion() supports the open-loop bench split:
// one submitter thread sending (sends are serialized internally), one
// collector thread receiving — never more than one reader.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/status.hpp"
#include "serve/daemon.hpp"
#include "serve/wire.hpp"

namespace rlsched::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  core::Status connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  // --- blocking verbs (one outstanding op per client) ---
  core::StatusOr<SessionId> create_session(const SessionConfig& cfg);
  core::Status destroy_session(SessionId id);
  /// Streams are rejected locally (kInvalidArgument): a trace::JobSource
  /// cannot cross a process boundary.
  core::StatusOr<RequestId> submit(SessionId id,
                                   const core::ScheduleRequest& request);
  core::Status try_take(RequestId id, Completion* out);
  core::Status wait(RequestId id, Completion* out);
  core::Status schedule(SessionId id, const core::ScheduleRequest& request,
                        core::ScheduleResult* out);

  // --- pipelined path (open-loop load generation) ---
  /// Fire a kSchedule frame tagged `tag` without waiting for the reply.
  core::Status send_schedule(SessionId id,
                             const core::ScheduleRequest& request,
                             std::uint64_t tag);
  /// Block for the next kCompletionReply frame; `*tag` identifies which
  /// send_schedule it answers. A non-OK return is a transport/protocol
  /// failure; per-request failures come back in completion->status.
  core::Status recv_completion(std::uint64_t* tag, Completion* out);

  // --- raw escape hatch (malformed-frame tests) ---
  core::Status send_raw(const std::uint8_t* data, std::size_t len);
  /// Read one frame of any type; returns its header and decoded leading
  /// Status (every reply starts with one).
  core::Status recv_reply(wire::Header* header, core::Status* status);

 private:
  core::Status send_all(const std::uint8_t* data, std::size_t len);
  core::Status recv_frame(wire::Header* header,
                          std::vector<std::uint8_t>* payload);

  int fd_ = -1;
  std::mutex send_mu_;
  std::uint64_t next_tag_ = 1;
};

}  // namespace rlsched::serve
