#pragma once
// Deterministic fault injection for the serve:: I/O paths. A FaultPlan
// names, per syscall site, the probability of each injected failure mode;
// a FaultInjector owns the plan plus per-site operation counters and turns
// (seed, site, op#) into a reproducible decision through the splitmix64
// finalizer — the SAME plan and seed replay the SAME faults regardless of
// thread interleaving, so every chaos test in tests/test_serve_faults.cpp
// is exact per RLSCHED_FAULT_SEED.
//
// Integration is opt-in and zero-cost when unset: serve::Client and
// serve::Server route every send()/recv() through the inline fault_send /
// fault_recv wrappers, whose first instruction is a null check on the
// injector pointer — the production path pays one predictable branch and
// touches none of this machinery.
//
// Injected failure modes (decided per operation, mutually exclusive,
// evaluated in this cumulative order):
//   disconnect  shutdown(SHUT_RDWR) the socket. On a send of more than one
//               byte, HALF the bytes are written first — a torn frame: the
//               peer sees a valid prefix and then EOF mid-frame.
//   eagain      report EAGAIN without touching the socket (storms arise
//               naturally from per-op probability). Safe at every site:
//               the client treats it as a lost connection (then retries),
//               the server re-polls via epoll/POLLOUT.
//   short_io    truncate the operation to 1 byte — the partial-write /
//               partial-read paths must finish the frame in later calls.
//   delay       sleep delay_us, then perform the operation normally
//               (latency without corruption; shakes out ordering races).
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>

#include <sys/types.h>

namespace rlsched::serve {

/// Probabilities in [0, 1] per I/O operation; their sum must be <= 1.
/// All-zero (the default) injects nothing even when an injector is wired.
struct FaultPlan {
  std::uint64_t seed = 1;     ///< replay key (RLSCHED_FAULT_SEED in CI)
  double disconnect = 0.0;    ///< torn frame / mid-request disconnect
  double eagain = 0.0;        ///< spurious EAGAIN, no bytes moved
  double short_io = 0.0;      ///< truncate the op to 1 byte
  double delay = 0.0;         ///< delayed completion (sleep, then do it)
  std::uint32_t delay_us = 100;
};

class FaultInjector {
 public:
  /// One counter stream per call site, so a decision depends only on
  /// (seed, site, how many ops this site ran before) — never on what the
  /// other sites did or which thread got there first.
  enum class Site : std::uint8_t {
    kClientSend = 0,
    kClientRecv,
    kServerSend,
    kServerRecv,
    kCount,
  };

  explicit FaultInjector(const FaultPlan& plan);

  /// Drop-in ::send / ::recv with the plan applied. Return/errno contract
  /// matches the syscalls (injected EAGAIN returns -1 with errno set).
  ssize_t send(Site site, int fd, const void* buf, std::size_t len,
               int flags);
  ssize_t recv(Site site, int fd, void* buf, std::size_t len, int flags);

  const FaultPlan& plan() const { return plan_; }

 private:
  enum class Action : std::uint8_t {
    kNone,
    kDisconnect,
    kEagain,
    kShortIo,
    kDelay,
  };
  Action decide(Site site);

  FaultPlan plan_;
  // Atomic: the server's event threads hit kServerSend/kServerRecv
  // concurrently. The op-number SEQUENCE per site is still deterministic
  // (fetch_add allocates each number exactly once); padded so concurrent
  // sites don't false-share one cache line.
  struct alignas(64) Counter {
    std::atomic<std::uint64_t> ops{0};
  };
  Counter counters_[static_cast<std::size_t>(Site::kCount)];
};

/// Null-safe wrappers: the serve:: I/O paths call these unconditionally;
/// without an injector they compile down to the raw syscall behind one
/// predictable branch.
ssize_t fault_send(FaultInjector* f, FaultInjector::Site site, int fd,
                   const void* buf, std::size_t len, int flags);
ssize_t fault_recv(FaultInjector* f, FaultInjector::Site site, int fd,
                   void* buf, std::size_t len, int flags);

}  // namespace rlsched::serve
