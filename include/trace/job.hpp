#pragma once
// The in-memory job record shared by every ingestion path (materialized
// traces, sharded streaming readers) and the simulator.

#include <cstdint>

namespace rlsched::trace {

struct Job {
  std::int64_t id = 0;
  double submit_time = 0.0;     ///< seconds since trace start
  double run_time = 0.0;        ///< actual runtime (seconds)
  double requested_time = 0.0;  ///< user runtime estimate (>= run_time)
  int requested_procs = 1;
  int user = 0;

  // --- schedule state, written by the simulator ---
  double start_time = -1.0;  ///< < 0 while unscheduled

  void reset_schedule_state() { start_time = -1.0; }
  bool scheduled() const { return start_time >= 0.0; }
  double wait_time() const { return start_time - submit_time; }
  double end_time() const { return start_time + run_time; }
};

}  // namespace rlsched::trace
