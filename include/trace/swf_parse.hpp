#pragma once
// Standard Workload Format line parsing, shared by the materialized loader
// (Trace::load_swf) and the streaming ShardedReader. One implementation is
// load-bearing: the streamed-vs-materialized equivalence guarantee requires
// both ingestion paths to decode a given SWF row into the exact same Job.

#include <string>

#include "trace/job.hpp"

namespace rlsched::trace {

/// Value after "<key>:" in an SWF header comment line ("; MaxProcs: 128"),
/// or -1 when the key is absent.
long swf_header_value(const std::string& line, const char* key);

/// Decode one SWF data row (18 whitespace-separated numeric fields; rows
/// with at least 9 are accepted, matching archive traces that truncate the
/// tail columns). Returns false for malformed rows — fewer than 9 numeric
/// fields, e.g. a truncated final line — which callers skip; `out` is only
/// written on success. Never throws and reads only `line`.
bool swf_parse_row(const std::string& line, Job& out);

}  // namespace rlsched::trace
