#pragma once
// JobSource: the ingestion abstraction behind the simulator. A source hands
// out jobs in nondecreasing submit order, a bounded chunk at a time, so a
// consumer never needs the whole trace in memory. The materialized Trace
// implements it over its job vector; ShardedReader implements it by
// cursoring through SWF shard files with O(chunk) peak memory. The
// simulator's streaming reset() pulls from this interface on demand —
// streamed and materialized ingestion of the same trace produce bitwise
// identical schedules and metrics (tests/test_stream_equivalence.cpp).

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "trace/job.hpp"

namespace rlsched::trace {

class JobSource {
 public:
  virtual ~JobSource() = default;

  virtual const std::string& name() const = 0;

  /// Cluster size. 0 means unknown (only legal for empty sources).
  virtual int processors() const = 0;

  /// Append up to `max_jobs` further jobs to `out` (existing contents are
  /// untouched, so a consumer can fetch straight into its live buffer).
  /// Returns the number appended; 0 means the source is exhausted.
  /// Delivered jobs must be in nondecreasing submit order.
  virtual std::size_t fetch(std::size_t max_jobs, std::vector<Job>& out) = 0;

  /// Restart the cursor at the first job.
  virtual void rewind() = 0;

  /// Total job count when known up front (materialized traces); streams
  /// that would have to scan ahead return nullopt.
  virtual std::optional<std::size_t> size_hint() const { return std::nullopt; }
};

/// Table II column set, computed from a trace's jobs.
struct Characteristics {
  std::string name;
  int processors = 0;
  std::size_t jobs = 0;
  double mean_interarrival = 0.0;
  double mean_requested_time = 0.0;
  double mean_requested_procs = 0.0;
  std::size_t distinct_users = 0;
};

/// Incremental Table II calibration statistics: feed jobs chunk by chunk
/// (arbitrary shard boundaries), or accumulate shards independently and
/// merge(). O(distinct users) memory; Trace::characteristics() is this
/// accumulator run over the whole vector, so streamed and materialized
/// characteristics agree exactly.
class CharacteristicsAccumulator {
 public:
  void add(const Job& j) {
    ++count_;
    sum_requested_time_ += j.requested_time;
    sum_requested_procs_ += j.requested_procs;
    first_submit_ = std::min(first_submit_, j.submit_time);
    last_submit_ = std::max(last_submit_, j.submit_time);
    users_.insert(j.user);
  }

  void merge(const CharacteristicsAccumulator& o) {
    count_ += o.count_;
    sum_requested_time_ += o.sum_requested_time_;
    sum_requested_procs_ += o.sum_requested_procs_;
    first_submit_ = std::min(first_submit_, o.first_submit_);
    last_submit_ = std::max(last_submit_, o.last_submit_);
    users_.insert(o.users_.begin(), o.users_.end());
  }

  std::size_t count() const { return count_; }

  Characteristics finish(std::string name, int processors) const {
    Characteristics c;
    c.name = std::move(name);
    c.processors = processors;
    c.jobs = count_;
    if (count_ == 0) return c;
    const double n = static_cast<double>(count_);
    if (count_ > 1) {
      c.mean_interarrival = (last_submit_ - first_submit_) / (n - 1.0);
    }
    c.mean_requested_time = sum_requested_time_ / n;
    c.mean_requested_procs = sum_requested_procs_ / n;
    c.distinct_users = users_.size();
    return c;
  }

 private:
  std::size_t count_ = 0;
  double sum_requested_time_ = 0.0;
  double sum_requested_procs_ = 0.0;
  double first_submit_ = std::numeric_limits<double>::infinity();
  double last_submit_ = -std::numeric_limits<double>::infinity();
  std::set<int> users_;
};

}  // namespace rlsched::trace
