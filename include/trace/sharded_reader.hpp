#pragma once
// Sharded streaming SWF ingestion for archive-scale traces. A ShardedReader
// cursors through one SWF file — or a directory of shard files, consumed in
// lexicographic filename order as one concatenated trace — delivering jobs
// in fixed-size chunks with O(chunk) peak memory, so multi-million-job
// archives never materialize. Row decoding is shared with Trace::load_swf
// (trace/swf_parse.hpp): both paths produce bitwise-identical jobs, which
// is what lets the simulator guarantee streamed == materialized schedules.
//
// Malformed input contract (tests/test_swf_malformed.cpp):
//  * unreadable path / unreadable shard        -> std::runtime_error
//  * truncated or non-numeric data row         -> skipped, counted in
//                                                 rows_skipped() (same
//                                                 recovery as load_swf)
//  * submit times out of order                 -> std::runtime_error at the
//    offending row (streams cannot sort; load_swf sorts instead — an
//    unsorted archive must be materialized or pre-sorted)
//  * comment-only / empty shard files          -> transparently skipped;
//                                                 fetch() keeps reading the
//                                                 next shard
//  * mid-shard EOF                             -> short final chunk, then 0
//  * no "; MaxProcs:" header anywhere before the first data row and no
//    processors_hint                           -> std::runtime_error (a
//    stream cannot fall back to scanning every job like load_swf does;
//    for the same reason a header hidden AFTER data rows is not honored —
//    archives are expected in the standard header-block-first layout)

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/job_source.hpp"

namespace rlsched::trace {

struct ShardedReaderConfig {
  /// Cluster size to use when no shard header carries "; MaxProcs:" (or
  /// MaxNodes). 0 = none provided.
  int processors_hint = 0;
};

class ShardedReader final : public JobSource {
 public:
  /// `path` is an SWF file or a directory of shard files (every regular
  /// file, sorted by filename). Throws std::runtime_error when the path is
  /// unreadable, the directory holds no files, or the cluster size cannot
  /// be determined (see header contract above).
  explicit ShardedReader(const std::string& path, std::string name = "",
                         ShardedReaderConfig cfg = {});

  const std::string& name() const override { return name_; }
  int processors() const override { return processors_; }
  std::size_t fetch(std::size_t max_jobs, std::vector<Job>& out) override;
  void rewind() override;

  const std::vector<std::string>& shard_paths() const { return shards_; }
  /// Jobs delivered since the last rewind().
  std::size_t jobs_delivered() const { return delivered_; }
  /// Malformed data rows skipped since the last rewind().
  std::size_t rows_skipped() const { return skipped_; }

 private:
  bool open_next_shard();  ///< false when every shard is consumed

  std::string name_;
  std::vector<std::string> shards_;
  ShardedReaderConfig cfg_;
  int processors_ = 0;

  std::ifstream in_;
  std::size_t next_shard_ = 0;
  std::string line_;  ///< reused getline buffer
  double last_submit_ = 0.0;
  bool any_delivered_ = false;
  std::size_t delivered_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace rlsched::trace
