#pragma once
// Job traces: the materialized trace container and Standard Workload
// Format (SWF) import/export — the format of the Parallel Workloads
// Archive traces the paper evaluates on. The job record lives in
// trace/job.hpp; the streaming counterpart is trace/sharded_reader.hpp.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/job.hpp"
#include "trace/job_source.hpp"
#include "util/rng.hpp"

namespace rlsched::trace {

class Trace : public JobSource {
 public:
  Trace() = default;
  Trace(std::string name, int processors, std::vector<Job> jobs);

  /// Parse an SWF file. Cluster size comes from the "; MaxProcs:" header
  /// (falling back to the largest per-job request). Throws std::runtime_error
  /// on unreadable files.
  static Trace load_swf(const std::string& path, const std::string& name = "");

  /// Write the trace as SWF (18-column rows plus a MaxProcs header).
  void save_swf(const std::string& path) const;

  const std::string& name() const override { return name_; }
  int processors() const override { return processors_; }
  std::size_t size() const { return jobs_.size(); }

  // --- JobSource: stream the materialized jobs in submit order ---
  std::size_t fetch(std::size_t max_jobs, std::vector<Job>& out) override;
  void rewind() override { cursor_ = 0; }
  std::optional<std::size_t> size_hint() const override {
    return jobs_.size();
  }
  const Job& operator[](std::size_t i) const { return jobs_[i]; }
  const std::vector<Job>& jobs() const { return jobs_; }

  /// Contiguous slice [start, start+len), rebased so the first job submits
  /// at t=0 and with schedule state cleared. Out-of-range is clamped.
  std::vector<Job> sequence(std::size_t start, std::size_t len) const;

  /// Like sequence(), but written into `out` — reuses its capacity, so a
  /// caller with a warmed scratch vector (each rollout worker keeps one)
  /// performs no heap allocation.
  void sequence_into(std::size_t start, std::size_t len,
                     std::vector<Job>& out) const;

  /// Random contiguous `len`-job slice (the paper's evaluation protocol).
  std::vector<Job> sample_sequence(util::Rng& rng, std::size_t len) const;

  /// sample_sequence() into a reused scratch vector; consumes exactly the
  /// same rng draws, so the two variants pick identical slices.
  void sample_sequence_into(util::Rng& rng, std::size_t len,
                            std::vector<Job>& out) const;

  Characteristics characteristics() const;

 private:
  std::string name_;
  int processors_ = 0;
  std::vector<Job> jobs_;    ///< sorted by submit_time
  std::size_t cursor_ = 0;  ///< JobSource fetch position
};

}  // namespace rlsched::trace
