#pragma once
// Job traces: the in-memory job record, trace containers, and Standard
// Workload Format (SWF) import/export — the format of the Parallel
// Workloads Archive traces the paper evaluates on.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rlsched::trace {

struct Job {
  std::int64_t id = 0;
  double submit_time = 0.0;     ///< seconds since trace start
  double run_time = 0.0;        ///< actual runtime (seconds)
  double requested_time = 0.0;  ///< user runtime estimate (>= run_time)
  int requested_procs = 1;
  int user = 0;

  // --- schedule state, written by the simulator ---
  double start_time = -1.0;  ///< < 0 while unscheduled

  void reset_schedule_state() { start_time = -1.0; }
  bool scheduled() const { return start_time >= 0.0; }
  double wait_time() const { return start_time - submit_time; }
  double end_time() const { return start_time + run_time; }
};

/// Table II column set, computed from the loaded jobs.
struct Characteristics {
  std::string name;
  int processors = 0;
  std::size_t jobs = 0;
  double mean_interarrival = 0.0;
  double mean_requested_time = 0.0;
  double mean_requested_procs = 0.0;
  std::size_t distinct_users = 0;
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, int processors, std::vector<Job> jobs);

  /// Parse an SWF file. Cluster size comes from the "; MaxProcs:" header
  /// (falling back to the largest per-job request). Throws std::runtime_error
  /// on unreadable files.
  static Trace load_swf(const std::string& path, const std::string& name = "");

  /// Write the trace as SWF (18-column rows plus a MaxProcs header).
  void save_swf(const std::string& path) const;

  const std::string& name() const { return name_; }
  int processors() const { return processors_; }
  std::size_t size() const { return jobs_.size(); }
  const Job& operator[](std::size_t i) const { return jobs_[i]; }
  const std::vector<Job>& jobs() const { return jobs_; }

  /// Contiguous slice [start, start+len), rebased so the first job submits
  /// at t=0 and with schedule state cleared. Out-of-range is clamped.
  std::vector<Job> sequence(std::size_t start, std::size_t len) const;

  /// Like sequence(), but written into `out` — reuses its capacity, so a
  /// caller with a warmed scratch vector (each rollout worker keeps one)
  /// performs no heap allocation.
  void sequence_into(std::size_t start, std::size_t len,
                     std::vector<Job>& out) const;

  /// Random contiguous `len`-job slice (the paper's evaluation protocol).
  std::vector<Job> sample_sequence(util::Rng& rng, std::size_t len) const;

  /// sample_sequence() into a reused scratch vector; consumes exactly the
  /// same rng draws, so the two variants pick identical slices.
  void sample_sequence_into(util::Rng& rng, std::size_t len,
                            std::vector<Job>& out) const;

  Characteristics characteristics() const;

 private:
  std::string name_;
  int processors_ = 0;
  std::vector<Job> jobs_;  ///< sorted by submit_time
};

}  // namespace rlsched::trace
