#pragma once
// Validated environment-variable parsing. Every knob in bench_common.hpp
// flows through here; a typo like RLSCHED_BENCH_EPOCHS=1O must fall back to
// the default (with a warning on stderr), never feed garbage into a
// std::size_t cast.

#include <limits>
#include <string>

namespace rlsched::util {

/// Parse `name` as a long. Returns `fallback` when the variable is unset,
/// empty, not fully numeric, or out of `long` range; clamps the parsed value
/// into [min_value, max_value]. A rejected or clamped value is reported once
/// on stderr so silent misconfiguration cannot skew benchmark results.
long env_long(const char* name, long fallback,
              long min_value = std::numeric_limits<long>::min(),
              long max_value = std::numeric_limits<long>::max());

/// Parse `name` as a double with the same validation/clamping contract.
double env_double(const char* name, double fallback,
                  double min_value = -std::numeric_limits<double>::infinity(),
                  double max_value = std::numeric_limits<double>::infinity());

/// String variable; `fallback` when unset or empty.
std::string env_string(const char* name, const std::string& fallback);

/// Parse `name` as a worker/thread count (RLSCHED_WORKERS). Unset or empty
/// returns `fallback`; garbage, zero, or negative values are REJECTED back
/// to `fallback` with a warning (a thread count of 0 is never meaningful);
/// values above the host's hardware concurrency clamp down to it (when the
/// runtime can report it), so an over-eager RLSCHED_WORKERS=256 cannot
/// oversubscribe a laptop.
std::size_t env_workers(const char* name, std::size_t fallback = 1);

}  // namespace rlsched::util
