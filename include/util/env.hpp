#pragma once
// Validated environment-variable parsing. Every knob in bench_common.hpp
// flows through here; a typo like RLSCHED_BENCH_EPOCHS=1O must fall back to
// the default (with a warning on stderr), never feed garbage into a
// std::size_t cast.

#include <limits>
#include <string>

namespace rlsched::util {

/// Parse `name` as a long. Returns `fallback` when the variable is unset,
/// empty, not fully numeric, or out of `long` range; clamps the parsed value
/// into [min_value, max_value]. A rejected or clamped value is reported once
/// on stderr so silent misconfiguration cannot skew benchmark results.
long env_long(const char* name, long fallback,
              long min_value = std::numeric_limits<long>::min(),
              long max_value = std::numeric_limits<long>::max());

/// Parse `name` as a double with the same validation/clamping contract.
double env_double(const char* name, double fallback,
                  double min_value = -std::numeric_limits<double>::infinity(),
                  double max_value = std::numeric_limits<double>::infinity());

/// String variable; `fallback` when unset or empty.
std::string env_string(const char* name, const std::string& fallback);

/// Parse `name` as a worker/thread count (RLSCHED_WORKERS). Unset or empty
/// returns `fallback`; garbage, zero, or negative values are REJECTED back
/// to `fallback` with a warning (a thread count of 0 is never meaningful);
/// values above the host's hardware concurrency clamp down to it (when the
/// runtime can report it), so an over-eager RLSCHED_WORKERS=256 cannot
/// oversubscribe a laptop.
std::size_t env_workers(const char* name, std::size_t fallback = 1);

/// Documented ceiling for RLSCHED_BATCH: 256 stacked 128-job windows is
/// already a ~100 KB observation slab per forward — wider batches only add
/// cache pressure, and a runaway value (e.g. RLSCHED_BATCH=1e9 through a
/// scripting bug) must not OOM the bench host.
inline constexpr std::size_t kMaxBatchWindows = 256;

/// Parse `name` as an inference batch width (RLSCHED_BATCH): observation
/// windows scored per batched policy forward. Validated exactly like
/// env_workers: unset or empty returns `fallback`; garbage, zero, or
/// negative values are REJECTED back to `fallback` with a warning (a batch
/// of 0 windows is never meaningful); values above kMaxBatchWindows clamp
/// down to it. Batch width is bitwise-irrelevant to results — it only
/// moves throughput — so misconfiguration can never skew a benchmark, but
/// it is still reported.
std::size_t env_batch(const char* name, std::size_t fallback = 8);

// --- strict string parsers for CLI flags and config-file values ---
//
// Environment knobs above degrade to a default with a warning (an env var
// is ambient — a typo must not abort a bench sweep). A CLI flag or JSON
// config value was ASKED FOR explicitly, so these parsers FAIL instead:
// empty, trailing garbage ("1O", "10k"), out-of-range, zero/negative
// counts — all return false and leave *out untouched. Callers report the
// bad token and exit rather than silently running a different experiment.

/// Strict positive integer count (session counts, batch widths, job
/// counts, ...). The whole string must parse; the value must be >= 1 and,
/// when `max_value` > 0, <= max_value.
bool parse_count(const std::string& text, std::size_t* out,
                 std::size_t max_value = 0);

/// Strict finite double in [min_value, max_value].
bool parse_double(const std::string& text, double* out,
                  double min_value = -1e308, double max_value = 1e308);

}  // namespace rlsched::util
