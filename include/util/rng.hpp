#pragma once
// Small deterministic PRNG (splitmix64). One 64-bit word of state, no heap,
// identical streams across platforms — model training must be reproducible
// from RLSCHED_BENCH_SEED alone.

#include <cmath>
#include <cstdint>

namespace rlsched::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {
    // Burn one output so nearby seeds decorrelate immediately.
    next_u64();
  }

  /// splitmix64 finalizer: a bijective 64-bit mix, usable as a standalone
  /// hash for deriving seeds.
  static std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Counter-based substream derivation: (seed, stream) names one
  /// independent deterministic stream. Parallel rollout collection gives
  /// every trajectory its own stream keyed by the trajectory INDEX, so the
  /// generated randomness depends only on (seed, index) — never on which
  /// worker thread ran it or on how many workers exist. Distinct streams of
  /// the same seed stay decorrelated through the double mix.
  static Rng substream(std::uint64_t seed, std::uint64_t stream) {
    return Rng(mix64(mix64(seed ^ 0x6A09E667F3BCC909ULL) +
                     stream * 0x9E3779B97F4A7C15ULL));
  }

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n == 0 returns 0.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    // Modulo bias is < 2^-50 for every n used here (n << 2^64).
    return next_u64() % n;
  }

  /// Standard normal via Box-Muller (no cached spare: stateless per call).
  double normal() {
    const double u1 = 1.0 - uniform();  // (0, 1]
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    return -mean * std::log(1.0 - uniform());
  }

 private:
  std::uint64_t state_;
};

}  // namespace rlsched::util
