#pragma once
// Minimal aligned-column table printer for the paper-reproduction benches.

#include <iosfwd>
#include <string>
#include <vector>

namespace rlsched::util {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Format `v` with `digits` significant digits (general notation).
  static std::string fmt(double v, int digits);

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace rlsched::util
