#pragma once
// Reusable fixed-size thread pool for index-based fan-out. Built for the
// PPO training loop's constraints:
//
//  * zero heap allocation per dispatch — tasks are a raw function pointer
//    plus a context pointer (the templated wrapper passes the address of a
//    stack lambda through a captureless trampoline), so the steady-state
//    training loop stays allocation-free even with the pool engaged;
//  * the calling thread participates as worker 0 — a 1-worker pool spawns
//    no threads at all and runs everything inline, which keeps single-
//    threaded runs trivially debuggable and byte-identical in behavior;
//  * work is handed out by an atomic index counter, so the assignment of
//    indices to threads is dynamic (load-balanced) while the caller decides
//    determinism by keying all per-index state off the INDEX, not the
//    worker id.
//
// parallel_for blocks until every index has been processed; helper writes
// are visible to the caller afterwards (the completion handshake goes
// through the pool mutex, which establishes the happens-before edge).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rlsched::util {

class ThreadPool {
 public:
  /// Task invoked as task(ctx, index, worker) with index in [0, n) and
  /// worker in [0, workers()). The same worker id is never active twice
  /// concurrently, so per-worker scratch needs no further locking.
  using Task = void (*)(void* ctx, std::size_t index, std::size_t worker);

  explicit ThreadPool(std::size_t workers) {
    if (workers == 0) workers = 1;
    helpers_.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      helpers_.emplace_back([this, w] { helper_loop(w); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : helpers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return helpers_.size() + 1; }

  /// Run task for every index in [0, n); returns when all are done.
  void parallel_for(std::size_t n, Task task, void* ctx) {
    if (n == 0) return;
    if (helpers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) task(ctx, i, 0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = task;
      ctx_ = ctx;
      total_ = n;
      next_.store(0, std::memory_order_relaxed);
      pending_helpers_ = helpers_.size();
      ++round_;
    }
    start_cv_.notify_all();
    drain(task, ctx, n, /*worker=*/0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_helpers_ == 0; });
    task_ = nullptr;
    ctx_ = nullptr;
  }

  /// fn(index, worker) for every index in [0, n). `fn` stays on the
  /// caller's stack — no std::function, no allocation.
  template <typename Fn>
  void for_each_index(std::size_t n, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    parallel_for(
        n,
        [](void* ctx, std::size_t i, std::size_t w) {
          (*static_cast<F*>(ctx))(i, w);
        },
        static_cast<void*>(std::addressof(fn)));
  }

 private:
  void drain(Task task, void* ctx, std::size_t total, std::size_t worker) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      task(ctx, i, worker);
    }
  }

  void helper_loop(std::size_t worker) {
    std::uint64_t seen = 0;
    for (;;) {
      Task task = nullptr;
      void* ctx = nullptr;
      std::size_t total = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] { return stop_ || round_ != seen; });
        if (stop_) return;
        seen = round_;
        task = task_;
        ctx = ctx_;
        total = total_;
      }
      drain(task, ctx, total, worker);
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        last = --pending_helpers_ == 0;
      }
      if (last) done_cv_.notify_one();
    }
  }

  std::vector<std::thread> helpers_;
  std::mutex mu_;
  std::condition_variable start_cv_, done_cv_;
  Task task_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t total_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t pending_helpers_ = 0;  ///< helpers yet to finish this round
  std::uint64_t round_ = 0;
  bool stop_ = false;
};

}  // namespace rlsched::util
