#pragma once
// Descriptive statistics for the figure/table benches: one-shot summaries,
// Welford running moments, and a fixed-bin ASCII histogram.

#include <cstddef>
#include <string>
#include <vector>

namespace rlsched::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double skewness = 0.0;
};

/// Sorts a copy of `values`; empty input returns a zeroed Summary.
Summary summarize(const std::vector<double>& values);

/// Welford's online mean/variance.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance; 0 for n < 2
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Linear histogram over [lo, hi); out-of-range samples are clamped into
/// the edge bins and counted separately for the caption.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double v);
  /// Render rows of "[lo, hi) count |####"; `width` is the bar length of
  /// the fullest bin.
  std::string ascii(std::size_t width) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0;
};

}  // namespace rlsched::util
