#pragma once
// Descriptive statistics for the figure/table benches: one-shot summaries,
// Welford running moments, and a fixed-bin ASCII histogram.

#include <cstddef>
#include <string>
#include <vector>

namespace rlsched::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double skewness = 0.0;
};

/// Sorts a copy of `values`; empty input returns a zeroed Summary.
Summary summarize(const std::vector<double>& values);

/// Nearest-rank percentile of an ALREADY ASCENDING-SORTED vector:
/// sorted[ceil(p * n) - 1] for p in (0, 1], i.e. the smallest element with
/// at least p·n of the distribution at or below it — always a real sample,
/// never an interpolation. Empty input returns 0. (Truncating p * (n - 1),
/// the classic shortcut, picks index 8 of 10 for p99 and reports the 90th
/// percentile of a small latency vector as its 99th.)
double percentile_sorted(const std::vector<double>& sorted, double p);

/// Welford's online mean/variance.
class RunningStats {
 public:
  void add(double x);
  /// Fold another accumulator in (Chan et al. pairwise update) — the
  /// cross-shard path: accumulate each trace shard independently, merge in
  /// shard order. Exact: merged mean/variance equal the pooled stream's up
  /// to floating-point reassociation.
  void merge(const RunningStats& other);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance; 0 for n < 2
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// P² streaming quantile estimator (Jain & Chlamtac 1985): one quantile in
/// O(1) memory and O(1) per sample — the per-job metric percentiles of an
/// archive-scale streamed replay, where summarize()'s sort-a-copy would
/// materialize the whole distribution. Exact for the first 5 samples, an
/// interpolated estimate after; estimates converge as n grows (the unit
/// tests bound the error on known distributions).
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.5 for the median, 0.99 for p99.
  explicit P2Quantile(double q);
  void add(double x);
  std::size_t count() const { return n_; }
  /// Current estimate; 0 before any sample.
  double value() const;

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5];        ///< marker heights (value estimates)
  double positions_[5];      ///< actual marker positions (1-based)
  double desired_[5];        ///< desired marker positions
  double increments_[5];     ///< desired-position increments per sample
};

/// Linear histogram over [lo, hi); out-of-range samples are clamped into
/// the edge bins and counted separately for the caption.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double v);
  /// Render rows of "[lo, hi) count |####"; `width` is the bar length of
  /// the fullest bin.
  std::string ascii(std::size_t width) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0;
};

}  // namespace rlsched::util
