#pragma once
// Synthetic workload generators calibrated to the paper's Table II trace
// characteristics (SDSC-SP2, HPC2N, PIK-IPLEX, ANL-Intrepid, Lublin-1,
// Lublin-2). See DESIGN.md for the calibration recipe.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace rlsched::workload {

/// Names accepted by make_trace, in Table II order.
const std::vector<std::string>& trace_names();

/// Synthesize `jobs` jobs shaped like the named trace. Deterministic in
/// (name, jobs, seed). Throws std::invalid_argument for unknown names.
trace::Trace make_trace(const std::string& name, std::size_t jobs,
                        std::uint64_t seed);

}  // namespace rlsched::workload
