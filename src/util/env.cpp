#include "util/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace rlsched::util {

namespace {

const char* raw(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

void warn(const char* name, const char* value, const char* reason) {
  std::fprintf(stderr, "rlsched: ignoring %s=\"%s\" (%s)\n", name, value,
               reason);
}

}  // namespace

long env_long(const char* name, long fallback, long min_value,
              long max_value) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    warn(name, v, "not an integer, using default");
    return fallback;
  }
  if (errno == ERANGE) {
    warn(name, v, "out of range, using default");
    return fallback;
  }
  if (parsed < min_value) {
    warn(name, v, "below minimum, clamping");
    return min_value;
  }
  if (parsed > max_value) {
    warn(name, v, "above maximum, clamping");
    return max_value;
  }
  return parsed;
}

double env_double(const char* name, double fallback, double min_value,
                  double max_value) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    warn(name, v, "not a number, using default");
    return fallback;
  }
  if (errno == ERANGE) {
    warn(name, v, "out of range, using default");
    return fallback;
  }
  if (parsed < min_value) {
    warn(name, v, "below minimum, clamping");
    return min_value;
  }
  if (parsed > max_value) {
    warn(name, v, "above maximum, clamping");
    return max_value;
  }
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = raw(name);
  return v != nullptr ? std::string(v) : fallback;
}

namespace {

/// Shared contract of the count-shaped knobs (RLSCHED_WORKERS,
/// RLSCHED_BATCH): unset/empty -> fallback; garbage, zero, and negative
/// REJECTED back to fallback (a count of 0 is never meaningful — a
/// scripting bug must surface, not silently degrade); values above
/// `max_value` clamp down to it (0 = no ceiling). The reason strings keep
/// the warnings as specific as the hand-rolled versions were.
std::size_t positive_count(const char* name, std::size_t fallback,
                           std::size_t max_value, const char* parse_reason,
                           const char* zero_reason,
                           const char* clamp_reason) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    warn(name, v, parse_reason);
    return fallback;
  }
  if (parsed <= 0) {
    warn(name, v, zero_reason);
    return fallback;
  }
  if (max_value > 0 && static_cast<unsigned long>(parsed) > max_value) {
    warn(name, v, clamp_reason);
    return max_value;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

std::size_t env_workers(const char* name, std::size_t fallback) {
  const unsigned hw = std::thread::hardware_concurrency();
  return positive_count(name, fallback, hw,
                        "not a worker count, using default",
                        "worker count must be >= 1, using default",
                        "above hardware concurrency, clamping");
}

std::size_t env_batch(const char* name, std::size_t fallback) {
  return positive_count(name, fallback, kMaxBatchWindows,
                        "not a batch width, using default",
                        "batch width must be >= 1, using default",
                        "above max batch windows, clamping");
}

bool parse_count(const std::string& text, std::size_t* out,
                 std::size_t max_value) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (parsed <= 0) return false;
  if (max_value > 0 && static_cast<unsigned long>(parsed) > max_value) {
    return false;
  }
  *out = static_cast<std::size_t>(parsed);
  return true;
}

bool parse_double(const std::string& text, double* out, double min_value,
                  double max_value) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (!(parsed >= min_value && parsed <= max_value)) return false;  // NaN too
  *out = parsed;
  return true;
}

}  // namespace rlsched::util
