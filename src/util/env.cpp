#include "util/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace rlsched::util {

namespace {

const char* raw(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

void warn(const char* name, const char* value, const char* reason) {
  std::fprintf(stderr, "rlsched: ignoring %s=\"%s\" (%s)\n", name, value,
               reason);
}

}  // namespace

long env_long(const char* name, long fallback, long min_value,
              long max_value) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') {
    warn(name, v, "not an integer, using default");
    return fallback;
  }
  if (errno == ERANGE) {
    warn(name, v, "out of range, using default");
    return fallback;
  }
  if (parsed < min_value) {
    warn(name, v, "below minimum, clamping");
    return min_value;
  }
  if (parsed > max_value) {
    warn(name, v, "above maximum, clamping");
    return max_value;
  }
  return parsed;
}

double env_double(const char* name, double fallback, double min_value,
                  double max_value) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    warn(name, v, "not a number, using default");
    return fallback;
  }
  if (errno == ERANGE) {
    warn(name, v, "out of range, using default");
    return fallback;
  }
  if (parsed < min_value) {
    warn(name, v, "below minimum, clamping");
    return min_value;
  }
  if (parsed > max_value) {
    warn(name, v, "above maximum, clamping");
    return max_value;
  }
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = raw(name);
  return v != nullptr ? std::string(v) : fallback;
}

std::size_t env_workers(const char* name, std::size_t fallback) {
  const char* v = raw(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    warn(name, v, "not a worker count, using default");
    return fallback;
  }
  if (parsed <= 0) {
    // 0 or negative threads is never meaningful — reject, don't clamp,
    // so a scripting bug surfaces instead of silently serializing.
    warn(name, v, "worker count must be >= 1, using default");
    return fallback;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && static_cast<unsigned long>(parsed) > hw) {
    warn(name, v, "above hardware concurrency, clamping");
    return static_cast<std::size_t>(hw);
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace rlsched::util
