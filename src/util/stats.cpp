#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rlsched::util {

namespace {
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  if (i + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(i);
  return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
}
}  // namespace

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile(sorted, 0.5);
  s.p95 = quantile(sorted, 0.95);
  s.p99 = quantile(sorted, 0.99);
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double m2 = 0.0, m3 = 0.0;
  for (const double v : sorted) {
    const double d = v - s.mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(s.count);
  m3 /= static_cast<double>(s.count);
  s.stddev = std::sqrt(m2);
  s.skewness = m2 > 0.0 ? m3 / std::pow(m2, 1.5) : 0.0;
  return s;
}

void RunningStats::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi > lo ? hi : lo + 1.0), counts_(bins > 0 ? bins : 1, 0) {}

void Histogram::add(double v) {
  if (v < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (v >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double t = (v - lo_) / (hi_ - lo_);
  std::size_t bin = static_cast<std::size_t>(
      t * static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  const double bin_w = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = lo_ + bin_w * static_cast<double>(i);
    out << "[" << b_lo << ", " << (b_lo + bin_w) << ") " << counts_[i] << " |";
    const std::size_t bar =
        counts_[i] == 0
            ? 0
            : std::max<std::size_t>(1, counts_[i] * width / peak);
    for (std::size_t k = 0; k < bar; ++k) out << '#';
    out << '\n';
  }
  if (underflow_ > 0) out << "(underflow merged into first bin: " << underflow_ << ")\n";
  if (overflow_ > 0) out << "(overflow merged into last bin: " << overflow_ << ")\n";
  return out.str();
}

}  // namespace rlsched::util
