#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rlsched::util {

namespace {
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  if (i + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(i);
  return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
}
}  // namespace

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  const double n = static_cast<double>(sorted.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(p * n));
  if (rank == 0) rank = 1;  // ceil can round a subnormal p·n down to 0
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile(sorted, 0.5);
  s.p95 = quantile(sorted, 0.95);
  s.p99 = quantile(sorted, 0.99);
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double m2 = 0.0, m3 = 0.0;
  for (const double v : sorted) {
    const double d = v - s.mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(s.count);
  m3 /= static_cast<double>(s.count);
  s.stddev = std::sqrt(m2);
  s.skewness = m2 > 0.0 ? m3 / std::pow(m2, 1.5) : 0.0;
  return s;
}

void RunningStats::add(double x) {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * (nb / n_total);
  m2_ += other.m2_ + delta * delta * (na * nb / n_total);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

P2Quantile::P2Quantile(double q) : q_(q) {
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  // Locate the cell and update the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++n_;

  // Nudge the three interior markers toward their desired positions with
  // piecewise-parabolic (fallback: linear) height interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double np = positions_[i] + s;
      // Parabolic prediction of the height at the shifted position.
      double h = heights_[i] +
                 s / (positions_[i + 1] - positions_[i - 1]) *
                     ((below + s) * (heights_[i + 1] - heights_[i]) / above +
                      (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (h <= heights_[i - 1] || h >= heights_[i + 1]) {
        // Parabola left the bracket: fall back to linear interpolation.
        h = heights_[i] + s * (heights_[i + static_cast<int>(s)] -
                               heights_[i]) /
                              (positions_[i + static_cast<int>(s)] -
                               positions_[i]);
      }
      heights_[i] = h;
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact small-sample quantile over the sorted prefix.
    double sorted[5];
    std::copy(heights_, heights_ + n_, sorted);
    std::sort(sorted, sorted + n_);
    const double pos = q_ * static_cast<double>(n_ - 1);
    const std::size_t i = static_cast<std::size_t>(pos);
    if (i + 1 >= n_) return sorted[n_ - 1];
    const double frac = pos - static_cast<double>(i);
    return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
  }
  return heights_[2];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi > lo ? hi : lo + 1.0), counts_(bins > 0 ? bins : 1, 0) {}

void Histogram::add(double v) {
  if (v < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (v >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double t = (v - lo_) / (hi_ - lo_);
  std::size_t bin = static_cast<std::size_t>(
      t * static_cast<double>(counts_.size()));
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  ++counts_[bin];
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  const double bin_w = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = lo_ + bin_w * static_cast<double>(i);
    out << "[" << b_lo << ", " << (b_lo + bin_w) << ") " << counts_[i] << " |";
    const std::size_t bar =
        counts_[i] == 0
            ? 0
            : std::max<std::size_t>(1, counts_[i] * width / peak);
    for (std::size_t k = 0; k < bar; ++k) out << '#';
    out << '\n';
  }
  if (underflow_ > 0) out << "(underflow merged into first bin: " << underflow_ << ")\n";
  if (overflow_ > 0) out << "(overflow merged into last bin: " << overflow_ << ")\n";
  return out.str();
}

}  // namespace rlsched::util
