#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rlsched::util {

std::string Table::fmt(double v, int digits) {
  std::ostringstream out;
  out << std::setprecision(digits) << v;
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(t.header_);
  for (const auto& r : t.rows_) grow(r);

  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << (i == 0 ? "| " : " ") << std::left
         << std::setw(static_cast<int>(widths[i])) << cell << " |";
    }
    os << '\n';
  };

  std::size_t total = 1;
  for (const std::size_t w : widths) total += w + 3;

  os << "== " << t.title_ << " ==\n";
  if (!t.header_.empty()) {
    emit(t.header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : t.rows_) emit(r);
  return os;
}

}  // namespace rlsched::util
