#include "rl/ppo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "rl/batch_eval.hpp"

namespace rlsched::rl {

namespace {
constexpr std::size_t kMaxFilterAttempts = 25;

void write_params(std::ofstream& out, const std::vector<float>& p) {
  for (std::size_t i = 0; i < p.size(); ++i) {
    out << p[i] << (i + 1 == p.size() ? '\n' : ' ');
  }
  if (p.empty()) out << '\n';
}

std::vector<std::size_t> value_net_sizes() {
  return {kJobFeatures * kMaxObservable, 32, 32, 1};
}
}  // namespace

struct PPOTrainer::Worker {
  // One lockstep LANE per batch slot: collection advances up to `batch`
  // trajectories together, so each lane owns an env, a sequence scratch,
  // and an RNG slot (re-seeded per trajectory from its substream).
  std::vector<sim::SchedulingEnv> envs;
  std::vector<std::vector<trace::Job>> seqs;
  std::vector<util::Rng> rngs;
  std::vector<std::uint32_t> alive;  ///< live lane indices, lane order

  std::unique_ptr<Policy> policy;  ///< clone: owns activation scratch
  nn::FlatMlp value_net;           ///< scratch only; params stay shared
  ObservationBuilder builder;

  // Batch scratch shared by collection (n <= batch lanes) and the update
  // chunks (n <= kGradChunk samples); sized once for the larger of the two.
  std::vector<const Observation*> obs_ptr;
  std::vector<float> logits;          ///< n x kMaxObservable, window-major
  std::vector<float> probs;           ///< one window, reused per sample
  std::vector<float> dlogits;         ///< chunk x kMaxObservable
  std::vector<std::uint8_t> active;   ///< per-chunk-sample clip mask
  std::vector<float> vx;              ///< value-net SoA pack (in x n)
  std::vector<float> vdout;           ///< value-net dOut (1 x n)

  Worker(int processors, const sim::EnvConfig& env_cfg, PolicyKind kind,
         std::size_t seq_len, std::size_t batch, std::size_t chunk)
      : value_net(value_net_sizes()) {
    // The clone's random init is irrelevant — parameters are overwritten
    // from the canonical policy before every fan-out.
    util::Rng init_rng(1);
    policy = make_policy(kind, kMaxObservable, init_rng);
    envs.reserve(batch);
    for (std::size_t k = 0; k < batch; ++k) {
      envs.emplace_back(processors, env_cfg);
    }
    seqs.resize(batch);
    for (auto& s : seqs) s.reserve(seq_len);
    rngs.assign(batch, util::Rng(0));
    alive.reserve(batch);
    const std::size_t nmax = std::max(batch, chunk);
    // Size every batch scratch NOW: growth on first use would depend on
    // which worker happens to draw the first full-size batch — an
    // allocation an epoch (or three) after warmup, which the zero-alloc
    // gates rightly reject.
    policy->reserve_batch(nmax);
    value_net.reserve_batch(nmax);
    obs_ptr.resize(nmax);
    logits.resize(nmax * kMaxObservable);
    probs.resize(kMaxObservable);
    dlogits.resize(chunk * kMaxObservable);
    active.resize(chunk);
    vx.resize(kJobFeatures * kMaxObservable * nmax);
    vdout.resize(nmax);
  }
};

PPOTrainer::PPOTrainer(const trace::Trace& trace, PPOConfig cfg)
    : trace_(trace),
      cfg_(cfg),
      batch_(cfg.batch == 0 ? 1 : cfg.batch),
      rng_(cfg.seed * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15ULL),
      policy_(make_policy(cfg.policy, kMaxObservable, rng_)),
      value_net_(value_net_sizes()),
      value_params_(value_net_.param_count()),
      pi_opt_(policy_->parameter_count(), cfg.pi_lr),
      v_opt_(value_net_.param_count(), cfg.v_lr),
      pool_(cfg.n_workers == 0 ? 1 : cfg.n_workers) {
  if (cfg_.seq_len == 0) cfg_.seq_len = 256;
  if (cfg_.trajectories_per_epoch == 0) cfg_.trajectories_per_epoch = 1;
  if (cfg_.n_workers == 0) cfg_.n_workers = 1;
  value_net_.init(value_params_.data(), rng_, 1.0f);

  // Collection never runs more lockstep lanes than there are trajectories
  // (the extra lanes would idle); evaluate_batch() still uses the full
  // requested width via its own evaluator.
  const std::size_t lanes = std::min(batch_, cfg_.trajectories_per_epoch);
  const sim::EnvConfig env_cfg{cfg_.backfill, kMaxObservable};
  workers_.reserve(cfg_.n_workers);
  for (std::size_t w = 0; w < cfg_.n_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(
        trace.processors(), env_cfg, cfg_.policy, cfg_.seq_len, lanes,
        kGradChunk));
  }

  slots_.resize(cfg_.trajectories_per_epoch);
  for (RolloutBuffer& s : slots_) s.reserve(cfg_.seq_len);

  const std::size_t cap = cfg_.trajectories_per_epoch * cfg_.seq_len;
  obs_ptr_.reserve(cap);
  act_buf_.reserve(cap);
  logp_buf_.reserve(cap);
  val_buf_.reserve(cap);
  adv_buf_.reserve(cap);
  ret_buf_.reserve(cap);
  traj_end_.reserve(cfg_.trajectories_per_epoch);
  traj_reward_.reserve(cfg_.trajectories_per_epoch);
  pi_grad_.resize(policy_->parameter_count());
  v_grad_.resize(value_net_.param_count());
  perm_.reserve(cap);

  // One gradient slab per possible chunk, wide enough for either network
  // (the policy and value updates never run concurrently).
  const std::size_t max_chunks = (cap + kGradChunk - 1) / kGradChunk;
  const std::size_t slab =
      std::max(policy_->parameter_count(), value_net_.param_count());
  chunk_grad_.resize(max_chunks);
  for (std::vector<float>& g : chunk_grad_) g.resize(slab);
  chunk_kl_.resize(max_chunks);
}

PPOTrainer::~PPOTrainer() = default;

double PPOTrainer::reward_of(const sim::RunResult& r) const {
  if (!cfg_.composite.empty()) return cfg_.composite.reward(r);
  return sim::reward_sign(cfg_.metric) * r.value(cfg_.metric);
}

void PPOTrainer::sync_worker_policies() {
  for (const std::unique_ptr<Worker>& w : workers_) {
    // Same-size vector copy-assign: no allocation.
    w->policy->param_vector() = policy_->param_vector();
  }
}

void PPOTrainer::collect_group(std::size_t group, std::uint64_t round,
                               Worker& w) {
  const std::size_t lanes = w.envs.size();
  const std::size_t t0 = group * lanes;
  const std::size_t nb =
      std::min(lanes, cfg_.trajectories_per_epoch - t0);
  constexpr std::size_t obs_floats = kJobFeatures * kMaxObservable;

  w.alive.clear();
  for (std::size_t k = 0; k < nb; ++k) {
    const std::size_t traj = t0 + k;
    RolloutBuffer& buf = slots_[traj];
    buf.clear();
    // All randomness of a trajectory comes from a substream keyed by its
    // global index — identical no matter which worker ran it or how many
    // lanes advanced in lockstep beside it.
    w.rngs[k] = util::Rng::substream(
        cfg_.seed, round * cfg_.trajectories_per_epoch + traj);
    if (cfg_.trajectory_filtering) {
      for (std::size_t attempt = 0; attempt < kMaxFilterAttempts;
           ++attempt) {
        trace_.sample_sequence_into(w.rngs[k], cfg_.seq_len, w.seqs[k]);
        if (filter_range_.contains(
                sjf_metric(w.seqs[k], trace_.processors(), cfg_.metric))) {
          break;
        }
      }
    } else {
      trace_.sample_sequence_into(w.rngs[k], cfg_.seq_len, w.seqs[k]);
    }
    w.envs[k].reset(w.seqs[k]);
    if (!w.envs[k].done()) {
      w.alive.push_back(static_cast<std::uint32_t>(k));
    } else {
      const sim::RunResult result = w.envs[k].result();
      buf.reward = static_cast<float>(reward_of(result));
      buf.metric = result.value(cfg_.metric);
    }
  }

  // Lockstep loop: ONE batched policy forward and ONE batched value
  // forward score every live lane's window; per-lane sampling then uses
  // the lane's own RNG, so the stored trajectories are bitwise identical
  // to the lanes running one at a time.
  while (!w.alive.empty()) {
    const std::size_t n = w.alive.size();
    for (std::size_t i = 0; i < n; ++i) {
      RolloutBuffer& buf = slots_[t0 + w.alive[i]];
      buf.obs.emplace_back();
      w.builder.build_into(w.envs[w.alive[i]], buf.obs.back());
      w.obs_ptr[i] = &buf.obs.back();
    }
    w.policy->logits_batch(w.obs_ptr.data(), n, w.logits.data());
    for (std::size_t i = 0; i < n; ++i) {
      const float* f = w.obs_ptr[i]->features.data();
      for (std::size_t x = 0; x < obs_floats; ++x) w.vx[x * n + i] = f[x];
    }
    const float* vals =
        w.value_net.forward_batch(value_params_.data(), w.vx.data(), n);

    std::size_t keep = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = w.alive[i];
      RolloutBuffer& buf = slots_[t0 + k];
      const Observation& obs = *w.obs_ptr[i];
      nn::softmax_masked(w.logits.data() + i * kMaxObservable,
                         obs.mask.data(), w.probs.data(), kMaxObservable);
      // Sample from the masked categorical.
      double u = w.rngs[k].uniform();
      std::size_t a = 0;
      for (std::size_t s = 0; s < kMaxObservable; ++s) {
        if (obs.mask[s] == 0) continue;
        a = s;
        u -= w.probs[s];
        if (u <= 0.0) break;
      }
      buf.act.push_back(static_cast<std::uint32_t>(a));
      buf.logp.push_back(std::log(std::max(w.probs[a], 1e-10f)));
      buf.val.push_back(vals[i]);
      w.envs[k].step(a);
      if (!w.envs[k].done()) {
        w.alive[keep++] = static_cast<std::uint32_t>(k);
      } else {
        const sim::RunResult result = w.envs[k].result();
        buf.reward = static_cast<float>(reward_of(result));
        buf.metric = result.value(cfg_.metric);
      }
    }
    w.alive.resize(keep);
  }
}

void PPOTrainer::collect_trajectories() {
  obs_ptr_.clear();
  act_buf_.clear();
  logp_buf_.clear();
  val_buf_.clear();
  traj_end_.clear();
  traj_reward_.clear();
  epoch_metric_sum_ = 0.0;

  if (cfg_.trajectory_filtering && !filter_ready_) {
    filter_range_ =
        compute_filter_range(trace_, cfg_.metric, cfg_.seq_len,
                             kFilterProbeSamples, cfg_.seed ^ kFilterSeedSalt);
    // A degenerate range (all sequences equally easy) would reject
    // everything; fall back to unfiltered sampling in that case.
    if (!(filter_range_.hi > filter_range_.lo)) {
      filter_range_ = {-1e300, 1e300};
    }
    filter_ready_ = true;
  }

  sync_worker_policies();
  const std::uint64_t round = collect_round_++;
  // Fan out GROUPS of lockstep lanes: group g covers trajectories
  // [g*lanes, g*lanes + lanes). Group boundaries depend only on the batch
  // width, and every per-trajectory result is substream-keyed, so any
  // worker may run any group.
  const std::size_t lanes = workers_.front()->envs.size();
  const std::size_t ngroups =
      (cfg_.trajectories_per_epoch + lanes - 1) / lanes;
  pool_.for_each_index(ngroups, [&](std::size_t g, std::size_t wid) {
    collect_group(g, round, *workers_[wid]);
  });

  // Deterministic merge: flatten slots in trajectory-index order. The small
  // per-step scalars are copied; observations stay in their slots (they are
  // ~3 KB each) and are reached through a pointer view.
  for (const RolloutBuffer& b : slots_) {
    for (std::size_t k = 0; k < b.size(); ++k) {
      obs_ptr_.push_back(&b.obs[k]);
      act_buf_.push_back(b.act[k]);
      logp_buf_.push_back(b.logp[k]);
      val_buf_.push_back(b.val[k]);
    }
    traj_end_.push_back(obs_ptr_.size());
    traj_reward_.push_back(b.reward);
    epoch_metric_sum_ += b.metric;
  }
  steps_ = obs_ptr_.size();
}

void PPOTrainer::compute_advantages() {
  adv_buf_.assign(steps_, 0.0f);
  ret_buf_.assign(steps_, 0.0f);

  // Normalize terminal rewards across the epoch's rollouts: metrics like
  // bounded slowdown span orders of magnitude and would otherwise swamp the
  // value regression.
  float mean = 0.0f;
  for (const float r : traj_reward_) mean += r;
  mean /= static_cast<float>(traj_reward_.size());
  float var = 0.0f;
  for (const float r : traj_reward_) var += (r - mean) * (r - mean);
  var /= static_cast<float>(traj_reward_.size());
  const float scale = 1.0f / std::sqrt(var + 1e-6f);

  std::size_t begin = 0;
  for (std::size_t t = 0; t < traj_end_.size(); ++t) {
    const std::size_t end = traj_end_[t];
    const float reward = (traj_reward_[t] - mean) * scale;
    // GAE backward recursion; rewards are 0 except at the terminal step.
    float adv = 0.0f;
    for (std::size_t i = end; i-- > begin;) {
      const float next_v = i + 1 < end ? val_buf_[i + 1] : 0.0f;
      const float r = i + 1 == end ? reward : 0.0f;
      const float delta = r + cfg_.gamma * next_v - val_buf_[i];
      adv = delta + cfg_.gamma * cfg_.lam * adv;
      adv_buf_[i] = adv;
      ret_buf_[i] = adv + val_buf_[i];
    }
    begin = end;
  }

  // Standardize advantages over the whole buffer.
  float a_mean = 0.0f;
  for (std::size_t i = 0; i < steps_; ++i) a_mean += adv_buf_[i];
  a_mean /= static_cast<float>(steps_);
  float a_var = 0.0f;
  for (std::size_t i = 0; i < steps_; ++i) {
    a_var += (adv_buf_[i] - a_mean) * (adv_buf_[i] - a_mean);
  }
  a_var /= static_cast<float>(steps_);
  const float a_scale = 1.0f / std::sqrt(a_var + 1e-6f);
  for (std::size_t i = 0; i < steps_; ++i) {
    adv_buf_[i] = (adv_buf_[i] - a_mean) * a_scale;
  }
}

void PPOTrainer::reset_perm() {
  perm_.resize(steps_);
  for (std::size_t i = 0; i < steps_; ++i) {
    perm_[i] = static_cast<std::uint32_t>(i);
  }
}

void PPOTrainer::update_policy() {
  const std::size_t batch =
      cfg_.minibatch == 0 ? steps_ : std::min(cfg_.minibatch, steps_);
  const std::size_t np = policy_->parameter_count();
  reset_perm();

  for (std::size_t iter = 0; iter < cfg_.pi_iters; ++iter) {
    // Fisher-Yates shuffle with the trainer's own rng (reproducible).
    for (std::size_t i = steps_; i-- > 1;) {
      const std::size_t j = static_cast<std::size_t>(rng_.below(i + 1));
      std::swap(perm_[i], perm_[j]);
    }
    double kl_sum = 0.0;
    for (std::size_t start = 0; start < steps_; start += batch) {
      const std::size_t stop = std::min(start + batch, steps_);
      const float inv_batch = 1.0f / static_cast<float>(stop - start);
      const std::size_t nchunks = (stop - start + kGradChunk - 1) / kGradChunk;

      // Parameters moved in the previous Adam step — refresh the clones.
      sync_worker_policies();
      const bool batched = policy_->supports_batched_update();
      pool_.for_each_index(nchunks, [&](std::size_t ci, std::size_t wid) {
        Worker& w = *workers_[wid];
        float* g = chunk_grad_[ci].data();
        std::fill_n(g, np, 0.0f);
        double kl = 0.0;
        const std::size_t cb = start + ci * kGradChunk;
        const std::size_t ce = std::min(cb + kGradChunk, stop);
        if (batched) {
          // Batched chunk: ONE forward scores all samples (job axis
          // m x 128), the clip test marks saturated samples inactive, and
          // ONE backward accumulates the survivors with per-window
          // order-stable reductions — bitwise identical to the per-sample
          // path below.
          const std::size_t m = ce - cb;
          for (std::size_t q = 0; q < m; ++q) {
            w.obs_ptr[q] = obs_ptr_[perm_[cb + q]];
          }
          w.policy->logits_batch(w.obs_ptr.data(), m, w.logits.data());
          for (std::size_t q = 0; q < m; ++q) {
            const std::size_t i = perm_[cb + q];
            const Observation& obs = *w.obs_ptr[q];
            nn::softmax_masked(w.logits.data() + q * kMaxObservable,
                               obs.mask.data(), w.probs.data(),
                               kMaxObservable);
            const std::uint32_t a = act_buf_[i];
            const float logp_new = std::log(std::max(w.probs[a], 1e-10f));
            const float ratio = std::exp(logp_new - logp_buf_[i]);
            const float adv = adv_buf_[i];
            kl += logp_buf_[i] - logp_new;
            const bool clipped =
                (adv >= 0.0f && ratio > 1.0f + cfg_.clip) ||
                (adv < 0.0f && ratio < 1.0f - cfg_.clip);
            w.active[q] = clipped ? 0 : 1;
            if (clipped) continue;
            const float coef = ratio * adv * inv_batch;
            float* dl = w.dlogits.data() + q * kMaxObservable;
            for (std::size_t k = 0; k < kMaxObservable; ++k) {
              // d(-logpi[a])/dlogits = probs - onehot(a), times -coef
              dl[k] = coef * w.probs[k];
            }
            dl[a] -= coef;
          }
          w.policy->backward_batch(w.obs_ptr.data(), m, w.dlogits.data(),
                                   w.active.data(), g);
        } else {
          Logits dlogits;
          for (std::size_t s = cb; s < ce; ++s) {
            const std::size_t i = perm_[s];
            const Observation& obs = *obs_ptr_[i];
            const Logits logits = w.policy->logits(obs);
            nn::softmax_masked(logits.data(), obs.mask.data(),
                               w.probs.data(), kMaxObservable);
            const std::uint32_t a = act_buf_[i];
            const float logp_new = std::log(std::max(w.probs[a], 1e-10f));
            const float ratio = std::exp(logp_new - logp_buf_[i]);
            const float adv = adv_buf_[i];
            kl += logp_buf_[i] - logp_new;
            // Clipped surrogate: zero gradient once the ratio leaves the
            // trust region in the advantage's direction.
            const bool clipped =
                (adv >= 0.0f && ratio > 1.0f + cfg_.clip) ||
                (adv < 0.0f && ratio < 1.0f - cfg_.clip);
            if (clipped) continue;
            const float coef = ratio * adv * inv_batch;
            for (std::size_t k = 0; k < kMaxObservable; ++k) {
              dlogits[k] = coef * w.probs[k];
            }
            dlogits[a] -= coef;
            w.policy->backward(obs, dlogits, g);
          }
        }
        chunk_kl_[ci] = kl;
      });

      // Reduce in chunk order — float summation order is fixed, so the
      // result is identical for every worker count.
      std::fill(pi_grad_.begin(), pi_grad_.end(), 0.0f);
      for (std::size_t ci = 0; ci < nchunks; ++ci) {
        const float* g = chunk_grad_[ci].data();
        for (std::size_t k = 0; k < np; ++k) pi_grad_[k] += g[k];
        kl_sum += chunk_kl_[ci];
      }
      pi_opt_.step(policy_->param_vector().data(), pi_grad_.data());
    }
    if (kl_sum / static_cast<double>(steps_) > cfg_.target_kl) break;
  }
}

void PPOTrainer::update_value() {
  const std::size_t batch =
      cfg_.minibatch == 0 ? steps_ : std::min(cfg_.minibatch, steps_);
  const std::size_t nv = value_net_.param_count();
  reset_perm();

  for (std::size_t iter = 0; iter < cfg_.v_iters; ++iter) {
    for (std::size_t i = steps_; i-- > 1;) {
      const std::size_t j = static_cast<std::size_t>(rng_.below(i + 1));
      std::swap(perm_[i], perm_[j]);
    }
    for (std::size_t start = 0; start < steps_; start += batch) {
      const std::size_t stop = std::min(start + batch, steps_);
      const float inv_batch = 1.0f / static_cast<float>(stop - start);
      const std::size_t nchunks = (stop - start + kGradChunk - 1) / kGradChunk;

      // value_params_ is read-only during the fan-out (the Adam step below
      // runs after the pool barrier), so workers share it directly. The
      // whole chunk goes through ONE batched forward/backward; the chunk is
      // a single order-stable reduction window, so the summed gradient
      // depends only on the (fixed) chunk boundaries — never on batch
      // width or worker count.
      pool_.for_each_index(nchunks, [&](std::size_t ci, std::size_t wid) {
        Worker& w = *workers_[wid];
        float* g = chunk_grad_[ci].data();
        std::fill_n(g, nv, 0.0f);
        const std::size_t cb = start + ci * kGradChunk;
        const std::size_t ce = std::min(cb + kGradChunk, stop);
        const std::size_t m = ce - cb;
        constexpr std::size_t obs_floats = kJobFeatures * kMaxObservable;
        for (std::size_t q = 0; q < m; ++q) {
          const float* f = obs_ptr_[perm_[cb + q]]->features.data();
          for (std::size_t x = 0; x < obs_floats; ++x) {
            w.vx[x * m + q] = f[x];
          }
        }
        const float* v =
            w.value_net.forward_batch(value_params_.data(), w.vx.data(), m);
        for (std::size_t q = 0; q < m; ++q) {
          w.vdout[q] = 2.0f * (v[q] - ret_buf_[perm_[cb + q]]) * inv_batch;
        }
        w.value_net.backward_batch(value_params_.data(), w.vx.data(),
                                   w.vdout.data(), g, m, /*window=*/0,
                                   nullptr, nullptr);
      });

      std::fill(v_grad_.begin(), v_grad_.end(), 0.0f);
      for (std::size_t ci = 0; ci < nchunks; ++ci) {
        const float* g = chunk_grad_[ci].data();
        for (std::size_t k = 0; k < nv; ++k) v_grad_[k] += g[k];
      }
      v_opt_.step(value_params_.data(), v_grad_.data());
    }
  }
}

EpochStats PPOTrainer::train_epoch() {
  const auto t0 = std::chrono::steady_clock::now();
  collect_trajectories();
  const auto t1 = std::chrono::steady_clock::now();
  if (steps_ > 0) {
    compute_advantages();
    update_policy();
    update_value();
  }
  const auto t2 = std::chrono::steady_clock::now();
  EpochStats stats;
  stats.epoch = epoch_++;
  stats.avg_metric =
      traj_end_.empty()
          ? 0.0
          : epoch_metric_sum_ / static_cast<double>(traj_end_.size());
  stats.collect_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.update_seconds = std::chrono::duration<double>(t2 - t1).count();
  stats.seconds = std::chrono::duration<double>(t2 - t0).count();
  return stats;
}

sim::RunResult PPOTrainer::evaluate(const std::vector<trace::Job>& seq,
                                    int processors, bool backfill) const {
  sim::SchedulingEnv env(processors, sim::EnvConfig{backfill, kMaxObservable});
  env.reset(seq);
  while (!env.done()) {
    const Observation obs = builder_.build(env);
    const Logits logits = policy_->logits(obs);
    env.step(nn::argmax_masked(logits.data(), obs.mask.data(),
                               kMaxObservable));
  }
  return env.result();
}

std::vector<sim::RunResult> PPOTrainer::evaluate_batch(
    const std::vector<std::vector<trace::Job>>& seqs, int processors,
    bool backfill) const {
  std::vector<sim::RunResult> out(seqs.size());
  if (evaluator_ == nullptr) {
    evaluator_ = std::make_unique<BatchedEvaluator>(*policy_, batch_);
  }
  evaluator_->evaluate(seqs, processors, backfill, out.data());
  return out;
}

sim::RunResult PPOTrainer::evaluate_stream(trace::JobSource& source,
                                           int processors, bool backfill,
                                           std::size_t chunk_jobs) const {
  sim::SchedulingEnv env(processors, sim::EnvConfig{backfill, kMaxObservable});
  env.reset(source, chunk_jobs);
  while (!env.done()) {
    const Observation obs = builder_.build(env);
    const Logits logits = policy_->logits(obs);
    env.step(nn::argmax_masked(logits.data(), obs.mask.data(),
                               kMaxObservable));
  }
  return env.result();
}

void PPOTrainer::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write model file: " + path);
  out << "rlsched-model 1\n";
  out << "policy " << policy_kind_name(cfg_.policy) << ' '
      << policy_->parameter_count() << '\n';
  out.precision(9);
  write_params(out, policy_->param_vector());
  out << "value " << value_params_.size() << '\n';
  write_params(out, value_params_);
}

void PPOTrainer::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read model file: " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "rlsched-model" || version != 1) {
    throw std::runtime_error("unrecognized model file: " + path);
  }
  std::string section, kind;
  std::size_t count = 0;
  in >> section >> kind >> count;
  if (section != "policy" || kind != policy_kind_name(cfg_.policy) ||
      count != policy_->parameter_count()) {
    throw std::runtime_error("model file does not match configuration: " +
                             path);
  }
  for (float& p : policy_->param_vector()) in >> p;
  in >> section >> count;
  if (section != "value" || count != value_params_.size()) {
    throw std::runtime_error("model file value section mismatch: " + path);
  }
  for (float& p : value_params_) in >> p;
  if (!in) throw std::runtime_error("truncated model file: " + path);
}

}  // namespace rlsched::rl
