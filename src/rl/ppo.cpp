#include "rl/ppo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace rlsched::rl {

namespace {
constexpr std::size_t kMaxFilterAttempts = 25;

void write_params(std::ofstream& out, const std::vector<float>& p) {
  for (std::size_t i = 0; i < p.size(); ++i) {
    out << p[i] << (i + 1 == p.size() ? '\n' : ' ');
  }
  if (p.empty()) out << '\n';
}
}  // namespace

PPOTrainer::PPOTrainer(const trace::Trace& trace, PPOConfig cfg)
    : trace_(trace),
      cfg_(cfg),
      rng_(cfg.seed * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15ULL),
      env_(trace.processors(), sim::EnvConfig{cfg.backfill, kMaxObservable}),
      policy_(make_policy(cfg.policy, kMaxObservable, rng_)),
      value_net_({kJobFeatures * kMaxObservable, 32, 32, 1}),
      value_params_(value_net_.param_count()),
      pi_opt_(policy_->parameter_count(), cfg.pi_lr),
      v_opt_(value_net_.param_count(), cfg.v_lr) {
  if (cfg_.seq_len == 0) cfg_.seq_len = 256;
  if (cfg_.trajectories_per_epoch == 0) cfg_.trajectories_per_epoch = 1;
  value_net_.init(value_params_.data(), rng_, 1.0f);

  const std::size_t cap = cfg_.trajectories_per_epoch * cfg_.seq_len;
  obs_buf_.reserve(cap);
  act_buf_.reserve(cap);
  logp_buf_.reserve(cap);
  val_buf_.reserve(cap);
  adv_buf_.reserve(cap);
  ret_buf_.reserve(cap);
  traj_end_.reserve(cfg_.trajectories_per_epoch);
  traj_reward_.reserve(cfg_.trajectories_per_epoch);
  pi_grad_.resize(policy_->parameter_count());
  v_grad_.resize(value_net_.param_count());
  probs_.resize(kMaxObservable);
  perm_.reserve(cap);
}

double PPOTrainer::reward_of(const sim::RunResult& r) const {
  if (!cfg_.composite.empty()) return cfg_.composite.reward(r);
  return sim::reward_sign(cfg_.metric) * r.value(cfg_.metric);
}

void PPOTrainer::collect_trajectories() {
  obs_buf_.clear();
  act_buf_.clear();
  logp_buf_.clear();
  val_buf_.clear();
  traj_end_.clear();
  traj_reward_.clear();
  epoch_metric_sum_ = 0.0;

  if (cfg_.trajectory_filtering && !filter_ready_) {
    filter_range_ =
        compute_filter_range(trace_, cfg_.metric, cfg_.seq_len,
                             kFilterProbeSamples, cfg_.seed ^ kFilterSeedSalt);
    // A degenerate range (all sequences equally easy) would reject
    // everything; fall back to unfiltered sampling in that case.
    if (!(filter_range_.hi > filter_range_.lo)) {
      filter_range_ = {-1e300, 1e300};
    }
    filter_ready_ = true;
  }

  for (std::size_t t = 0; t < cfg_.trajectories_per_epoch; ++t) {
    std::vector<trace::Job> seq;
    if (cfg_.trajectory_filtering) {
      for (std::size_t attempt = 0; attempt < kMaxFilterAttempts; ++attempt) {
        seq = trace_.sample_sequence(rng_, cfg_.seq_len);
        if (filter_range_.contains(
                sjf_metric(seq, trace_.processors(), cfg_.metric))) {
          break;
        }
      }
    } else {
      seq = trace_.sample_sequence(rng_, cfg_.seq_len);
    }

    env_.reset(std::move(seq));
    while (!env_.done()) {
      const Observation obs = builder_.build(env_);
      const Logits logits = policy_->logits(obs);
      nn::softmax_masked(logits.data(), obs.mask.data(), probs_.data(),
                         kMaxObservable);
      // Sample from the masked categorical.
      double u = rng_.uniform();
      std::size_t a = 0;
      for (std::size_t i = 0; i < kMaxObservable; ++i) {
        if (obs.mask[i] == 0) continue;
        a = i;
        u -= probs_[i];
        if (u <= 0.0) break;
      }
      const float v = *value_net_.forward(value_params_.data(),
                                          obs.features.data());
      obs_buf_.push_back(obs);
      act_buf_.push_back(static_cast<std::uint32_t>(a));
      logp_buf_.push_back(std::log(std::max(probs_[a], 1e-10f)));
      val_buf_.push_back(v);
      env_.step(a);
    }
    const sim::RunResult result = env_.result();
    traj_end_.push_back(obs_buf_.size());
    traj_reward_.push_back(static_cast<float>(reward_of(result)));
    epoch_metric_sum_ += result.value(cfg_.metric);
  }
  steps_ = obs_buf_.size();
}

void PPOTrainer::compute_advantages() {
  adv_buf_.assign(steps_, 0.0f);
  ret_buf_.assign(steps_, 0.0f);

  // Normalize terminal rewards across the epoch's rollouts: metrics like
  // bounded slowdown span orders of magnitude and would otherwise swamp the
  // value regression.
  float mean = 0.0f;
  for (const float r : traj_reward_) mean += r;
  mean /= static_cast<float>(traj_reward_.size());
  float var = 0.0f;
  for (const float r : traj_reward_) var += (r - mean) * (r - mean);
  var /= static_cast<float>(traj_reward_.size());
  const float scale = 1.0f / std::sqrt(var + 1e-6f);

  std::size_t begin = 0;
  for (std::size_t t = 0; t < traj_end_.size(); ++t) {
    const std::size_t end = traj_end_[t];
    const float reward = (traj_reward_[t] - mean) * scale;
    // GAE backward recursion; rewards are 0 except at the terminal step.
    float adv = 0.0f;
    for (std::size_t i = end; i-- > begin;) {
      const float next_v = i + 1 < end ? val_buf_[i + 1] : 0.0f;
      const float r = i + 1 == end ? reward : 0.0f;
      const float delta = r + cfg_.gamma * next_v - val_buf_[i];
      adv = delta + cfg_.gamma * cfg_.lam * adv;
      adv_buf_[i] = adv;
      ret_buf_[i] = adv + val_buf_[i];
    }
    begin = end;
  }

  // Standardize advantages over the whole buffer.
  float a_mean = 0.0f;
  for (std::size_t i = 0; i < steps_; ++i) a_mean += adv_buf_[i];
  a_mean /= static_cast<float>(steps_);
  float a_var = 0.0f;
  for (std::size_t i = 0; i < steps_; ++i) {
    a_var += (adv_buf_[i] - a_mean) * (adv_buf_[i] - a_mean);
  }
  a_var /= static_cast<float>(steps_);
  const float a_scale = 1.0f / std::sqrt(a_var + 1e-6f);
  for (std::size_t i = 0; i < steps_; ++i) {
    adv_buf_[i] = (adv_buf_[i] - a_mean) * a_scale;
  }
}

void PPOTrainer::reset_perm() {
  perm_.resize(steps_);
  for (std::size_t i = 0; i < steps_; ++i) {
    perm_[i] = static_cast<std::uint32_t>(i);
  }
}

void PPOTrainer::update_policy() {
  const std::size_t batch =
      cfg_.minibatch == 0 ? steps_ : std::min(cfg_.minibatch, steps_);
  reset_perm();

  Logits dlogits;
  for (std::size_t iter = 0; iter < cfg_.pi_iters; ++iter) {
    // Fisher-Yates shuffle with the trainer's own rng (reproducible).
    for (std::size_t i = steps_; i-- > 1;) {
      const std::size_t j = static_cast<std::size_t>(rng_.below(i + 1));
      std::swap(perm_[i], perm_[j]);
    }
    double kl_sum = 0.0;
    for (std::size_t start = 0; start < steps_; start += batch) {
      const std::size_t stop = std::min(start + batch, steps_);
      const float inv_batch = 1.0f / static_cast<float>(stop - start);
      std::fill(pi_grad_.begin(), pi_grad_.end(), 0.0f);
      for (std::size_t s = start; s < stop; ++s) {
        const std::size_t i = perm_[s];
        const Observation& obs = obs_buf_[i];
        const Logits logits = policy_->logits(obs);
        nn::softmax_masked(logits.data(), obs.mask.data(), probs_.data(),
                           kMaxObservable);
        const std::uint32_t a = act_buf_[i];
        const float logp_new = std::log(std::max(probs_[a], 1e-10f));
        const float ratio = std::exp(logp_new - logp_buf_[i]);
        const float adv = adv_buf_[i];
        kl_sum += logp_buf_[i] - logp_new;
        // Clipped surrogate: zero gradient once the ratio leaves the trust
        // region in the advantage's direction.
        const bool clipped = (adv >= 0.0f && ratio > 1.0f + cfg_.clip) ||
                             (adv < 0.0f && ratio < 1.0f - cfg_.clip);
        if (clipped) continue;
        const float coef = ratio * adv * inv_batch;
        for (std::size_t k = 0; k < kMaxObservable; ++k) {
          // d(-logpi[a])/dlogits = probs - onehot(a), times -coef
          dlogits[k] = coef * probs_[k];
        }
        dlogits[a] -= coef;
        policy_->backward(obs, dlogits, pi_grad_.data());
      }
      pi_opt_.step(policy_->param_vector().data(), pi_grad_.data());
    }
    if (kl_sum / static_cast<double>(steps_) > cfg_.target_kl) break;
  }
}

void PPOTrainer::update_value() {
  const std::size_t batch =
      cfg_.minibatch == 0 ? steps_ : std::min(cfg_.minibatch, steps_);
  reset_perm();
  float dout = 0.0f;
  for (std::size_t iter = 0; iter < cfg_.v_iters; ++iter) {
    for (std::size_t i = steps_; i-- > 1;) {
      const std::size_t j = static_cast<std::size_t>(rng_.below(i + 1));
      std::swap(perm_[i], perm_[j]);
    }
    for (std::size_t start = 0; start < steps_; start += batch) {
      const std::size_t stop = std::min(start + batch, steps_);
      const float inv_batch = 1.0f / static_cast<float>(stop - start);
      std::fill(v_grad_.begin(), v_grad_.end(), 0.0f);
      for (std::size_t s = start; s < stop; ++s) {
        const std::size_t i = perm_[s];
        const float v = *value_net_.forward(value_params_.data(),
                                            obs_buf_[i].features.data());
        dout = 2.0f * (v - ret_buf_[i]) * inv_batch;
        value_net_.backward(value_params_.data(),
                            obs_buf_[i].features.data(), &dout,
                            v_grad_.data(), nullptr, /*recompute=*/false);
      }
      v_opt_.step(value_params_.data(), v_grad_.data());
    }
  }
}

EpochStats PPOTrainer::train_epoch() {
  const auto t0 = std::chrono::steady_clock::now();
  collect_trajectories();
  if (steps_ > 0) {
    compute_advantages();
    update_policy();
    update_value();
  }
  EpochStats stats;
  stats.epoch = epoch_++;
  stats.avg_metric =
      traj_end_.empty()
          ? 0.0
          : epoch_metric_sum_ / static_cast<double>(traj_end_.size());
  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return stats;
}

sim::RunResult PPOTrainer::evaluate(const std::vector<trace::Job>& seq,
                                    int processors, bool backfill) const {
  sim::SchedulingEnv env(processors, sim::EnvConfig{backfill, kMaxObservable});
  env.reset(seq);
  while (!env.done()) {
    const Observation obs = builder_.build(env);
    const Logits logits = policy_->logits(obs);
    env.step(nn::argmax_masked(logits.data(), obs.mask.data(),
                               kMaxObservable));
  }
  return env.result();
}

void PPOTrainer::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write model file: " + path);
  out << "rlsched-model 1\n";
  out << "policy " << policy_kind_name(cfg_.policy) << ' '
      << policy_->parameter_count() << '\n';
  out.precision(9);
  write_params(out, policy_->param_vector());
  out << "value " << value_params_.size() << '\n';
  write_params(out, value_params_);
}

void PPOTrainer::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read model file: " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "rlsched-model" || version != 1) {
    throw std::runtime_error("unrecognized model file: " + path);
  }
  std::string section, kind;
  std::size_t count = 0;
  in >> section >> kind >> count;
  if (section != "policy" || kind != policy_kind_name(cfg_.policy) ||
      count != policy_->parameter_count()) {
    throw std::runtime_error("model file does not match configuration: " +
                             path);
  }
  for (float& p : policy_->param_vector()) in >> p;
  in >> section >> count;
  if (section != "value" || count != value_params_.size()) {
    throw std::runtime_error("model file value section mismatch: " + path);
  }
  for (float& p : value_params_) in >> p;
  if (!in) throw std::runtime_error("truncated model file: " + path);
}

}  // namespace rlsched::rl
