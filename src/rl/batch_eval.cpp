#include "rl/batch_eval.hpp"

#include <algorithm>

#include "nn/ops.hpp"

namespace rlsched::rl {

void batched_argmax(const Policy& policy, const Observation* const* obs,
                    std::size_t n, float* logits_slab,
                    std::uint32_t* actions) {
  policy.logits_batch(obs, n, logits_slab);
  for (std::size_t k = 0; k < n; ++k) {
    actions[k] = static_cast<std::uint32_t>(
        nn::argmax_masked(logits_slab + k * kMaxObservable,
                          obs[k]->mask.data(), kMaxObservable));
  }
}

void batched_argmax_quant(const Policy& policy, const Observation* const* obs,
                          std::size_t n, float* logits_slab,
                          std::uint32_t* actions) {
  policy.logits_quant_batch(obs, n, logits_slab);
  for (std::size_t k = 0; k < n; ++k) {
    actions[k] = static_cast<std::uint32_t>(
        nn::argmax_masked(logits_slab + k * kMaxObservable,
                          obs[k]->mask.data(), kMaxObservable));
  }
}

BatchedEvaluator::BatchedEvaluator(const Policy& policy, std::size_t batch)
    : policy_(policy), batch_(batch == 0 ? 1 : batch) {
  policy_.reserve_batch(batch_);
  obs_.resize(batch_);
  obs_ptr_.resize(batch_);
  logits_.resize(batch_ * kMaxObservable);
  actions_.resize(batch_);
  alive_.reserve(batch_);
}

void BatchedEvaluator::evaluate(
    const std::vector<std::vector<trace::Job>>& seqs, int processors,
    bool backfill, sim::RunResult* out) {
  const sim::EnvConfig cfg{backfill, kMaxObservable};
  for (std::size_t group = 0; group < seqs.size(); group += batch_) {
    const std::size_t nb = std::min(batch_, seqs.size() - group);
    while (envs_.size() < nb) envs_.emplace_back(processors, cfg);
    alive_.clear();
    for (std::size_t k = 0; k < nb; ++k) {
      envs_[k].reconfigure(processors, cfg);
      envs_[k].reset(seqs[group + k]);
      if (!envs_[k].done()) alive_.push_back(static_cast<std::uint32_t>(k));
    }
    while (!alive_.empty()) {
      const std::size_t n = alive_.size();
      for (std::size_t w = 0; w < n; ++w) {
        builder_.build_into(envs_[alive_[w]], obs_[w]);
        obs_ptr_[w] = &obs_[w];
      }
      if (use_quant_) {
        batched_argmax_quant(policy_, obs_ptr_.data(), n, logits_.data(),
                             actions_.data());
      } else {
        batched_argmax(policy_, obs_ptr_.data(), n, logits_.data(),
                       actions_.data());
      }
      std::size_t keep = 0;
      for (std::size_t w = 0; w < n; ++w) {
        sim::SchedulingEnv& env = envs_[alive_[w]];
        env.step(actions_[w]);
        if (!env.done()) alive_[keep++] = alive_[w];
      }
      alive_.resize(keep);
    }
    for (std::size_t k = 0; k < nb; ++k) out[group + k] = envs_[k].result();
  }
}

}  // namespace rlsched::rl
