#include "rl/policy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/mlp.hpp"
#include "nn/ops.hpp"

namespace rlsched::rl {

std::string policy_kind_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::Kernel: return "kernel";
    case PolicyKind::MlpV1: return "mlp_v1";
    case PolicyKind::MlpV2: return "mlp_v2";
    case PolicyKind::MlpV3: return "mlp_v3";
    case PolicyKind::LeNet: return "lenet";
  }
  return "unknown";
}

namespace {

// ---------------------------------------------------------------------------
// Kernel network: shared per-job MLP {features, 32, 16, 8, 1} evaluated as
// batched dense layers over the SoA job axis — one GEMM-shaped pass scores
// all 128 window slots at once.
// ---------------------------------------------------------------------------
class KernelPolicy final : public Policy {
 public:
  explicit KernelPolicy(util::Rng& rng) {
    std::size_t off = 0;
    for (std::size_t l = 0; l + 1 < kLayers.size(); ++l) {
      w_off_[l] = off;
      off += kLayers[l] * kLayers[l + 1];
      b_off_[l] = off;
      off += kLayers[l + 1];
    }
    params_.resize(off);
    std::size_t act_total = 0;
    for (std::size_t l = 1; l < kLayers.size(); ++l) {
      act_off_[l - 1] = act_total;
      act_total += kLayers[l] * kMaxObservable;
    }
    act_.resize(act_total);
    dact_.resize(act_total);
    const std::size_t last = kLayers.size() - 2;
    for (std::size_t l = 0; l + 1 < kLayers.size(); ++l) {
      const float scale = std::sqrt(2.0f / static_cast<float>(kLayers[l])) *
                          (l == last ? 0.01f : 1.0f);
      float* w = params_.data() + w_off_[l];
      for (std::size_t i = 0; i < kLayers[l] * kLayers[l + 1]; ++i) {
        w[i] = scale * static_cast<float>(rng.normal());
      }
    }
  }

  Logits logits(const Observation& obs) const override {
    constexpr std::size_t J = kMaxObservable;
    const float* in = obs.features.data();
    for (std::size_t l = 0; l + 1 < kLayers.size(); ++l) {
      float* out = act_.data() + act_off_[l];
      nn::dense_batch_forward(params_.data() + w_off_[l],
                              params_.data() + b_off_[l], in, out,
                              kLayers[l + 1], kLayers[l], J,
                              /*relu=*/l + 2 < kLayers.size());
      in = out;
    }
    Logits out;
    std::memcpy(out.data(), in, sizeof(out));
    return out;
  }

  void backward(const Observation& obs, const Logits& dlogits,
                float* gparams) const override {
    constexpr std::size_t J = kMaxObservable;
    const std::size_t layers = kLayers.size() - 1;
    std::memcpy(dact_.data() + act_off_[layers - 1], dlogits.data(),
                sizeof(dlogits));
    for (std::size_t l = layers; l-- > 0;) {
      const float* a_in =
          l == 0 ? obs.features.data() : act_.data() + act_off_[l - 1];
      float* d_out = dact_.data() + act_off_[l];
      float* d_in = l == 0 ? nullptr : dact_.data() + act_off_[l - 1];
      nn::dense_batch_backward(params_.data() + w_off_[l], a_in,
                               act_.data() + act_off_[l], d_out, d_in,
                               gparams + w_off_[l], gparams + b_off_[l],
                               kLayers[l + 1], kLayers[l], J,
                               /*relu=*/l + 1 < layers);
    }
  }

  PolicyKind kind() const override { return PolicyKind::Kernel; }

 private:
  static constexpr std::array<std::size_t, 5> kLayers = {kJobFeatures, 32,
                                                         16, 8, 1};
  std::array<std::size_t, 4> w_off_{}, b_off_{}, act_off_{};
  mutable std::vector<float> act_, dact_;
};

// ---------------------------------------------------------------------------
// Flat MLP baselines: the whole window (features flattened) through dense
// layers to 128 logits. Destroys permutation equivariance — the paper's
// point in Fig 8.
// ---------------------------------------------------------------------------
class MlpPolicy final : public Policy {
 public:
  MlpPolicy(PolicyKind kind, std::vector<std::size_t> hidden, util::Rng& rng)
      : kind_(kind), net_(make_sizes(std::move(hidden))) {
    params_.resize(net_.param_count());
    net_.init(params_.data(), rng, 0.01f);
  }

  Logits logits(const Observation& obs) const override {
    const float* out = net_.forward(params_.data(), obs.features.data());
    Logits l;
    std::memcpy(l.data(), out, sizeof(l));
    return l;
  }

  void backward(const Observation& obs, const Logits& dlogits,
                float* gparams) const override {
    net_.backward(params_.data(), obs.features.data(), dlogits.data(),
                  gparams, nullptr, /*recompute=*/false);
  }

  PolicyKind kind() const override { return kind_; }

 private:
  static std::vector<std::size_t> make_sizes(std::vector<std::size_t> hidden) {
    std::vector<std::size_t> sizes;
    sizes.push_back(kJobFeatures * kMaxObservable);
    for (const std::size_t h : hidden) sizes.push_back(h);
    sizes.push_back(kMaxObservable);
    return sizes;
  }
  PolicyKind kind_;
  nn::FlatMlp net_;
};

// ---------------------------------------------------------------------------
// LeNet-style baseline: conv1d/pool stacks along the job axis, then a dense
// head. Pooling mixes neighbouring queue slots — the order sensitivity that
// degrades its training curves.
// ---------------------------------------------------------------------------
class LeNetPolicy final : public Policy {
 public:
  explicit LeNetPolicy(util::Rng& rng)
      : head_({kC2 * (kMaxObservable / 4), 64, kMaxObservable}) {
    conv1_w_ = 0;
    conv1_b_ = conv1_w_ + kC1 * kJobFeatures * kK;
    conv2_w_ = conv1_b_ + kC1;
    conv2_b_ = conv2_w_ + kC2 * kC1 * kK;
    head_off_ = conv2_b_ + kC2;
    params_.resize(head_off_ + head_.param_count());

    auto init_conv = [&rng, this](std::size_t w_off, std::size_t count,
                                  std::size_t fan_in) {
      const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
      for (std::size_t i = 0; i < count; ++i) {
        params_[w_off + i] = scale * static_cast<float>(rng.normal());
      }
    };
    init_conv(conv1_w_, kC1 * kJobFeatures * kK, kJobFeatures * kK);
    init_conv(conv2_w_, kC2 * kC1 * kK, kC1 * kK);
    head_.init(params_.data() + head_off_, rng, 0.01f);

    c1_.resize(kC1 * kMaxObservable);
    p1_.resize(kC1 * (kMaxObservable / 2));
    c2_.resize(kC2 * (kMaxObservable / 2));
    p2_.resize(kC2 * (kMaxObservable / 4));
    dc1_.resize(c1_.size());
    dp1_.resize(p1_.size());
    dc2_.resize(c2_.size());
    dp2_.resize(p2_.size());
  }

  Logits logits(const Observation& obs) const override {
    forward(obs);
    const float* out = head_.forward(params_.data() + head_off_, p2_.data());
    Logits l;
    std::memcpy(l.data(), out, sizeof(l));
    return l;
  }

  void backward(const Observation& obs, const Logits& dlogits,
                float* gparams) const override {
    head_.backward(params_.data() + head_off_, p2_.data(), dlogits.data(),
                   gparams + head_off_, dp2_.data(), /*recompute=*/false);
    constexpr std::size_t L = kMaxObservable;
    nn::avgpool2_backward(dp2_.data(), dc2_.data(), kC2, L / 2);
    nn::conv1d_backward(params_.data() + conv2_w_, p1_.data(), c2_.data(),
                        dc2_.data(), dp1_.data(), gparams + conv2_w_,
                        gparams + conv2_b_, kC2, kC1, L / 2, kK, true);
    nn::avgpool2_backward(dp1_.data(), dc1_.data(), kC1, L);
    nn::conv1d_backward(params_.data() + conv1_w_, obs.features.data(),
                        c1_.data(), dc1_.data(), nullptr, gparams + conv1_w_,
                        gparams + conv1_b_, kC1, kJobFeatures, L, kK, true);
  }

  PolicyKind kind() const override { return PolicyKind::LeNet; }

 private:
  void forward(const Observation& obs) const {
    constexpr std::size_t L = kMaxObservable;
    nn::conv1d_forward(params_.data() + conv1_w_, params_.data() + conv1_b_,
                       obs.features.data(), c1_.data(), kC1, kJobFeatures, L,
                       kK, true);
    nn::avgpool2_forward(c1_.data(), p1_.data(), kC1, L);
    nn::conv1d_forward(params_.data() + conv2_w_, params_.data() + conv2_b_,
                       p1_.data(), c2_.data(), kC2, kC1, L / 2, kK, true);
    nn::avgpool2_forward(c2_.data(), p2_.data(), kC2, L / 2);
  }

  static constexpr std::size_t kC1 = 8, kC2 = 8, kK = 5;
  std::size_t conv1_w_, conv1_b_, conv2_w_, conv2_b_, head_off_;
  nn::FlatMlp head_;
  mutable std::vector<float> c1_, p1_, c2_, p2_, dc1_, dp1_, dc2_, dp2_;
};

}  // namespace

std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    std::size_t max_observable,
                                    util::Rng& rng) {
  if (max_observable > kMaxObservable) {
    throw std::invalid_argument(
        "max_observable exceeds compiled kMaxObservable");
  }
  switch (kind) {
    case PolicyKind::Kernel:
      return std::make_unique<KernelPolicy>(rng);
    case PolicyKind::MlpV1:
      return std::make_unique<MlpPolicy>(kind,
                                         std::vector<std::size_t>{128, 128},
                                         rng);
    case PolicyKind::MlpV2:
      return std::make_unique<MlpPolicy>(kind,
                                         std::vector<std::size_t>{256, 256},
                                         rng);
    case PolicyKind::MlpV3:
      return std::make_unique<MlpPolicy>(kind,
                                         std::vector<std::size_t>{512, 512},
                                         rng);
    case PolicyKind::LeNet:
      return std::make_unique<LeNetPolicy>(rng);
  }
  throw std::invalid_argument("unknown policy kind");
}

}  // namespace rlsched::rl
