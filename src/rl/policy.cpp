#include "rl/policy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "nn/mlp.hpp"
#include "nn/ops.hpp"
#include "nn/quant.hpp"

namespace rlsched::rl {

std::string policy_kind_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::Kernel: return "kernel";
    case PolicyKind::MlpV1: return "mlp_v1";
    case PolicyKind::MlpV2: return "mlp_v2";
    case PolicyKind::MlpV3: return "mlp_v3";
    case PolicyKind::LeNet: return "lenet";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Base-class batched entry points: a correct (window-looping) fallback for
// policies without a native batched pass. logits_batch rows are trivially
// bitwise identical to logits(); backward_batch recomputes each window's
// forward before its backward (so it pairs with nothing), which is why
// supports_batched_update() defaults to false.
// ---------------------------------------------------------------------------

void Policy::logits_batch(const Observation* const* obs, std::size_t n,
                          float* out) const {
  for (std::size_t k = 0; k < n; ++k) {
    const Logits l = logits(*obs[k]);
    std::memcpy(out + k * kMaxObservable, l.data(), sizeof(l));
  }
}

void Policy::backward_batch(const Observation* const* obs, std::size_t n,
                            const float* dlogits,
                            const std::uint8_t* win_active,
                            float* gparams) const {
  Logits dl;
  for (std::size_t k = 0; k < n; ++k) {
    if (win_active != nullptr && win_active[k] == 0) continue;
    (void)logits(*obs[k]);  // refresh this window's activations
    std::memcpy(dl.data(), dlogits + k * kMaxObservable, sizeof(dl));
    backward(*obs[k], dl, gparams);
  }
}

namespace {

// ---------------------------------------------------------------------------
// Kernel network: shared per-job MLP {features, 32, 16, 8, 1} evaluated as
// batched dense layers over the SoA job axis — one GEMM-shaped pass scores
// all 128 window slots at once.
//
// Batched entry points use WINDOW-BLOCKED scheduling: each window runs the
// full layer stack with its ~29 KB activation block L1-resident, writing
// into its slice of a window-major activation slab (retained for the
// paired backward). The alternative — one contiguous J = B x 128 job axis
// through every layer, which the nn/ kernels fully support — was measured
// ~1.5x SLOWER here: this net's weights are ~6 KB (nothing to amortize,
// the batched win that carries the value net and the MLP baselines), while
// the layerwise batched activations spill L1 from B=2. Equivalence is
// unconditional either way: forwards are per-column exact and the
// window-order gradient reductions match sequential per-window backwards
// bitwise, so the schedule is a pure locality decision.
// ---------------------------------------------------------------------------
class KernelPolicy final : public Policy {
 public:
  explicit KernelPolicy(util::Rng& rng) {
    std::size_t off = 0;
    for (std::size_t l = 0; l + 1 < kLayers.size(); ++l) {
      w_off_[l] = off;
      off += kLayers[l] * kLayers[l + 1];
      b_off_[l] = off;
      off += kLayers[l + 1];
    }
    params_.resize(off);
    for (std::size_t l = 1; l < kLayers.size(); ++l) {
      act_off_[l - 1] = act_unit_;
      act_unit_ += kLayers[l] * kMaxObservable;
    }
    act_.resize(act_unit_);
    dact_.resize(act_unit_);
    const std::size_t last = kLayers.size() - 2;
    for (std::size_t l = 0; l + 1 < kLayers.size(); ++l) {
      const float scale = std::sqrt(2.0f / static_cast<float>(kLayers[l])) *
                          (l == last ? 0.01f : 1.0f);
      float* w = params_.data() + w_off_[l];
      for (std::size_t i = 0; i < kLayers[l] * kLayers[l + 1]; ++i) {
        w[i] = scale * static_cast<float>(rng.normal());
      }
    }
  }

  Logits logits(const Observation& obs) const override {
    const float* top = forward_window(obs.features.data(), 0);
    Logits out;
    std::memcpy(out.data(), top, sizeof(out));
    return out;
  }

  void backward(const Observation& obs, const Logits& dlogits,
                float* gparams) const override {
    backward_window(obs.features.data(), 0, dlogits.data(), gparams);
  }

  void logits_batch(const Observation* const* obs, std::size_t n,
                    float* out) const override {
    ensure_batch(n);
    for (std::size_t k = 0; k < n; ++k) {
      const float* top = forward_window(obs[k]->features.data(), k);
      std::memcpy(out + k * kMaxObservable, top,
                  kMaxObservable * sizeof(float));
    }
  }

  void reserve_batch(std::size_t n) const override { ensure_batch(n); }

  bool supports_batched_update() const override { return true; }

  void backward_batch(const Observation* const* obs, std::size_t n,
                      const float* dlogits, const std::uint8_t* win_active,
                      float* gparams) const override {
    for (std::size_t k = 0; k < n; ++k) {
      if (win_active != nullptr && win_active[k] == 0) continue;
      backward_window(obs[k]->features.data(), k,
                      dlogits + k * kMaxObservable, gparams);
    }
  }

  PolicyKind kind() const override { return PolicyKind::Kernel; }

  // --- int8 path: per-layer packed weights + static calibrated scales ---
  //
  // The whole stack runs in nn/quant.hpp's group-packed u8 layout:
  // features quantize once, the three hidden layers requantize in place
  // (ping-pong between two 4 KB scratch slabs), and the 1-wide head
  // dequantizes straight into the logits row. Inference only — training
  // stays float, so enable_quant() is a snapshot of the current weights.

  bool supports_quant() const override { return true; }

  bool enable_quant(const Observation* const* calib,
                    std::size_t n) override {
    constexpr std::size_t J = kMaxObservable;
    const std::size_t layers = kLayers.size() - 1;
    // Static activation scales: amax over the calibration set of each
    // layer's float input (features, then each relu output), spread over
    // the full u8 range. Unit scales when uncalibrated keep the mapping
    // deterministic (just coarse).
    std::array<float, 4> amax{};
    for (std::size_t s = 0; s < n; ++s) {
      const float* f = calib[s]->features.data();
      for (std::size_t i = 0; i < kLayers[0] * J; ++i) {
        amax[0] = std::max(amax[0], f[i]);
      }
      (void)forward_window(f, 0);  // fills window 0's activation slab
      for (std::size_t l = 0; l + 1 < layers; ++l) {
        const float* h = act_.data() + act_off_[l];
        for (std::size_t i = 0; i < kLayers[l + 1] * J; ++i) {
          amax[l + 1] = std::max(amax[l + 1], h[i]);
        }
      }
    }
    for (std::size_t l = 0; l < layers; ++l) {
      const std::size_t groups = nn::quant_groups(kLayers[l]);
      wscale_[l] = nn::weight_scale(params_.data() + w_off_[l],
                                    kLayers[l] * kLayers[l + 1]);
      wq_[l].resize(kLayers[l + 1] * groups * nn::kQuantGroup);
      nn::pack_weights_s8(params_.data() + w_off_[l], kLayers[l + 1],
                          kLayers[l], wscale_[l], wq_[l].data());
    }
    // Each hidden layer's OUTPUT scale is constrained to a power-of-two
    // multiple of its accumulator scale s_in * s_w (see nn/quant.hpp), the
    // smallest such scale whose 255-step range still covers the measured
    // output amax — rounding the scale UP, so the u8 clamp never clips
    // tighter than the calibration sweep saw. That makes the requant
    // multiplier exactly 2^-rshift, and the bias plus the round-half-up
    // constant fold into the int32 accumulator init acc0.
    ascale_[0] = amax[0] > 0.0f ? amax[0] / 255.0f : 1.0f;
    for (std::size_t l = 0; l + 1 < layers; ++l) {
      const float sacc = ascale_[l] * wscale_[l];
      const double need =
          static_cast<double>(amax[l + 1]) / (255.0 * sacc);
      int rs = need > 1.0
                   ? static_cast<int>(std::ceil(std::log2(need)))
                   : 0;
      rs = std::min(std::max(rs, 0), 24);
      rshift_[l] = rs;
      ascale_[l + 1] = sacc * static_cast<float>(1 << rs);
      acc0_[l].resize(kLayers[l + 1]);
      const float* b = params_.data() + b_off_[l];
      for (std::size_t o = 0; o < kLayers[l + 1]; ++o) {
        // Clamp the requantized bias to +-2^30: |dot| < 2^21, so the
        // accumulator can never wrap even for degenerate scales.
        float t = b[o] / sacc;
        t = std::min(std::max(t, -1073741824.0f), 1073741824.0f);
        acc0_[l][o] =
            static_cast<std::int32_t>(std::nearbyintf(t)) +
            (rs > 0 ? std::int32_t{1} << (rs - 1) : 0);
      }
    }
    mfinal_ = ascale_[layers - 1] * wscale_[layers - 1];
    // Two ping-pong scratch slabs sized for the widest layer input
    // (32 channels -> 4 KB), 64-byte aligned: the hidden kernels stream
    // 64-byte rows, and cache-line-split loads cost ~20% end to end.
    const std::size_t slab =
        nn::quant_groups(kLayers[1]) * J * nn::kQuantGroup;
    aq_store_.resize(2 * slab + 63);
    const auto base = reinterpret_cast<std::uintptr_t>(aq_store_.data());
    std::uint8_t* p = aq_store_.data() + ((64 - base % 64) % 64);
    aq_ping_ = p;
    aq_pong_ = p + slab;
    quant_on_ = true;
    return true;
  }

  void disable_quant() override { quant_on_ = false; }
  bool quant_enabled() const override { return quant_on_; }

  Logits logits_quant(const Observation& obs) const override {
    if (!quant_on_) return logits(obs);
    Logits out;
    quant_window(obs.features.data(), out.data());
    return out;
  }

  void logits_quant_batch(const Observation* const* obs, std::size_t n,
                          float* out) const override {
    if (!quant_on_) {
      logits_batch(obs, n, out);
      return;
    }
    for (std::size_t k = 0; k < n; ++k) {
      quant_window(obs[k]->features.data(), out + k * kMaxObservable);
    }
  }

 private:
  void ensure_batch(std::size_t n) const {
    if (n <= batch_cap_) return;
    batch_cap_ = n;
    act_.resize(act_unit_ * n);
  }

  /// Full layer stack over window k's 128 slots; activations land in the
  /// window's slab block (retained for backward_window).
  const float* forward_window(const float* features, std::size_t k) const {
    constexpr std::size_t J = kMaxObservable;
    float* base = act_.data() + k * act_unit_;
    const float* in = features;
    for (std::size_t l = 0; l + 1 < kLayers.size(); ++l) {
      float* out = base + act_off_[l];
      nn::dense_batch_forward(params_.data() + w_off_[l],
                              params_.data() + b_off_[l], in, out,
                              kLayers[l + 1], kLayers[l], J,
                              /*relu=*/l + 2 < kLayers.size());
      in = out;
    }
    return in;
  }

  /// Pairs with the latest forward_window(features, k). Gradient scratch is
  /// shared across windows (backwards run sequentially); gW/gb reductions
  /// use the order-stable lane order of nn::dense_batch_backward.
  void backward_window(const float* features, std::size_t k,
                       const float* dlogits, float* gparams) const {
    constexpr std::size_t J = kMaxObservable;
    const std::size_t layers = kLayers.size() - 1;
    const float* base = act_.data() + k * act_unit_;
    std::memcpy(dact_.data() + act_off_[layers - 1], dlogits,
                J * sizeof(float));
    for (std::size_t l = layers; l-- > 0;) {
      const float* a_in = l == 0 ? features : base + act_off_[l - 1];
      float* d_out = dact_.data() + act_off_[l];
      float* d_in = l == 0 ? nullptr : dact_.data() + act_off_[l - 1];
      nn::dense_batch_backward(params_.data() + w_off_[l], a_in,
                               base + act_off_[l], d_out, d_in,
                               gparams + w_off_[l], gparams + b_off_[l],
                               kLayers[l + 1], kLayers[l], J,
                               /*relu=*/l + 1 < layers);
    }
  }

  /// One window through the quantized stack: quantize features, three
  /// fused int8 hidden layers, dequantizing head into `out` (128 floats).
  void quant_window(const float* features, float* out) const {
    constexpr std::size_t J = kMaxObservable;
    std::uint8_t* cur = aq_ping_;
    std::uint8_t* nxt = aq_pong_;
    nn::pack_acts_u8(features, kLayers[0], J, J, 1.0f / ascale_[0], cur);
    for (std::size_t l = 0; l + 2 < kLayers.size(); ++l) {
      nn::quant_dense_hidden(cur, wq_[l].data(), kLayers[l + 1],
                             nn::quant_groups(kLayers[l]), J, rshift_[l],
                             acc0_[l].data(), nxt);
      std::swap(cur, nxt);
    }
    const std::size_t last = kLayers.size() - 2;
    nn::quant_dense_f32(cur, wq_[last].data(), kLayers[last + 1],
                        nn::quant_groups(kLayers[last]), J, mfinal_,
                        params_.data() + b_off_[last], out);
  }

  static constexpr std::array<std::size_t, 5> kLayers = {kJobFeatures, 32,
                                                         16, 8, 1};
  std::array<std::size_t, 4> w_off_{}, b_off_{};
  std::array<std::size_t, 4> act_off_{};  ///< float offsets within a window
  std::size_t act_unit_ = 0;              ///< activation floats per window
  mutable std::size_t batch_cap_ = 1;
  mutable std::vector<float> act_;   ///< window-major activation slab
  mutable std::vector<float> dact_;  ///< one window of gradient scratch

  // int8 snapshot (enable_quant) + per-window packed-activation scratch
  bool quant_on_ = false;
  std::array<std::vector<std::int8_t>, 4> wq_;
  std::array<float, 4> wscale_{}, ascale_{};
  std::array<int, 3> rshift_{};
  std::array<std::vector<std::int32_t>, 3> acc0_;
  float mfinal_ = 0.0f;
  mutable std::vector<std::uint8_t> aq_store_;  ///< backing, over-allocated
  mutable std::uint8_t* aq_ping_ = nullptr;     ///< 64B-aligned slabs
  mutable std::uint8_t* aq_pong_ = nullptr;
};

// ---------------------------------------------------------------------------
// Flat MLP baselines: the whole window (features flattened) through dense
// layers to 128 logits. Destroys permutation equivariance — the paper's
// point in Fig 8. Batched entry points stack observations along the SAMPLE
// axis of the FlatMlp (J = n columns), amortizing the big weight matrices
// across the batch; per-sample (window=1) gradient reductions keep the
// update bitwise identical to sequential per-sample backwards.
// ---------------------------------------------------------------------------
class MlpPolicy final : public Policy {
 public:
  MlpPolicy(PolicyKind kind, std::vector<std::size_t> hidden, util::Rng& rng)
      : kind_(kind), net_(make_sizes(std::move(hidden))) {
    params_.resize(net_.param_count());
    net_.init(params_.data(), rng, 0.01f);
  }

  Logits logits(const Observation& obs) const override {
    const float* out = net_.forward(params_.data(), obs.features.data());
    Logits l;
    std::memcpy(l.data(), out, sizeof(l));
    return l;
  }

  void backward(const Observation& obs, const Logits& dlogits,
                float* gparams) const override {
    net_.backward(params_.data(), obs.features.data(), dlogits.data(),
                  gparams, nullptr, /*recompute=*/false);
  }

  void logits_batch(const Observation* const* obs, std::size_t n,
                    float* out) const override {
    ensure_batch(n);
    constexpr std::size_t in = kJobFeatures * kMaxObservable;
    // Transpose-pack into the SoA sample axis: feature i of sample k at
    // x[i*n + k].
    for (std::size_t k = 0; k < n; ++k) {
      const float* f = obs[k]->features.data();
      for (std::size_t i = 0; i < in; ++i) x_[i * n + k] = f[i];
    }
    const float* soa = net_.forward_batch(params_.data(), x_.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      float* row = out + k * kMaxObservable;
      for (std::size_t o = 0; o < kMaxObservable; ++o) row[o] = soa[o * n + k];
    }
  }

  void reserve_batch(std::size_t n) const override {
    ensure_batch(n);
    net_.reserve_batch(n);
  }

  bool supports_batched_update() const override { return true; }

  void backward_batch(const Observation* const* obs, std::size_t n,
                      const float* dlogits, const std::uint8_t* win_active,
                      float* gparams) const override {
    (void)obs;  // x_ still holds the transposed pack from logits_batch
    for (std::size_t k = 0; k < n; ++k) {
      const float* row = dlogits + k * kMaxObservable;
      for (std::size_t o = 0; o < kMaxObservable; ++o) {
        dsoa_[o * n + k] = row[o];
      }
    }
    net_.backward_batch(params_.data(), x_.data(), dsoa_.data(), gparams, n,
                        /*window=*/1, win_active, nullptr);
  }

  PolicyKind kind() const override { return kind_; }

 private:
  void ensure_batch(std::size_t n) const {
    if (n <= batch_cap_ && !x_.empty()) return;
    batch_cap_ = n > batch_cap_ ? n : batch_cap_;
    x_.resize(kJobFeatures * kMaxObservable * batch_cap_);
    dsoa_.resize(kMaxObservable * batch_cap_);
  }

  static std::vector<std::size_t> make_sizes(std::vector<std::size_t> hidden) {
    std::vector<std::size_t> sizes;
    sizes.push_back(kJobFeatures * kMaxObservable);
    for (const std::size_t h : hidden) sizes.push_back(h);
    sizes.push_back(kMaxObservable);
    return sizes;
  }
  PolicyKind kind_;
  nn::FlatMlp net_;
  mutable std::size_t batch_cap_ = 0;
  mutable std::vector<float> x_, dsoa_;  ///< transposed pack + dOut scratch
};

// ---------------------------------------------------------------------------
// LeNet-style baseline: conv1d/pool stacks along the job axis, then a dense
// head. Pooling mixes neighbouring queue slots — the order sensitivity that
// degrades its training curves.
// ---------------------------------------------------------------------------
class LeNetPolicy final : public Policy {
 public:
  explicit LeNetPolicy(util::Rng& rng)
      : head_({kC2 * (kMaxObservable / 4), 64, kMaxObservable}) {
    conv1_w_ = 0;
    conv1_b_ = conv1_w_ + kC1 * kJobFeatures * kK;
    conv2_w_ = conv1_b_ + kC1;
    conv2_b_ = conv2_w_ + kC2 * kC1 * kK;
    head_off_ = conv2_b_ + kC2;
    params_.resize(head_off_ + head_.param_count());

    auto init_conv = [&rng, this](std::size_t w_off, std::size_t count,
                                  std::size_t fan_in) {
      const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
      for (std::size_t i = 0; i < count; ++i) {
        params_[w_off + i] = scale * static_cast<float>(rng.normal());
      }
    };
    init_conv(conv1_w_, kC1 * kJobFeatures * kK, kJobFeatures * kK);
    init_conv(conv2_w_, kC2 * kC1 * kK, kC1 * kK);
    head_.init(params_.data() + head_off_, rng, 0.01f);

    c1_.resize(kC1 * kMaxObservable);
    p1_.resize(kC1 * (kMaxObservable / 2));
    c2_.resize(kC2 * (kMaxObservable / 2));
    p2_.resize(kC2 * (kMaxObservable / 4));
    dc1_.resize(c1_.size());
    dp1_.resize(p1_.size());
    dc2_.resize(c2_.size());
    dp2_.resize(p2_.size());
  }

  Logits logits(const Observation& obs) const override {
    forward(obs);
    const float* out = head_.forward(params_.data() + head_off_, p2_.data());
    Logits l;
    std::memcpy(l.data(), out, sizeof(l));
    return l;
  }

  void backward(const Observation& obs, const Logits& dlogits,
                float* gparams) const override {
    head_.backward(params_.data() + head_off_, p2_.data(), dlogits.data(),
                   gparams + head_off_, dp2_.data(), /*recompute=*/false);
    constexpr std::size_t L = kMaxObservable;
    nn::avgpool2_backward(dp2_.data(), dc2_.data(), kC2, L / 2);
    nn::conv1d_backward(params_.data() + conv2_w_, p1_.data(), c2_.data(),
                        dc2_.data(), dp1_.data(), gparams + conv2_w_,
                        gparams + conv2_b_, kC2, kC1, L / 2, kK, true);
    nn::avgpool2_backward(dp1_.data(), dc1_.data(), kC1, L);
    nn::conv1d_backward(params_.data() + conv1_w_, obs.features.data(),
                        c1_.data(), dc1_.data(), nullptr, gparams + conv1_w_,
                        gparams + conv1_b_, kC1, kJobFeatures, L, kK, true);
  }

  PolicyKind kind() const override { return PolicyKind::LeNet; }

 private:
  void forward(const Observation& obs) const {
    constexpr std::size_t L = kMaxObservable;
    nn::conv1d_forward(params_.data() + conv1_w_, params_.data() + conv1_b_,
                       obs.features.data(), c1_.data(), kC1, kJobFeatures, L,
                       kK, true);
    nn::avgpool2_forward(c1_.data(), p1_.data(), kC1, L);
    nn::conv1d_forward(params_.data() + conv2_w_, params_.data() + conv2_b_,
                       p1_.data(), c2_.data(), kC2, kC1, L / 2, kK, true);
    nn::avgpool2_forward(c2_.data(), p2_.data(), kC2, L / 2);
  }

  static constexpr std::size_t kC1 = 8, kC2 = 8, kK = 5;
  std::size_t conv1_w_, conv1_b_, conv2_w_, conv2_b_, head_off_;
  nn::FlatMlp head_;
  mutable std::vector<float> c1_, p1_, c2_, p2_, dc1_, dp1_, dc2_, dp2_;
};

}  // namespace

std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    std::size_t max_observable,
                                    util::Rng& rng) {
  if (max_observable > kMaxObservable) {
    throw std::invalid_argument(
        "max_observable exceeds compiled kMaxObservable");
  }
  switch (kind) {
    case PolicyKind::Kernel:
      return std::make_unique<KernelPolicy>(rng);
    case PolicyKind::MlpV1:
      return std::make_unique<MlpPolicy>(kind,
                                         std::vector<std::size_t>{128, 128},
                                         rng);
    case PolicyKind::MlpV2:
      return std::make_unique<MlpPolicy>(kind,
                                         std::vector<std::size_t>{256, 256},
                                         rng);
    case PolicyKind::MlpV3:
      return std::make_unique<MlpPolicy>(kind,
                                         std::vector<std::size_t>{512, 512},
                                         rng);
    case PolicyKind::LeNet:
      return std::make_unique<LeNetPolicy>(rng);
  }
  throw std::invalid_argument("unknown policy kind");
}

}  // namespace rlsched::rl
