#include "rl/observation.hpp"

#include <cmath>

namespace rlsched::rl {

Observation ObservationBuilder::build(const sim::SchedulingEnv& env) const {
  Observation obs;
  build_into(env, obs);
  return obs;
}

void ObservationBuilder::build_into(const sim::SchedulingEnv& env,
                                    Observation& obs) const {
  obs.features.fill(0.0f);
  obs.mask.fill(0);

  const auto window = env.observable();
  const auto& jobs = env.jobs();
  const double now = env.now();
  const float free_frac =
      static_cast<float>(env.free_processors()) /
      static_cast<float>(env.processors());
  const float procs_norm =
      1.0f / std::log1p(static_cast<float>(env.processors()));

  obs.count = static_cast<std::uint32_t>(window.size());
  float* f0 = obs.features.data();  // wait
  float* f1 = f0 + kMaxObservable;  // requested time
  float* f2 = f1 + kMaxObservable;  // requested procs
  float* f3 = f2 + kMaxObservable;  // fits now
  float* f4 = f3 + kMaxObservable;  // free fraction
  float* f5 = f4 + kMaxObservable;  // valid bias
  for (std::size_t j = 0; j < window.size(); ++j) {
    const trace::Job& job = jobs[window[j]];
    const float wait = static_cast<float>(now - job.submit_time);
    f0[j] = std::log1p(wait > 0.0f ? wait : 0.0f) * (1.0f / 12.0f);
    f1[j] = std::log1p(static_cast<float>(job.requested_time)) *
            (1.0f / 12.0f);
    f2[j] = std::log1p(static_cast<float>(job.requested_procs)) * procs_norm;
    f3[j] = job.requested_procs <= env.free_processors() ? 1.0f : 0.0f;
    f4[j] = free_frac;
    f5[j] = 1.0f;
    obs.mask[j] = 1;
  }
}

}  // namespace rlsched::rl
