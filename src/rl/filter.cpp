#include "rl/filter.hpp"

#include "sched/heuristics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rlsched::rl {

double sjf_metric(const std::vector<trace::Job>& seq, int processors,
                  sim::Metric metric) {
  sim::SchedulingEnv env(processors);
  env.reset(seq);
  return env
      .run_priority(sched::sjf_priority(), sim::PriorityKind::TimeInvariant)
      .value(metric);
}

FilterRange compute_filter_range(const trace::Trace& trace, sim::Metric metric,
                                 std::size_t seq_len, std::size_t samples,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values;
  values.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto seq = trace.sample_sequence(rng, seq_len);
    values.push_back(sjf_metric(seq, trace.processors(), metric));
  }
  const auto s = util::summarize(values);
  return {s.median, 2.0 * s.mean};
}

}  // namespace rlsched::rl
