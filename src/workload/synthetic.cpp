#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rlsched::workload {

namespace {

// Table II targets: cluster size, mean inter-arrival (it), mean requested
// runtime (rt), mean requested processors (nt). The burst parameters model
// PIK-IPLEX's spiky submission pattern (paper Fig 3); heavy_user_share
// models HPC2N's single dominant submitter (paper SS V-F).
struct Spec {
  const char* name;
  int processors;
  double it, rt, nt;
  int users;
  double heavy_user_share;
  double burst_enter_prob;  ///< per-job probability of starting a burst
};

constexpr Spec kSpecs[] = {
    {"SDSC-SP2", 128, 1055.0, 6687.0, 11.0, 64, 0.08, 0.0005},
    {"HPC2N", 240, 538.0, 17024.0, 6.0, 40, 0.65, 0.0005},
    {"PIK-IPLEX", 2560, 140.0, 30889.0, 12.0, 48, 0.10, 0.0008},
    {"ANL-Intrepid", 163840, 301.0, 5176.0, 5063.0, 96, 0.06, 0.0005},
    {"Lublin-1", 256, 771.0, 4862.0, 22.0, 56, 0.07, 0.001},
    {"Lublin-2", 256, 460.0, 1695.0, 39.0, 56, 0.07, 0.001},
};

const Spec* find_spec(const std::string& name) {
  for (const Spec& s : kSpecs) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

int sample_procs(util::Rng& rng, const Spec& spec, double scale) {
  // Exponential body (mean nt), then snapped to a power of two three times
  // out of four — batch jobs overwhelmingly request 2^k processors.
  double x = rng.exponential(spec.nt * scale);
  int k = std::max(1, static_cast<int>(std::ceil(x)));
  if (rng.uniform() < 0.75) {
    const int pow2 = 1 << std::min(30, static_cast<int>(std::lround(
                              std::log2(static_cast<double>(k)))));
    k = std::max(1, pow2);
  }
  return std::min(k, spec.processors);
}

}  // namespace

const std::vector<std::string>& trace_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Spec& s : kSpecs) v.emplace_back(s.name);
    return v;
  }();
  return names;
}

trace::Trace make_trace(const std::string& name, std::size_t jobs,
                        std::uint64_t seed) {
  const Spec* spec = find_spec(name);
  if (spec == nullptr) {
    throw std::invalid_argument("unknown trace name: " + name);
  }
  util::Rng rng(seed ^ 0xC0FFEEULL ^
                (static_cast<std::uint64_t>(spec - kSpecs) << 17));

  // Actual runtime: lognormal with mean rt and sigma=2.6. Real archive
  // traces are extremely skewed — the mean is hours but the MEDIAN is
  // minutes — and that mix is what makes saturation expensive: when a
  // burst fills the machine, it is the many short jobs stuck behind it
  // that blow up bounded slowdown.
  const double sigma = 2.6;
  const double mu = std::log(spec->rt) - 0.5 * sigma * sigma;

  // Users request coarse standard walltime limits, not their actual
  // runtime. This estimate inaccuracy is load-bearing: with truthful
  // estimates SJF is near-clairvoyant and no heuristic ever misorders a
  // queue, which flattens every paper result.
  constexpr double kWalltimes[] = {900.0,    3600.0,   4 * 3600.0,
                                   12 * 3600.0, 24 * 3600.0, 48 * 3600.0,
                                   7 * 86400.0};

  std::vector<trace::Job> out;
  out.reserve(jobs);
  double t = 0.0;
  std::size_t burst_left = 0;
  std::size_t regime_left = 0;
  bool busy = false;
  for (std::size_t i = 0; i < jobs; ++i) {
    trace::Job j;
    j.id = static_cast<std::int64_t>(i + 1);

    // Arrivals: Poisson with mean `it`, modulated two ways. Slow
    // busy/quiet regimes (think working hours vs nights) alternate with
    // equal job counts and gap factors 0.4/1.6, preserving the Table II
    // mean inter-arrival while pushing busy-period load high enough that
    // queues actually form — without this, every scheduler looks
    // identical. Rare bursts compress the gap 50x on top — the spikes
    // Fig 3 and the trajectory filter (Fig 7/9) depend on.
    if (regime_left == 0) {
      busy = !busy;
      regime_left = 150 + rng.below(300);
    }
    --regime_left;
    const bool bursting = burst_left > 0;
    if (!bursting && rng.uniform() < spec->burst_enter_prob) {
      burst_left = 150 + rng.below(250);
    }
    double gap_mean = spec->it * (busy ? 0.4 : 1.6);
    if (bursting) gap_mean = spec->it / 100.0;
    t += rng.exponential(gap_mean);
    if (burst_left > 0) --burst_left;
    j.submit_time = t;

    const double run =
        std::clamp(rng.lognormal(mu, sigma), 30.0, 40.0 * spec->rt);
    j.run_time = run;
    // Walltime request: the smallest standard bucket covering a padded
    // guess; a third of users just take a long default limit — and storm
    // submissions (scripted, bulk) almost always do.
    const double default_limit_prob = bursting ? 0.85 : 0.33;
    double req = kWalltimes[6];
    if (rng.uniform() >= default_limit_prob) {
      const double guess = run * rng.uniform(1.1, 3.0);
      for (const double w : kWalltimes) {
        if (w >= guess) {
          req = w;
          break;
        }
      }
    } else {
      req = kWalltimes[4 + rng.below(2)];
    }
    j.requested_time = std::max(req, run);

    // Bursts request much wider allocations: a burst must be able to
    // saturate even the widest bundled cluster from a cold start, because
    // the evaluation protocol scores each sampled window independently.
    j.requested_procs = sample_procs(rng, *spec, bursting ? 8.0 : 1.0);

    // Zipf-flavoured user mix with an explicit heavy hitter.
    if (rng.uniform() < spec->heavy_user_share) {
      j.user = 1;
    } else {
      j.user = 2 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(spec->users - 1)));
    }
    out.push_back(j);
  }

  // Calibration pass: pow2 snapping, clamping, and burst modulation all
  // bias the sample means away from the Table II targets, so rescale each
  // dimension to pin them exactly (shape and burst structure are purely
  // relative and survive a linear rescale).
  if (out.size() > 1) {
    const double n = static_cast<double>(out.size());
    double sum_rt = 0.0, sum_np = 0.0;
    for (const trace::Job& j : out) {
      sum_rt += j.requested_time;
      sum_np += j.requested_procs;
    }
    const double k_t =
        spec->it * (n - 1.0) /
        std::max(out.back().submit_time - out.front().submit_time, 1e-9);
    const double k_rt = spec->rt / (sum_rt / n);
    const double k_np = spec->nt / (sum_np / n);
    for (trace::Job& j : out) {
      j.submit_time *= k_t;
      j.requested_time *= k_rt;
      j.run_time *= k_rt;
      j.requested_procs = std::clamp(
          static_cast<int>(std::lround(j.requested_procs * k_np)), 1,
          spec->processors);
    }
  }
  return trace::Trace(spec->name, spec->processors, std::move(out));
}

}  // namespace rlsched::workload
