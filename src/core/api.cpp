#include "core/api.hpp"

#include <limits>

#include "util/env.hpp"

namespace rlsched::core {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

Status validate(const ScheduleRequest& request) {
  const int sources = (request.jobs != nullptr ? 1 : 0) +
                      (request.sequences != nullptr ? 1 : 0) +
                      (request.stream != nullptr ? 1 : 0);
  if (sources == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "request names no job source (set jobs, sequences, or "
                  "stream)");
  }
  if (sources > 1) {
    return Status(StatusCode::kInvalidArgument,
                  "request names more than one job source");
  }
  if (request.processors < 0) {
    return Status(StatusCode::kInvalidArgument,
                  "processors must be >= 0 (0 = caller default)");
  }
  if (request.stream != nullptr && request.chunk_jobs == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "chunk_jobs must be >= 1 for streamed requests");
  }
  if (!(request.deadline_seconds >= 0.0) ||
      request.deadline_seconds == std::numeric_limits<double>::infinity()) {
    return Status(StatusCode::kInvalidArgument,
                  "deadline_seconds must be finite and >= 0 (0 = none)");
  }
  return Status::Ok();
}

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig rc;
  rc.workers = util::env_workers("RLSCHED_WORKERS", kDefaultWorkers);
  rc.batch = util::env_batch("RLSCHED_BATCH", kDefaultBatch);
  return rc;
}

RuntimeConfig RuntimeConfig::resolved() const {
  const RuntimeConfig env = from_env();
  RuntimeConfig out;
  out.workers = workers != 0 ? workers : env.workers;
  out.batch = batch != 0 ? batch : env.batch;
  return out;
}

}  // namespace rlsched::core
