#include "core/rlscheduler.hpp"

namespace rlsched::core {

namespace {
rl::PPOConfig to_ppo_config(const RLSchedulerConfig& cfg) {
  rl::PPOConfig p;
  p.metric = cfg.metric;
  p.policy = cfg.policy;
  p.trajectory_filtering = cfg.trajectory_filtering;
  p.composite = cfg.composite;
  p.seq_len = cfg.seq_len;
  p.trajectories_per_epoch = cfg.trajectories_per_epoch;
  p.pi_iters = cfg.pi_iters;
  p.v_iters = cfg.v_iters;
  p.minibatch = cfg.minibatch;
  p.seed = cfg.seed;
  p.n_workers = cfg.n_workers;
  p.batch = cfg.batch;
  return p;
}
}  // namespace

RLScheduler::RLScheduler(const trace::Trace& trace, RLSchedulerConfig cfg)
    : cfg_(std::move(cfg)),
      processors_(trace.processors()),
      trainer_(std::make_unique<rl::PPOTrainer>(trace, to_ppo_config(cfg_))) {}

RLScheduler::~RLScheduler() = default;
RLScheduler::RLScheduler(RLScheduler&&) noexcept = default;
RLScheduler& RLScheduler::operator=(RLScheduler&&) noexcept = default;

rl::TrainHistory RLScheduler::train(std::size_t epochs,
                                    const EpochCallback& on_epoch) {
  rl::TrainHistory history;
  history.epochs.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    history.epochs.push_back(trainer_->train_epoch());
    if (on_epoch) on_epoch(history.epochs.back());
  }
  return history;
}

sim::RunResult RLScheduler::schedule(const std::vector<trace::Job>& seq,
                                     bool backfill) const {
  return trainer_->evaluate(seq, processors_, backfill);
}

sim::RunResult RLScheduler::schedule_on(const std::vector<trace::Job>& seq,
                                        int processors, bool backfill) const {
  return trainer_->evaluate(seq, processors, backfill);
}

std::vector<sim::RunResult> RLScheduler::schedule_many(
    const std::vector<std::vector<trace::Job>>& seqs, int processors,
    bool backfill) const {
  return trainer_->evaluate_batch(seqs, processors, backfill);
}

sim::RunResult RLScheduler::schedule_stream(trace::JobSource& source,
                                            bool backfill,
                                            std::size_t chunk_jobs) const {
  // The stream's own cluster size, not the training one: archive traces
  // are scheduled on the machine they were recorded on.
  return trainer_->evaluate_stream(source, source.processors(), backfill,
                                   chunk_jobs);
}

void RLScheduler::save(const std::string& path) const { trainer_->save(path); }

void RLScheduler::load(const std::string& path) { trainer_->load(path); }

}  // namespace rlsched::core
