#include "core/rlscheduler.hpp"

namespace rlsched::core {

namespace {
rl::PPOConfig to_ppo_config(const RLSchedulerConfig& cfg) {
  // Knob precedence (explicit > env > default) collapses HERE, once — the
  // trainer below always sees concrete counts.
  const RuntimeConfig runtime = cfg.runtime.resolved();
  rl::PPOConfig p;
  p.metric = cfg.metric;
  p.policy = cfg.policy;
  p.trajectory_filtering = cfg.trajectory_filtering;
  p.composite = cfg.composite;
  p.seq_len = cfg.seq_len;
  p.trajectories_per_epoch = cfg.trajectories_per_epoch;
  p.pi_iters = cfg.pi_iters;
  p.v_iters = cfg.v_iters;
  p.minibatch = cfg.minibatch;
  p.seed = cfg.seed;
  p.n_workers = runtime.workers;
  p.batch = runtime.batch;
  return p;
}
}  // namespace

RLScheduler::RLScheduler(const trace::Trace& trace, RLSchedulerConfig cfg)
    : cfg_(std::move(cfg)),
      processors_(trace.processors()),
      trainer_(std::make_unique<rl::PPOTrainer>(trace, to_ppo_config(cfg_))) {}

RLScheduler::~RLScheduler() = default;
RLScheduler::RLScheduler(RLScheduler&&) noexcept = default;
RLScheduler& RLScheduler::operator=(RLScheduler&&) noexcept = default;

rl::TrainHistory RLScheduler::train(std::size_t epochs,
                                    const EpochCallback& on_epoch) {
  rl::TrainHistory history;
  history.epochs.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    history.epochs.push_back(trainer_->train_epoch());
    if (on_epoch) on_epoch(history.epochs.back());
  }
  return history;
}

StatusOr<ScheduleResult> RLScheduler::schedule(
    const ScheduleRequest& request) const {
  if (Status s = validate(request); !s.ok()) return s;
  ScheduleResult out;
  try {
    if (request.jobs != nullptr) {
      const int procs =
          request.processors > 0 ? request.processors : processors_;
      out.runs.push_back(
          trainer_->evaluate(*request.jobs, procs, request.backfill));
    } else if (request.sequences != nullptr) {
      const int procs =
          request.processors > 0 ? request.processors : processors_;
      out.runs = trainer_->evaluate_batch(*request.sequences, procs,
                                          request.backfill);
    } else {
      // The stream's own cluster size by default: archive traces are
      // scheduled on the machine they were recorded on.
      const int procs = request.processors > 0 ? request.processors
                                               : request.stream->processors();
      out.runs.push_back(trainer_->evaluate_stream(
          *request.stream, procs, request.backfill, request.chunk_jobs));
    }
  } catch (const std::exception& e) {
    // The engine rejects bad input (e.g. out-of-order streamed submits,
    // unreadable shards) by throwing from depth; surface it as a status.
    return Status(StatusCode::kInvalidArgument, e.what());
  }
  return out;
}

void RLScheduler::save(const std::string& path) const { trainer_->save(path); }

void RLScheduler::load(const std::string& path) { trainer_->load(path); }

}  // namespace rlsched::core
