#include "nn/mlp.hpp"

#include <cmath>
#include <cstring>

namespace rlsched::nn {

FlatMlp::FlatMlp(std::vector<std::size_t> sizes) : sizes_(std::move(sizes)) {
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    w_off_.push_back(param_count_);
    param_count_ += sizes_[l] * sizes_[l + 1];
    b_off_.push_back(param_count_);
    param_count_ += sizes_[l + 1];
    act_off_.push_back(act_total_);
    act_total_ += sizes_[l + 1];
  }
  act_.resize(act_total_);
  dact_.resize(act_total_);
}

void FlatMlp::ensure_batch(std::size_t n) const {
  if (n <= batch_cap_) return;
  batch_cap_ = n;
  act_.resize(act_total_ * n);
  dact_.resize(act_total_ * n);
}

void FlatMlp::init(float* params, util::Rng& rng, float out_scale) const {
  const std::size_t layers = sizes_.size() - 1;
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t in = sizes_[l], out = sizes_[l + 1];
    const float scale =
        std::sqrt(2.0f / static_cast<float>(in)) *
        (l + 1 == layers ? out_scale : 1.0f);
    float* w = params + w_off_[l];
    for (std::size_t i = 0; i < in * out; ++i) {
      w[i] = scale * static_cast<float>(rng.normal());
    }
    float* b = params + b_off_[l];
    for (std::size_t i = 0; i < out; ++i) b[i] = 0.0f;
  }
}

const float* FlatMlp::forward(const float* params, const float* x) const {
  return forward_batch(params, x, 1);
}

const float* FlatMlp::forward_batch(const float* params, const float* X,
                                    std::size_t n) const {
  ensure_batch(n);
  const std::size_t layers = sizes_.size() - 1;
  const float* in = X;
  for (std::size_t l = 0; l < layers; ++l) {
    float* out = act_.data() + act_off_[l] * batch_cap_;
    dense_batch_forward(params + w_off_[l], params + b_off_[l], in, out,
                        sizes_[l + 1], sizes_[l], n,
                        /*relu=*/l + 1 < layers);
    in = out;
  }
  return in;
}

void FlatMlp::backward(const float* params, const float* x, const float* dout,
                       float* gparams, float* dx, bool recompute) const {
  if (recompute) forward(params, x);  // else trust act_ from forward()
  backward_batch(params, x, dout, gparams, 1, 0, nullptr, dx);
}

void FlatMlp::backward_batch(const float* params, const float* X,
                             const float* dOut, float* gparams, std::size_t n,
                             std::size_t window,
                             const std::uint8_t* win_active,
                             float* dX) const {
  ensure_batch(n);
  const std::size_t layers = sizes_.size() - 1;
  std::memcpy(dact_.data() + act_off_[layers - 1] * batch_cap_, dOut,
              sizes_.back() * n * sizeof(float));
  for (std::size_t l = layers; l-- > 0;) {
    const float* a_in =
        l == 0 ? X : act_.data() + act_off_[l - 1] * batch_cap_;
    float* d_out = dact_.data() + act_off_[l] * batch_cap_;
    float* d_in = l == 0 ? dX : dact_.data() + act_off_[l - 1] * batch_cap_;
    dense_batch_backward(params + w_off_[l], a_in,
                         act_.data() + act_off_[l] * batch_cap_, d_out, d_in,
                         gparams + w_off_[l], gparams + b_off_[l],
                         sizes_[l + 1], sizes_[l], n,
                         /*relu=*/l + 1 < layers, window, win_active);
  }
}

}  // namespace rlsched::nn
