#include "nn/mlp.hpp"

#include <cmath>
#include <cstring>

namespace rlsched::nn {

FlatMlp::FlatMlp(std::vector<std::size_t> sizes) : sizes_(std::move(sizes)) {
  std::size_t act_total = 0;
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    w_off_.push_back(param_count_);
    param_count_ += sizes_[l] * sizes_[l + 1];
    b_off_.push_back(param_count_);
    param_count_ += sizes_[l + 1];
    act_off_.push_back(act_total);
    act_total += sizes_[l + 1];
  }
  act_.resize(act_total);
  dact_.resize(act_total);
}

void FlatMlp::init(float* params, util::Rng& rng, float out_scale) const {
  const std::size_t layers = sizes_.size() - 1;
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t in = sizes_[l], out = sizes_[l + 1];
    const float scale =
        std::sqrt(2.0f / static_cast<float>(in)) *
        (l + 1 == layers ? out_scale : 1.0f);
    float* w = params + w_off_[l];
    for (std::size_t i = 0; i < in * out; ++i) {
      w[i] = scale * static_cast<float>(rng.normal());
    }
    float* b = params + b_off_[l];
    for (std::size_t i = 0; i < out; ++i) b[i] = 0.0f;
  }
}

const float* FlatMlp::forward(const float* params, const float* x) const {
  const std::size_t layers = sizes_.size() - 1;
  const float* in = x;
  for (std::size_t l = 0; l < layers; ++l) {
    float* out = act_.data() + act_off_[l];
    dense_batch_forward(params + w_off_[l], params + b_off_[l], in, out,
                        sizes_[l + 1], sizes_[l], 1,
                        /*relu=*/l + 1 < layers);
    in = out;
  }
  return in;
}

void FlatMlp::backward(const float* params, const float* x, const float* dout,
                       float* gparams, float* dx, bool recompute) const {
  if (recompute) forward(params, x);  // else trust act_ from forward()
  const std::size_t layers = sizes_.size() - 1;
  std::memcpy(dact_.data() + act_off_[layers - 1], dout,
              sizes_.back() * sizeof(float));
  for (std::size_t l = layers; l-- > 0;) {
    const float* a_in = l == 0 ? x : act_.data() + act_off_[l - 1];
    float* d_out = dact_.data() + act_off_[l];
    float* d_in = l == 0 ? dx : dact_.data() + act_off_[l - 1];
    dense_batch_backward(params + w_off_[l], a_in,
                         act_.data() + act_off_[l], d_out, d_in,
                         gparams + w_off_[l], gparams + b_off_[l],
                         sizes_[l + 1], sizes_[l], 1,
                         /*relu=*/l + 1 < layers);
  }
}

}  // namespace rlsched::nn
