#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/simd.hpp"

// Backend choice (see quant.hpp): the VNNI path needs both the ISA and a
// wide RLSCHED_SIMD build — forcing RLSCHED_SIMD=1 must force the scalar
// loops here exactly as it does for the float kernels in nn/ops.hpp.
#if RLSCHED_SIMD >= 8 && defined(__AVX512VNNI__) && defined(__AVX512F__) && \
    defined(__AVX512BW__)
#define RLSCHED_QUANT_VNNI 1
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized (and, at -O3,
// -Wuninitialized) on the intrinsics' internal __Y temporaries when they
// inline into loops (upstream false positive); the kernels below never
// read uninitialized state.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
#else
#define RLSCHED_QUANT_VNNI 0
#endif

namespace rlsched::nn {

const char* quant_isa() {
#if RLSCHED_QUANT_VNNI
  return "avx512vnni";
#elif RLSCHED_SIMD > 1
  return "generic";
#else
  return "scalar";
#endif
}

float weight_scale(const float* w, std::size_t count) {
  float amax = 0.0f;
  for (std::size_t i = 0; i < count; ++i) {
    amax = std::max(amax, std::fabs(w[i]));
  }
  return amax > 0.0f ? amax / 127.0f : 1.0f;
}

void pack_weights_s8(const float* w, std::size_t out_dim, std::size_t in_dim,
                     float scale, std::int8_t* wq) {
  const std::size_t groups = quant_groups(in_dim);
  const float inv = 1.0f / scale;
  for (std::size_t o = 0; o < out_dim; ++o) {
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t r = 0; r < kQuantGroup; ++r) {
        const std::size_t i = kQuantGroup * g + r;
        float t = i < in_dim ? w[o * in_dim + i] * inv : 0.0f;
        t = std::min(std::max(t, -127.0f), 127.0f);
        wq[(o * groups + g) * kQuantGroup + r] =
            static_cast<std::int8_t>(
                static_cast<std::int32_t>(std::nearbyintf(t)));
      }
    }
  }
}

namespace {

// Shared scalar arithmetic — the single definition every backend (and the
// vector paths' ragged tails) must agree with bitwise.
inline std::uint8_t quantize_u8(float t) {
  t = std::min(std::max(t, 0.0f), 255.0f);
  return static_cast<std::uint8_t>(
      static_cast<std::int32_t>(std::nearbyintf(t)));
}

/// The integer hidden-layer epilogue: arithmetic shift (C++20 defines >>
/// of negatives as arithmetic), then clamp. acc0 — bias + rounding — was
/// already folded into the accumulator by the caller.
inline std::uint8_t requant_u8(std::int32_t acc, int rshift) {
  const std::int32_t t = acc >> rshift;
  return static_cast<std::uint8_t>(std::min(std::max(t, 0), 255));
}

/// Exact int32 dot of one activation column against one weight row, both
/// group-packed. Every backend reduces to this value (integer addition is
/// associative), so MAC order can differ freely across backends.
inline std::int32_t dot_column(const std::uint8_t* aq, const std::int8_t* wq,
                               std::size_t groups, std::size_t J,
                               std::size_t j) {
  std::int32_t acc = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint8_t* a = aq + (g * J + j) * kQuantGroup;
    const std::int8_t* w = wq + g * kQuantGroup;
    acc += static_cast<std::int32_t>(a[0]) * w[0] +
           static_cast<std::int32_t>(a[1]) * w[1] +
           static_cast<std::int32_t>(a[2]) * w[2] +
           static_cast<std::int32_t>(a[3]) * w[3];
  }
  return acc;
}

#if RLSCHED_QUANT_VNNI
/// Weight dword (4 packed s8) broadcast to every i32 lane.
using may_alias_i32 = std::int32_t __attribute__((may_alias));
inline __m512i bcast_w4(const std::int8_t* w) {
  return _mm512_set1_epi32(
      *reinterpret_cast<const may_alias_i32*>(w));
}

/// Per-128b-lane 4x4 byte transpose: packs emit [r0 j0..3 | r1 j0..3 |
/// r2 j0..3 | r3 j0..3] per lane, the next layer wants j-major groups.
inline __m512i pack_shuffle() {
  return _mm512_broadcast_i32x4(_mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13, 2,
                                              6, 10, 14, 3, 7, 11, 15));
}

/// Integer epilogue for 4 output rows x 16 columns: arithmetic shift, then
/// packs_epi32 (i32 -> i16, saturating: the low clamp) + packus_epi16
/// (i16 -> u8, saturating: the 255 clamp) + byte transpose. Saturation
/// composes to exactly clamp((acc >> s), 0, 255): any i32 above 255
/// saturates through 32767 -> 255, anything negative through -32768 -> 0.
inline __m512i requant4(__m512i a0, __m512i a1, __m512i a2, __m512i a3,
                        __m512i vshift, __m512i shuf) {
  const __m512i t0 = _mm512_srav_epi32(a0, vshift);
  const __m512i t1 = _mm512_srav_epi32(a1, vshift);
  const __m512i t2 = _mm512_srav_epi32(a2, vshift);
  const __m512i t3 = _mm512_srav_epi32(a3, vshift);
  const __m512i b = _mm512_packus_epi16(_mm512_packs_epi32(t0, t1),
                                        _mm512_packs_epi32(t2, t3));
  return _mm512_shuffle_epi8(b, shuf);
}

/// The 4-row x 64-column MAC+epilogue tile, GROUPS known at compile time
/// so the dot loop fully unrolls (the policy's layers hit 2, 8, 4).
template <int GROUPS>
void hidden_tile64(const std::uint8_t* aq, const std::int8_t* w0,
                   const std::int8_t* w1, const std::int8_t* w2,
                   const std::int8_t* w3, std::size_t J, std::size_t j0,
                   __m512i i0, __m512i i1, __m512i i2, __m512i i3,
                   __m512i vshift, __m512i shuf, std::uint8_t* dst) {
  __m512i a0 = i0, a1 = i1, a2 = i2, a3 = i3;
  __m512i b0 = i0, b1 = i1, b2 = i2, b3 = i3;
  __m512i c0 = i0, c1 = i1, c2 = i2, c3 = i3;
  __m512i d0 = i0, d1 = i1, d2 = i2, d3 = i3;
  for (int g = 0; g < GROUPS; ++g) {
    const std::uint8_t* col = aq + (g * J + j0) * kQuantGroup;
    const __m512i avA = _mm512_loadu_si512(col);
    const __m512i avB = _mm512_loadu_si512(col + 64);
    const __m512i avC = _mm512_loadu_si512(col + 128);
    const __m512i avD = _mm512_loadu_si512(col + 192);
    const __m512i q0 = bcast_w4(w0 + g * kQuantGroup);
    const __m512i q1 = bcast_w4(w1 + g * kQuantGroup);
    const __m512i q2 = bcast_w4(w2 + g * kQuantGroup);
    const __m512i q3 = bcast_w4(w3 + g * kQuantGroup);
    a0 = _mm512_dpbusd_epi32(a0, avA, q0);
    a1 = _mm512_dpbusd_epi32(a1, avA, q1);
    a2 = _mm512_dpbusd_epi32(a2, avA, q2);
    a3 = _mm512_dpbusd_epi32(a3, avA, q3);
    b0 = _mm512_dpbusd_epi32(b0, avB, q0);
    b1 = _mm512_dpbusd_epi32(b1, avB, q1);
    b2 = _mm512_dpbusd_epi32(b2, avB, q2);
    b3 = _mm512_dpbusd_epi32(b3, avB, q3);
    c0 = _mm512_dpbusd_epi32(c0, avC, q0);
    c1 = _mm512_dpbusd_epi32(c1, avC, q1);
    c2 = _mm512_dpbusd_epi32(c2, avC, q2);
    c3 = _mm512_dpbusd_epi32(c3, avC, q3);
    d0 = _mm512_dpbusd_epi32(d0, avD, q0);
    d1 = _mm512_dpbusd_epi32(d1, avD, q1);
    d2 = _mm512_dpbusd_epi32(d2, avD, q2);
    d3 = _mm512_dpbusd_epi32(d3, avD, q3);
  }
  _mm512_storeu_si512(dst, requant4(a0, a1, a2, a3, vshift, shuf));
  _mm512_storeu_si512(dst + 64, requant4(b0, b1, b2, b3, vshift, shuf));
  _mm512_storeu_si512(dst + 128, requant4(c0, c1, c2, c3, vshift, shuf));
  _mm512_storeu_si512(dst + 192, requant4(d0, d1, d2, d3, vshift, shuf));
}

template <int GROUPS>
void hidden_rows4(const std::uint8_t* aq, const std::int8_t* w0,
                  const std::int8_t* w1, const std::int8_t* w2,
                  const std::int8_t* w3, std::size_t J, std::size_t* j0,
                  __m512i i0, __m512i i1, __m512i i2, __m512i i3,
                  __m512i vshift, __m512i shuf, std::uint8_t* out_row) {
  for (; *j0 + 64 <= J; *j0 += 64) {
    hidden_tile64<GROUPS>(aq, w0, w1, w2, w3, J, *j0, i0, i1, i2, i3,
                          vshift, shuf, out_row + *j0 * kQuantGroup);
  }
  for (; *j0 + 16 <= J; *j0 += 16) {
    __m512i a0 = i0, a1 = i1, a2 = i2, a3 = i3;
    for (int g = 0; g < GROUPS; ++g) {
      const __m512i av =
          _mm512_loadu_si512(aq + (g * J + *j0) * kQuantGroup);
      a0 = _mm512_dpbusd_epi32(a0, av, bcast_w4(w0 + g * kQuantGroup));
      a1 = _mm512_dpbusd_epi32(a1, av, bcast_w4(w1 + g * kQuantGroup));
      a2 = _mm512_dpbusd_epi32(a2, av, bcast_w4(w2 + g * kQuantGroup));
      a3 = _mm512_dpbusd_epi32(a3, av, bcast_w4(w3 + g * kQuantGroup));
    }
    _mm512_storeu_si512(out_row + *j0 * kQuantGroup,
                        requant4(a0, a1, a2, a3, vshift, shuf));
  }
}
#endif

}  // namespace

void pack_acts_u8(const float* a, std::size_t in_dim, std::size_t J,
                  std::size_t stride, float inv_scale, std::uint8_t* aq) {
  const std::size_t groups = quant_groups(in_dim);
  std::size_t j0 = 0;
#if RLSCHED_QUANT_VNNI
  // min at 255.0 BEFORE the rne convert: cvtps_epi32 of a huge float
  // yields INT_MIN, which the saturating packs would turn into 0 instead
  // of 255. With the min, clamp-then-rne == rne-then-saturate exactly
  // (rne is monotone and the clamp endpoints are integers); the low clamp
  // is the packs_epi32 saturation.
  const __m512 vinv = _mm512_set1_ps(inv_scale);
  const __m512 v255 = _mm512_set1_ps(255.0f);
  const __m512i zero = _mm512_setzero_si512();
  const __m512i shuf = pack_shuffle();
  for (; j0 + 16 <= J; j0 += 16) {
    for (std::size_t g = 0; g < groups; ++g) {
      __m512i t[kQuantGroup];
      for (std::size_t r = 0; r < kQuantGroup; ++r) {
        const std::size_t i = kQuantGroup * g + r;
        t[r] = i < in_dim
                   ? _mm512_cvtps_epi32(_mm512_min_ps(
                         _mm512_mul_ps(_mm512_loadu_ps(a + i * stride + j0),
                                       vinv),
                         v255))
                   : zero;
      }
      const __m512i b = _mm512_packus_epi16(_mm512_packs_epi32(t[0], t[1]),
                                            _mm512_packs_epi32(t[2], t[3]));
      _mm512_storeu_si512(aq + (g * J + j0) * kQuantGroup,
                          _mm512_shuffle_epi8(b, shuf));
    }
  }
#endif
  for (std::size_t j = j0; j < J; ++j) {
    for (std::size_t g = 0; g < groups; ++g) {
      for (std::size_t r = 0; r < kQuantGroup; ++r) {
        const std::size_t i = kQuantGroup * g + r;
        aq[(g * J + j) * kQuantGroup + r] =
            i < in_dim ? quantize_u8(a[i * stride + j] * inv_scale)
                       : std::uint8_t{0};
      }
    }
  }
}

void quant_dense_hidden(const std::uint8_t* aq, const std::int8_t* wq,
                        std::size_t out_dim, std::size_t groups,
                        std::size_t J, int rshift, const std::int32_t* acc0,
                        std::uint8_t* out) {
  for (std::size_t o4 = 0; o4 < out_dim / kQuantGroup; ++o4) {
    const std::int8_t* w0 = wq + (o4 * 4 + 0) * groups * kQuantGroup;
    const std::int8_t* w1 = wq + (o4 * 4 + 1) * groups * kQuantGroup;
    const std::int8_t* w2 = wq + (o4 * 4 + 2) * groups * kQuantGroup;
    const std::int8_t* w3 = wq + (o4 * 4 + 3) * groups * kQuantGroup;
    std::size_t j0 = 0;
#if RLSCHED_QUANT_VNNI
    const __m512i vshift = _mm512_set1_epi32(rshift);
    const __m512i shuf = pack_shuffle();
    const __m512i i0 = _mm512_set1_epi32(acc0[o4 * 4 + 0]);
    const __m512i i1 = _mm512_set1_epi32(acc0[o4 * 4 + 1]);
    const __m512i i2 = _mm512_set1_epi32(acc0[o4 * 4 + 2]);
    const __m512i i3 = _mm512_set1_epi32(acc0[o4 * 4 + 3]);
    std::uint8_t* out_row = out + o4 * J * kQuantGroup;
    // Compile-time group counts let the dot loop fully unroll; the
    // policy's hidden layers (in_dim 6, 32, 16) hit 2, 8, 4.
    switch (groups) {
      case 1:
        hidden_rows4<1>(aq, w0, w1, w2, w3, J, &j0, i0, i1, i2, i3, vshift,
                        shuf, out_row);
        break;
      case 2:
        hidden_rows4<2>(aq, w0, w1, w2, w3, J, &j0, i0, i1, i2, i3, vshift,
                        shuf, out_row);
        break;
      case 4:
        hidden_rows4<4>(aq, w0, w1, w2, w3, J, &j0, i0, i1, i2, i3, vshift,
                        shuf, out_row);
        break;
      case 8:
        hidden_rows4<8>(aq, w0, w1, w2, w3, J, &j0, i0, i1, i2, i3, vshift,
                        shuf, out_row);
        break;
      default:
        for (; j0 + 16 <= J; j0 += 16) {
          __m512i a0 = i0, a1 = i1, a2 = i2, a3 = i3;
          for (std::size_t g = 0; g < groups; ++g) {
            const __m512i av =
                _mm512_loadu_si512(aq + (g * J + j0) * kQuantGroup);
            a0 = _mm512_dpbusd_epi32(a0, av, bcast_w4(w0 + g * kQuantGroup));
            a1 = _mm512_dpbusd_epi32(a1, av, bcast_w4(w1 + g * kQuantGroup));
            a2 = _mm512_dpbusd_epi32(a2, av, bcast_w4(w2 + g * kQuantGroup));
            a3 = _mm512_dpbusd_epi32(a3, av, bcast_w4(w3 + g * kQuantGroup));
          }
          _mm512_storeu_si512(out_row + j0 * kQuantGroup,
                              requant4(a0, a1, a2, a3, vshift, shuf));
        }
        break;
    }
#endif
    for (std::size_t j = j0; j < J; ++j) {
      std::uint8_t* dst = out + (o4 * J + j) * kQuantGroup;
      dst[0] = requant_u8(dot_column(aq, w0, groups, J, j) +
                              acc0[o4 * 4 + 0],
                          rshift);
      dst[1] = requant_u8(dot_column(aq, w1, groups, J, j) +
                              acc0[o4 * 4 + 1],
                          rshift);
      dst[2] = requant_u8(dot_column(aq, w2, groups, J, j) +
                              acc0[o4 * 4 + 2],
                          rshift);
      dst[3] = requant_u8(dot_column(aq, w3, groups, J, j) +
                              acc0[o4 * 4 + 3],
                          rshift);
    }
  }
}

void quant_dense_f32(const std::uint8_t* aq, const std::int8_t* wq,
                     std::size_t out_dim, std::size_t groups, std::size_t J,
                     float m, const float* bias, float* out) {
  for (std::size_t o = 0; o < out_dim; ++o) {
    const std::int8_t* w = wq + o * groups * kQuantGroup;
    std::size_t j0 = 0;
#if RLSCHED_QUANT_VNNI
    const __m512 vm = _mm512_set1_ps(m);
    const __m512 vb = _mm512_set1_ps(bias[o]);
    for (; j0 + 16 <= J; j0 += 16) {
      __m512i acc = _mm512_setzero_si512();
      for (std::size_t g = 0; g < groups; ++g) {
        acc = _mm512_dpbusd_epi32(
            acc, _mm512_loadu_si512(aq + (g * J + j0) * kQuantGroup),
            bcast_w4(w + g * kQuantGroup));
      }
      _mm512_storeu_ps(out + o * J + j0,
                       _mm512_fmadd_ps(_mm512_cvtepi32_ps(acc), vm, vb));
    }
#endif
    for (std::size_t j = j0; j < J; ++j) {
      out[o * J + j] = std::fmaf(
          static_cast<float>(dot_column(aq, w, groups, J, j)), m, bias[o]);
    }
  }
}

}  // namespace rlsched::nn
