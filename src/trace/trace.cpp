#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rlsched::trace {

Trace::Trace(std::string name, int processors, std::vector<Job> jobs)
    : name_(std::move(name)), processors_(processors), jobs_(std::move(jobs)) {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     return a.submit_time < b.submit_time;
                   });
}

Trace Trace::load_swf(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF file: " + path);

  int max_procs = 0;
  std::vector<Job> jobs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == ';') {
      // Header comment; look for "; MaxProcs: N" (or MaxNodes as fallback).
      const auto parse_header = [&line](const char* key) -> long {
        const auto pos = line.find(key);
        if (pos == std::string::npos) return -1;
        const auto colon = line.find(':', pos);
        if (colon == std::string::npos) return -1;
        return std::strtol(line.c_str() + colon + 1, nullptr, 10);
      };
      const long procs = parse_header("MaxProcs");
      if (procs > 0) max_procs = static_cast<int>(procs);
      else if (max_procs == 0) {
        const long nodes = parse_header("MaxNodes");
        if (nodes > 0) max_procs = static_cast<int>(nodes);
      }
      continue;
    }
    // SWF data row: 18 whitespace-separated fields.
    std::istringstream fields(line);
    double f[18];
    int n = 0;
    while (n < 18 && (fields >> f[n])) ++n;
    if (n < 9) continue;  // malformed row: skip
    Job j;
    j.id = static_cast<std::int64_t>(f[0]);
    j.submit_time = f[1];
    j.run_time = f[3] > 0.0 ? f[3] : 0.0;
    const double alloc = f[4];
    const double req_procs = f[7];
    j.requested_procs =
        static_cast<int>(req_procs > 0.0 ? req_procs
                                         : (alloc > 0.0 ? alloc : 1.0));
    j.requested_time = f[8] > 0.0 ? f[8] : j.run_time;
    j.user = n > 11 ? static_cast<int>(f[11]) : 0;
    jobs.push_back(j);
  }
  if (max_procs == 0) {
    for (const Job& j : jobs) max_procs = std::max(max_procs, j.requested_procs);
  }
  return Trace(name.empty() ? path : name, max_procs, std::move(jobs));
}

void Trace::save_swf(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SWF file: " + path);
  out << "; SWF trace written by rlsched\n"
      << "; MaxProcs: " << processors_ << "\n"
      << "; MaxJobs: " << jobs_.size() << "\n"
      << "; UnixStartTime: 0\n";
  out << std::setprecision(12);
  for (const Job& j : jobs_) {
    // id submit wait run alloc cpu mem req_procs req_time req_mem status
    // user group exe queue partition prev think
    out << j.id << ' ' << j.submit_time << " -1 " << j.run_time << ' '
        << j.requested_procs << " -1 -1 " << j.requested_procs << ' '
        << j.requested_time << " -1 1 " << j.user
        << " -1 -1 -1 -1 -1 -1\n";
  }
}

std::vector<Job> Trace::sequence(std::size_t start, std::size_t len) const {
  std::vector<Job> out;
  sequence_into(start, len, out);
  return out;
}

void Trace::sequence_into(std::size_t start, std::size_t len,
                          std::vector<Job>& out) const {
  out.clear();
  if (jobs_.empty() || len == 0) return;
  start = std::min(start, jobs_.size() - 1);
  len = std::min(len, jobs_.size() - start);
  out.assign(jobs_.begin() + static_cast<std::ptrdiff_t>(start),
             jobs_.begin() + static_cast<std::ptrdiff_t>(start + len));
  const double base = out.front().submit_time;
  for (Job& j : out) {
    j.submit_time -= base;
    j.reset_schedule_state();
  }
}

std::vector<Job> Trace::sample_sequence(util::Rng& rng, std::size_t len) const {
  std::vector<Job> out;
  sample_sequence_into(rng, len, out);
  return out;
}

void Trace::sample_sequence_into(util::Rng& rng, std::size_t len,
                                 std::vector<Job>& out) const {
  out.clear();
  if (jobs_.empty()) return;
  len = std::min(len, jobs_.size());
  const std::size_t start =
      static_cast<std::size_t>(rng.below(jobs_.size() - len + 1));
  sequence_into(start, len, out);
}

Characteristics Trace::characteristics() const {
  Characteristics c;
  c.name = name_;
  c.processors = processors_;
  c.jobs = jobs_.size();
  if (jobs_.empty()) return c;
  double sum_rt = 0.0, sum_np = 0.0;
  std::set<int> users;
  for (const Job& j : jobs_) {
    sum_rt += j.requested_time;
    sum_np += j.requested_procs;
    users.insert(j.user);
  }
  const double n = static_cast<double>(jobs_.size());
  if (jobs_.size() > 1) {
    c.mean_interarrival =
        (jobs_.back().submit_time - jobs_.front().submit_time) / (n - 1.0);
  }
  c.mean_requested_time = sum_rt / n;
  c.mean_requested_procs = sum_np / n;
  c.distinct_users = users.size();
  return c;
}

}  // namespace rlsched::trace
