#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <stdexcept>

#include "trace/swf_parse.hpp"

namespace rlsched::trace {

Trace::Trace(std::string name, int processors, std::vector<Job> jobs)
    : name_(std::move(name)), processors_(processors), jobs_(std::move(jobs)) {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     return a.submit_time < b.submit_time;
                   });
}

Trace Trace::load_swf(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF file: " + path);

  int max_procs = 0;
  std::vector<Job> jobs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == ';') {
      // Header comment; look for "; MaxProcs: N" (or MaxNodes as fallback).
      const long procs = swf_header_value(line, "MaxProcs");
      if (procs > 0) max_procs = static_cast<int>(procs);
      else if (max_procs == 0) {
        const long nodes = swf_header_value(line, "MaxNodes");
        if (nodes > 0) max_procs = static_cast<int>(nodes);
      }
      continue;
    }
    Job j;
    if (!swf_parse_row(line, j)) continue;  // malformed row: skip
    jobs.push_back(j);
  }
  if (max_procs == 0) {
    for (const Job& j : jobs) max_procs = std::max(max_procs, j.requested_procs);
  }
  return Trace(name.empty() ? path : name, max_procs, std::move(jobs));
}

void Trace::save_swf(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SWF file: " + path);
  out << "; SWF trace written by rlsched\n"
      << "; MaxProcs: " << processors_ << "\n"
      << "; MaxJobs: " << jobs_.size() << "\n"
      << "; UnixStartTime: 0\n";
  out << std::setprecision(12);
  for (const Job& j : jobs_) {
    // id submit wait run alloc cpu mem req_procs req_time req_mem status
    // user group exe queue partition prev think
    out << j.id << ' ' << j.submit_time << " -1 " << j.run_time << ' '
        << j.requested_procs << " -1 -1 " << j.requested_procs << ' '
        << j.requested_time << " -1 1 " << j.user
        << " -1 -1 -1 -1 -1 -1\n";
  }
}

std::size_t Trace::fetch(std::size_t max_jobs, std::vector<Job>& out) {
  const std::size_t n = std::min(max_jobs, jobs_.size() - cursor_);
  out.insert(out.end(), jobs_.begin() + static_cast<std::ptrdiff_t>(cursor_),
             jobs_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += n;
  return n;
}

std::vector<Job> Trace::sequence(std::size_t start, std::size_t len) const {
  std::vector<Job> out;
  sequence_into(start, len, out);
  return out;
}

void Trace::sequence_into(std::size_t start, std::size_t len,
                          std::vector<Job>& out) const {
  out.clear();
  if (jobs_.empty() || len == 0) return;
  start = std::min(start, jobs_.size() - 1);
  len = std::min(len, jobs_.size() - start);
  out.assign(jobs_.begin() + static_cast<std::ptrdiff_t>(start),
             jobs_.begin() + static_cast<std::ptrdiff_t>(start + len));
  const double base = out.front().submit_time;
  for (Job& j : out) {
    j.submit_time -= base;
    j.reset_schedule_state();
  }
}

std::vector<Job> Trace::sample_sequence(util::Rng& rng, std::size_t len) const {
  std::vector<Job> out;
  sample_sequence_into(rng, len, out);
  return out;
}

void Trace::sample_sequence_into(util::Rng& rng, std::size_t len,
                                 std::vector<Job>& out) const {
  out.clear();
  if (jobs_.empty()) return;
  len = std::min(len, jobs_.size());
  const std::size_t start =
      static_cast<std::size_t>(rng.below(jobs_.size() - len + 1));
  sequence_into(start, len, out);
}

Characteristics Trace::characteristics() const {
  // Shared with the streaming path: a ShardedReader fed through the same
  // accumulator produces exactly these numbers (same add order, same
  // floating-point operations), shard boundaries notwithstanding.
  CharacteristicsAccumulator acc;
  for (const Job& j : jobs_) acc.add(j);
  return acc.finish(name_, processors_);
}

}  // namespace rlsched::trace
