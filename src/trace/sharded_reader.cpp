#include "trace/sharded_reader.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "trace/swf_parse.hpp"

namespace rlsched::trace {

namespace fs = std::filesystem;

ShardedReader::ShardedReader(const std::string& path, std::string name,
                             ShardedReaderConfig cfg)
    : name_(name.empty() ? path : std::move(name)), cfg_(cfg) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) shards_.push_back(entry.path().string());
    }
    if (ec) throw std::runtime_error("cannot list shard dir: " + path);
    if (shards_.empty()) {
      throw std::runtime_error("shard directory holds no files: " + path);
    }
    std::sort(shards_.begin(), shards_.end());
  } else {
    shards_.push_back(path);
  }

  // Resolve the cluster size up front: scan shard headers until the first
  // data row, applying load_swf's update rule (a later MaxProcs overrides
  // an earlier MaxNodes) over that region so well-formed archives — header
  // block first, as every Parallel Workloads Archive trace is laid out —
  // resolve identically on both ingestion paths. Headers hidden AFTER data
  // rows are not honored (documented in the .hpp contract): finding them
  // would mean scanning the whole archive, which is exactly what a stream
  // must not do; load_swf's whole-trace fallback (max requested_procs) is
  // out of reach for the same reason, hence the hint-or-throw below.
  processors_ = cfg_.processors_hint;
  int header_procs = 0;
  bool saw_data = false;
  for (const std::string& shard : shards_) {
    std::ifstream in(shard);
    if (!in) throw std::runtime_error("cannot open SWF shard: " + shard);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line[0] == ';') {
        const long procs = swf_header_value(line, "MaxProcs");
        if (procs > 0) header_procs = static_cast<int>(procs);
        else if (header_procs == 0) {
          const long nodes = swf_header_value(line, "MaxNodes");
          if (nodes > 0) header_procs = static_cast<int>(nodes);
        }
        continue;
      }
      saw_data = true;
      break;
    }
    if (saw_data) break;
  }
  if (header_procs > 0) processors_ = header_procs;
  if (processors_ <= 0 && saw_data) {
    throw std::runtime_error(
        "SWF stream has no MaxProcs/MaxNodes header before the first data "
        "row and no processors_hint was given: " + path);
  }
  rewind();
}

void ShardedReader::rewind() {
  in_.close();
  in_.clear();
  next_shard_ = 0;
  last_submit_ = 0.0;
  any_delivered_ = false;
  delivered_ = 0;
  skipped_ = 0;
}

bool ShardedReader::open_next_shard() {
  while (next_shard_ < shards_.size()) {
    in_.close();
    in_.clear();
    in_.open(shards_[next_shard_]);
    if (!in_) {
      throw std::runtime_error("cannot open SWF shard: " +
                               shards_[next_shard_]);
    }
    ++next_shard_;
    return true;
  }
  return false;
}

std::size_t ShardedReader::fetch(std::size_t max_jobs, std::vector<Job>& out) {
  std::size_t got = 0;
  while (got < max_jobs) {
    if (!in_.is_open()) {
      if (!open_next_shard()) break;  // all shards consumed
    }
    if (!std::getline(in_, line_)) {
      // Shard exhausted (including comment-only and empty shards): close
      // and continue with the next one — 0 is only returned at true EOF.
      in_.close();
      in_.clear();
      continue;
    }
    if (line_.empty() || line_[0] == ';') continue;
    Job j;
    if (!swf_parse_row(line_, j)) {
      ++skipped_;  // truncated/garbled row: same skip recovery as load_swf
      continue;
    }
    if (any_delivered_ && j.submit_time < last_submit_) {
      throw std::runtime_error(
          "SWF stream out of order: job " + std::to_string(j.id) + " in " +
          shards_[next_shard_ - 1] + " submits at " +
          std::to_string(j.submit_time) + " after a job at " +
          std::to_string(last_submit_) +
          " (sort the archive or load it materialized)");
    }
    last_submit_ = j.submit_time;
    any_delivered_ = true;
    out.push_back(j);
    ++got;
    ++delivered_;
  }
  return got;
}

}  // namespace rlsched::trace
