#include "trace/swf_parse.hpp"

#include <cstdlib>

namespace rlsched::trace {

long swf_header_value(const std::string& line, const char* key) {
  const auto pos = line.find(key);
  if (pos == std::string::npos) return -1;
  const auto colon = line.find(':', pos);
  if (colon == std::string::npos) return -1;
  return std::strtol(line.c_str() + colon + 1, nullptr, 10);
}

bool swf_parse_row(const std::string& line, Job& out) {
  // strtod walk instead of an istringstream: no stream construction per
  // row, which matters at archive scale (millions of rows per shard pass).
  const char* p = line.c_str();
  double f[18];
  int n = 0;
  while (n < 18) {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) break;  // no further numeric field
    f[n++] = v;
    p = end;
  }
  if (n < 9) return false;  // malformed/truncated row
  Job j;
  j.id = static_cast<std::int64_t>(f[0]);
  j.submit_time = f[1];
  j.run_time = f[3] > 0.0 ? f[3] : 0.0;
  const double alloc = f[4];
  const double req_procs = f[7];
  j.requested_procs = static_cast<int>(
      req_procs > 0.0 ? req_procs : (alloc > 0.0 ? alloc : 1.0));
  j.requested_time = f[8] > 0.0 ? f[8] : j.run_time;
  j.user = n > 11 ? static_cast<int>(f[11]) : 0;
  out = j;
  return true;
}

}  // namespace rlsched::trace
