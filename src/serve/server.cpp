#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rlsched::serve {

using core::Status;
using core::StatusCode;

namespace {

Status errno_status(const char* what) {
  return Status(StatusCode::kInternal,
                std::string(what) + ": " + std::strerror(errno));
}

constexpr int kEpollWaitMs = 50;    ///< stop_ poll cadence
constexpr int kWriteStallMs = 1000; ///< one POLLOUT wait on a full buffer
constexpr int kWriteStallMax = 30;  ///< give up on a ~30s-stalled reader

}  // namespace

Server::Server(Daemon& daemon, ServerConfig cfg)
    : daemon_(daemon), cfg_(std::move(cfg)) {
  if (cfg_.event_threads == 0) cfg_.event_threads = 1;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    init_status_ = errno_status("socket");
    return;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    init_status_ = Status(StatusCode::kInvalidArgument,
                          "unparseable listen host: " + cfg_.host);
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    init_status_ = errno_status("bind");
    return;
  }
  if (::listen(listen_fd_, 512) != 0) {
    init_status_ = errno_status("listen");
    return;
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) !=
      0) {
    init_status_ = errno_status("getsockname");
    return;
  }
  port_ = ntohs(addr.sin_port);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    init_status_ = errno_status("epoll_create1");
    return;
  }
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) {
    init_status_ = errno_status("eventfd");
    return;
  }
  // EPOLLONESHOT on the eventfd too: exactly one event thread runs the
  // completion-delivery pass at a time, rearmed when it finishes.
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLONESHOT;
  ev.data.fd = event_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    init_status_ = errno_status("epoll_ctl(eventfd)");
    return;
  }
  daemon_.set_completion_hook(&Server::completion_hook, this);
  daemon_.start();
  accept_thread_ = std::thread([this] { accept_loop(); });
  event_threads_.reserve(cfg_.event_threads);
  for (std::size_t i = 0; i < cfg_.event_threads; ++i) {
    event_threads_.emplace_back([this] { event_loop(); });
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stop_.store(true);
  // No new hook pushes after this; ids already pushed are either drained
  // by an event thread before it exits or simply discarded (the daemon's
  // completion store still holds the results).
  daemon_.set_completion_hook(nullptr, nullptr);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);  // wakes accept4
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : event_threads_) {  // they poll stop_ every kEpollWaitMs
    if (t.joinable()) t.join();
  }
  // Socket threads are gone: connection state is single-threaded now.
  for (auto& [fd, conn] : conns_) {
    for (SessionId sid : conn->owned) daemon_.destroy_session(sid);
    ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = epoll_fd_ = event_fd_ = -1;
}

void Server::completion_hook(void* ctx, std::uint64_t request_id) {
  // Runs under the daemon lock: enqueue and signal, nothing else.
  auto* self = static_cast<Server*>(ctx);
  {
    std::lock_guard<std::mutex> l(self->completed_mu_);
    self->completed_.push_back(request_id);
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(self->event_fd_, &one, sizeof(one));
}

void Server::accept_loop() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket shut down (or unrecoverable): stop accepting
    }
    if (stop_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> l(conns_mu_);
      conns_[fd] = conn;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLONESHOT | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close_conn(conn);
    }
  }
}

void Server::event_loop() {
  epoll_event evs[64];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, evs, 64, kEpollWaitMs);
    if (stop_.load()) return;
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == event_fd_) {
        deliver_completions();
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLONESHOT;
        ev.data.fd = event_fd_;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, event_fd_, &ev);
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> l(conns_mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      // EPOLLHUP/EPOLLRDHUP still read first: the final frames of a
      // half-closed connection are valid requests.
      if (conn) handle_readable(conn);
    }
  }
}

void Server::handle_readable(const std::shared_ptr<Conn>& conn) {
  // Uncontended by EPOLLONESHOT; see Conn::read_mu for why it exists.
  std::lock_guard<std::mutex> read_lock(conn->read_mu);
  bool closing = false;
  for (;;) {  // edge-triggered: drain until EAGAIN or EOF
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = fault_recv(cfg_.fault, FaultInjector::Site::kServerRecv,
                                 conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    closing = true;  // EOF or hard error
    break;
  }
  std::size_t pos = 0;
  while (conn->rbuf.size() - pos >= wire::kHeaderBytes) {
    wire::Header h;
    if (Status hs = wire::decode_header(conn->rbuf.data() + pos, &h);
        !hs.ok()) {
      // Tell the peer why, then hang up: once the length prefix is
      // untrusted there is no frame boundary to resume from.
      std::vector<std::uint8_t> out;
      wire::encode_status_reply(out, h.tag, hs);
      write_frame(conn, out);
      closing = true;
      break;
    }
    if (conn->rbuf.size() - pos < wire::kHeaderBytes + h.payload_len) break;
    wire::Reader r(conn->rbuf.data() + pos + wire::kHeaderBytes,
                   h.payload_len);
    pos += wire::kHeaderBytes + h.payload_len;
    if (!dispatch(conn, h, r)) {
      closing = true;
      break;
    }
  }
  conn->rbuf.erase(conn->rbuf.begin(),
                   conn->rbuf.begin() + static_cast<std::ptrdiff_t>(pos));
  if (closing) {
    close_conn(conn);
    return;
  }
  rearm(*conn);
}

bool Server::dispatch(const std::shared_ptr<Conn>& conn, const wire::Header& h,
                      wire::Reader& r) {
  std::vector<std::uint8_t> out;
  switch (h.type) {
    case wire::MsgType::kCreateSession: {
      SessionConfig cfg;
      if (Status s = wire::decode_create_session(r, &cfg); !s.ok()) {
        wire::encode_status_reply(out, h.tag, s);
        write_frame(conn, out);
        return false;
      }
      core::StatusOr<SessionId> sid = daemon_.create_session(cfg);
      if (sid.ok()) {
        std::lock_guard<std::mutex> l(conn->mu);
        conn->owned.push_back(sid.value());
      }
      wire::encode_session_reply(out, h.tag,
                                 sid.ok() ? Status::Ok() : sid.status(),
                                 sid.ok() ? sid.value() : SessionId{});
      write_frame(conn, out);
      return true;
    }
    case wire::MsgType::kDestroySession: {
      SessionId sid;
      if (Status s = wire::decode_destroy_session(r, &sid); !s.ok()) {
        wire::encode_status_reply(out, h.tag, s);
        write_frame(conn, out);
        return false;
      }
      {
        std::lock_guard<std::mutex> l(conn->mu);
        for (auto it = conn->owned.begin(); it != conn->owned.end(); ++it) {
          if (it->index == sid.index && it->gen == sid.gen) {
            conn->owned.erase(it);
            break;
          }
        }
      }
      wire::encode_status_reply(out, h.tag, daemon_.destroy_session(sid));
      write_frame(conn, out);
      return true;
    }
    case wire::MsgType::kSubmit:
    case wire::MsgType::kSchedule: {
      SessionId sid;
      wire::DecodedRequest req;
      if (Status s = wire::decode_submit(r, &sid, &req); !s.ok()) {
        wire::encode_status_reply(out, h.tag, s);
        write_frame(conn, out);
        return false;
      }
      core::StatusOr<RequestId> rid = daemon_.submit(sid, req.view());
      if (h.type == wire::MsgType::kSubmit) {
        wire::encode_submit_reply(out, h.tag,
                                  rid.ok() ? Status::Ok() : rid.status(),
                                  rid.ok() ? rid.value().value : 0);
        write_frame(conn, out);
        return true;
      }
      if (!rid.ok()) {
        wire::encode_completion_reply(out, h.tag, rid.status(), nullptr);
        write_frame(conn, out);
        return true;
      }
      defer_completion(conn, h.tag, rid.value().value);
      return true;
    }
    case wire::MsgType::kTryTake:
    case wire::MsgType::kWait: {
      std::uint64_t id;
      if (Status s = wire::decode_take(r, &id); !s.ok()) {
        wire::encode_status_reply(out, h.tag, s);
        write_frame(conn, out);
        return false;
      }
      if (h.type == wire::MsgType::kWait) {
        defer_completion(conn, h.tag, id);
        return true;
      }
      {
        std::lock_guard<std::mutex> l(route_mu_);
        unclaimed_.erase(id);  // this poll is the claim
      }
      Completion c;
      Status s = daemon_.try_take(RequestId{id}, &c);
      wire::encode_completion_reply(out, h.tag, s, s.ok() ? &c : nullptr);
      write_frame(conn, out);
      return true;
    }
    default: {
      // decode_header admits reply types a confused peer might send us.
      wire::encode_status_reply(
          out, h.tag,
          Status(StatusCode::kInvalidArgument,
                 "reply message type sent to the server"));
      write_frame(conn, out);
      return false;
    }
  }
}

void Server::defer_completion(const std::shared_ptr<Conn>& conn,
                              std::uint64_t tag, std::uint64_t id) {
  bool registered = false;
  {
    std::lock_guard<std::mutex> l(route_mu_);
    // An unclaimed entry means the completion fired before any route
    // existed; this call is the claimant. Otherwise register, so a
    // completion firing from here on is the delivery worker's to route.
    if (unclaimed_.erase(id) == 0) {
      routes_[id] = Route{conn, tag};
      registered = true;
    }
  }
  // Poll once either way: a completion that fired between submit/wait
  // and registration is claimed HERE; one that fires later is claimed by
  // the delivery worker. try_take delivers exactly once, so both sides
  // can race it safely.
  Completion c;
  const Status tt = daemon_.try_take(RequestId{id}, &c);
  std::vector<std::uint8_t> out;
  if (tt.ok()) {
    if (registered) {
      std::lock_guard<std::mutex> l(route_mu_);
      routes_.erase(id);  // worker must not look for it anymore
    }
    wire::encode_completion_reply(out, tag, Status::Ok(), &c);
    write_frame(conn, out);
    return;
  }
  if (tt.code() == StatusCode::kUnavailable) return;  // worker delivers
  // kNotFound. Unregistered claimant: nobody else will answer — reply.
  // Registered: the worker may have beaten our poll (route gone ⇒ the
  // worker owns the reply); route still present ⇒ genuinely unknown id.
  if (registered) {
    std::lock_guard<std::mutex> l(route_mu_);
    if (routes_.erase(id) == 0) return;
  }
  wire::encode_completion_reply(out, tag, tt, nullptr);
  write_frame(conn, out);
}

void Server::deliver_completions() {
  // Drain the counter BEFORE swapping the list: a hook push that lands
  // after the swap wrote the eventfd after its push, so either its id was
  // in our swap or a fresh event is pending — no lost wakeups.
  std::uint64_t counter;
  while (::read(event_fd_, &counter, sizeof(counter)) ==
         static_cast<ssize_t>(sizeof(counter))) {
  }
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard<std::mutex> l(completed_mu_);
    ids.swap(completed_);
  }
  for (const std::uint64_t id : ids) {
    Route route;
    bool routed = false;
    bool orphan = false;
    {
      std::lock_guard<std::mutex> l(route_mu_);
      auto it = routes_.find(id);
      if (it != routes_.end()) {
        route = it->second;
        routes_.erase(it);
        routed = true;
      } else if (orphaned_.erase(id) > 0) {
        orphan = true;  // its conn closed: take the completion, drop it
      } else {
        unclaimed_.insert(id);  // a wait/schedule may register later
        continue;
      }
    }
    (void)routed;
    Completion c;
    if (!daemon_.try_take(RequestId{id}, &c).ok()) continue;  // raced, theirs
    if (orphan || route.conn->closed.load()) continue;
    std::vector<std::uint8_t> out;
    wire::encode_completion_reply(out, route.tag, Status::Ok(), &c);
    write_frame(route.conn, out);
  }
}

void Server::write_frame(const std::shared_ptr<Conn>& conn,
                         const std::vector<std::uint8_t>& bytes) {
  std::lock_guard<std::mutex> l(conn->mu);
  if (conn->closed.load()) return;
  std::size_t off = 0;
  int stalls = 0;
  while (off < bytes.size()) {
    const ssize_t n = fault_send(cfg_.fault, FaultInjector::Site::kServerSend,
                                 conn->fd, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      stalls = 0;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Bounded backpressure: block THIS writer on the socket buffer; a
      // reader stalled for ~30s forfeits the rest of the reply (its next
      // read observes the truncation and closes).
      if (++stalls > kWriteStallMax) return;
      pollfd p{conn->fd, POLLOUT, 0};
      ::poll(&p, 1, kWriteStallMs);
      continue;
    }
    return;  // peer gone; the read path will close the conn
  }
}

void Server::rearm(const Conn& conn) {
  if (conn.closed.load()) return;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLONESHOT | EPOLLRDHUP;
  ev.data.fd = conn.fd;
  // MOD re-evaluates readiness, so bytes that arrived between our EAGAIN
  // and this rearm still produce an event.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::close_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true)) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  {
    std::lock_guard<std::mutex> l(conns_mu_);
    conns_.erase(conn->fd);
  }
  // Deferred replies headed here will never be readable: orphan them so
  // the delivery worker takes-and-drops instead of leaking route entries.
  {
    std::lock_guard<std::mutex> l(route_mu_);
    for (auto it = routes_.begin(); it != routes_.end();) {
      if (it->second.conn == conn) {
        orphaned_.insert(it->first);
        it = routes_.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<SessionId> owned;
  {
    std::lock_guard<std::mutex> l(conn->mu);
    owned.swap(conn->owned);
  }
  for (SessionId sid : owned) daemon_.destroy_session(sid);
  ::close(conn->fd);
}

}  // namespace rlsched::serve
