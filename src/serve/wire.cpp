#include "serve/wire.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

namespace rlsched::serve::wire {

using core::ScheduleRequest;
using core::Status;
using core::StatusCode;

namespace {

constexpr std::size_t kJobBytes = 48;
constexpr std::size_t kRunResultBytes = 64;

Status malformed(const char* what) {
  return Status(StatusCode::kInvalidArgument,
                std::string("malformed frame: ") + what);
}

bool valid_request_type(MsgType t) {
  switch (t) {
    case MsgType::kCreateSession:
    case MsgType::kDestroySession:
    case MsgType::kSubmit:
    case MsgType::kSchedule:
    case MsgType::kTryTake:
    case MsgType::kWait:
    case MsgType::kStatusReply:
    case MsgType::kSessionReply:
    case MsgType::kSubmitReply:
    case MsgType::kCompletionReply:
      return true;
  }
  return false;
}

void put_status(std::vector<std::uint8_t>& out, const Status& status) {
  put_i32(out, static_cast<std::int32_t>(status.code()));
  put_u32(out, static_cast<std::uint32_t>(status.message().size()));
  const auto* bytes =
      reinterpret_cast<const std::uint8_t*>(status.message().data());
  out.insert(out.end(), bytes, bytes + status.message().size());
}

Status get_status(Reader& r, Status* out) {
  std::int32_t code;
  std::uint32_t len;
  if (!r.i32(&code) || !r.u32(&len)) return malformed("truncated status");
  if (code < 0 || code > static_cast<std::int32_t>(core::kMaxStatusCode)) {
    return malformed("unknown status code");
  }
  const std::uint8_t* msg;
  if (!r.bytes(len, &msg)) return malformed("truncated status message");
  *out = Status(static_cast<StatusCode>(code),
                std::string(reinterpret_cast<const char*>(msg), len));
  return Status::Ok();
}

void put_job(std::vector<std::uint8_t>& out, const trace::Job& j) {
  put_i64(out, j.id);
  put_f64(out, j.submit_time);
  put_f64(out, j.run_time);
  put_f64(out, j.requested_time);
  put_i32(out, j.requested_procs);
  put_i32(out, j.user);
  put_f64(out, j.start_time);
}

bool get_job(Reader& r, trace::Job* j) {
  return r.i64(&j->id) && r.f64(&j->submit_time) && r.f64(&j->run_time) &&
         r.f64(&j->requested_time) && r.i32(&j->requested_procs) &&
         r.i32(&j->user) && r.f64(&j->start_time);
}

void put_run(std::vector<std::uint8_t>& out, const sim::RunResult& run) {
  put_u64(out, static_cast<std::uint64_t>(run.jobs));
  put_f64(out, run.avg_bounded_slowdown);
  put_f64(out, run.avg_slowdown);
  put_f64(out, run.avg_wait);
  put_f64(out, run.avg_turnaround);
  put_f64(out, run.utilization);
  put_f64(out, run.makespan);
  put_f64(out, run.max_user_bounded_slowdown);
}

bool get_run(Reader& r, sim::RunResult* run) {
  std::uint64_t jobs;
  if (!r.u64(&jobs)) return false;
  run->jobs = static_cast<std::size_t>(jobs);
  return r.f64(&run->avg_bounded_slowdown) && r.f64(&run->avg_slowdown) &&
         r.f64(&run->avg_wait) && r.f64(&run->avg_turnaround) &&
         r.f64(&run->utilization) && r.f64(&run->makespan) &&
         r.f64(&run->max_user_bounded_slowdown);
}

/// Every decoder ends here: a well-formed payload is consumed EXACTLY —
/// trailing garbage is as malformed as a truncation (it means the sender's
/// framing disagrees with ours, and the stream cannot be trusted).
Status finish(const Reader& r) {
  if (!r.exhausted()) return malformed("trailing bytes after payload");
  return Status::Ok();
}

}  // namespace

Status decode_header(const std::uint8_t* buf, Header* out) {
  Reader r(buf, kHeaderBytes);
  std::uint8_t version;
  std::uint8_t type;
  std::uint16_t reserved;
  r.u32(&out->payload_len);
  r.u8(&version);
  r.u8(&type);
  r.u16(&reserved);
  r.u64(&out->tag);
  if (version != kVersion) return malformed("unsupported version byte");
  if (reserved != 0) return malformed("nonzero reserved bytes");
  if (!valid_request_type(static_cast<MsgType>(type))) {
    return malformed("unknown message type");
  }
  if (out->payload_len > kMaxPayloadBytes) {
    return malformed("declared payload exceeds 64 MiB cap");
  }
  out->version = version;
  out->type = static_cast<MsgType>(type);
  return Status::Ok();
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  const std::size_t n = out.size();
  out.resize(n + sizeof(v));
  std::memcpy(out.data() + n, &v, sizeof(v));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t n = out.size();
  out.resize(n + sizeof(v));
  std::memcpy(out.data() + n, &v, sizeof(v));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t n = out.size();
  out.resize(n + sizeof(v));
  std::memcpy(out.data() + n, &v, sizeof(v));
}
void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  const std::size_t n = out.size();
  out.resize(n + sizeof(v));
  std::memcpy(out.data() + n, &v, sizeof(v));
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  const std::size_t n = out.size();
  out.resize(n + sizeof(v));
  std::memcpy(out.data() + n, &v, sizeof(v));
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint64_t tag, const std::uint8_t* payload,
                  std::size_t payload_len) {
  if (payload_len > kMaxPayloadBytes) {
    std::fprintf(stderr,
                 "rlsched: wire encoder produced a %zu-byte payload "
                 "(cap %u) — encoder bug\n",
                 payload_len, kMaxPayloadBytes);
    std::abort();
  }
  put_u32(out, static_cast<std::uint32_t>(payload_len));
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);
  put_u64(out, tag);
  out.insert(out.end(), payload, payload + payload_len);
}

void encode_create_session(std::vector<std::uint8_t>& out, std::uint64_t tag,
                           const SessionConfig& cfg) {
  std::vector<std::uint8_t> p;
  put_i32(p, cfg.processors);
  put_u32(p, cfg.policy);
  append_frame(out, MsgType::kCreateSession, tag, p.data(), p.size());
}

Status decode_create_session(Reader& r, SessionConfig* cfg) {
  std::int32_t procs;
  std::uint32_t policy;
  if (!r.i32(&procs) || !r.u32(&policy)) {
    return malformed("truncated create_session");
  }
  cfg->processors = procs;
  cfg->policy = policy;
  return finish(r);
}

void encode_destroy_session(std::vector<std::uint8_t>& out, std::uint64_t tag,
                            SessionId id) {
  std::vector<std::uint8_t> p;
  put_u32(p, id.index);
  put_u32(p, id.gen);
  append_frame(out, MsgType::kDestroySession, tag, p.data(), p.size());
}

Status decode_destroy_session(Reader& r, SessionId* id) {
  if (!r.u32(&id->index) || !r.u32(&id->gen)) {
    return malformed("truncated destroy_session");
  }
  return finish(r);
}

Status encode_submit(std::vector<std::uint8_t>& out, MsgType type,
                     std::uint64_t tag, SessionId id,
                     const ScheduleRequest& request) {
  if (request.stream != nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "stream requests are not wire-encodable: a "
                  "trace::JobSource lives in one process");
  }
  if (Status s = core::validate(request); !s.ok()) return s;
  std::vector<std::uint8_t> p;
  put_u32(p, id.index);
  put_u32(p, id.gen);
  const bool single = request.jobs != nullptr;
  put_u8(p, single ? 0 : 1);
  put_i32(p, request.processors);
  put_u8(p, request.backfill ? 1 : 0);
  put_u64(p, static_cast<std::uint64_t>(request.chunk_jobs));
  put_f64(p, request.deadline_seconds);
  if (single) {
    put_u32(p, 1);
    put_u32(p, static_cast<std::uint32_t>(request.jobs->size()));
    for (const trace::Job& j : *request.jobs) put_job(p, j);
  } else {
    put_u32(p, static_cast<std::uint32_t>(request.sequences->size()));
    for (const auto& seq : *request.sequences) {
      put_u32(p, static_cast<std::uint32_t>(seq.size()));
      for (const trace::Job& j : seq) put_job(p, j);
    }
  }
  append_frame(out, type, tag, p.data(), p.size());
  return Status::Ok();
}

Status decode_submit(Reader& r, SessionId* id, DecodedRequest* out) {
  std::uint8_t kind;
  std::uint8_t backfill;
  std::int32_t procs;
  std::uint64_t chunk;
  double deadline;
  std::uint32_t nseq;
  if (!r.u32(&id->index) || !r.u32(&id->gen) || !r.u8(&kind) ||
      !r.i32(&procs) || !r.u8(&backfill) || !r.u64(&chunk) ||
      !r.f64(&deadline) || !r.u32(&nseq)) {
    return malformed("truncated submit");
  }
  if (kind > 1) return malformed("unknown request kind");
  if (backfill > 1) return malformed("non-boolean backfill byte");
  // NaN compares false on both sides, so this also rejects NaN deadlines.
  if (!(deadline >= 0.0 && deadline < std::numeric_limits<double>::infinity())) {
    return malformed("deadline must be finite and >= 0");
  }
  if (kind == 0 && nseq != 1) {
    return malformed("single-sequence request with sequence count != 1");
  }
  // Each sequence costs at least its 4-byte count: a declared sequence
  // count the payload cannot physically hold is rejected before reserve().
  if (nseq > r.remaining() / sizeof(std::uint32_t)) {
    return malformed("sequence count exceeds payload");
  }
  out->single = kind == 0;
  out->processors = procs;
  out->backfill = backfill != 0;
  out->chunk_jobs = static_cast<std::size_t>(chunk);
  out->deadline_seconds = deadline;
  out->sequences.clear();
  out->sequences.reserve(nseq);
  for (std::uint32_t s = 0; s < nseq; ++s) {
    std::uint32_t njobs;
    if (!r.u32(&njobs)) return malformed("truncated sequence count");
    if (njobs > r.remaining() / kJobBytes) {
      return malformed("job count exceeds payload");
    }
    out->sequences.emplace_back();
    out->sequences.back().resize(njobs);
    for (trace::Job& j : out->sequences.back()) {
      if (!get_job(r, &j)) return malformed("truncated job record");
    }
  }
  return finish(r);
}

void encode_take(std::vector<std::uint8_t>& out, MsgType type,
                 std::uint64_t tag, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  put_u64(p, request_id);
  append_frame(out, type, tag, p.data(), p.size());
}

Status decode_take(Reader& r, std::uint64_t* request_id) {
  if (!r.u64(request_id)) return malformed("truncated take");
  return finish(r);
}

void encode_status_reply(std::vector<std::uint8_t>& out, std::uint64_t tag,
                         const Status& status) {
  std::vector<std::uint8_t> p;
  put_status(p, status);
  append_frame(out, MsgType::kStatusReply, tag, p.data(), p.size());
}

Status decode_status_reply(Reader& r, Status* status) {
  if (Status s = get_status(r, status); !s.ok()) return s;
  return finish(r);
}

void encode_session_reply(std::vector<std::uint8_t>& out, std::uint64_t tag,
                          const Status& status, SessionId id) {
  std::vector<std::uint8_t> p;
  put_status(p, status);
  if (status.ok()) {
    put_u32(p, id.index);
    put_u32(p, id.gen);
  }
  append_frame(out, MsgType::kSessionReply, tag, p.data(), p.size());
}

Status decode_session_reply(Reader& r, Status* status, SessionId* id) {
  if (Status s = get_status(r, status); !s.ok()) return s;
  if (status->ok() && (!r.u32(&id->index) || !r.u32(&id->gen))) {
    return malformed("truncated session id");
  }
  return finish(r);
}

void encode_submit_reply(std::vector<std::uint8_t>& out, std::uint64_t tag,
                         const Status& status, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  put_status(p, status);
  if (status.ok()) put_u64(p, request_id);
  append_frame(out, MsgType::kSubmitReply, tag, p.data(), p.size());
}

Status decode_submit_reply(Reader& r, Status* status,
                           std::uint64_t* request_id) {
  if (Status s = get_status(r, status); !s.ok()) return s;
  if (status->ok() && !r.u64(request_id)) {
    return malformed("truncated request id");
  }
  return finish(r);
}

void encode_completion_reply(std::vector<std::uint8_t>& out, std::uint64_t tag,
                             const Status& status,
                             const Completion* completion) {
  std::vector<std::uint8_t> p;
  put_status(p, status);
  if (status.ok()) {
    put_status(p, completion->status);
    put_f64(p, completion->latency_seconds);
    put_u32(p, static_cast<std::uint32_t>(completion->result.runs.size()));
    for (const sim::RunResult& run : completion->result.runs) put_run(p, run);
  }
  append_frame(out, MsgType::kCompletionReply, tag, p.data(), p.size());
}

Status decode_completion_reply(Reader& r, Status* status,
                               Completion* completion) {
  if (Status s = get_status(r, status); !s.ok()) return s;
  if (!status->ok()) return finish(r);
  if (Status s = get_status(r, &completion->status); !s.ok()) return s;
  std::uint32_t nruns;
  if (!r.f64(&completion->latency_seconds) || !r.u32(&nruns)) {
    return malformed("truncated completion");
  }
  if (nruns > r.remaining() / kRunResultBytes) {
    return malformed("run count exceeds payload");
  }
  completion->result.runs.resize(nruns);
  for (sim::RunResult& run : completion->result.runs) {
    if (!get_run(r, &run)) return malformed("truncated run result");
  }
  return finish(r);
}

}  // namespace rlsched::serve::wire
