#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "util/rng.hpp"

namespace rlsched::serve {

using core::ScheduleRequest;
using core::ScheduleResult;
using core::Status;
using core::StatusCode;
using core::StatusOr;

namespace {

constexpr const char kLostPrefix[] = "connection lost";

Status lost(const char* what) {
  return Status(StatusCode::kUnavailable,
                std::string(kLostPrefix) + " (" + what + ")");
}

Status protocol(const char* what) {
  return Status(StatusCode::kInternal,
                std::string("protocol violation from server: ") + what);
}

/// A failure the retry layer may act on: the connection died (or timed
/// out) mid-verb. Both producers live in this file — lost() and the
/// connect path — and both speak kUnavailable; payload-level kUnavailable
/// (e.g. try_take "request pending") is decoded from a healthy reply and
/// never carries the transport prefix.
bool transport_error(const Status& s) {
  return s.code() == StatusCode::kUnavailable &&
         s.message().compare(0, sizeof(kLostPrefix) - 1, kLostPrefix) == 0;
}

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) *
                                 1e9);
  nanosleep(&ts, nullptr);
}

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Client::~Client() { close(); }

Status Client::connect(const std::string& host, std::uint16_t port) {
  return connect(std::vector<Endpoint>{{host, port}});
}

Status Client::connect(std::vector<Endpoint> endpoints) {
  if (fd_ >= 0) {
    return Status(StatusCode::kFailedPrecondition, "already connected");
  }
  if (endpoints.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty endpoint list");
  }
  endpoints_ = std::move(endpoints);
  Status last = lost("no endpoint reachable");
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    Status s = connect_fd(endpoints_[i].host, endpoints_[i].port);
    if (s.ok()) {
      current_endpoint_ = i;
      return s;
    }
    if (s.code() == StatusCode::kInvalidArgument) return s;  // bad host text
    last = std::move(s);
  }
  return last;
}

Status Client::connect_fd(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal,
                  std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument,
                  "unparseable server host: " + host);
  }
  if (cfg_.connect_timeout_seconds > 0.0) {
    // Bounded connect: nonblocking connect, poll for writability, read the
    // socket error, then restore blocking mode for the verb I/O.
    const int fl = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int timeout_ms =
          static_cast<int>(cfg_.connect_timeout_seconds * 1000.0);
      rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
      if (rc <= 0) {
        ::close(fd);
        return lost("connect timeout");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ::close(fd);
        return Status(StatusCode::kUnavailable,
                      std::string(kLostPrefix) + " (connect: " +
                          std::strerror(err) + ")");
      }
    } else if (rc != 0) {
      const int e = errno;
      ::close(fd);
      return Status(StatusCode::kUnavailable,
                    std::string(kLostPrefix) + " (connect: " +
                        std::strerror(e) + ")");
    }
    ::fcntl(fd, F_SETFL, fl);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    // Same transport-error shape as the timeout path: the retry layer
    // must keep cycling endpoints while a peer is down.
    return Status(StatusCode::kUnavailable,
                  std::string(kLostPrefix) + " (connect: " +
                      std::strerror(e) + ")");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  set_io_timeout(fd, cfg_.io_timeout_seconds);
  fd_ = fd;
  return Status::Ok();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::send_all(const std::uint8_t* data, std::size_t len) {
  if (fd_ < 0) return lost("not connected");
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n =
        fault_send(fault_, FaultInjector::Site::kClientSend, fd_, data + off,
                   len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN here is an io_timeout expiry (or an injected storm) on a
    // blocking socket: the frame boundary is unknown, so the connection is
    // unusable — surface a transport error and let the retry layer
    // reconnect.
    return lost("send");
  }
  return Status::Ok();
}

Status Client::send_raw(const std::uint8_t* data, std::size_t len) {
  std::lock_guard<std::mutex> l(send_mu_);
  return send_all(data, len);
}

Status Client::recv_frame(wire::Header* header,
                          std::vector<std::uint8_t>* payload) {
  if (fd_ < 0) return lost("not connected");
  std::uint8_t hdr[wire::kHeaderBytes];
  std::size_t off = 0;
  while (off < sizeof(hdr)) {
    const ssize_t n =
        fault_recv(fault_, FaultInjector::Site::kClientRecv, fd_, hdr + off,
                   sizeof(hdr) - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return lost("recv header");
  }
  if (Status s = wire::decode_header(hdr, header); !s.ok()) return s;
  payload->resize(header->payload_len);
  off = 0;
  while (off < payload->size()) {
    const ssize_t n =
        fault_recv(fault_, FaultInjector::Site::kClientRecv, fd_,
                   payload->data() + off, payload->size() - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return lost("recv payload");
  }
  return Status::Ok();
}

// --- resilience layer -------------------------------------------------

void Client::backoff_sleep(int attempt) {
  double base = cfg_.retry.initial_backoff_seconds;
  for (int i = 0; i < attempt; ++i) base *= cfg_.retry.multiplier;
  if (base > cfg_.retry.max_backoff_seconds) {
    base = cfg_.retry.max_backoff_seconds;
  }
  // Deterministic jitter in [base/2, base): substream (seed, n-th backoff
  // this client ever took) — replays exactly, decorrelates a retry herd.
  util::Rng rng = util::Rng::substream(cfg_.retry.seed, backoff_stream_++);
  sleep_seconds(base * (0.5 + 0.5 * rng.uniform()));
}

Status Client::reestablish_sessions() {
  for (auto& [local, tracked] : sessions_) {
    StatusOr<SessionId> r = create_session_once(tracked.cfg);
    if (!r.ok()) return r.status();
    tracked.remote = r.value();
  }
  return Status::Ok();
}

Status Client::reconnect() {
  close();
  const std::size_t n = endpoints_.size();
  if (n == 0) return lost("no endpoints to reconnect to");
  Status last = lost("no endpoint reachable");
  // Round-robin from the NEXT endpoint: a dead server is the most likely
  // reason we are here, so failover tries its peers before retrying it.
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t e = (current_endpoint_ + i) % n;
    Status s = connect_fd(endpoints_[e].host, endpoints_[e].port);
    if (!s.ok()) {
      last = std::move(s);
      continue;
    }
    current_endpoint_ = e;
    // Session re-establishment: every virtualized session is re-created
    // on the new server before the verb retries, so its local handle
    // stays valid across the failover.
    s = reestablish_sessions();
    if (!s.ok()) {
      last = std::move(s);
      close();
      continue;
    }
    return Status::Ok();
  }
  return last;
}

template <typename Op>
Status Client::with_retry(const Op& op) {
  Status s = op();
  for (int attempt = 1;
       transport_error(s) && attempt < cfg_.retry.max_attempts; ++attempt) {
    backoff_sleep(attempt - 1);
    if (Status r = reconnect(); !r.ok()) {
      s = std::move(r);  // burn the attempt; maybe a peer comes up
      continue;
    }
    s = op();
  }
  if (transport_error(s)) {
    close();
    return Status(StatusCode::kAborted,
                  "retries exhausted: " + s.to_string());
  }
  return s;
}

Status Client::translate(SessionId local, SessionId* remote) const {
  auto it = sessions_.find(local.index);
  if (it == sessions_.end() || local.gen != 1) {
    return Status(StatusCode::kNotFound, "unknown or stale session");
  }
  *remote = it->second.remote;
  return Status::Ok();
}

// --- verbs ------------------------------------------------------------

StatusOr<SessionId> Client::create_session(const SessionConfig& cfg) {
  if (!resilient()) return create_session_once(cfg);
  SessionId remote;
  Status s = with_retry([&] {
    StatusOr<SessionId> r = create_session_once(cfg);
    if (!r.ok()) return r.status();
    remote = r.value();
    return Status::Ok();
  });
  if (!s.ok()) return s;
  // Virtualized handle: retry-after-failover safe because the local id
  // survives server-side recreation (create is made idempotent by
  // tracking, not by the server).
  const SessionId local{next_local_index_++, 1};
  sessions_[local.index] = Tracked{cfg, remote};
  return local;
}

Status Client::destroy_session(SessionId id) {
  if (!resilient()) return destroy_session_once(id);
  SessionId remote;
  if (Status s = translate(id, &remote); !s.ok()) return s;
  bool retried = false;
  Status s = with_retry([&] {
    // After a failover the tracked mapping is fresh; re-translate.
    SessionId r;
    if (Status t = translate(id, &r); !t.ok()) return t;
    Status once = destroy_session_once(r);
    if (retried && once.code() == StatusCode::kNotFound) {
      // The previous attempt (or the server's own connection teardown)
      // already destroyed it: destroy is idempotent up to kNotFound.
      return Status::Ok();
    }
    retried = true;
    return once;
  });
  if (s.ok() || s.code() == StatusCode::kNotFound) sessions_.erase(id.index);
  return s;
}

StatusOr<RequestId> Client::submit(SessionId id,
                                   const ScheduleRequest& request) {
  if (!resilient()) return submit_once(id, request);
  RequestId rid;
  Status s = with_retry([&] {
    SessionId remote;
    if (Status t = translate(id, &remote); !t.ok()) return t;
    StatusOr<RequestId> r = submit_once(remote, request);
    if (!r.ok()) return r.status();
    rid = r.value();
    return Status::Ok();
  });
  if (!s.ok()) return s;
  return rid;
}

Status Client::try_take(RequestId id, Completion* out) {
  if (!resilient()) return take_once(wire::MsgType::kTryTake, id, out);
  return with_retry(
      [&] { return take_once(wire::MsgType::kTryTake, id, out); });
}

Status Client::wait(RequestId id, Completion* out) {
  if (!resilient()) return take_once(wire::MsgType::kWait, id, out);
  return with_retry([&] { return take_once(wire::MsgType::kWait, id, out); });
}

Status Client::schedule(SessionId id, const ScheduleRequest& request,
                        ScheduleResult* out) {
  if (!resilient()) return schedule_once(id, request, out);
  return with_retry([&] {
    // Safe to re-execute: scheduling is deterministic, so a retry after a
    // lost reply recomputes bitwise the same result.
    SessionId remote;
    if (Status t = translate(id, &remote); !t.ok()) return t;
    return schedule_once(remote, request, out);
  });
}

StatusOr<SessionId> Client::create_session_once(const SessionConfig& cfg) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  wire::encode_create_session(f, tag, cfg);
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  wire::Header h;
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(&h, &p); !s.ok()) return s;
  if (h.type != wire::MsgType::kSessionReply || h.tag != tag) {
    return protocol("expected kSessionReply");
  }
  wire::Reader r(p.data(), p.size());
  Status st;
  SessionId id;
  if (Status s = wire::decode_session_reply(r, &st, &id); !s.ok()) return s;
  if (!st.ok()) return st;
  return id;
}

Status Client::destroy_session_once(SessionId id) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  wire::encode_destroy_session(f, tag, id);
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  wire::Header h;
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(&h, &p); !s.ok()) return s;
  if (h.type != wire::MsgType::kStatusReply || h.tag != tag) {
    return protocol("expected kStatusReply");
  }
  wire::Reader r(p.data(), p.size());
  Status st;
  if (Status s = wire::decode_status_reply(r, &st); !s.ok()) return s;
  return st;
}

StatusOr<RequestId> Client::submit_once(SessionId id,
                                        const ScheduleRequest& request) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  if (Status s = wire::encode_submit(f, wire::MsgType::kSubmit, tag, id,
                                     request);
      !s.ok()) {
    return s;
  }
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  wire::Header h;
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(&h, &p); !s.ok()) return s;
  if (h.type != wire::MsgType::kSubmitReply || h.tag != tag) {
    return protocol("expected kSubmitReply");
  }
  wire::Reader r(p.data(), p.size());
  Status st;
  std::uint64_t rid = 0;
  if (Status s = wire::decode_submit_reply(r, &st, &rid); !s.ok()) return s;
  if (!st.ok()) return st;
  return RequestId{rid};
}

Status Client::take_once(wire::MsgType type, RequestId id, Completion* out) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  wire::encode_take(f, type, tag, id.value);
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  std::uint64_t rtag = 0;
  Status st = recv_completion(&rtag, out);
  if (st.ok() && rtag != tag) return protocol("mismatched reply tag");
  return st;
}

Status Client::schedule_once(SessionId id, const ScheduleRequest& request,
                             ScheduleResult* out) {
  const std::uint64_t tag = next_tag_++;
  std::vector<std::uint8_t> f;
  if (Status s = wire::encode_submit(f, wire::MsgType::kSchedule, tag, id,
                                     request);
      !s.ok()) {
    return s;
  }
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  std::uint64_t rtag = 0;
  Completion c;
  if (Status s = recv_completion(&rtag, &c); !s.ok()) return s;
  if (rtag != tag) return protocol("mismatched reply tag");
  if (!c.status.ok()) return c.status;
  *out = std::move(c.result);
  return Status::Ok();
}

Status Client::send_schedule(SessionId id, const ScheduleRequest& request,
                             std::uint64_t tag) {
  std::vector<std::uint8_t> f;
  if (Status s = wire::encode_submit(f, wire::MsgType::kSchedule, tag, id,
                                     request);
      !s.ok()) {
    return s;
  }
  return send_raw(f.data(), f.size());
}

Status Client::recv_completion(std::uint64_t* tag, Completion* out) {
  wire::Header h;
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(&h, &p); !s.ok()) return s;
  if (h.type != wire::MsgType::kCompletionReply) {
    return protocol("expected kCompletionReply");
  }
  *tag = h.tag;
  wire::Reader r(p.data(), p.size());
  Status st;
  if (Status s = wire::decode_completion_reply(r, &st, out); !s.ok()) {
    return s;
  }
  return st;  // outer op status; completion payload only present when OK
}

Status Client::recv_reply(wire::Header* header, Status* status) {
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(header, &p); !s.ok()) return s;
  wire::Reader r(p.data(), p.size());
  std::int32_t code;
  std::uint32_t len;
  if (!r.i32(&code) || !r.u32(&len)) return protocol("truncated status");
  const std::uint8_t* msg;
  if (!r.bytes(len, &msg)) return protocol("truncated status message");
  if (code < 0 || code > static_cast<std::int32_t>(core::kMaxStatusCode)) {
    return protocol("unknown status code");
  }
  *status = Status(static_cast<StatusCode>(code),
                   std::string(reinterpret_cast<const char*>(msg), len));
  return Status::Ok();
}

}  // namespace rlsched::serve
