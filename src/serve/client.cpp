#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rlsched::serve {

using core::Status;
using core::StatusCode;
using core::StatusOr;

namespace {

Status lost(const char* what) {
  return Status(StatusCode::kUnavailable,
                std::string("connection lost (") + what + ")");
}

Status protocol(const char* what) {
  return Status(StatusCode::kInternal,
                std::string("protocol violation from server: ") + what);
}

}  // namespace

Client::~Client() { close(); }

Status Client::connect(const std::string& host, std::uint16_t port) {
  if (fd_ >= 0) {
    return Status(StatusCode::kFailedPrecondition, "already connected");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal,
                  std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalidArgument,
                  "unparseable server host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  std::string("connect: ") + std::strerror(e));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::Ok();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::send_all(const std::uint8_t* data, std::size_t len) {
  if (fd_ < 0) return lost("not connected");
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return lost("send");
  }
  return Status::Ok();
}

Status Client::send_raw(const std::uint8_t* data, std::size_t len) {
  std::lock_guard<std::mutex> l(send_mu_);
  return send_all(data, len);
}

Status Client::recv_frame(wire::Header* header,
                          std::vector<std::uint8_t>* payload) {
  if (fd_ < 0) return lost("not connected");
  std::uint8_t hdr[wire::kHeaderBytes];
  std::size_t off = 0;
  while (off < sizeof(hdr)) {
    const ssize_t n = ::recv(fd_, hdr + off, sizeof(hdr) - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return lost("recv header");
  }
  if (Status s = wire::decode_header(hdr, header); !s.ok()) return s;
  payload->resize(header->payload_len);
  off = 0;
  while (off < payload->size()) {
    const ssize_t n =
        ::recv(fd_, payload->data() + off, payload->size() - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return lost("recv payload");
  }
  return Status::Ok();
}

StatusOr<SessionId> Client::create_session(const SessionConfig& cfg) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  wire::encode_create_session(f, tag, cfg);
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  wire::Header h;
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(&h, &p); !s.ok()) return s;
  if (h.type != wire::MsgType::kSessionReply || h.tag != tag) {
    return protocol("expected kSessionReply");
  }
  wire::Reader r(p.data(), p.size());
  Status st;
  SessionId id;
  if (Status s = wire::decode_session_reply(r, &st, &id); !s.ok()) return s;
  if (!st.ok()) return st;
  return id;
}

Status Client::destroy_session(SessionId id) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  wire::encode_destroy_session(f, tag, id);
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  wire::Header h;
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(&h, &p); !s.ok()) return s;
  if (h.type != wire::MsgType::kStatusReply || h.tag != tag) {
    return protocol("expected kStatusReply");
  }
  wire::Reader r(p.data(), p.size());
  Status st;
  if (Status s = wire::decode_status_reply(r, &st); !s.ok()) return s;
  return st;
}

StatusOr<RequestId> Client::submit(SessionId id,
                                   const core::ScheduleRequest& request) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  if (Status s = wire::encode_submit(f, wire::MsgType::kSubmit, tag, id,
                                     request);
      !s.ok()) {
    return s;
  }
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  wire::Header h;
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(&h, &p); !s.ok()) return s;
  if (h.type != wire::MsgType::kSubmitReply || h.tag != tag) {
    return protocol("expected kSubmitReply");
  }
  wire::Reader r(p.data(), p.size());
  Status st;
  std::uint64_t rid = 0;
  if (Status s = wire::decode_submit_reply(r, &st, &rid); !s.ok()) return s;
  if (!st.ok()) return st;
  return RequestId{rid};
}

Status Client::try_take(RequestId id, Completion* out) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  wire::encode_take(f, wire::MsgType::kTryTake, tag, id.value);
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  std::uint64_t rtag = 0;
  Status st = recv_completion(&rtag, out);
  if (st.ok() && rtag != tag) return protocol("mismatched reply tag");
  return st;
}

Status Client::wait(RequestId id, Completion* out) {
  std::vector<std::uint8_t> f;
  const std::uint64_t tag = next_tag_++;
  wire::encode_take(f, wire::MsgType::kWait, tag, id.value);
  if (Status s = send_raw(f.data(), f.size()); !s.ok()) return s;
  std::uint64_t rtag = 0;
  Status st = recv_completion(&rtag, out);
  if (st.ok() && rtag != tag) return protocol("mismatched reply tag");
  return st;
}

Status Client::schedule(SessionId id, const core::ScheduleRequest& request,
                        core::ScheduleResult* out) {
  const std::uint64_t tag = next_tag_++;
  if (Status s = send_schedule(id, request, tag); !s.ok()) return s;
  std::uint64_t rtag = 0;
  Completion c;
  if (Status s = recv_completion(&rtag, &c); !s.ok()) return s;
  if (rtag != tag) return protocol("mismatched reply tag");
  if (!c.status.ok()) return c.status;
  *out = std::move(c.result);
  return Status::Ok();
}

Status Client::send_schedule(SessionId id,
                             const core::ScheduleRequest& request,
                             std::uint64_t tag) {
  std::vector<std::uint8_t> f;
  if (Status s = wire::encode_submit(f, wire::MsgType::kSchedule, tag, id,
                                     request);
      !s.ok()) {
    return s;
  }
  return send_raw(f.data(), f.size());
}

Status Client::recv_completion(std::uint64_t* tag, Completion* out) {
  wire::Header h;
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(&h, &p); !s.ok()) return s;
  if (h.type != wire::MsgType::kCompletionReply) {
    return protocol("expected kCompletionReply");
  }
  *tag = h.tag;
  wire::Reader r(p.data(), p.size());
  Status st;
  if (Status s = wire::decode_completion_reply(r, &st, out); !s.ok()) {
    return s;
  }
  return st;  // outer op status; completion payload only present when OK
}

Status Client::recv_reply(wire::Header* header, Status* status) {
  std::vector<std::uint8_t> p;
  if (Status s = recv_frame(header, &p); !s.ok()) return s;
  wire::Reader r(p.data(), p.size());
  std::int32_t code;
  std::uint32_t len;
  if (!r.i32(&code) || !r.u32(&len)) return protocol("truncated status");
  const std::uint8_t* msg;
  if (!r.bytes(len, &msg)) return protocol("truncated status message");
  if (code < 0 || code > static_cast<std::int32_t>(StatusCode::kInternal)) {
    return protocol("unknown status code");
  }
  *status = Status(static_cast<StatusCode>(code),
                   std::string(reinterpret_cast<const char*>(msg), len));
  return Status::Ok();
}

}  // namespace rlsched::serve
