#include "serve/fault.hpp"

#include <time.h>

#include <sys/socket.h>

#include "util/rng.hpp"

namespace rlsched::serve {

namespace {

// Site salts keep the four decision streams decorrelated even at op 0.
constexpr std::uint64_t kSiteSalt[] = {
    0xC13FA9A902A6328FULL,  // kClientSend
    0x91E10DA5C79E7B1DULL,  // kClientRecv
    0x8CB92BA72F3D8DD7ULL,  // kServerSend
    0xD6E8FEB86659FD93ULL,  // kServerRecv
};

void nanosleep_us(std::uint32_t us) {
  timespec ts;
  ts.tv_sec = us / 1000000u;
  ts.tv_nsec = static_cast<long>(us % 1000000u) * 1000;
  nanosleep(&ts, nullptr);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {}

FaultInjector::Action FaultInjector::decide(Site site) {
  const std::size_t s = static_cast<std::size_t>(site);
  const std::uint64_t op =
      counters_[s].ops.fetch_add(1, std::memory_order_relaxed);
  // (seed, site, op#) -> [0, 1) through the splitmix64 finalizer: the
  // decision stream per site is a pure function of the plan, never of
  // scheduling.
  const std::uint64_t bits =
      util::Rng::mix64(plan_.seed ^ kSiteSalt[s] ^ (op * 0x9E3779B97F4A7C15ULL));
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  double edge = plan_.disconnect;
  if (u < edge) return Action::kDisconnect;
  edge += plan_.eagain;
  if (u < edge) return Action::kEagain;
  edge += plan_.short_io;
  if (u < edge) return Action::kShortIo;
  edge += plan_.delay;
  if (u < edge) return Action::kDelay;
  return Action::kNone;
}

ssize_t FaultInjector::send(Site site, int fd, const void* buf,
                            std::size_t len, int flags) {
  switch (decide(site)) {
    case Action::kDisconnect: {
      if (len > 1) {
        // Torn frame: half the bytes land, then the connection dies — the
        // peer reads a valid prefix followed by EOF mid-frame.
        (void)::send(fd, buf, len / 2, flags);
      }
      ::shutdown(fd, SHUT_RDWR);
      errno = ECONNRESET;
      return -1;
    }
    case Action::kEagain:
      errno = EAGAIN;
      return -1;
    case Action::kShortIo:
      return ::send(fd, buf, 1, flags);
    case Action::kDelay:
      nanosleep_us(plan_.delay_us);
      break;
    case Action::kNone:
      break;
  }
  return ::send(fd, buf, len, flags);
}

ssize_t FaultInjector::recv(Site site, int fd, void* buf, std::size_t len,
                            int flags) {
  switch (decide(site)) {
    case Action::kDisconnect:
      ::shutdown(fd, SHUT_RDWR);
      errno = ECONNRESET;
      return -1;
    case Action::kEagain:
      errno = EAGAIN;
      return -1;
    case Action::kShortIo:
      return ::recv(fd, buf, 1, flags);
    case Action::kDelay:
      nanosleep_us(plan_.delay_us);
      break;
    case Action::kNone:
      break;
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t fault_send(FaultInjector* f, FaultInjector::Site site, int fd,
                   const void* buf, std::size_t len, int flags) {
  if (f == nullptr) return ::send(fd, buf, len, flags);
  return f->send(site, fd, buf, len, flags);
}

ssize_t fault_recv(FaultInjector* f, FaultInjector::Site site, int fd,
                   void* buf, std::size_t len, int flags) {
  if (f == nullptr) return ::recv(fd, buf, len, flags);
  return f->recv(site, fd, buf, len, flags);
}

}  // namespace rlsched::serve
