#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "rl/batch_eval.hpp"

namespace rlsched::serve {

using core::ScheduleRequest;
using core::ScheduleResult;
using core::Status;
using core::StatusCode;
using core::StatusOr;

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

std::chrono::steady_clock::time_point after_seconds(
    std::chrono::steady_clock::time_point t0, double seconds) {
  return t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
}

/// Retry bound for schedule()'s submit-and-wait loop. Each retry requires
/// losing a race against a dispatcher lifecycle transition (start(),
/// stop(), or a concurrent drain()), so normal operation never takes more
/// than one; the bound exists so adversarial lifecycle churn resolves to a
/// terminal Status instead of a busy spin.
constexpr int kScheduleAttempts = 8;
}  // namespace

Daemon::Daemon(DaemonConfig cfg)
    : batch_(cfg.runtime.resolved().batch),
      max_sessions_(cfg.max_sessions),
      max_queue_depth_(cfg.max_queue_depth),
      shed_policy_(cfg.shed_policy),
      drain_deadline_seconds_(cfg.drain_deadline_seconds) {
  const std::size_t n = cfg.dispatchers == 0 ? 1 : cfg.dispatchers;
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = s;
    shard->obs.resize(batch_);
    shard->obs_ptr.resize(batch_);
    shard->logits.resize(batch_ * rl::kMaxObservable);
    shard->actions.resize(batch_);
    shard->lane.resize(batch_);
    shards_.push_back(std::move(shard));
  }
}

Daemon::~Daemon() { shutdown(drain_deadline_seconds_); }

std::uint32_t Daemon::register_policy(const rl::Policy& policy) {
  std::lock_guard<std::mutex> l(mu_);
  // Batch scratch grows once, up front, so dispatch never allocates it.
  policy.reserve_batch(batch_);
  policies_.push_back(&policy);
  return static_cast<std::uint32_t>(policies_.size() - 1);
}

void Daemon::set_completion_hook(CompletionHook hook, void* ctx) {
  std::lock_guard<std::mutex> l(mu_);
  completion_hook_ = hook;
  completion_hook_ctx_ = ctx;
}

StatusOr<SessionId> Daemon::create_session(const SessionConfig& cfg) {
  std::lock_guard<std::mutex> l(mu_);
  if (cfg.processors <= 0) {
    return Status(StatusCode::kInvalidArgument,
                  "session processors must be >= 1");
  }
  if (cfg.policy >= policies_.size()) {
    return Status(StatusCode::kNotFound, "unknown policy id");
  }
  if (stats_.live_sessions >= max_sessions_) {
    return Status(StatusCode::kResourceExhausted, "session table full");
  }
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::make_unique<Slot>());
    slots_.back()->index = index;
  }
  Slot& slot = *slots_[index];
  slot.live = true;
  slot.closing = false;
  slot.active = false;
  slot.ready = false;
  slot.cfg = cfg;
  // No env yet: it attaches at admit and returns to the pool when the
  // session idles, so a table of 100k mostly-idle sessions costs slots,
  // not simulators.
  ++stats_.sessions_created;
  ++stats_.live_sessions;
  return SessionId{index, slot.gen};
}

Status Daemon::destroy_session(SessionId id) {
  std::lock_guard<std::mutex> l(mu_);
  Slot* slot = resolve_locked(id);
  if (slot == nullptr) {
    return Status(StatusCode::kNotFound, "unknown or stale session");
  }
  Shard& shard = *shards_[shard_of(slot->cfg.policy)];
  for (PendingRequest& r : slot->queue) {
    complete_locked(r.id, r.submitted,
                    Status(StatusCode::kCancelled, "session destroyed"),
                    ScheduleResult{});
    --shard.queued;
  }
  slot->queue.clear();
  if (slot->active) {
    // The owning shard has the episode in flight; it delivers the result
    // and releases the slot when the request finishes.
    slot->closing = true;
    return Status::Ok();
  }
  release_slot_locked(*slot);
  return Status::Ok();
}

StatusOr<RequestId> Daemon::submit(SessionId id,
                                   const ScheduleRequest& request) {
  if (Status s = core::validate(request); !s.ok()) return s;
  std::lock_guard<std::mutex> l(mu_);
  Slot* slot = resolve_locked(id);
  if (slot == nullptr) {
    return Status(StatusCode::kNotFound, "unknown or stale session");
  }
  Shard& shard = *shards_[shard_of(slot->cfg.policy)];
  if (max_queue_depth_ > 0 && shard.queued >= max_queue_depth_) {
    if (shed_policy_ == ShedPolicy::kRejectNew) {
      ++stats_.requests_rejected;  // never counted as submitted
      return Status(StatusCode::kResourceExhausted,
                    "shard queue full (reject-new admission policy)");
    }
    // Shed-oldest: the oldest queued request on this shard completes as
    // kResourceExhausted and the new one takes its place.
    shed_oldest_locked(shard);
  }
  PendingRequest pr;
  pr.id = next_request_id_++;
  if (request.jobs != nullptr) {
    pr.seqs.push_back(*request.jobs);
  } else if (request.sequences != nullptr) {
    pr.seqs = *request.sequences;
  } else {
    pr.stream = request.stream;
  }
  pr.processors =
      request.processors > 0 ? request.processors : slot->cfg.processors;
  pr.backfill = request.backfill;
  pr.chunk_jobs = request.chunk_jobs;
  pr.submitted = std::chrono::steady_clock::now();
  if (request.deadline_seconds > 0.0) {
    pr.deadline = after_seconds(pr.submitted, request.deadline_seconds);
  }
  const RequestId rid{pr.id};
  inflight_.insert(pr.id);
  slot->queue.push_back(std::move(pr));
  ++shard.queued;
  if (max_queue_depth_ > 0 && shed_policy_ == ShedPolicy::kShedOldest) {
    shard.fifo.emplace_back(slot->index, rid.value);
    // Stale entries (requests that left their queue through admission,
    // expiry, shed, or destroy) accumulate until shed pops them; compact
    // once they dominate so the fifo stays O(queued).
    if (shard.fifo.size() > 2 * shard.queued + 64) {
      std::deque<std::pair<std::uint32_t, std::uint64_t>> live;
      for (const auto& [idx, req] : shard.fifo) {
        const Slot& s = *slots_[idx];
        // Per slot the queue is a contiguous run of its submission ids
        // (every removal path pops the front), so a range check is exact.
        if (s.live && !s.queue.empty() && req >= s.queue.front().id &&
            req <= s.queue.back().id) {
          live.emplace_back(idx, req);
        }
      }
      shard.fifo.swap(live);
    }
  }
  ++stats_.requests_submitted;
  if (!slot->active && !slot->ready) {
    slot->ready = true;
    shard.ready.push_back(slot->index);
  }
  shard.work_cv.notify_one();
  return rid;
}

Status Daemon::try_take(RequestId id, Completion* out) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = completions_.find(id.value);
  if (it != completions_.end()) {
    *out = std::move(it->second);
    completions_.erase(it);
    return Status::Ok();
  }
  if (inflight_.count(id.value) != 0) {
    return Status(StatusCode::kUnavailable, "request pending");
  }
  return Status(StatusCode::kNotFound, "unknown request id");
}

Status Daemon::wait(RequestId id, Completion* out) {
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    auto it = completions_.find(id.value);
    if (it != completions_.end()) {
      *out = std::move(it->second);
      completions_.erase(it);
      return Status::Ok();
    }
    if (inflight_.count(id.value) == 0) {
      return Status(StatusCode::kNotFound, "unknown request id");
    }
    if (!started_ && active_drainers_ == 0) {
      // Nothing will ever complete this request — refuse to hang.
      return Status(StatusCode::kFailedPrecondition,
                    "no dispatcher running; start() or drain() first");
    }
    done_cv_.wait(l);
  }
}

Status Daemon::schedule(SessionId id, const ScheduleRequest& request,
                        ScheduleResult* out) {
  StatusOr<RequestId> rid = submit(id, request);
  if (!rid.ok()) return rid.status();
  Completion c;
  Status s(StatusCode::kUnavailable, "");
  for (int attempt = 0; attempt < kScheduleAttempts; ++attempt) {
    // wait() blocks whenever a background dispatcher OR a concurrent
    // drain()er can complete the request; kFailedPrecondition means
    // nobody can, so this thread serves the queue itself.
    s = wait(rid.value(), &c);
    if (s.code() != StatusCode::kFailedPrecondition) break;
    if (StatusOr<std::size_t> d = drain(); !d.ok()) {
      continue;  // a background dispatcher start()ed mid-race; re-wait
    }
    s = try_take(rid.value(), &c);
    if (s.code() != StatusCode::kUnavailable) break;
    // A concurrent drainer admitted the request between our wait() and
    // drain(); the next wait() blocks on that drainer instead of spinning.
  }
  if (s.code() == StatusCode::kFailedPrecondition ||
      s.code() == StatusCode::kUnavailable) {
    // Terminal: every retry lost a lifecycle race. The request stays
    // submitted — the caller can poll try_take()/wait() once a dispatcher
    // settles.
    return Status(StatusCode::kUnavailable,
                  "dispatcher lifecycle raced submit-and-wait; result "
                  "still pending — poll try_take()/wait()");
  }
  if (!s.ok()) return s;
  if (!c.status.ok()) return c.status;
  *out = std::move(c.result);
  return Status::Ok();
}

StatusOr<std::size_t> Daemon::drain() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (started_) {
      return Status(StatusCode::kFailedPrecondition,
                    "background dispatcher owns execution; stop() first");
    }
    // While this drain runs, wait()ers may block on it instead of
    // refusing: it will complete anything admissible.
    ++active_drainers_;
  }
  std::size_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> dl(shard->dispatch_mu);
    total += run_until_idle(*shard);
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    --active_drainers_;
  }
  // Waiters blocked on this drain must re-check (their request may have
  // been served — or not, if it raced admission; they then drain
  // themselves).
  done_cv_.notify_all();
  return total;
}

void Daemon::start() {
  std::lock_guard<std::mutex> l(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { dispatcher_loop(*s); });
  }
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!started_) return;
    stop_ = true;
    for (auto& shard : shards_) shard->work_cv.notify_all();
  }
  for (auto& shard : shards_) shard->thread.join();
  {
    std::lock_guard<std::mutex> l(mu_);
    started_ = false;
    stop_ = false;
    // Waiters blocked on an in-flight id must re-check and bail out
    // instead of sleeping on a daemon that no longer dispatches.
    done_cv_.notify_all();
  }
}

bool Daemon::shed_oldest_locked(Shard& shard) {
  while (!shard.fifo.empty()) {
    const auto [idx, req] = shard.fifo.front();
    shard.fifo.pop_front();
    Slot* slot = slots_[idx].get();
    // A live entry's request is its slot's queue FRONT: within one slot
    // every removal path (admission, expiry, shed, destroy) consumes the
    // front, and the shard fifo holds this slot's older ids earlier — so
    // anything else is a stale entry for an already-removed request.
    if (!slot->live || slot->queue.empty() ||
        slot->queue.front().id != req) {
      continue;
    }
    PendingRequest& f = slot->queue.front();
    complete_locked(f.id, f.submitted,
                    Status(StatusCode::kResourceExhausted,
                           "shed under overload (oldest queued request)"),
                    ScheduleResult{});
    slot->queue.pop_front();
    --shard.queued;
    return true;
  }
  return false;
}

void Daemon::shutdown(double drain_deadline_seconds) {
  stop();
  if (drain_deadline_seconds > 0.0) {
    const auto deadline =
        after_seconds(std::chrono::steady_clock::now(), drain_deadline_seconds);
    {
      std::lock_guard<std::mutex> l(mu_);
      ++active_drainers_;  // wait()ers may block on this drain
    }
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> dl(shard->dispatch_mu);
      run_until_idle(*shard, deadline);
    }
    {
      std::lock_guard<std::mutex> l(mu_);
      --active_drainers_;
    }
    done_cv_.notify_all();
  }
  // Whatever is still queued will never run — deliver kCancelled for each
  // so nothing is silently dropped and the stats balance survives
  // destruction: submitted == completed + cancelled + shed.
  std::lock_guard<std::mutex> l(mu_);
  for (auto& owned : slots_) {
    Slot& slot = *owned;
    if (!slot.live || slot.queue.empty()) continue;
    Shard& shard = *shards_[shard_of(slot.cfg.policy)];
    for (PendingRequest& r : slot.queue) {
      complete_locked(r.id, r.submitted,
                      Status(StatusCode::kCancelled, "daemon shutdown"),
                      ScheduleResult{});
      --shard.queued;
    }
    slot.queue.clear();
    if (slot.env) env_pool_.push_back(std::move(slot.env));
  }
  for (auto& shard : shards_) shard->fifo.clear();
}

std::size_t Daemon::live_sessions() const {
  std::lock_guard<std::mutex> l(mu_);
  return stats_.live_sessions;
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> l(mu_);
  DaemonStats out = stats_;
  out.episodes = episodes_.load(std::memory_order_relaxed);
  out.decisions = decisions_.load(std::memory_order_relaxed);
  out.forwards = forwards_.load(std::memory_order_relaxed);
  out.forward_windows = forward_windows_.load(std::memory_order_relaxed);
  return out;
}

void Daemon::dispatcher_loop(Shard& shard) {
  for (;;) {
    {
      std::unique_lock<std::mutex> l(mu_);
      shard.work_cv.wait(l, [&] { return stop_ || shard.queued > 0; });
      if (stop_) return;
    }
    std::lock_guard<std::mutex> dl(shard.dispatch_mu);
    run_until_idle(shard);
  }
}

std::size_t Daemon::run_until_idle(
    Shard& shard, std::chrono::steady_clock::time_point deadline) {
  shard.run_completed = 0;
  const bool bounded = deadline != kNoDeadline;
  for (;;) {
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      // Drain budget exhausted mid-flight: an abandoned active slot would
      // wedge its session forever, so in-flight episodes cancel here and
      // shutdown() cancels whatever is still queued.
      for (auto& bucket : shard.active_by_policy) {
        for (Slot* slot : bucket) {
          finish_request(shard, *slot,
                         Status(StatusCode::kCancelled,
                                "shutdown drain deadline expired"));
        }
        bucket.clear();
      }
      break;
    }
    admit_ready_sessions(shard);
    if (!any_active(shard)) break;
    step_active_once(shard);
  }
  return shard.run_completed;
}

bool Daemon::any_active(const Shard& shard) {
  for (const auto& bucket : shard.active_by_policy) {
    if (!bucket.empty()) return true;
  }
  return false;
}

void Daemon::admit_ready_sessions(Shard& shard) {
  shard.admit_scratch.clear();
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shard.active_by_policy.size() < policies_.size()) {
      shard.active_by_policy.resize(policies_.size());
    }
    std::chrono::steady_clock::time_point now{};
    bool have_now = false;
    while (!shard.ready.empty()) {
      Slot* slot = slots_[shard.ready.front()].get();
      shard.ready.pop_front();
      slot->ready = false;
      if (!slot->live || slot->closing || slot->active ||
          slot->queue.empty()) {
        continue;
      }
      // A recycled slot can leave a stale index in its OLD policy's shard
      // deque; admitting it here would drive the new tenant's policy from
      // the wrong thread. Its genuine entry lives in the right deque.
      if (shard_of(slot->cfg.policy) != shard.id) continue;
      // Admission-time deadline enforcement: work that expired while
      // queued completes kDeadlineExceeded here, before any env attaches.
      // The clock is read at most once per admit pass, and only when some
      // front actually carries a deadline.
      while (!slot->queue.empty() &&
             slot->queue.front().deadline != kNoDeadline) {
        if (!have_now) {
          now = std::chrono::steady_clock::now();
          have_now = true;
        }
        if (now < slot->queue.front().deadline) break;
        PendingRequest& f = slot->queue.front();
        complete_locked(f.id, f.submitted,
                        Status(StatusCode::kDeadlineExceeded,
                               "deadline expired before admission"),
                        ScheduleResult{});
        slot->queue.pop_front();
        --shard.queued;
      }
      if (slot->queue.empty()) {
        if (slot->env) env_pool_.push_back(std::move(slot->env));
        continue;
      }
      slot->current = std::move(slot->queue.front());
      slot->queue.pop_front();
      --shard.queued;
      slot->seq_index = 0;
      slot->partial.runs.clear();
      slot->policy = policies_[slot->cfg.policy];
      if (!slot->env) {
        // Lazy attach: envs live only on ACTIVE sessions; the pool bounds
        // the fleet by concurrent activity, not table size.
        if (!env_pool_.empty()) {
          // Pooled env: reconfigure-at-activate + reset give bitwise the
          // same episodes as a freshly constructed env (test_serve_daemon
          // gates this) — only reserved capacity survives reuse.
          slot->env = std::move(env_pool_.back());
          env_pool_.pop_back();
        } else {
          slot->env = std::make_unique<sim::SchedulingEnv>(
              slot->cfg.processors);
        }
      }
      slot->active = true;
      shard.admit_scratch.push_back(slot);
    }
  }
  for (Slot* slot : shard.admit_scratch) {
    if (activate(shard, *slot)) {
      shard.active_by_policy[slot->cfg.policy].push_back(slot);
    }
  }
}

bool Daemon::activate(Shard& shard, Slot& slot) {
  const std::size_t total =
      slot.current.stream != nullptr ? 1 : slot.current.seqs.size();
  while (slot.seq_index < total) {
    // Deadlined requests re-check between sequences: a multi-sequence
    // request abandons its remaining episodes once expired (the clock is
    // only read when a finite deadline is present).
    if (slot.current.deadline != kNoDeadline &&
        std::chrono::steady_clock::now() >= slot.current.deadline) {
      finish_request(shard, slot,
                     Status(StatusCode::kDeadlineExceeded,
                            "deadline expired at dispatch"));
      return false;
    }
    try {
      slot.env->reconfigure(
          slot.current.processors,
          sim::EnvConfig{slot.current.backfill, sim::kMaxObservable});
      if (slot.current.stream != nullptr) {
        slot.env->reset(*slot.current.stream, slot.current.chunk_jobs);
      } else {
        slot.env->reset(slot.current.seqs[slot.seq_index]);
      }
    } catch (const std::exception& e) {
      finish_request(shard, slot,
                     Status(StatusCode::kInvalidArgument, e.what()));
      return false;
    }
    episodes_.fetch_add(1, std::memory_order_relaxed);
    if (!slot.env->done()) return true;
    // Empty episode: nothing to decide, record and move on.
    slot.partial.runs.push_back(slot.env->result());
    ++slot.seq_index;
  }
  finish_request(shard, slot, Status::Ok());
  return false;
}

void Daemon::step_active_once(Shard& shard) {
  std::uint64_t stepped = 0;
  // Lazy per-call clock: read at most once, and only if some in-flight
  // episode actually carries a deadline — the no-deadline hot path costs
  // one pointer compare per step.
  std::chrono::steady_clock::time_point now{};
  bool have_now = false;
  for (auto& bucket : shard.active_by_policy) {
    if (bucket.empty()) continue;
    const rl::Policy& policy = *bucket.front()->policy;
    std::size_t write = 0;
    for (std::size_t g = 0; g < bucket.size(); g += batch_) {
      const std::size_t n = std::min(batch_, bucket.size() - g);
      for (std::size_t w = 0; w < n; ++w) {
        shard.lane[w] = bucket[g + w];
        shard.builder.build_into(*shard.lane[w]->env, shard.obs[w]);
        shard.obs_ptr[w] = &shard.obs[w];
      }
      rl::batched_argmax(policy, shard.obs_ptr.data(), n,
                         shard.logits.data(), shard.actions.data());
      forwards_.fetch_add(1, std::memory_order_relaxed);
      forward_windows_.fetch_add(n, std::memory_order_relaxed);
      for (std::size_t w = 0; w < n; ++w) {
        Slot* slot = shard.lane[w];
        bool done;
        try {
          slot->env->step(shard.actions[w]);
          done = slot->env->done();
        } catch (const std::exception& e) {
          // Streamed refill rejected mid-episode (e.g. out-of-order
          // submits): the request fails, the env resets on next use.
          finish_request(shard, *slot,
                         Status(StatusCode::kInvalidArgument, e.what()));
          continue;
        }
        ++stepped;
        if (!done) {
          if (slot->current.deadline != kNoDeadline) {
            if (!have_now) {
              now = std::chrono::steady_clock::now();
              have_now = true;
            }
            if (now >= slot->current.deadline) {
              // Abandon the expired episode between inference steps; the
              // env resets on its next use.
              finish_request(shard, *slot,
                             Status(StatusCode::kDeadlineExceeded,
                                    "deadline expired mid-dispatch"));
              continue;
            }
          }
          bucket[write++] = slot;
          continue;
        }
        slot->partial.runs.push_back(slot->env->result());
        ++slot->seq_index;
        if (activate(shard, *slot)) bucket[write++] = slot;
      }
    }
    bucket.resize(write);
  }
  decisions_.fetch_add(stepped, std::memory_order_relaxed);
}

void Daemon::finish_request(Shard& shard, Slot& slot, Status status) {
  std::lock_guard<std::mutex> l(mu_);
  complete_locked(slot.current.id, slot.current.submitted, std::move(status),
                  std::move(slot.partial));
  slot.partial = ScheduleResult{};
  slot.current = PendingRequest{};  // drop the owned job copies now
  slot.active = false;
  slot.policy = nullptr;
  ++shard.run_completed;
  if (slot.closing) {
    release_slot_locked(slot);
    return;
  }
  if (!slot.queue.empty()) {
    if (!slot.ready) {
      slot.ready = true;
      shard.ready.push_back(slot.index);
    }
  } else if (slot.env) {
    // Session idles: detach its env so the table scales past the pool.
    env_pool_.push_back(std::move(slot.env));
  }
}

void Daemon::release_slot_locked(Slot& slot) {
  if (slot.env) env_pool_.push_back(std::move(slot.env));
  slot.live = false;
  slot.closing = false;
  slot.active = false;
  slot.ready = false;
  ++slot.gen;
  free_slots_.push_back(slot.index);
  ++stats_.sessions_destroyed;
  --stats_.live_sessions;
}

void Daemon::complete_locked(std::uint64_t id,
                             std::chrono::steady_clock::time_point submitted,
                             Status status, ScheduleResult result) {
  Completion c;
  c.latency_seconds = seconds_since(submitted);
  const StatusCode code = status.code();
  const bool ok = status.ok();
  c.status = std::move(status);
  c.result = std::move(result);
  inflight_.erase(id);
  completions_.emplace(id, std::move(c));
  if (code == StatusCode::kCancelled) {
    ++stats_.requests_cancelled;
  } else if (code == StatusCode::kResourceExhausted) {
    // Load-shed under overload: its own bucket so the balance invariant
    // (submitted == completed + cancelled + shed) separates degraded
    // service from normal completion.
    ++stats_.requests_shed;
  } else {
    ++stats_.requests_completed;
    if (!ok) ++stats_.requests_failed;
    if (code == StatusCode::kDeadlineExceeded) ++stats_.requests_expired;
  }
  done_cv_.notify_all();
  // Last, with mu_ held: the hook must only queue-and-wake (see header).
  if (completion_hook_ != nullptr) completion_hook_(completion_hook_ctx_, id);
}

Daemon::Slot* Daemon::resolve_locked(SessionId id) {
  if (id.index >= slots_.size()) return nullptr;
  Slot* slot = slots_[id.index].get();
  if (!slot->live || slot->closing || slot->gen != id.gen) return nullptr;
  return slot;
}

}  // namespace rlsched::serve
