#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "rl/batch_eval.hpp"

namespace rlsched::serve {

using core::ScheduleRequest;
using core::ScheduleResult;
using core::Status;
using core::StatusCode;
using core::StatusOr;

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

Daemon::Daemon(DaemonConfig cfg)
    : batch_(cfg.runtime.resolved().batch), max_sessions_(cfg.max_sessions) {
  obs_.resize(batch_);
  obs_ptr_.resize(batch_);
  logits_.resize(batch_ * rl::kMaxObservable);
  actions_.resize(batch_);
  lane_.resize(batch_);
}

Daemon::~Daemon() { stop(); }

std::uint32_t Daemon::register_policy(const rl::Policy& policy) {
  std::lock_guard<std::mutex> l(mu_);
  // Batch scratch grows once, up front, so dispatch never allocates it.
  policy.reserve_batch(batch_);
  policies_.push_back(&policy);
  return static_cast<std::uint32_t>(policies_.size() - 1);
}

StatusOr<SessionId> Daemon::create_session(const SessionConfig& cfg) {
  std::lock_guard<std::mutex> l(mu_);
  if (cfg.processors <= 0) {
    return Status(StatusCode::kInvalidArgument,
                  "session processors must be >= 1");
  }
  if (cfg.policy >= policies_.size()) {
    return Status(StatusCode::kNotFound, "unknown policy id");
  }
  if (stats_.live_sessions >= max_sessions_) {
    return Status(StatusCode::kResourceExhausted, "session table full");
  }
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::make_unique<Slot>());
    slots_.back()->index = index;
  }
  Slot& slot = *slots_[index];
  slot.live = true;
  slot.closing = false;
  slot.active = false;
  slot.ready = false;
  slot.cfg = cfg;
  if (!slot.env) {
    if (!env_pool_.empty()) {
      // Pooled env: reconfigure-at-admit + reset give bitwise the same
      // episodes as a freshly constructed env (test_serve_daemon gates
      // this) — only the reserved capacity survives reuse.
      slot.env = std::move(env_pool_.back());
      env_pool_.pop_back();
    } else {
      slot.env = std::make_unique<sim::SchedulingEnv>(cfg.processors);
    }
  }
  ++stats_.sessions_created;
  ++stats_.live_sessions;
  return SessionId{index, slot.gen};
}

Status Daemon::destroy_session(SessionId id) {
  std::lock_guard<std::mutex> l(mu_);
  Slot* slot = resolve_locked(id);
  if (slot == nullptr) {
    return Status(StatusCode::kNotFound, "unknown or stale session");
  }
  for (PendingRequest& r : slot->queue) {
    complete_locked(r.id, r.submitted,
                    Status(StatusCode::kCancelled, "session destroyed"),
                    ScheduleResult{});
    --queued_requests_;
  }
  slot->queue.clear();
  if (slot->active) {
    // The dispatcher owns the in-flight episode; it delivers the result
    // and releases the slot when the request finishes.
    slot->closing = true;
    return Status::Ok();
  }
  release_slot_locked(*slot);
  return Status::Ok();
}

StatusOr<RequestId> Daemon::submit(SessionId id,
                                   const ScheduleRequest& request) {
  if (Status s = core::validate(request); !s.ok()) return s;
  std::lock_guard<std::mutex> l(mu_);
  Slot* slot = resolve_locked(id);
  if (slot == nullptr) {
    return Status(StatusCode::kNotFound, "unknown or stale session");
  }
  PendingRequest pr;
  pr.id = next_request_id_++;
  if (request.jobs != nullptr) {
    pr.seqs.push_back(*request.jobs);
  } else if (request.sequences != nullptr) {
    pr.seqs = *request.sequences;
  } else {
    pr.stream = request.stream;
  }
  pr.processors =
      request.processors > 0 ? request.processors : slot->cfg.processors;
  pr.backfill = request.backfill;
  pr.chunk_jobs = request.chunk_jobs;
  pr.submitted = std::chrono::steady_clock::now();
  const RequestId rid{pr.id};
  inflight_.insert(pr.id);
  slot->queue.push_back(std::move(pr));
  ++queued_requests_;
  ++stats_.requests_submitted;
  if (!slot->active && !slot->ready) {
    slot->ready = true;
    ready_.push_back(slot->index);
  }
  work_cv_.notify_one();
  return rid;
}

Status Daemon::try_take(RequestId id, Completion* out) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = completions_.find(id.value);
  if (it != completions_.end()) {
    *out = std::move(it->second);
    completions_.erase(it);
    return Status::Ok();
  }
  if (inflight_.count(id.value) != 0) {
    return Status(StatusCode::kUnavailable, "request pending");
  }
  return Status(StatusCode::kNotFound, "unknown request id");
}

Status Daemon::wait(RequestId id, Completion* out) {
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    auto it = completions_.find(id.value);
    if (it != completions_.end()) {
      *out = std::move(it->second);
      completions_.erase(it);
      return Status::Ok();
    }
    if (inflight_.count(id.value) == 0) {
      return Status(StatusCode::kNotFound, "unknown request id");
    }
    if (!started_) {
      // Nothing will ever complete this request — refuse to hang.
      return Status(StatusCode::kFailedPrecondition,
                    "no dispatcher running; start() or drain() first");
    }
    done_cv_.wait(l);
  }
}

Status Daemon::schedule(SessionId id, const ScheduleRequest& request,
                        ScheduleResult* out) {
  StatusOr<RequestId> rid = submit(id, request);
  if (!rid.ok()) return rid.status();
  Completion c;
  for (;;) {
    bool background;
    {
      std::lock_guard<std::mutex> l(mu_);
      background = started_;
    }
    if (background) {
      Status s = wait(rid.value(), &c);
      if (s.code() == StatusCode::kFailedPrecondition) continue;  // stop()ed
      if (!s.ok()) return s;
      break;
    }
    if (StatusOr<std::size_t> d = drain(); !d.ok()) {
      // A dispatcher started between the check and the drain; retry.
      continue;
    }
    Status s = try_take(rid.value(), &c);
    if (s.code() == StatusCode::kUnavailable) {
      // A concurrent drainer admitted our request; let it finish.
      std::this_thread::yield();
      continue;
    }
    if (!s.ok()) return s;
    break;
  }
  if (!c.status.ok()) return c.status;
  *out = std::move(c.result);
  return Status::Ok();
}

StatusOr<std::size_t> Daemon::drain() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (started_) {
      return Status(StatusCode::kFailedPrecondition,
                    "background dispatcher owns execution; stop() first");
    }
  }
  std::lock_guard<std::mutex> dl(dispatch_mu_);
  return run_until_idle();
}

void Daemon::start() {
  std::lock_guard<std::mutex> l(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!started_) return;
    stop_ = true;
    work_cv_.notify_all();
  }
  dispatcher_.join();
  {
    std::lock_guard<std::mutex> l(mu_);
    started_ = false;
    stop_ = false;
    // Waiters blocked on an in-flight id must re-check and bail out
    // instead of sleeping on a daemon that no longer dispatches.
    done_cv_.notify_all();
  }
}

std::size_t Daemon::live_sessions() const {
  std::lock_guard<std::mutex> l(mu_);
  return stats_.live_sessions;
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> l(mu_);
  DaemonStats out = stats_;
  out.episodes = episodes_.load(std::memory_order_relaxed);
  out.decisions = decisions_.load(std::memory_order_relaxed);
  out.forwards = forwards_.load(std::memory_order_relaxed);
  out.forward_windows = forward_windows_.load(std::memory_order_relaxed);
  return out;
}

void Daemon::dispatcher_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> l(mu_);
      work_cv_.wait(l, [this] { return stop_ || queued_requests_ > 0; });
      if (stop_) return;
    }
    std::lock_guard<std::mutex> dl(dispatch_mu_);
    run_until_idle();
  }
}

std::size_t Daemon::run_until_idle() {
  run_completed_ = 0;
  for (;;) {
    admit_ready_sessions();
    if (!any_active()) break;
    step_active_once();
  }
  return run_completed_;
}

bool Daemon::any_active() const {
  for (const auto& bucket : active_by_policy_) {
    if (!bucket.empty()) return true;
  }
  return false;
}

void Daemon::admit_ready_sessions() {
  admit_scratch_.clear();
  {
    std::lock_guard<std::mutex> l(mu_);
    if (active_by_policy_.size() < policies_.size()) {
      active_by_policy_.resize(policies_.size());
    }
    while (!ready_.empty()) {
      Slot* slot = slots_[ready_.front()].get();
      ready_.pop_front();
      slot->ready = false;
      if (!slot->live || slot->closing || slot->active ||
          slot->queue.empty()) {
        continue;
      }
      slot->current = std::move(slot->queue.front());
      slot->queue.pop_front();
      --queued_requests_;
      slot->seq_index = 0;
      slot->partial.runs.clear();
      slot->policy = policies_[slot->cfg.policy];
      slot->active = true;
      admit_scratch_.push_back(slot);
    }
  }
  for (Slot* slot : admit_scratch_) {
    if (activate(*slot)) {
      active_by_policy_[slot->cfg.policy].push_back(slot);
    }
  }
}

bool Daemon::activate(Slot& slot) {
  const std::size_t total =
      slot.current.stream != nullptr ? 1 : slot.current.seqs.size();
  while (slot.seq_index < total) {
    try {
      slot.env->reconfigure(
          slot.current.processors,
          sim::EnvConfig{slot.current.backfill, sim::kMaxObservable});
      if (slot.current.stream != nullptr) {
        slot.env->reset(*slot.current.stream, slot.current.chunk_jobs);
      } else {
        slot.env->reset(slot.current.seqs[slot.seq_index]);
      }
    } catch (const std::exception& e) {
      finish_request(slot, Status(StatusCode::kInvalidArgument, e.what()));
      return false;
    }
    episodes_.fetch_add(1, std::memory_order_relaxed);
    if (!slot.env->done()) return true;
    // Empty episode: nothing to decide, record and move on.
    slot.partial.runs.push_back(slot.env->result());
    ++slot.seq_index;
  }
  finish_request(slot, Status::Ok());
  return false;
}

void Daemon::step_active_once() {
  std::uint64_t stepped = 0;
  for (auto& bucket : active_by_policy_) {
    if (bucket.empty()) continue;
    const rl::Policy& policy = *bucket.front()->policy;
    std::size_t write = 0;
    for (std::size_t g = 0; g < bucket.size(); g += batch_) {
      const std::size_t n = std::min(batch_, bucket.size() - g);
      for (std::size_t w = 0; w < n; ++w) {
        lane_[w] = bucket[g + w];
        builder_.build_into(*lane_[w]->env, obs_[w]);
        obs_ptr_[w] = &obs_[w];
      }
      rl::batched_argmax(policy, obs_ptr_.data(), n, logits_.data(),
                         actions_.data());
      forwards_.fetch_add(1, std::memory_order_relaxed);
      forward_windows_.fetch_add(n, std::memory_order_relaxed);
      for (std::size_t w = 0; w < n; ++w) {
        Slot* slot = lane_[w];
        bool done;
        try {
          slot->env->step(actions_[w]);
          done = slot->env->done();
        } catch (const std::exception& e) {
          // Streamed refill rejected mid-episode (e.g. out-of-order
          // submits): the request fails, the env resets on next use.
          finish_request(*slot,
                         Status(StatusCode::kInvalidArgument, e.what()));
          continue;
        }
        ++stepped;
        if (!done) {
          bucket[write++] = slot;
          continue;
        }
        slot->partial.runs.push_back(slot->env->result());
        ++slot->seq_index;
        if (activate(*slot)) bucket[write++] = slot;
      }
    }
    bucket.resize(write);
  }
  decisions_.fetch_add(stepped, std::memory_order_relaxed);
}

void Daemon::finish_request(Slot& slot, Status status) {
  std::lock_guard<std::mutex> l(mu_);
  complete_locked(slot.current.id, slot.current.submitted, std::move(status),
                  std::move(slot.partial));
  slot.partial = ScheduleResult{};
  slot.current = PendingRequest{};  // drop the owned job copies now
  slot.active = false;
  slot.policy = nullptr;
  ++run_completed_;
  if (slot.closing) {
    release_slot_locked(slot);
    return;
  }
  if (!slot.queue.empty() && !slot.ready) {
    slot.ready = true;
    ready_.push_back(slot.index);
  }
}

void Daemon::release_slot_locked(Slot& slot) {
  env_pool_.push_back(std::move(slot.env));
  slot.live = false;
  slot.closing = false;
  slot.active = false;
  slot.ready = false;
  ++slot.gen;
  free_slots_.push_back(slot.index);
  ++stats_.sessions_destroyed;
  --stats_.live_sessions;
}

void Daemon::complete_locked(std::uint64_t id,
                             std::chrono::steady_clock::time_point submitted,
                             Status status, ScheduleResult result) {
  Completion c;
  c.latency_seconds = seconds_since(submitted);
  const bool cancelled = status.code() == StatusCode::kCancelled;
  const bool ok = status.ok();
  c.status = std::move(status);
  c.result = std::move(result);
  inflight_.erase(id);
  completions_.emplace(id, std::move(c));
  if (cancelled) {
    ++stats_.requests_cancelled;
  } else {
    ++stats_.requests_completed;
    if (!ok) ++stats_.requests_failed;
  }
  done_cv_.notify_all();
}

Daemon::Slot* Daemon::resolve_locked(SessionId id) {
  if (id.index >= slots_.size()) return nullptr;
  Slot* slot = slots_[id.index].get();
  if (!slot->live || slot->closing || slot->gen != id.gen) return nullptr;
  return slot;
}

}  // namespace rlsched::serve
