#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "rl/batch_eval.hpp"

namespace rlsched::serve {

using core::ScheduleRequest;
using core::ScheduleResult;
using core::Status;
using core::StatusCode;
using core::StatusOr;

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Retry bound for schedule()'s submit-and-wait loop. Each retry requires
/// losing a race against a dispatcher lifecycle transition (start(),
/// stop(), or a concurrent drain()), so normal operation never takes more
/// than one; the bound exists so adversarial lifecycle churn resolves to a
/// terminal Status instead of a busy spin.
constexpr int kScheduleAttempts = 8;
}  // namespace

Daemon::Daemon(DaemonConfig cfg)
    : batch_(cfg.runtime.resolved().batch), max_sessions_(cfg.max_sessions) {
  const std::size_t n = cfg.dispatchers == 0 ? 1 : cfg.dispatchers;
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = s;
    shard->obs.resize(batch_);
    shard->obs_ptr.resize(batch_);
    shard->logits.resize(batch_ * rl::kMaxObservable);
    shard->actions.resize(batch_);
    shard->lane.resize(batch_);
    shards_.push_back(std::move(shard));
  }
}

Daemon::~Daemon() { stop(); }

std::uint32_t Daemon::register_policy(const rl::Policy& policy) {
  std::lock_guard<std::mutex> l(mu_);
  // Batch scratch grows once, up front, so dispatch never allocates it.
  policy.reserve_batch(batch_);
  policies_.push_back(&policy);
  return static_cast<std::uint32_t>(policies_.size() - 1);
}

void Daemon::set_completion_hook(CompletionHook hook, void* ctx) {
  std::lock_guard<std::mutex> l(mu_);
  completion_hook_ = hook;
  completion_hook_ctx_ = ctx;
}

StatusOr<SessionId> Daemon::create_session(const SessionConfig& cfg) {
  std::lock_guard<std::mutex> l(mu_);
  if (cfg.processors <= 0) {
    return Status(StatusCode::kInvalidArgument,
                  "session processors must be >= 1");
  }
  if (cfg.policy >= policies_.size()) {
    return Status(StatusCode::kNotFound, "unknown policy id");
  }
  if (stats_.live_sessions >= max_sessions_) {
    return Status(StatusCode::kResourceExhausted, "session table full");
  }
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::make_unique<Slot>());
    slots_.back()->index = index;
  }
  Slot& slot = *slots_[index];
  slot.live = true;
  slot.closing = false;
  slot.active = false;
  slot.ready = false;
  slot.cfg = cfg;
  // No env yet: it attaches at admit and returns to the pool when the
  // session idles, so a table of 100k mostly-idle sessions costs slots,
  // not simulators.
  ++stats_.sessions_created;
  ++stats_.live_sessions;
  return SessionId{index, slot.gen};
}

Status Daemon::destroy_session(SessionId id) {
  std::lock_guard<std::mutex> l(mu_);
  Slot* slot = resolve_locked(id);
  if (slot == nullptr) {
    return Status(StatusCode::kNotFound, "unknown or stale session");
  }
  Shard& shard = *shards_[shard_of(slot->cfg.policy)];
  for (PendingRequest& r : slot->queue) {
    complete_locked(r.id, r.submitted,
                    Status(StatusCode::kCancelled, "session destroyed"),
                    ScheduleResult{});
    --shard.queued;
  }
  slot->queue.clear();
  if (slot->active) {
    // The owning shard has the episode in flight; it delivers the result
    // and releases the slot when the request finishes.
    slot->closing = true;
    return Status::Ok();
  }
  release_slot_locked(*slot);
  return Status::Ok();
}

StatusOr<RequestId> Daemon::submit(SessionId id,
                                   const ScheduleRequest& request) {
  if (Status s = core::validate(request); !s.ok()) return s;
  std::lock_guard<std::mutex> l(mu_);
  Slot* slot = resolve_locked(id);
  if (slot == nullptr) {
    return Status(StatusCode::kNotFound, "unknown or stale session");
  }
  PendingRequest pr;
  pr.id = next_request_id_++;
  if (request.jobs != nullptr) {
    pr.seqs.push_back(*request.jobs);
  } else if (request.sequences != nullptr) {
    pr.seqs = *request.sequences;
  } else {
    pr.stream = request.stream;
  }
  pr.processors =
      request.processors > 0 ? request.processors : slot->cfg.processors;
  pr.backfill = request.backfill;
  pr.chunk_jobs = request.chunk_jobs;
  pr.submitted = std::chrono::steady_clock::now();
  const RequestId rid{pr.id};
  inflight_.insert(pr.id);
  slot->queue.push_back(std::move(pr));
  Shard& shard = *shards_[shard_of(slot->cfg.policy)];
  ++shard.queued;
  ++stats_.requests_submitted;
  if (!slot->active && !slot->ready) {
    slot->ready = true;
    shard.ready.push_back(slot->index);
  }
  shard.work_cv.notify_one();
  return rid;
}

Status Daemon::try_take(RequestId id, Completion* out) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = completions_.find(id.value);
  if (it != completions_.end()) {
    *out = std::move(it->second);
    completions_.erase(it);
    return Status::Ok();
  }
  if (inflight_.count(id.value) != 0) {
    return Status(StatusCode::kUnavailable, "request pending");
  }
  return Status(StatusCode::kNotFound, "unknown request id");
}

Status Daemon::wait(RequestId id, Completion* out) {
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    auto it = completions_.find(id.value);
    if (it != completions_.end()) {
      *out = std::move(it->second);
      completions_.erase(it);
      return Status::Ok();
    }
    if (inflight_.count(id.value) == 0) {
      return Status(StatusCode::kNotFound, "unknown request id");
    }
    if (!started_ && active_drainers_ == 0) {
      // Nothing will ever complete this request — refuse to hang.
      return Status(StatusCode::kFailedPrecondition,
                    "no dispatcher running; start() or drain() first");
    }
    done_cv_.wait(l);
  }
}

Status Daemon::schedule(SessionId id, const ScheduleRequest& request,
                        ScheduleResult* out) {
  StatusOr<RequestId> rid = submit(id, request);
  if (!rid.ok()) return rid.status();
  Completion c;
  Status s(StatusCode::kUnavailable, "");
  for (int attempt = 0; attempt < kScheduleAttempts; ++attempt) {
    // wait() blocks whenever a background dispatcher OR a concurrent
    // drain()er can complete the request; kFailedPrecondition means
    // nobody can, so this thread serves the queue itself.
    s = wait(rid.value(), &c);
    if (s.code() != StatusCode::kFailedPrecondition) break;
    if (StatusOr<std::size_t> d = drain(); !d.ok()) {
      continue;  // a background dispatcher start()ed mid-race; re-wait
    }
    s = try_take(rid.value(), &c);
    if (s.code() != StatusCode::kUnavailable) break;
    // A concurrent drainer admitted the request between our wait() and
    // drain(); the next wait() blocks on that drainer instead of spinning.
  }
  if (s.code() == StatusCode::kFailedPrecondition ||
      s.code() == StatusCode::kUnavailable) {
    // Terminal: every retry lost a lifecycle race. The request stays
    // submitted — the caller can poll try_take()/wait() once a dispatcher
    // settles.
    return Status(StatusCode::kUnavailable,
                  "dispatcher lifecycle raced submit-and-wait; result "
                  "still pending — poll try_take()/wait()");
  }
  if (!s.ok()) return s;
  if (!c.status.ok()) return c.status;
  *out = std::move(c.result);
  return Status::Ok();
}

StatusOr<std::size_t> Daemon::drain() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (started_) {
      return Status(StatusCode::kFailedPrecondition,
                    "background dispatcher owns execution; stop() first");
    }
    // While this drain runs, wait()ers may block on it instead of
    // refusing: it will complete anything admissible.
    ++active_drainers_;
  }
  std::size_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> dl(shard->dispatch_mu);
    total += run_until_idle(*shard);
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    --active_drainers_;
  }
  // Waiters blocked on this drain must re-check (their request may have
  // been served — or not, if it raced admission; they then drain
  // themselves).
  done_cv_.notify_all();
  return total;
}

void Daemon::start() {
  std::lock_guard<std::mutex> l(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { dispatcher_loop(*s); });
  }
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!started_) return;
    stop_ = true;
    for (auto& shard : shards_) shard->work_cv.notify_all();
  }
  for (auto& shard : shards_) shard->thread.join();
  {
    std::lock_guard<std::mutex> l(mu_);
    started_ = false;
    stop_ = false;
    // Waiters blocked on an in-flight id must re-check and bail out
    // instead of sleeping on a daemon that no longer dispatches.
    done_cv_.notify_all();
  }
}

std::size_t Daemon::live_sessions() const {
  std::lock_guard<std::mutex> l(mu_);
  return stats_.live_sessions;
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> l(mu_);
  DaemonStats out = stats_;
  out.episodes = episodes_.load(std::memory_order_relaxed);
  out.decisions = decisions_.load(std::memory_order_relaxed);
  out.forwards = forwards_.load(std::memory_order_relaxed);
  out.forward_windows = forward_windows_.load(std::memory_order_relaxed);
  return out;
}

void Daemon::dispatcher_loop(Shard& shard) {
  for (;;) {
    {
      std::unique_lock<std::mutex> l(mu_);
      shard.work_cv.wait(l, [&] { return stop_ || shard.queued > 0; });
      if (stop_) return;
    }
    std::lock_guard<std::mutex> dl(shard.dispatch_mu);
    run_until_idle(shard);
  }
}

std::size_t Daemon::run_until_idle(Shard& shard) {
  shard.run_completed = 0;
  for (;;) {
    admit_ready_sessions(shard);
    if (!any_active(shard)) break;
    step_active_once(shard);
  }
  return shard.run_completed;
}

bool Daemon::any_active(const Shard& shard) {
  for (const auto& bucket : shard.active_by_policy) {
    if (!bucket.empty()) return true;
  }
  return false;
}

void Daemon::admit_ready_sessions(Shard& shard) {
  shard.admit_scratch.clear();
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shard.active_by_policy.size() < policies_.size()) {
      shard.active_by_policy.resize(policies_.size());
    }
    while (!shard.ready.empty()) {
      Slot* slot = slots_[shard.ready.front()].get();
      shard.ready.pop_front();
      slot->ready = false;
      if (!slot->live || slot->closing || slot->active ||
          slot->queue.empty()) {
        continue;
      }
      // A recycled slot can leave a stale index in its OLD policy's shard
      // deque; admitting it here would drive the new tenant's policy from
      // the wrong thread. Its genuine entry lives in the right deque.
      if (shard_of(slot->cfg.policy) != shard.id) continue;
      slot->current = std::move(slot->queue.front());
      slot->queue.pop_front();
      --shard.queued;
      slot->seq_index = 0;
      slot->partial.runs.clear();
      slot->policy = policies_[slot->cfg.policy];
      if (!slot->env) {
        // Lazy attach: envs live only on ACTIVE sessions; the pool bounds
        // the fleet by concurrent activity, not table size.
        if (!env_pool_.empty()) {
          // Pooled env: reconfigure-at-activate + reset give bitwise the
          // same episodes as a freshly constructed env (test_serve_daemon
          // gates this) — only reserved capacity survives reuse.
          slot->env = std::move(env_pool_.back());
          env_pool_.pop_back();
        } else {
          slot->env = std::make_unique<sim::SchedulingEnv>(
              slot->cfg.processors);
        }
      }
      slot->active = true;
      shard.admit_scratch.push_back(slot);
    }
  }
  for (Slot* slot : shard.admit_scratch) {
    if (activate(shard, *slot)) {
      shard.active_by_policy[slot->cfg.policy].push_back(slot);
    }
  }
}

bool Daemon::activate(Shard& shard, Slot& slot) {
  const std::size_t total =
      slot.current.stream != nullptr ? 1 : slot.current.seqs.size();
  while (slot.seq_index < total) {
    try {
      slot.env->reconfigure(
          slot.current.processors,
          sim::EnvConfig{slot.current.backfill, sim::kMaxObservable});
      if (slot.current.stream != nullptr) {
        slot.env->reset(*slot.current.stream, slot.current.chunk_jobs);
      } else {
        slot.env->reset(slot.current.seqs[slot.seq_index]);
      }
    } catch (const std::exception& e) {
      finish_request(shard, slot,
                     Status(StatusCode::kInvalidArgument, e.what()));
      return false;
    }
    episodes_.fetch_add(1, std::memory_order_relaxed);
    if (!slot.env->done()) return true;
    // Empty episode: nothing to decide, record and move on.
    slot.partial.runs.push_back(slot.env->result());
    ++slot.seq_index;
  }
  finish_request(shard, slot, Status::Ok());
  return false;
}

void Daemon::step_active_once(Shard& shard) {
  std::uint64_t stepped = 0;
  for (auto& bucket : shard.active_by_policy) {
    if (bucket.empty()) continue;
    const rl::Policy& policy = *bucket.front()->policy;
    std::size_t write = 0;
    for (std::size_t g = 0; g < bucket.size(); g += batch_) {
      const std::size_t n = std::min(batch_, bucket.size() - g);
      for (std::size_t w = 0; w < n; ++w) {
        shard.lane[w] = bucket[g + w];
        shard.builder.build_into(*shard.lane[w]->env, shard.obs[w]);
        shard.obs_ptr[w] = &shard.obs[w];
      }
      rl::batched_argmax(policy, shard.obs_ptr.data(), n,
                         shard.logits.data(), shard.actions.data());
      forwards_.fetch_add(1, std::memory_order_relaxed);
      forward_windows_.fetch_add(n, std::memory_order_relaxed);
      for (std::size_t w = 0; w < n; ++w) {
        Slot* slot = shard.lane[w];
        bool done;
        try {
          slot->env->step(shard.actions[w]);
          done = slot->env->done();
        } catch (const std::exception& e) {
          // Streamed refill rejected mid-episode (e.g. out-of-order
          // submits): the request fails, the env resets on next use.
          finish_request(shard, *slot,
                         Status(StatusCode::kInvalidArgument, e.what()));
          continue;
        }
        ++stepped;
        if (!done) {
          bucket[write++] = slot;
          continue;
        }
        slot->partial.runs.push_back(slot->env->result());
        ++slot->seq_index;
        if (activate(shard, *slot)) bucket[write++] = slot;
      }
    }
    bucket.resize(write);
  }
  decisions_.fetch_add(stepped, std::memory_order_relaxed);
}

void Daemon::finish_request(Shard& shard, Slot& slot, Status status) {
  std::lock_guard<std::mutex> l(mu_);
  complete_locked(slot.current.id, slot.current.submitted, std::move(status),
                  std::move(slot.partial));
  slot.partial = ScheduleResult{};
  slot.current = PendingRequest{};  // drop the owned job copies now
  slot.active = false;
  slot.policy = nullptr;
  ++shard.run_completed;
  if (slot.closing) {
    release_slot_locked(slot);
    return;
  }
  if (!slot.queue.empty()) {
    if (!slot.ready) {
      slot.ready = true;
      shard.ready.push_back(slot.index);
    }
  } else if (slot.env) {
    // Session idles: detach its env so the table scales past the pool.
    env_pool_.push_back(std::move(slot.env));
  }
}

void Daemon::release_slot_locked(Slot& slot) {
  if (slot.env) env_pool_.push_back(std::move(slot.env));
  slot.live = false;
  slot.closing = false;
  slot.active = false;
  slot.ready = false;
  ++slot.gen;
  free_slots_.push_back(slot.index);
  ++stats_.sessions_destroyed;
  --stats_.live_sessions;
}

void Daemon::complete_locked(std::uint64_t id,
                             std::chrono::steady_clock::time_point submitted,
                             Status status, ScheduleResult result) {
  Completion c;
  c.latency_seconds = seconds_since(submitted);
  const bool cancelled = status.code() == StatusCode::kCancelled;
  const bool ok = status.ok();
  c.status = std::move(status);
  c.result = std::move(result);
  inflight_.erase(id);
  completions_.emplace(id, std::move(c));
  if (cancelled) {
    ++stats_.requests_cancelled;
  } else {
    ++stats_.requests_completed;
    if (!ok) ++stats_.requests_failed;
  }
  done_cv_.notify_all();
  // Last, with mu_ held: the hook must only queue-and-wake (see header).
  if (completion_hook_ != nullptr) completion_hook_(completion_hook_ctx_, id);
}

Daemon::Slot* Daemon::resolve_locked(SessionId id) {
  if (id.index >= slots_.size()) return nullptr;
  Slot* slot = slots_[id.index].get();
  if (!slot->live || slot->closing || slot->gen != id.gen) return nullptr;
  return slot;
}

}  // namespace rlsched::serve
