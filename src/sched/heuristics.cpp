#include "sched/heuristics.hpp"

#include <algorithm>
#include <cmath>

namespace rlsched::sched {

namespace {
using trace::Job;

double fcfs(const Job& j, double) { return j.submit_time; }

double sjf(const Job& j, double) { return j.requested_time; }

double wfp3(const Job& j, double now) {
  const double wait = std::max(now - j.submit_time, 0.0);
  const double r = wait / std::max(j.requested_time, 1.0);
  return -(r * r * r) * static_cast<double>(j.requested_procs);
}

double unicep(const Job& j, double now) {
  const double wait = std::max(now - j.submit_time, 0.0);
  const double denom =
      std::log2(std::max(2.0, static_cast<double>(j.requested_procs))) *
      std::max(j.requested_time, 1.0);
  return -wait / denom;
}

double f1(const Job& j, double) {
  return std::log10(std::max(j.requested_time, 1.0)) *
             static_cast<double>(j.requested_procs) +
         870.0 * std::log10(std::max(j.submit_time, 1.0));
}
}  // namespace

sim::PriorityFn fcfs_priority() { return &fcfs; }
sim::PriorityFn sjf_priority() { return &sjf; }
sim::PriorityFn wfp3_priority() { return &wfp3; }
sim::PriorityFn unicep_priority() { return &unicep; }
sim::PriorityFn f1_priority() { return &f1; }

const std::vector<Heuristic>& all_heuristics() {
  using sim::PriorityKind;
  static const std::vector<Heuristic> heuristics = {
      {"FCFS", fcfs_priority(), PriorityKind::TimeInvariant},
      {"WFP3", wfp3_priority(), PriorityKind::TimeVarying},
      {"UNICEP", unicep_priority(), PriorityKind::TimeVarying},
      {"SJF", sjf_priority(), PriorityKind::TimeInvariant},
      {"F1", f1_priority(), PriorityKind::TimeInvariant},
  };
  return heuristics;
}

}  // namespace rlsched::sched
