// Bounded-window exact scheduler — see include/sched/exact.hpp for the
// model, the admissibility arguments, and the determinism contract.

#include "sched/exact.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace rlsched::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* exact_objective_name(ExactObjective o) {
  switch (o) {
    case ExactObjective::TotalBoundedSlowdown:
      return "total_bounded_slowdown";
    case ExactObjective::Makespan:
      return "makespan";
  }
  return "?";
}

ExactWindowScheduler::ExactWindowScheduler(ExactConfig cfg) : cfg_(cfg) {
  if (cfg_.window == 0) cfg_.window = 1;
  if (cfg_.window > kMaxExactWindow) cfg_.window = kMaxExactWindow;
}

void ExactWindowScheduler::reserve(std::size_t max_releases) {
  rel_end_.reserve(max_releases);
  rel_procs_.reserve(max_releases);
  rel_cum_.reserve(max_releases + 1);
}

void ExactWindowScheduler::load(const WindowProblem& p) {
  if (p.jobs.size() > kMaxExactWindow) {
    throw std::invalid_argument("ExactWindowScheduler: window too large");
  }
  n_ = p.jobs.size();
  now_ = p.now;
  total_procs_ = p.processors > 0 ? p.processors : 1;

  rel_end_.clear();
  rel_procs_.clear();
  rel_cum_.clear();
  rel_cum_.push_back(p.free > 0 ? p.free : 0);
  double prev = -kInf;
  for (const Release& r : p.releases) {
    if (r.end < prev) {
      throw std::invalid_argument("ExactWindowScheduler: releases unsorted");
    }
    prev = r.end;
    rel_end_.push_back(r.end);
    rel_procs_.push_back(r.procs);
    rel_cum_.push_back(rel_cum_.back() + r.procs);
  }
  free_ = rel_cum_.front();

  for (std::size_t k = 0; k < n_; ++k) {
    const trace::Job& j = p.jobs[k];
    submit_[k] = j.submit_time;
    run_[k] = j.run_time;
    // Defensive clamp to the env's prepare() invariant so a hand-built
    // window can never spin the staircase probe forever.
    std::int32_t procs = j.requested_procs;
    if (procs < 1) procs = 1;
    if (procs > total_procs_) procs = total_procs_;
    procs_[k] = procs;
  }
}

std::int64_t ExactWindowScheduler::cap_at(double t, std::size_t depth) const {
  // Releases with end <= t have fired (Timeline::pop_until semantics).
  const std::size_t fired = static_cast<std::size_t>(
      std::upper_bound(rel_end_.begin(), rel_end_.end(), t) -
      rel_end_.begin());
  std::int64_t cap = rel_cum_[fired];
  for (std::size_t i = 0; i < depth; ++i) {
    if (placed_end_[i] > t) cap -= placed_procs_[i];
  }
  return cap;
}

double ExactWindowScheduler::earliest_start(double frontier,
                                            std::int32_t procs,
                                            std::size_t depth) {
  std::int64_t cap = cap_at(frontier, depth);
  if (cap >= procs) return frontier;

  // Capacity is a nondecreasing step function for t >= frontier (all
  // placements start at or before the frontier): it only jumps upward, at
  // release ends and placed-job ends. Merge-walk those event times.
  std::size_t m = 0;
  for (std::uint32_t i = 0; i < depth; ++i) {
    if (placed_end_[i] > frontier) scratch_[m++] = i;
  }
  // Insertion sort by end time: m <= kMaxExactWindow.
  for (std::size_t a = 1; a < m; ++a) {
    const std::uint32_t v = scratch_[a];
    std::size_t b = a;
    while (b > 0 && placed_end_[scratch_[b - 1]] > placed_end_[v]) {
      scratch_[b] = scratch_[b - 1];
      --b;
    }
    scratch_[b] = v;
  }

  std::size_t ri = static_cast<std::size_t>(
      std::upper_bound(rel_end_.begin(), rel_end_.end(), frontier) -
      rel_end_.begin());
  std::size_t si = 0;
  while (ri < rel_end_.size() || si < m) {
    double t;
    if (si >= m) {
      t = rel_end_[ri];
    } else if (ri >= rel_end_.size()) {
      t = placed_end_[scratch_[si]];
    } else {
      t = std::min(rel_end_[ri], placed_end_[scratch_[si]]);
    }
    // Absorb every event at exactly t before testing the capacity.
    while (ri < rel_end_.size() && rel_end_[ri] == t) {
      cap += rel_procs_[ri];
      ++ri;
    }
    while (si < m && placed_end_[scratch_[si]] == t) {
      cap += placed_procs_[scratch_[si]];
      ++si;
    }
    if (cap >= procs) return t;
  }
  return kInf;  // procs > machine size: clamped away upstream
}

double ExactWindowScheduler::area_horizon(double frontier, double work,
                                          std::size_t depth) {
  if (work <= 0.0) return frontier;
  std::int64_t cap = cap_at(frontier, depth);

  std::size_t m = 0;
  for (std::uint32_t i = 0; i < depth; ++i) {
    if (placed_end_[i] > frontier) scratch_[m++] = i;
  }
  for (std::size_t a = 1; a < m; ++a) {
    const std::uint32_t v = scratch_[a];
    std::size_t b = a;
    while (b > 0 && placed_end_[scratch_[b - 1]] > placed_end_[v]) {
      scratch_[b] = scratch_[b - 1];
      --b;
    }
    scratch_[b] = v;
  }

  std::size_t ri = static_cast<std::size_t>(
      std::upper_bound(rel_end_.begin(), rel_end_.end(), frontier) -
      rel_end_.begin());
  std::size_t si = 0;
  double t = frontier;
  double area = 0.0;
  while (ri < rel_end_.size() || si < m) {
    double e;
    if (si >= m) {
      e = rel_end_[ri];
    } else if (ri >= rel_end_.size()) {
      e = placed_end_[scratch_[si]];
    } else {
      e = std::min(rel_end_[ri], placed_end_[scratch_[si]]);
    }
    if (cap > 0) {
      const double gained = static_cast<double>(cap) * (e - t);
      if (area + gained >= work) {
        return t + (work - area) / static_cast<double>(cap);
      }
      area += gained;
    }
    t = e;
    while (ri < rel_end_.size() && rel_end_[ri] == e) {
      cap += rel_procs_[ri];
      ++ri;
    }
    while (si < m && placed_end_[scratch_[si]] == e) {
      cap += placed_procs_[scratch_[si]];
      ++si;
    }
  }
  // Past the last event the whole machine is free.
  if (cap <= 0) return kInf;
  return t + (work - area) / static_cast<double>(cap);
}

double ExactWindowScheduler::lower_bound(double frontier, std::uint32_t used,
                                         std::size_t depth) {
  // A full-vector bound evaluated with EXACTLY the leaf arithmetic
  // (objective_of_starts' index-order walk), placed jobs contributing
  // their actual term and unplaced jobs their earliest-start relaxation.
  // Each unplaced job probed alone against the staircase can only start
  // earlier than in any completion (competitors only consume capacity;
  // the staircase probe compares exact event times against exact integer
  // capacities, no rounding), and bounded slowdown / completion time are
  // monotone in start time — monotone also under floating rounding. A sum
  // (or max) of termwise-<= values in the same order is <=, so this bound
  // is BITWISE <= every leaf of the subtree: pruning at lb >= incumbent
  // is exactly the strict-< enumeration, ties included.
  if (cfg_.objective == ExactObjective::TotalBoundedSlowdown) {
    double lb = 0.0;
    for (std::uint32_t k = 0; k < n_; ++k) {
      const double s = (used & (1u << k))
                           ? start_[k]
                           : earliest_start(frontier, procs_[k], depth);
      lb += sim::bounded_slowdown(s - submit_[k], run_[k]);
    }
    return lb;
  }
  // Makespan: the same per-job relaxed max, refined by the
  // fractional-packing horizon — the remaining work area must fit under
  // the capacity profile from the frontier on, so the earliest horizon
  // with enough integrated free area lower-bounds the makespan. The
  // horizon involves divisions whose rounding is not direction-safe, so
  // it is nudged down by a margin far above the walk's accumulated error
  // (admissibility is preserved: lowering a lower bound is always sound).
  double lb = 0.0;
  double work = 0.0;
  bool any = false;
  for (std::uint32_t k = 0; k < n_; ++k) {
    double s;
    if (used & (1u << k)) {
      s = start_[k];
    } else {
      s = earliest_start(frontier, procs_[k], depth);
      any = true;
      work += static_cast<double>(procs_[k]) * run_[k];
    }
    const double end = (s + run_[k]) - now_;
    if (end > lb) lb = end;
  }
  if (any) {
    double h = area_horizon(frontier, work, depth) - now_;
    h -= (std::fabs(h) + 1.0) * 1e-12;
    if (h > lb) lb = h;
  }
  return lb;
}

double ExactWindowScheduler::objective_of_starts() const {
  if (cfg_.objective == ExactObjective::TotalBoundedSlowdown) {
    double sum = 0.0;
    for (std::size_t k = 0; k < n_; ++k) {
      sum += sim::bounded_slowdown(start_[k] - submit_[k], run_[k]);
    }
    return sum;
  }
  double mk = 0.0;
  for (std::size_t k = 0; k < n_; ++k) {
    const double end = (start_[k] + run_[k]) - now_;
    if (end > mk) mk = end;
  }
  return mk;
}

void ExactWindowScheduler::dfs(std::size_t depth, double frontier) {
  if (depth == n_) {
    // Leaves re-evaluate from the start vector in index order (see
    // objective_of_starts): tied placements compare bitwise equal, so the
    // strict-< update keeps the lexicographically first optimum exactly
    // as a plain enumeration would.
    const double obj = objective_of_starts();
    if (!best_found_ || obj < best_obj_) {
      best_found_ = true;
      best_obj_ = obj;
      std::copy(perm_.begin(), perm_.begin() + n_, best_.begin());
    }
    return;
  }
  for (std::uint32_t j = 0; j < n_; ++j) {
    const std::uint32_t bit = 1u << j;
    if (used_ & bit) continue;
    // The budget is only consulted once an incumbent exists: the first
    // DFS descent always completes, so the fallback is a full schedule.
    if (best_found_ && cfg_.max_nodes != 0 && nodes_ >= cfg_.max_nodes) {
      out_of_budget_ = true;
      return;
    }
    ++nodes_;
    const double s = earliest_start(frontier, procs_[j], depth);
    start_[j] = s;
    placed_end_[depth] = s + run_[j];
    placed_procs_[depth] = procs_[j];
    perm_[depth] = j;
    used_ |= bit;
    bool prune = false;
    if (best_found_) {
      // The bound is bitwise <= every leaf below (see lower_bound), so
      // lb >= incumbent prunes exactly the subtrees a strict-<
      // enumeration would not take an update from — the incumbent stays
      // the lexicographically-first minimum, ulp ties included.
      const double lb = lower_bound(s, used_, depth + 1);
      prune = !(lb < best_obj_);
    }
    if (!prune) dfs(depth + 1, s);
    used_ &= ~bit;
    if (out_of_budget_) return;
  }
}

WindowSolution ExactWindowScheduler::solve(const WindowProblem& p) {
  load(p);
  WindowSolution sol;
  sol.count = static_cast<std::uint32_t>(n_);
  if (n_ == 0) {
    sol.proved = true;
    return sol;
  }
  nodes_ = 0;
  used_ = 0;
  best_found_ = false;
  out_of_budget_ = false;
  best_obj_ = 0.0;
  sol.bound = lower_bound(now_, 0u, 0);
  dfs(0, now_);
  std::copy(best_.begin(), best_.begin() + n_, sol.order.begin());
  sol.objective = best_obj_;
  sol.proved = !out_of_budget_;
  sol.nodes = nodes_;
  return sol;
}

double ExactWindowScheduler::evaluate_order(
    const WindowProblem& p, std::span<const std::uint32_t> order) {
  load(p);
  if (order.size() != n_) {
    throw std::invalid_argument("evaluate_order: order length mismatch");
  }
  std::uint32_t seen = 0;
  for (const std::uint32_t j : order) {
    if (j >= n_ || (seen & (1u << j))) {
      throw std::invalid_argument("evaluate_order: not a permutation");
    }
    seen |= 1u << j;
  }
  double frontier = now_;
  for (std::size_t d = 0; d < n_; ++d) {
    const std::uint32_t j = order[d];
    const double s = earliest_start(frontier, procs_[j], d);
    start_[j] = s;
    placed_end_[d] = s + run_[j];
    placed_procs_[d] = procs_[j];
    frontier = s;
  }
  return objective_of_starts();
}

WindowSolution ExactWindowScheduler::evaluate_greedy(
    const WindowProblem& p, const sim::PriorityFn& priority) {
  load(p);
  WindowSolution sol;
  sol.count = static_cast<std::uint32_t>(n_);
  if (n_ == 0) return sol;
  sol.bound = lower_bound(now_, 0u, 0);

  // The env's serial decision loop without backfill: the clock at each
  // decision is the previous job's start time, scores are recomputed
  // there, and the strict-< scan lets the first (queue-order) minimum win.
  double frontier = now_;
  std::uint32_t used = 0;
  for (std::size_t d = 0; d < n_; ++d) {
    std::uint32_t pick = static_cast<std::uint32_t>(n_);
    double best_score = 0.0;
    for (std::uint32_t k = 0; k < n_; ++k) {
      if (used & (1u << k)) continue;
      const double score = priority(p.jobs[k], frontier);
      if (pick == n_ || score < best_score) {
        pick = k;
        best_score = score;
      }
    }
    const double s = earliest_start(frontier, procs_[pick], d);
    start_[pick] = s;
    placed_end_[d] = s + run_[pick];
    placed_procs_[d] = procs_[pick];
    sol.order[d] = pick;
    used |= 1u << pick;
    frontier = s;
  }
  sol.objective = objective_of_starts();
  return sol;
}

double ExactWindowScheduler::root_bound(const WindowProblem& p) {
  load(p);
  return lower_bound(now_, 0u, 0);
}

// ---------------------------------------------------------------------------
// ExactWindowPolicy — the solver as a sixth Heuristic-compatible baseline.

ExactWindowPolicy::ExactWindowPolicy(const sim::SchedulingEnv& env,
                                     ExactConfig cfg)
    : env_(&env), solver_(cfg) {
  const std::size_t procs = static_cast<std::size_t>(env.processors());
  prob_.releases.reserve(procs);
  prob_.jobs.reserve(kMaxExactWindow);
  solver_.reserve(procs);
}

bool ExactWindowPolicy::plan_live() const {
  const auto& jobs = env_->jobs();
  for (std::uint32_t k = 0; k < plan_len_; ++k) {
    if (plan_[k] < jobs.size() && !jobs[plan_[k]].scheduled()) return true;
  }
  return false;
}

void ExactWindowPolicy::maybe_replan() {
  if (plan_len_ != 0 && plan_live()) return;
  const auto win = env_->observable();
  plan_len_ = 0;
  if (win.empty()) return;
  const std::size_t m = std::min(solver_.config().window, win.size());

  prob_.now = env_->now();
  prob_.processors = env_->processors();
  prob_.free = env_->free_processors();
  prob_.releases.clear();
  for (const auto& c : env_->timeline().live()) {
    prob_.releases.push_back(Release{c.end, c.procs});
  }
  prob_.jobs.clear();
  const auto& jobs = env_->jobs();
  for (std::size_t k = 0; k < m; ++k) prob_.jobs.push_back(jobs[win[k]]);

  const WindowSolution sol = solver_.solve(prob_);
  plan_len_ = sol.count;
  for (std::uint32_t k = 0; k < sol.count; ++k) {
    plan_[k] = win[sol.order[k]];
  }
  stats_.solves += 1;
  stats_.proved += sol.proved ? 1u : 0u;
  stats_.nodes += sol.nodes;
  stats_.objective_sum += sol.objective;
  stats_.bound_sum += sol.bound;
}

double ExactWindowPolicy::rank(const trace::Job& job) {
  maybe_replan();
  const auto idx =
      static_cast<std::uint32_t>(&job - env_->jobs().data());
  for (std::uint32_t k = 0; k < plan_len_; ++k) {
    if (plan_[k] == idx) return static_cast<double>(k);
  }
  // Outside the plan: one large shared score; the scan's first-wins rule
  // resolves it in queue order, but a live plan entry always outranks it.
  return static_cast<double>(kMaxExactWindow) + 2.0;
}

sim::PriorityFn ExactWindowPolicy::priority() {
  return [this](const trace::Job& job, double) { return rank(job); };
}

std::size_t ExactWindowPolicy::next_action() {
  maybe_replan();
  const auto win = env_->observable();
  const auto& jobs = env_->jobs();
  for (std::uint32_t k = 0; k < plan_len_; ++k) {
    const std::uint32_t idx = plan_[k];
    if (idx >= jobs.size() || jobs[idx].scheduled()) continue;
    for (std::size_t pos = 0; pos < win.size(); ++pos) {
      if (win[pos] == idx) return pos;
    }
    break;  // plan head vanished from the window: rebuild below
  }
  plan_len_ = 0;
  maybe_replan();
  if (plan_len_ != 0) {
    for (std::size_t pos = 0; pos < win.size(); ++pos) {
      if (win[pos] == plan_[0]) return pos;
    }
  }
  return 0;
}

Heuristic exact_heuristic(ExactWindowPolicy& policy) {
  return Heuristic{"EXACT", policy.priority(), ExactWindowPolicy::kKind};
}

}  // namespace rlsched::sched
