#include "sim/env.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace rlsched::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::string metric_name(Metric m) {
  switch (m) {
    case Metric::BoundedSlowdown: return "bounded_slowdown";
    case Metric::Slowdown: return "slowdown";
    case Metric::WaitTime: return "wait_time";
    case Metric::Turnaround: return "turnaround";
    case Metric::Utilization: return "utilization";
    case Metric::FairBoundedSlowdown: return "fair_bounded_slowdown";
  }
  return "unknown";
}

int reward_sign(Metric m) { return m == Metric::Utilization ? 1 : -1; }

double RunResult::value(Metric m) const {
  switch (m) {
    case Metric::BoundedSlowdown: return avg_bounded_slowdown;
    case Metric::Slowdown: return avg_slowdown;
    case Metric::WaitTime: return avg_wait;
    case Metric::Turnaround: return avg_turnaround;
    case Metric::Utilization: return utilization;
    case Metric::FairBoundedSlowdown: return max_user_bounded_slowdown;
  }
  return 0.0;
}

bool bitwise_equal(const RunResult& a, const RunResult& b) {
  const double fa[] = {a.avg_bounded_slowdown, a.avg_slowdown, a.avg_wait,
                       a.avg_turnaround,       a.utilization,  a.makespan,
                       a.max_user_bounded_slowdown};
  const double fb[] = {b.avg_bounded_slowdown, b.avg_slowdown, b.avg_wait,
                       b.avg_turnaround,       b.utilization,  b.makespan,
                       b.max_user_bounded_slowdown};
  static_assert(sizeof(RunResult) ==
                    sizeof(std::size_t) + 7 * sizeof(double),
                "new RunResult field? add it to bitwise_equal");
  return a.jobs == b.jobs && std::memcmp(fa, fb, sizeof(fa)) == 0;
}

std::vector<std::pair<int, double>> per_user_bounded_slowdown(
    const std::vector<trace::Job>& jobs) {
  // Accumulate unsorted, then one stable sort + grouped aggregation: the
  // per-user addition order stays job order (stable sort preserves it), so
  // the averages match the old incremental sorted-insert bit for bit
  // without its O(users) insert per job.
  std::vector<std::pair<int, double>> bslds;  // (user, job bsld), job order
  bslds.reserve(jobs.size());
  for (const trace::Job& j : jobs) {
    if (!j.scheduled()) continue;
    bslds.emplace_back(j.user, bounded_slowdown(j.wait_time(), j.run_time));
  }
  std::stable_sort(bslds.begin(), bslds.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<std::pair<int, double>> out;
  std::size_t i = 0;
  while (i < bslds.size()) {
    const int user = bslds[i].first;
    double sum = 0.0;
    std::size_t count = 0;
    for (; i < bslds.size() && bslds[i].first == user; ++i) {
      sum += bslds[i].second;
      ++count;
    }
    out.emplace_back(user, sum / static_cast<double>(count));
  }
  return out;
}

SchedulingEnv::SchedulingEnv(int processors, EnvConfig cfg) {
  // One validation path for fresh and pooled (reconfigure()d) envs.
  reconfigure(processors, cfg);
}

void SchedulingEnv::reset(const std::vector<trace::Job>& jobs) {
  jobs_ = jobs;
  prepare();
}

void SchedulingEnv::reset(std::vector<trace::Job>&& jobs) {
  jobs_ = std::move(jobs);
  prepare();
}

void SchedulingEnv::begin_episode() {
  free_ = processors_;
  next_arrival_ = 0;
  started_ = 0;
  dead_in_buffer_ = 0;
  key_fn_ = nullptr;
  sum_bsld_ = sum_sld_ = sum_wait_ = sum_turn_ = 0.0;
  busy_area_ = 0.0;
  now_ = jobs_.empty() ? 0.0 : jobs_.front().submit_time;
  min_submit_ = now_;
  max_end_ = now_;
  arrive_until_now();
  ensure_pending();
}

void SchedulingEnv::prepare() {
  source_ = nullptr;
  drained_ = true;
  const auto by_submit = [](const trace::Job& a, const trace::Job& b) {
    return a.submit_time < b.submit_time;
  };
  // Trace sequences arrive already submit-ordered; only sort (stable_sort
  // heap-allocates its merge buffer) when a caller hands us raw jobs. This
  // keeps reset()-per-episode allocation-free for the rollout workers.
  if (!std::is_sorted(jobs_.begin(), jobs_.end(), by_submit)) {
    std::stable_sort(jobs_.begin(), jobs_.end(), by_submit);
  }
  const std::size_t n = jobs_.size();
  total_jobs_ = n;
  pending_.reset(n, cfg_.max_observable, cfg_.backfill);
  timeline_.reset(n);

  user_ids_.clear();
  user_ids_.reserve(n);
  for (trace::Job& j : jobs_) {
    j.reset_schedule_state();
    j.requested_procs = std::clamp(j.requested_procs, 1, processors_);
    if (j.requested_time < j.run_time) j.requested_time = j.run_time;
    user_ids_.push_back(j.user);
  }
  std::sort(user_ids_.begin(), user_ids_.end());
  user_ids_.erase(std::unique(user_ids_.begin(), user_ids_.end()),
                  user_ids_.end());
  // Reserve for the worst case (every job a distinct user) so episodes with
  // MORE users than the last one cannot reallocate: reset()-reuse across
  // episodes — the per-worker pattern of parallel rollout collection — is
  // allocation-free once warmed.
  user_bsld_sum_.reserve(n);
  user_count_.reserve(n);
  user_bsld_sum_.assign(user_ids_.size(), 0.0);
  user_count_.assign(user_ids_.size(), 0);

  begin_episode();
}

void SchedulingEnv::reset(trace::JobSource& source, std::size_t chunk_jobs) {
  source_ = &source;
  chunk_jobs_ = std::max<std::size_t>(1, chunk_jobs);
  drained_ = false;
  total_jobs_ = 0;
  last_ingested_submit_ = -std::numeric_limits<double>::infinity();
  source.rewind();

  jobs_.clear();
  // Size the indexes for a couple of chunks; they grow amortized with the
  // BACKLOG (never the trace), preserving the O(backlog + chunk) memory
  // contract.
  pending_.reset(chunk_jobs_ * 2, cfg_.max_observable, cfg_.backfill);
  timeline_.reset(chunk_jobs_ * 2);
  // The user table is discovered incrementally as jobs stream in
  // (start_job's sorted insert); distinct users — not jobs — bound it.
  user_ids_.clear();
  user_bsld_sum_.clear();
  user_count_.clear();

  refill();
  begin_episode();
}

bool SchedulingEnv::refill() {
  if (drained_) return false;
  const std::size_t before = jobs_.size();
  const std::size_t got = source_->fetch(chunk_jobs_, jobs_);
  if (got == 0) {
    drained_ = true;
    return false;
  }
  total_jobs_ += got;
  // Same normalization prepare() applies to a materialized episode, so the
  // two ingestion paths feed the scheduler identical job values. Ordering
  // is the source's contract (prepare() sorts instead; a stream cannot);
  // the guard compares against the max submit EVER ingested, not the
  // buffer's tail — compaction may have recycled the latest arrival.
  for (std::size_t i = before; i < jobs_.size(); ++i) {
    trace::Job& j = jobs_[i];
    if (j.submit_time < last_ingested_submit_) {
      throw std::runtime_error(
          "JobSource delivered jobs out of submit order");
    }
    last_ingested_submit_ = j.submit_time;
    j.reset_schedule_state();
    j.requested_procs = std::clamp(j.requested_procs, 1, processors_);
    if (j.requested_time < j.run_time) j.requested_time = j.run_time;
  }
  return true;
}

void SchedulingEnv::maybe_compact() {
  // Amortized O(1) per job: compacting costs O(buffer) and only fires once
  // dead entries fill half of it (and at least a chunk's worth), so the
  // buffer length tracks backlog + chunk, never the trace.
  if (source_ == nullptr) return;
  if (dead_in_buffer_ < chunk_jobs_ || dead_in_buffer_ * 2 < jobs_.size()) {
    return;
  }
  compact();
}

void SchedulingEnv::compact() {
  remap_.assign(jobs_.size(), 0);
  std::size_t w = 0;
  std::size_t new_next = jobs_.size();
  for (std::size_t r = 0; r < jobs_.size(); ++r) {
    if (r == next_arrival_) new_next = w;
    if (jobs_[r].scheduled()) continue;  // started: recycle the slot
    remap_[r] = static_cast<std::uint32_t>(w);
    if (w != r) jobs_[w] = jobs_[r];
    ++w;
  }
  if (next_arrival_ >= jobs_.size()) new_next = w;
  next_arrival_ = new_next;
  pending_.remap_jobs(remap_);
  jobs_.resize(w);  // shrinks: capacity (and so peak RSS) is retained
  dead_in_buffer_ = 0;
}

void SchedulingEnv::enqueue(std::uint32_t idx) {
  const trace::Job& j = jobs_[idx];
  // The static key is computed AT ARRIVAL: PriorityKind::TimeInvariant
  // promises the same double at any clock, so this equals the reference
  // scan's decision-time evaluation bitwise.
  const double key = key_fn_ != nullptr ? (*key_fn_)(j, now_) : 0.0;
  pending_.push(idx, j.requested_procs, j.requested_time, key);
}

void SchedulingEnv::arrive_until_now() {
  for (;;) {
    while (next_arrival_ < jobs_.size() &&
           jobs_[next_arrival_].submit_time <= now_) {
      enqueue(static_cast<std::uint32_t>(next_arrival_));
      ++next_arrival_;
    }
    // Streaming: the next chunk may hold more jobs that have already
    // arrived by now_ — keep pulling until the buffer outruns the clock,
    // exactly matching the materialized admission set.
    if (next_arrival_ < jobs_.size() || drained_) break;
    if (!refill()) break;
  }
}

void SchedulingEnv::advance_one_event() {
  if (next_arrival_ == jobs_.size() && !drained_) {
    refill();  // the next arrival's time is needed to pick the next event
  }
  double t = kInf;
  if (!timeline_.empty()) t = timeline_.next_end();
  if (next_arrival_ < jobs_.size()) {
    t = std::min(t, jobs_[next_arrival_].submit_time);
  }
  if (t == kInf) return;  // nothing left to happen
  now_ = std::max(now_, t);
  free_ += timeline_.pop_until(now_);
  arrive_until_now();
}

void SchedulingEnv::ensure_pending() {
  while (pending_.empty() && !done()) advance_one_event();
}

void SchedulingEnv::start_job(std::uint32_t idx) {
  trace::Job& j = jobs_[idx];
  j.start_time = now_;
  free_ -= j.requested_procs;
  timeline_.insert(j.end_time(), j.requested_procs);
  ++started_;

  const double wait = j.wait_time();
  const double bsld = bounded_slowdown(wait, j.run_time);
  sum_bsld_ += bsld;
  sum_sld_ += (wait + j.run_time) / std::max(j.run_time, 1.0);
  sum_wait_ += wait;
  sum_turn_ += wait + j.run_time;
  busy_area_ += j.run_time * j.requested_procs;
  max_end_ = std::max(max_end_, j.end_time());

  const auto it =
      std::lower_bound(user_ids_.begin(), user_ids_.end(), j.user);
  const auto ui = static_cast<std::size_t>(it - user_ids_.begin());
  if (it == user_ids_.end() || *it != j.user) {
    // Streaming episodes discover users as they start (materialized
    // prepare() pre-builds the full table, so this branch never fires
    // there and the zero-allocation contract holds). Sorted insert keeps
    // the per-user aggregates identical between the two modes.
    user_ids_.insert(it, j.user);
    user_bsld_sum_.insert(user_bsld_sum_.begin() +
                              static_cast<std::ptrdiff_t>(ui), 0.0);
    user_count_.insert(user_count_.begin() +
                           static_cast<std::ptrdiff_t>(ui), 0u);
  }
  user_bsld_sum_[ui] += bsld;
  user_count_[ui] += 1;
  if (source_ != nullptr) ++dead_in_buffer_;
  if (start_hook_ != nullptr) start_hook_(start_hook_ctx_, j);
}

void SchedulingEnv::try_backfill(const trace::Job& head) {
  // EASY: a job may jump the queue only if it cannot delay the head's
  // reservation — it finishes (by its own estimate) before the
  // reservation, or it fits in processors the head will not need. The
  // reservation is an O(log R) timeline lookup and the first eligible job
  // in queue order comes from the fit index, replacing the seed's
  // O(R log R) sort + O(P) rescan per started job.
  while (free_ > 0 && !pending_.empty()) {
    int spare = 0;
    const double t_reserve =
        timeline_.reservation(free_, head.requested_procs, now_, &spare);
    const std::uint32_t idx =
        pending_.take_first_backfill(free_, spare, now_, t_reserve);
    if (idx == PendingIndex::kNone) break;  // nothing eligible remains
    start_job(idx);  // free/running changed: recompute the reservation
  }
}

void SchedulingEnv::start_with_wait(std::uint32_t idx) {
  // Indexed re-reads, not a held reference: advance_one_event() may refill
  // the streamed buffer and reallocate jobs_ (indices stay stable — only
  // maybe_compact(), which never runs inside a decision, remaps them).
  while (free_ < jobs_[idx].requested_procs) {
    if (cfg_.backfill) try_backfill(jobs_[idx]);
    if (free_ >= jobs_[idx].requested_procs) break;
    advance_one_event();
  }
  start_job(idx);
}

bool SchedulingEnv::step(std::size_t action) {
  maybe_compact();  // safe point: no job indices are held across steps
  ensure_pending();
  if (done()) return true;
  const std::size_t window = pending_.window().size();
  if (action >= window) action = window - 1;  // defensive clamp
  const std::uint32_t idx = pending_.take_window(action);
  start_with_wait(idx);
  ensure_pending();
  return done();
}

RunResult SchedulingEnv::run_priority(const PriorityFn& priority,
                                      PriorityKind kind) {
  if (kind == PriorityKind::TimeInvariant) {
    // Key the already-pending jobs and route future arrivals through the
    // same function; every decision is then one O(log P) argmin.
    key_fn_ = &priority;
    pending_.enable_keys([&](std::uint32_t job) {
      return priority(jobs_[job], now_);
    });
  }
  while (!done()) {
    maybe_compact();
    ensure_pending();
    if (pending_.empty()) break;
    std::uint32_t idx = PendingIndex::kNone;
    if (kind == PriorityKind::TimeInvariant) {
      idx = pending_.take_min_key();
      if (idx == PendingIndex::kNone) {
        // A non-finite score ties with the index's dead-slot sentinel
        // (+inf) and cannot be served by the key tree. Fall back to the
        // reference scan for this decision rather than walking off the
        // queue; NaN scores remain unsupported either way (see
        // PriorityKind).
        idx = pending_.take_min_scan([&](std::uint32_t job) {
          return priority(jobs_[job], now_);
        });
      }
    } else {
      // O(live) min-scan in queue order (strict <, first wins) — the
      // reference semantics for clock-dependent scores.
      idx = pending_.take_min_scan([&](std::uint32_t job) {
        return priority(jobs_[job], now_);
      });
    }
    start_with_wait(idx);
  }
  key_fn_ = nullptr;
  pending_.disable_keys();
  return result();
}

RunResult SchedulingEnv::result() const {
  RunResult r;
  r.jobs = started_;
  if (started_ == 0) return r;
  const double n = static_cast<double>(started_);
  r.avg_bounded_slowdown = sum_bsld_ / n;
  r.avg_slowdown = sum_sld_ / n;
  r.avg_wait = sum_wait_ / n;
  r.avg_turnaround = sum_turn_ / n;
  r.makespan = max_end_ - min_submit_;
  r.utilization = r.makespan > 0.0
                      ? busy_area_ / (static_cast<double>(processors_) *
                                      r.makespan)
                      : 0.0;
  double worst = 0.0;
  for (std::size_t u = 0; u < user_ids_.size(); ++u) {
    if (user_count_[u] == 0) continue;
    worst = std::max(worst,
                     user_bsld_sum_[u] / static_cast<double>(user_count_[u]));
  }
  r.max_user_bounded_slowdown = worst;
  return r;
}

}  // namespace rlsched::sim
