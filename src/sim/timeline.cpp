#include "sim/timeline.hpp"

#include <algorithm>

namespace rlsched::sim {

void Timeline::reset(std::size_t expected) {
  items_.clear();
  prefix_.clear();
  items_.reserve(expected);
  prefix_.reserve(expected);
  head_ = 0;
  valid_ = 0;
  popped_ = 0;
}

void Timeline::insert(double end, std::int32_t procs) {
  // Live entries all end after the last pop_until() time and a new
  // completion never precedes it, so the insert position is always inside
  // the live region; ties insert after their group (order irrelevant —
  // reservation() is group-accumulating).
  const auto pos = std::upper_bound(
      items_.begin() + static_cast<std::ptrdiff_t>(head_), items_.end(), end,
      [](double v, const Completion& c) { return v < c.end; });
  const auto idx = static_cast<std::size_t>(pos - items_.begin());
  items_.insert(pos, {end, procs});
  prefix_.resize(items_.size());
  valid_ = std::min(valid_, idx);
}

int Timeline::pop_until(double t) {
  int freed = 0;
  while (head_ < items_.size() && items_[head_].end <= t) {
    freed += items_[head_].procs;
    popped_ += items_[head_].procs;
    ++head_;
  }
  if (freed != 0) maybe_compact();
  return freed;
}

void Timeline::maybe_compact() {
  // Amortized: recycling costs O(live) and only fires once the dead prefix
  // outweighs it, so the slab length tracks the live running set.
  if (head_ < 64 || head_ * 2 < items_.size()) return;
  items_.erase(items_.begin(),
               items_.begin() + static_cast<std::ptrdiff_t>(head_));
  prefix_.resize(items_.size());
  head_ = 0;
  valid_ = 0;
  popped_ = 0;
}

void Timeline::repair_to(std::size_t i) {
  while (valid_ <= i) {
    prefix_[valid_] =
        (valid_ == 0 ? 0 : prefix_[valid_ - 1]) + items_[valid_].procs;
    ++valid_;
  }
}

double Timeline::reservation(int free_now, int needed, double now,
                             int* spare) {
  const std::size_t n = items_.size();
  // Smallest slab index whose cumulative live procs lifts free_now to
  // `needed`: prefix_[i] - popped_ is the live cumulative through i.
  const std::int64_t target = popped_ + (needed - free_now);
  std::size_t cross = n;
  if (valid_ > head_ && prefix_[valid_ - 1] >= target) {
    // Cached region already crosses: pure O(log R) lookup.
    const auto it = std::lower_bound(
        prefix_.begin() + static_cast<std::ptrdiff_t>(head_),
        prefix_.begin() + static_cast<std::ptrdiff_t>(valid_), target);
    cross = static_cast<std::size_t>(it - prefix_.begin());
  } else {
    // Repair forward from the watermark until the crossing (or the end).
    std::size_t i = std::max(valid_, head_);
    if (head_ > 0) repair_to(head_ - 1);  // catch up through popped entries
    for (; i < n; ++i) {
      repair_to(i);
      if (prefix_[i] >= target) {
        cross = i;
        break;
      }
    }
  }
  if (cross == n) {
    if (spare != nullptr) {
      std::int64_t total = free_now;
      if (n > head_) {
        repair_to(n - 1);
        total += prefix_[n - 1] - popped_;
      }
      *spare = static_cast<int>(std::max<std::int64_t>(0, total - needed));
    }
    return now;
  }
  // Group semantics: spare counts EVERY completion tied at the crossing
  // end time, so the result is independent of insertion order among ties.
  const double e = items_[cross].end;
  std::size_t last = cross;
  while (last + 1 < n && items_[last + 1].end == e) ++last;
  repair_to(last);
  if (spare != nullptr) {
    *spare = static_cast<int>(free_now + (prefix_[last] - popped_) - needed);
  }
  return e;
}

}  // namespace rlsched::sim
