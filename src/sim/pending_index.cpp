#include "sim/pending_index.hpp"

#include <algorithm>
#include <limits>

namespace rlsched::sim {

namespace {
constexpr std::int32_t kInfProcs = std::numeric_limits<std::int32_t>::max();
constexpr double kInfD = std::numeric_limits<double>::infinity();

std::size_t pow2_ceil(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

const double PendingIndex::kInfKey = kInfD;

void PendingIndex::reset(std::size_t expected, std::size_t window_cap,
                         bool fit_index) {
  window_cap_ = window_cap;
  fit_index_ = fit_index;
  job_.clear();
  procs_.clear();
  time_.clear();
  key_.clear();
  win_job_.clear();
  win_pos_.clear();
  live_ = 0;
  dead_ = 0;
  use_keys_ = false;

  // Reserve for the whole episode: slot count never exceeds total arrivals
  // (appends only grow it; compaction only shrinks), so a materialized
  // episode of `expected` jobs never reallocates past this point.
  job_.reserve(expected);
  procs_.reserve(expected);
  time_.reserve(expected);
  key_.reserve(expected);
  win_job_.reserve(window_cap_);
  win_pos_.reserve(window_cap_);
  cap_ = pow2_ceil(std::max<std::size_t>(kMinCompact, expected));
  cap_hw_ = std::max(cap_hw_, cap_);
  fen_.reserve(cap_hw_ + 1);
  seg_procs_.reserve(2 * cap_hw_);
  seg_time_.reserve(2 * cap_hw_);
  seg_key_.reserve(2 * cap_hw_);
  if (fit_index_) {
    stair_.reserve(2 * cap_hw_ * kStairCap);
    stair_n_.reserve(2 * cap_hw_);
  }
  reset_fit_stats();
  rebuild();
}

void PendingIndex::fen_add(std::size_t pos, std::int32_t delta) {
  for (std::size_t i = pos + 1; i <= cap_; i += i & (~i + 1)) {
    fen_[i] += delta;
  }
}

std::size_t PendingIndex::fen_select(std::size_t k) const {
  // Smallest 0-based position whose live-count prefix reaches k.
  std::size_t idx = 0;
  auto rem = static_cast<std::int32_t>(k);
  for (std::size_t bit = cap_; bit != 0; bit >>= 1) {
    const std::size_t next = idx + bit;
    if (next <= cap_ && fen_[next] < rem) {
      idx = next;
      rem -= fen_[next];
    }
  }
  return idx;
}

void PendingIndex::seg_set(std::size_t pos) {
  std::size_t i = cap_ + pos;
  seg_procs_[i] = procs_[pos];
  seg_time_[i] = time_[pos];
  seg_key_[i] = use_keys_ ? key_[pos] : kInfD;
  if (fit_index_) {
    stair_n_[i] = 1;
    stair_[i * kStairCap] = StairPt{procs_[pos], time_[pos]};
  }
  for (i >>= 1; i != 0; i >>= 1) {
    seg_procs_[i] = std::min(seg_procs_[2 * i], seg_procs_[2 * i + 1]);
    seg_time_[i] = std::min(seg_time_[2 * i], seg_time_[2 * i + 1]);
    seg_key_[i] = std::min(seg_key_[2 * i], seg_key_[2 * i + 1]);
    if (fit_index_) stair_pull(i);
  }
}

void PendingIndex::seg_clear(std::size_t pos) {
  std::size_t i = cap_ + pos;
  seg_procs_[i] = kInfProcs;
  seg_time_[i] = kInfD;
  seg_key_[i] = kInfD;
  if (fit_index_) stair_n_[i] = 0;
  for (i >>= 1; i != 0; i >>= 1) {
    seg_procs_[i] = std::min(seg_procs_[2 * i], seg_procs_[2 * i + 1]);
    seg_time_[i] = std::min(seg_time_[2 * i], seg_time_[2 * i + 1]);
    seg_key_[i] = std::min(seg_key_[2 * i], seg_key_[2 * i + 1]);
    if (fit_index_) stair_pull(i);
  }
}

void PendingIndex::stair_pull(std::size_t node) {
  // node staircase := undominated merge of its children's staircases.
  // Children are sorted by procs ascending / time strictly descending, so
  // a two-pointer pass by procs (ties: smaller time first) keeps exactly
  // the points whose time strictly improves on everything kept so far —
  // every skipped point is dominated by the previous kept one.
  const StairPt* a = stair_.data() + (2 * node) * kStairCap;
  const StairPt* b = stair_.data() + (2 * node + 1) * kStairCap;
  const std::size_t na = stair_n_[2 * node];
  const std::size_t nb = stair_n_[2 * node + 1];
  StairPt tmp[2 * kStairCap];
  std::size_t n = 0, i = 0, j = 0;
  double last = kInfD;
  while (i < na || j < nb) {
    StairPt p;
    if (j == nb || (i < na && (a[i].procs < b[j].procs ||
                               (a[i].procs == b[j].procs &&
                                a[i].time <= b[j].time)))) {
      p = a[i++];
    } else {
      p = b[j++];
    }
    if (p.time < last) {
      tmp[n++] = p;
      last = p.time;
    }
  }
  StairPt* dst = stair_.data() + node * kStairCap;
  if (n > kStairCap) {
    // Cap overflow: collapse the tail run into its lower-left corner
    // (the run's min procs x min time). The corner dominates every point
    // it replaced, so probes stay conservative — the descent may enter
    // this subtree needlessly but can never skip an eligible job.
    for (std::size_t k = 0; k + 1 < kStairCap; ++k) dst[k] = tmp[k];
    dst[kStairCap - 1] = StairPt{tmp[kStairCap - 1].procs, tmp[n - 1].time};
    stair_n_[node] = static_cast<std::uint8_t>(kStairCap);
  } else {
    for (std::size_t k = 0; k < n; ++k) dst[k] = tmp[k];
    stair_n_[node] = static_cast<std::uint8_t>(n);
  }
}

bool PendingIndex::stair_admits(std::size_t node, int free, int spare,
                                double now, double horizon) const {
  // One probe decides whether ANY job below `node` can pass the EASY
  // eligibility test. Walk the staircase by procs ascending: once a
  // point's procs exceed `free` every later point does too (fail). A
  // point with procs <= spare passes outright; otherwise its time is the
  // SMALLEST req_time among subtree jobs at >= that procs (times descend
  // along the staircase), so `now + time <= horizon` proves an eligible
  // job exists and a failure rules out this run but not narrower ones.
  // Truncation corners only under-approximate, so a false here is proof.
  const StairPt* s = stair_.data() + node * kStairCap;
  const std::size_t n = stair_n_[node];
  for (std::size_t k = 0; k < n; ++k) {
    if (s[k].procs > free) return false;
    if (s[k].procs <= spare) return true;
    if (now + s[k].time <= horizon) return true;
  }
  return false;
}

void PendingIndex::rebuild() {
  fen_.resize(cap_ + 1);
  std::fill(fen_.begin(), fen_.end(), 0);
  for (std::size_t pos = 0; pos < job_.size(); ++pos) {
    if (job_[pos] != kNone) fen_[pos + 1] = 1;
  }
  for (std::size_t i = 1; i <= cap_; ++i) {
    const std::size_t parent = i + (i & (~i + 1));
    if (parent <= cap_) fen_[parent] += fen_[i];
  }

  seg_procs_.resize(2 * cap_);
  seg_time_.resize(2 * cap_);
  seg_key_.resize(2 * cap_);
  for (std::size_t pos = 0; pos < cap_; ++pos) {
    const bool alive = pos < job_.size() && job_[pos] != kNone;
    seg_procs_[cap_ + pos] = alive ? procs_[pos] : kInfProcs;
    seg_time_[cap_ + pos] = alive ? time_[pos] : kInfD;
    seg_key_[cap_ + pos] = (alive && use_keys_) ? key_[pos] : kInfD;
  }
  for (std::size_t i = cap_ - 1; i >= 1; --i) {
    seg_procs_[i] = std::min(seg_procs_[2 * i], seg_procs_[2 * i + 1]);
    seg_time_[i] = std::min(seg_time_[2 * i], seg_time_[2 * i + 1]);
    seg_key_[i] = std::min(seg_key_[2 * i], seg_key_[2 * i + 1]);
  }

  if (fit_index_) {
    stair_.resize(2 * cap_ * kStairCap);
    stair_n_.resize(2 * cap_);
    for (std::size_t pos = 0; pos < cap_; ++pos) {
      const bool alive = pos < job_.size() && job_[pos] != kNone;
      stair_n_[cap_ + pos] = alive ? 1 : 0;
      if (alive) {
        stair_[(cap_ + pos) * kStairCap] = StairPt{procs_[pos], time_[pos]};
      }
    }
    for (std::size_t i = cap_ - 1; i >= 1; --i) stair_pull(i);
  }
}

void PendingIndex::rebuild_keys() {
  for (std::size_t pos = 0; pos < cap_; ++pos) {
    const bool alive = pos < job_.size() && job_[pos] != kNone;
    seg_key_[cap_ + pos] = alive ? key_[pos] : kInfD;
  }
  for (std::size_t i = cap_ - 1; i >= 1; --i) {
    seg_key_[i] = std::min(seg_key_[2 * i], seg_key_[2 * i + 1]);
  }
}

void PendingIndex::grow() {
  cap_ *= 2;
  cap_hw_ = std::max(cap_hw_, cap_);
  rebuild();
}

void PendingIndex::push(std::uint32_t job, std::int32_t procs,
                        double req_time, double key) {
  if (job_.size() == cap_) grow();
  const std::size_t pos = job_.size();
  job_.push_back(job);
  procs_.push_back(procs);
  time_.push_back(req_time);
  key_.push_back(key);
  ++live_;
  fen_add(pos, +1);
  seg_set(pos);
  refill_window();
}

void PendingIndex::refill_window() {
  // Window invariant: win holds the positions of the first
  // min(live, window_cap) live slots, so the next member is always the
  // (size+1)-th live slot overall — one Fenwick select.
  while (win_job_.size() < window_cap_ && win_job_.size() < live_) {
    const std::size_t pos = fen_select(win_job_.size() + 1);
    win_pos_.push_back(static_cast<std::uint32_t>(pos));
    win_job_.push_back(job_[pos]);
  }
}

void PendingIndex::remove_at(std::size_t pos) {
  job_[pos] = kNone;
  --live_;
  ++dead_;
  fen_add(pos, -1);
  seg_clear(pos);
  const auto it = std::lower_bound(win_pos_.begin(), win_pos_.end(),
                                   static_cast<std::uint32_t>(pos));
  if (it != win_pos_.end() && *it == pos) {
    const auto w = it - win_pos_.begin();
    win_pos_.erase(it);
    win_job_.erase(win_job_.begin() + w);
    refill_window();
  }
  maybe_compact();
}

std::uint32_t PendingIndex::take_window(std::size_t w) {
  const std::uint32_t job = win_job_[w];
  remove_at(win_pos_[w]);
  return job;
}

std::size_t PendingIndex::find_fit(std::size_t node, int free, int spare,
                                   double now, double horizon) const {
  // Prune: no job below `node` can be eligible. With the staircase index
  // the probe is exact for <= kStairCap Pareto modes and conservative
  // beyond; without it, the (min procs, min time) corner pairs minima
  // from possibly DIFFERENT jobs, which is correct but prunes less. Both
  // are exact at leaves (the summary IS the job's values there), so a
  // surviving leaf is eligible by construction — the same comparisons the
  // reference scan performs, in the same queue order.
  if constexpr (kStatsEnabled) ++fit_visits_;
  if (fit_index_) {
    if (!stair_admits(node, free, spare, now, horizon)) {
      return kNposInternal;
    }
  } else {
    if (seg_procs_[node] > free) return kNposInternal;
    if (seg_procs_[node] > spare && now + seg_time_[node] > horizon) {
      return kNposInternal;
    }
  }
  if (node >= cap_) return node - cap_;
  const std::size_t left = find_fit(2 * node, free, spare, now, horizon);
  if (left != kNposInternal) return left;
  return find_fit(2 * node + 1, free, spare, now, horizon);
}

std::uint32_t PendingIndex::take_first_backfill(int free, int spare,
                                                double now, double horizon) {
  if constexpr (kStatsEnabled) ++fit_queries_;
  const std::size_t pos = find_fit(1, free, spare, now, horizon);
  if (pos == kNposInternal) return kNone;
  const std::uint32_t job = job_[pos];
  remove_at(pos);
  return job;
}

std::uint32_t PendingIndex::take_min_key() {
  std::size_t node = 1;
  if (seg_key_[node] == kInfD) return kNone;  // empty (or keys unset)
  while (node < cap_) {
    // <= prefers the LEFT child on ties: leftmost argmin, the strict-<
    // first-wins order of the reference scan.
    node = seg_key_[2 * node] <= seg_key_[2 * node + 1] ? 2 * node
                                                        : 2 * node + 1;
  }
  const std::size_t pos = node - cap_;
  const std::uint32_t job = job_[pos];
  remove_at(pos);
  return job;
}

void PendingIndex::maybe_compact() {
  if (dead_ < kMinCompact || dead_ < live_) return;
  compact();
}

void PendingIndex::compact() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < job_.size(); ++r) {
    if (job_[r] == kNone) continue;
    job_[w] = job_[r];
    procs_[w] = procs_[r];
    time_[w] = time_[r];
    key_[w] = key_[r];
    ++w;
  }
  job_.resize(w);
  procs_.resize(w);
  time_.resize(w);
  key_.resize(w);
  dead_ = 0;
  // Shrink the index toward the live size (never past the high-water mark,
  // whose backing capacity is already reserved) so rebuild cost tracks the
  // CURRENT queue, not its episode peak — amortized O(1) per removal.
  cap_ = std::min(pow2_ceil(std::max<std::size_t>(kMinCompact, 2 * w)),
                  cap_hw_);
  rebuild();
  // The window is the first win_job_.size() live slots; after compaction
  // those occupy positions 0..k-1 in unchanged order.
  for (std::size_t i = 0; i < win_pos_.size(); ++i) {
    win_pos_[i] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace rlsched::sim
