// The frozen naive scheduling core. See include/sim/reference_env.hpp for
// why this file must stay dumb: it is the differential oracle for the
// indexed core, not a place for performance work.
#include "sim/reference_env.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rlsched::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ReferenceEnv::ReferenceEnv(int processors, EnvConfig cfg) {
  reconfigure(processors, cfg);
}

void ReferenceEnv::reset(const std::vector<trace::Job>& jobs) {
  jobs_ = jobs;
  prepare();
}

void ReferenceEnv::reset(std::vector<trace::Job>&& jobs) {
  jobs_ = std::move(jobs);
  prepare();
}

void ReferenceEnv::begin_episode() {
  free_ = processors_;
  next_arrival_ = 0;
  started_ = 0;
  dead_in_buffer_ = 0;
  sum_bsld_ = sum_sld_ = sum_wait_ = sum_turn_ = 0.0;
  busy_area_ = 0.0;
  now_ = jobs_.empty() ? 0.0 : jobs_.front().submit_time;
  min_submit_ = now_;
  max_end_ = now_;
  arrive_until_now();
  ensure_pending();
}

void ReferenceEnv::prepare() {
  source_ = nullptr;
  drained_ = true;
  const auto by_submit = [](const trace::Job& a, const trace::Job& b) {
    return a.submit_time < b.submit_time;
  };
  if (!std::is_sorted(jobs_.begin(), jobs_.end(), by_submit)) {
    std::stable_sort(jobs_.begin(), jobs_.end(), by_submit);
  }
  const std::size_t n = jobs_.size();
  total_jobs_ = n;
  pending_.clear();
  pending_.reserve(n);
  running_.clear();
  running_.reserve(n);
  shadow_.clear();
  shadow_.reserve(n);

  user_ids_.clear();
  user_ids_.reserve(n);
  for (trace::Job& j : jobs_) {
    j.reset_schedule_state();
    j.requested_procs = std::clamp(j.requested_procs, 1, processors_);
    if (j.requested_time < j.run_time) j.requested_time = j.run_time;
    user_ids_.push_back(j.user);
  }
  std::sort(user_ids_.begin(), user_ids_.end());
  user_ids_.erase(std::unique(user_ids_.begin(), user_ids_.end()),
                  user_ids_.end());
  user_bsld_sum_.reserve(n);
  user_count_.reserve(n);
  user_bsld_sum_.assign(user_ids_.size(), 0.0);
  user_count_.assign(user_ids_.size(), 0);

  begin_episode();
}

void ReferenceEnv::reset(trace::JobSource& source, std::size_t chunk_jobs) {
  source_ = &source;
  chunk_jobs_ = std::max<std::size_t>(1, chunk_jobs);
  drained_ = false;
  total_jobs_ = 0;
  last_ingested_submit_ = -std::numeric_limits<double>::infinity();
  source.rewind();

  jobs_.clear();
  pending_.clear();
  running_.clear();
  shadow_.clear();
  user_ids_.clear();
  user_bsld_sum_.clear();
  user_count_.clear();

  refill();
  begin_episode();
}

bool ReferenceEnv::refill() {
  if (drained_) return false;
  const std::size_t before = jobs_.size();
  const std::size_t got = source_->fetch(chunk_jobs_, jobs_);
  if (got == 0) {
    drained_ = true;
    return false;
  }
  total_jobs_ += got;
  for (std::size_t i = before; i < jobs_.size(); ++i) {
    trace::Job& j = jobs_[i];
    if (j.submit_time < last_ingested_submit_) {
      throw std::runtime_error(
          "JobSource delivered jobs out of submit order");
    }
    last_ingested_submit_ = j.submit_time;
    j.reset_schedule_state();
    j.requested_procs = std::clamp(j.requested_procs, 1, processors_);
    if (j.requested_time < j.run_time) j.requested_time = j.run_time;
  }
  return true;
}

void ReferenceEnv::maybe_compact() {
  if (source_ == nullptr) return;
  if (dead_in_buffer_ < chunk_jobs_ || dead_in_buffer_ * 2 < jobs_.size()) {
    return;
  }
  compact();
}

void ReferenceEnv::compact() {
  remap_.assign(jobs_.size(), 0);
  std::size_t w = 0;
  std::size_t new_next = jobs_.size();
  for (std::size_t r = 0; r < jobs_.size(); ++r) {
    if (r == next_arrival_) new_next = w;
    if (jobs_[r].scheduled()) continue;
    remap_[r] = static_cast<std::uint32_t>(w);
    if (w != r) jobs_[w] = jobs_[r];
    ++w;
  }
  if (next_arrival_ >= jobs_.size()) new_next = w;
  next_arrival_ = new_next;
  for (std::uint32_t& p : pending_) p = remap_[p];
  jobs_.resize(w);
  dead_in_buffer_ = 0;
}

void ReferenceEnv::arrive_until_now() {
  for (;;) {
    while (next_arrival_ < jobs_.size() &&
           jobs_[next_arrival_].submit_time <= now_) {
      pending_.push_back(static_cast<std::uint32_t>(next_arrival_));
      ++next_arrival_;
    }
    if (next_arrival_ < jobs_.size() || drained_) break;
    if (!refill()) break;
  }
}

void ReferenceEnv::advance_one_event() {
  if (next_arrival_ == jobs_.size() && !drained_) {
    refill();
  }
  double t = kInf;
  if (!running_.empty()) t = running_.front().end;
  if (next_arrival_ < jobs_.size()) {
    t = std::min(t, jobs_[next_arrival_].submit_time);
  }
  if (t == kInf) return;
  now_ = std::max(now_, t);
  while (!running_.empty() && running_.front().end <= now_) {
    free_ += running_.front().procs;
    std::pop_heap(running_.begin(), running_.end(), CompletionLater{});
    running_.pop_back();
  }
  arrive_until_now();
}

void ReferenceEnv::ensure_pending() {
  while (pending_.empty() && !done()) advance_one_event();
}

void ReferenceEnv::start_job(std::uint32_t idx) {
  trace::Job& j = jobs_[idx];
  j.start_time = now_;
  free_ -= j.requested_procs;
  running_.push_back({j.end_time(), j.requested_procs});
  std::push_heap(running_.begin(), running_.end(), CompletionLater{});
  ++started_;

  const double wait = j.wait_time();
  const double bsld = bounded_slowdown(wait, j.run_time);
  sum_bsld_ += bsld;
  sum_sld_ += (wait + j.run_time) / std::max(j.run_time, 1.0);
  sum_wait_ += wait;
  sum_turn_ += wait + j.run_time;
  busy_area_ += j.run_time * j.requested_procs;
  max_end_ = std::max(max_end_, j.end_time());

  const auto it =
      std::lower_bound(user_ids_.begin(), user_ids_.end(), j.user);
  const auto ui = static_cast<std::size_t>(it - user_ids_.begin());
  if (it == user_ids_.end() || *it != j.user) {
    user_ids_.insert(it, j.user);
    user_bsld_sum_.insert(user_bsld_sum_.begin() +
                              static_cast<std::ptrdiff_t>(ui), 0.0);
    user_count_.insert(user_count_.begin() +
                           static_cast<std::ptrdiff_t>(ui), 0u);
  }
  user_bsld_sum_[ui] += bsld;
  user_count_[ui] += 1;
  if (source_ != nullptr) ++dead_in_buffer_;
  if (start_hook_ != nullptr) start_hook_(start_hook_ctx_, j);
}

double ReferenceEnv::reservation(int needed, int* spare) {
  // Replay completions in end order over a scratch copy of the heap until
  // `needed` processors are free. Equal end times are accumulated as one
  // group before the crossing test so the result is independent of the
  // unstable sort's permutation of ties (see the header).
  shadow_.assign(running_.begin(), running_.end());
  std::sort(shadow_.begin(), shadow_.end(),
            [](const Completion& a, const Completion& b) {
              return a.end < b.end;
            });
  int f = free_;
  std::size_t i = 0;
  while (i < shadow_.size()) {
    const double e = shadow_[i].end;
    do {
      f += shadow_[i].procs;
      ++i;
    } while (i < shadow_.size() && shadow_[i].end == e);
    if (f >= needed) {
      if (spare != nullptr) *spare = f - needed;
      return e;
    }
  }
  if (spare != nullptr) *spare = std::max(0, f - needed);
  return now_;  // trace requests more than the machine has; start anyway
}

void ReferenceEnv::try_backfill(const trace::Job& head) {
  bool progress = true;
  while (progress && free_ > 0 && !pending_.empty()) {
    progress = false;
    int spare = 0;
    const double t_reserve = reservation(head.requested_procs, &spare);
    for (std::size_t p = 0; p < pending_.size(); ++p) {
      const trace::Job& c = jobs_[pending_[p]];
      if (c.requested_procs > free_) continue;
      const bool fits_window = now_ + c.requested_time <= t_reserve;
      const bool fits_spare = c.requested_procs <= spare;
      if (!fits_window && !fits_spare) continue;
      const std::uint32_t idx = pending_[p];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(p));
      start_job(idx);
      progress = true;
      break;
    }
  }
}

void ReferenceEnv::start_with_wait(std::uint32_t idx) {
  while (free_ < jobs_[idx].requested_procs) {
    if (cfg_.backfill) try_backfill(jobs_[idx]);
    if (free_ >= jobs_[idx].requested_procs) break;
    advance_one_event();
  }
  start_job(idx);
}

bool ReferenceEnv::step(std::size_t action) {
  maybe_compact();
  ensure_pending();
  if (done()) return true;
  const std::size_t window = std::min(pending_.size(), cfg_.max_observable);
  if (action >= window) action = window - 1;
  const std::uint32_t idx = pending_[action];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(action));
  start_with_wait(idx);
  ensure_pending();
  return done();
}

RunResult ReferenceEnv::run_priority(const PriorityFn& priority,
                                     PriorityKind /*kind*/) {
  while (!done()) {
    maybe_compact();
    ensure_pending();
    if (pending_.empty()) break;
    std::size_t best = 0;
    double best_score = priority(jobs_[pending_[0]], now_);
    for (std::size_t p = 1; p < pending_.size(); ++p) {
      const double s = priority(jobs_[pending_[p]], now_);
      if (s < best_score) {
        best_score = s;
        best = p;
      }
    }
    const std::uint32_t idx = pending_[best];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
    start_with_wait(idx);
  }
  return result();
}

std::span<const std::uint32_t> ReferenceEnv::observable() const {
  return {pending_.data(), std::min(pending_.size(), cfg_.max_observable)};
}

RunResult ReferenceEnv::result() const {
  RunResult r;
  r.jobs = started_;
  if (started_ == 0) return r;
  const double n = static_cast<double>(started_);
  r.avg_bounded_slowdown = sum_bsld_ / n;
  r.avg_slowdown = sum_sld_ / n;
  r.avg_wait = sum_wait_ / n;
  r.avg_turnaround = sum_turn_ / n;
  r.makespan = max_end_ - min_submit_;
  r.utilization = r.makespan > 0.0
                      ? busy_area_ / (static_cast<double>(processors_) *
                                      r.makespan)
                      : 0.0;
  double worst = 0.0;
  for (std::size_t u = 0; u < user_ids_.size(); ++u) {
    if (user_count_[u] == 0) continue;
    worst = std::max(worst,
                     user_bsld_sum_[u] / static_cast<double>(user_count_[u]));
  }
  r.max_user_bounded_slowdown = worst;
  return r;
}

}  // namespace rlsched::sim
