# Empty dependencies file for rlsched.
# This may be replaced when dependencies are built.
