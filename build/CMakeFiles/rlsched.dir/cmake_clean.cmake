file(REMOVE_RECURSE
  "CMakeFiles/rlsched.dir/src/core/rlscheduler.cpp.o"
  "CMakeFiles/rlsched.dir/src/core/rlscheduler.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/nn/mlp.cpp.o"
  "CMakeFiles/rlsched.dir/src/nn/mlp.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/rl/filter.cpp.o"
  "CMakeFiles/rlsched.dir/src/rl/filter.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/rl/observation.cpp.o"
  "CMakeFiles/rlsched.dir/src/rl/observation.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/rl/policy.cpp.o"
  "CMakeFiles/rlsched.dir/src/rl/policy.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/rl/ppo.cpp.o"
  "CMakeFiles/rlsched.dir/src/rl/ppo.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/sched/heuristics.cpp.o"
  "CMakeFiles/rlsched.dir/src/sched/heuristics.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/sim/env.cpp.o"
  "CMakeFiles/rlsched.dir/src/sim/env.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/trace/trace.cpp.o"
  "CMakeFiles/rlsched.dir/src/trace/trace.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/util/env.cpp.o"
  "CMakeFiles/rlsched.dir/src/util/env.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/util/stats.cpp.o"
  "CMakeFiles/rlsched.dir/src/util/stats.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/util/table.cpp.o"
  "CMakeFiles/rlsched.dir/src/util/table.cpp.o.d"
  "CMakeFiles/rlsched.dir/src/workload/synthetic.cpp.o"
  "CMakeFiles/rlsched.dir/src/workload/synthetic.cpp.o.d"
  "librlsched.a"
  "librlsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
