file(REMOVE_RECURSE
  "librlsched.a"
)
