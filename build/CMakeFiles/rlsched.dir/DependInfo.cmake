
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/rlscheduler.cpp" "CMakeFiles/rlsched.dir/src/core/rlscheduler.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/core/rlscheduler.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "CMakeFiles/rlsched.dir/src/nn/mlp.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/nn/mlp.cpp.o.d"
  "/root/repo/src/rl/filter.cpp" "CMakeFiles/rlsched.dir/src/rl/filter.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/rl/filter.cpp.o.d"
  "/root/repo/src/rl/observation.cpp" "CMakeFiles/rlsched.dir/src/rl/observation.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/rl/observation.cpp.o.d"
  "/root/repo/src/rl/policy.cpp" "CMakeFiles/rlsched.dir/src/rl/policy.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/rl/policy.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "CMakeFiles/rlsched.dir/src/rl/ppo.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/rl/ppo.cpp.o.d"
  "/root/repo/src/sched/heuristics.cpp" "CMakeFiles/rlsched.dir/src/sched/heuristics.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/sched/heuristics.cpp.o.d"
  "/root/repo/src/sim/env.cpp" "CMakeFiles/rlsched.dir/src/sim/env.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/sim/env.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/rlsched.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/util/env.cpp" "CMakeFiles/rlsched.dir/src/util/env.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/util/env.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/rlsched.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/rlsched.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/util/table.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "CMakeFiles/rlsched.dir/src/workload/synthetic.cpp.o" "gcc" "CMakeFiles/rlsched.dir/src/workload/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
