file(REMOVE_RECURSE
  "CMakeFiles/test_env_parse.dir/test_env_parse.cpp.o"
  "CMakeFiles/test_env_parse.dir/test_env_parse.cpp.o.d"
  "test_env_parse"
  "test_env_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
