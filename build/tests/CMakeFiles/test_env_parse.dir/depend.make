# Empty dependencies file for test_env_parse.
# This may be replaced when dependencies are built.
