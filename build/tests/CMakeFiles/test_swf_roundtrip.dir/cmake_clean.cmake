file(REMOVE_RECURSE
  "CMakeFiles/test_swf_roundtrip.dir/test_swf_roundtrip.cpp.o"
  "CMakeFiles/test_swf_roundtrip.dir/test_swf_roundtrip.cpp.o.d"
  "test_swf_roundtrip"
  "test_swf_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swf_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
