# Empty dependencies file for test_swf_roundtrip.
# This may be replaced when dependencies are built.
