file(REMOVE_RECURSE
  "CMakeFiles/test_backfill_easy.dir/test_backfill_easy.cpp.o"
  "CMakeFiles/test_backfill_easy.dir/test_backfill_easy.cpp.o.d"
  "test_backfill_easy"
  "test_backfill_easy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backfill_easy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
