# Empty dependencies file for test_backfill_easy.
# This may be replaced when dependencies are built.
