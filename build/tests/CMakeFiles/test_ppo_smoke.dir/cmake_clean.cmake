file(REMOVE_RECURSE
  "CMakeFiles/test_ppo_smoke.dir/test_ppo_smoke.cpp.o"
  "CMakeFiles/test_ppo_smoke.dir/test_ppo_smoke.cpp.o.d"
  "test_ppo_smoke"
  "test_ppo_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppo_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
