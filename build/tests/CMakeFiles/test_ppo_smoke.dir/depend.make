# Empty dependencies file for test_ppo_smoke.
# This may be replaced when dependencies are built.
