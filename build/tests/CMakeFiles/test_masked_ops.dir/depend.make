# Empty dependencies file for test_masked_ops.
# This may be replaced when dependencies are built.
