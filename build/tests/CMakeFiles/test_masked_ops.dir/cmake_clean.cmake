file(REMOVE_RECURSE
  "CMakeFiles/test_masked_ops.dir/test_masked_ops.cpp.o"
  "CMakeFiles/test_masked_ops.dir/test_masked_ops.cpp.o.d"
  "test_masked_ops"
  "test_masked_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masked_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
