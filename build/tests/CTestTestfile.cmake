# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_swf_roundtrip "/root/repo/build/tests/test_swf_roundtrip")
set_tests_properties(test_swf_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_metrics "/root/repo/build/tests/test_metrics")
set_tests_properties(test_metrics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_backfill_easy "/root/repo/build/tests/test_backfill_easy")
set_tests_properties(test_backfill_easy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_masked_ops "/root/repo/build/tests/test_masked_ops")
set_tests_properties(test_masked_ops PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gradcheck "/root/repo/build/tests/test_gradcheck")
set_tests_properties(test_gradcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ppo_smoke "/root/repo/build/tests/test_ppo_smoke")
set_tests_properties(test_ppo_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_zero_alloc "/root/repo/build/tests/test_zero_alloc")
set_tests_properties(test_zero_alloc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_env_parse "/root/repo/build/tests/test_env_parse")
set_tests_properties(test_env_parse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
