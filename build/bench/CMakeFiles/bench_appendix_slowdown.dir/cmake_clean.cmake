file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_slowdown.dir/bench_appendix_slowdown.cpp.o"
  "CMakeFiles/bench_appendix_slowdown.dir/bench_appendix_slowdown.cpp.o.d"
  "bench_appendix_slowdown"
  "bench_appendix_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
