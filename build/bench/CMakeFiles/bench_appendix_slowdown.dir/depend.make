# Empty dependencies file for bench_appendix_slowdown.
# This may be replaced when dependencies are built.
