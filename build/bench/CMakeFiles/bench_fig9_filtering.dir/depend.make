# Empty dependencies file for bench_fig9_filtering.
# This may be replaced when dependencies are built.
