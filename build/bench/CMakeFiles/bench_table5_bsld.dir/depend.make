# Empty dependencies file for bench_table5_bsld.
# This may be replaced when dependencies are built.
