file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_bsld.dir/bench_table5_bsld.cpp.o"
  "CMakeFiles/bench_table5_bsld.dir/bench_table5_bsld.cpp.o.d"
  "bench_table5_bsld"
  "bench_table5_bsld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_bsld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
