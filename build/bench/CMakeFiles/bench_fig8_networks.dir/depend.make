# Empty dependencies file for bench_fig8_networks.
# This may be replaced when dependencies are built.
