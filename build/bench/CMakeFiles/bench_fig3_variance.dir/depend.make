# Empty dependencies file for bench_fig3_variance.
# This may be replaced when dependencies are built.
