# Empty dependencies file for bench_table6_util.
# This may be replaced when dependencies are built.
