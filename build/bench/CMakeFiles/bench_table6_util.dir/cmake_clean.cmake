file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_util.dir/bench_table6_util.cpp.o"
  "CMakeFiles/bench_table6_util.dir/bench_table6_util.cpp.o.d"
  "bench_table6_util"
  "bench_table6_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
