file(REMOVE_RECURSE
  "librlsched_bench_common.a"
)
