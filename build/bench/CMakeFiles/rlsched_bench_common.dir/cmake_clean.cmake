file(REMOVE_RECURSE
  "CMakeFiles/rlsched_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/rlsched_bench_common.dir/bench_common.cpp.o.d"
  "librlsched_bench_common.a"
  "librlsched_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlsched_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
