# Empty dependencies file for rlsched_bench_common.
# This may be replaced when dependencies are built.
