# Empty dependencies file for bench_table9_cost.
# This may be replaced when dependencies are built.
