file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_wait.dir/bench_appendix_wait.cpp.o"
  "CMakeFiles/bench_appendix_wait.dir/bench_appendix_wait.cpp.o.d"
  "bench_appendix_wait"
  "bench_appendix_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
