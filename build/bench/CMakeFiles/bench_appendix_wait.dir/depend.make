# Empty dependencies file for bench_appendix_wait.
# This may be replaced when dependencies are built.
