# Empty dependencies file for bench_fig10_train_bsld.
# This may be replaced when dependencies are built.
