file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_train_bsld.dir/bench_fig10_train_bsld.cpp.o"
  "CMakeFiles/bench_fig10_train_bsld.dir/bench_fig10_train_bsld.cpp.o.d"
  "bench_fig10_train_bsld"
  "bench_fig10_train_bsld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_train_bsld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
