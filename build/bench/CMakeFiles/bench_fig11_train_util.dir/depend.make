# Empty dependencies file for bench_fig11_train_util.
# This may be replaced when dependencies are built.
