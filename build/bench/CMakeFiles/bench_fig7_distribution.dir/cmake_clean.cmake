file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_distribution.dir/bench_fig7_distribution.cpp.o"
  "CMakeFiles/bench_fig7_distribution.dir/bench_fig7_distribution.cpp.o.d"
  "bench_fig7_distribution"
  "bench_fig7_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
