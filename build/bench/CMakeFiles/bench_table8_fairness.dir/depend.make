# Empty dependencies file for bench_table8_fairness.
# This may be replaced when dependencies are built.
