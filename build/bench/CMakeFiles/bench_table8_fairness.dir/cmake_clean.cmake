file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_fairness.dir/bench_table8_fairness.cpp.o"
  "CMakeFiles/bench_table8_fairness.dir/bench_table8_fairness.cpp.o.d"
  "bench_table8_fairness"
  "bench_table8_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
