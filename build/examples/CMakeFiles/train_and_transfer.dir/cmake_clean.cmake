file(REMOVE_RECURSE
  "CMakeFiles/train_and_transfer.dir/train_and_transfer.cpp.o"
  "CMakeFiles/train_and_transfer.dir/train_and_transfer.cpp.o.d"
  "train_and_transfer"
  "train_and_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
