# Empty dependencies file for train_and_transfer.
# This may be replaced when dependencies are built.
