# Empty dependencies file for swf_pipeline.
# This may be replaced when dependencies are built.
