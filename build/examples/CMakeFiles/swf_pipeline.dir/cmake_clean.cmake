file(REMOVE_RECURSE
  "CMakeFiles/swf_pipeline.dir/swf_pipeline.cpp.o"
  "CMakeFiles/swf_pipeline.dir/swf_pipeline.cpp.o.d"
  "swf_pipeline"
  "swf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
