// Bit-equality gates for the explicit-SIMD dense kernels (nn/ops.hpp).
//
// 1. The production kernels must match a plain scalar REFERENCE that
//    implements the documented canonical order — kSimdLanes lane
//    accumulators over full lane blocks, the fixed pairwise lane tree,
//    ragged tail appended sequentially — to exact bit equality, on random
//    shapes including J not a multiple of the vector width.
// 2. A windowed batched backward must equal sequential single-window
//    backwards bitwise (the property that keeps batch size out of trained
//    parameters), including with inactive windows skipped.
// 3. FlatMlp::forward_batch column k must equal forward() of sample k.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/ops.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace {

using namespace rlsched;

void fill(std::vector<float>& v, util::Rng& rng, double scale) {
  for (float& x : v) x = static_cast<float>(scale * rng.normal());
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ---------------------------------------------------------------------------
// Reference implementations of the canonical order, in plain scalar code.
// Deliberately independent of the production kernels: lane accumulators are
// a float array, the tree combine is an explicit loop.
// ---------------------------------------------------------------------------

float ref_tree_sum(float* lane) {
  for (std::size_t w = 1; w < nn::kSimdLanes; w *= 2) {
    for (std::size_t i = 0; i + w < nn::kSimdLanes; i += 2 * w) {
      lane[i] += lane[i + w];
    }
  }
  return lane[0];
}

float ref_window_dot(const float* d, const float* a, std::size_t n) {
  float lane[nn::kSimdLanes] = {};
  const std::size_t nv = n - n % nn::kSimdLanes;
  std::size_t j = 0;
  for (; j < nv; j += nn::kSimdLanes) {
    for (std::size_t l = 0; l < nn::kSimdLanes; ++l) {
      lane[l] += d[j + l] * a[j + l];
    }
  }
  float s = ref_tree_sum(lane);
  for (; j < n; ++j) s += d[j] * a[j];
  return s;
}

float ref_window_sum(const float* d, std::size_t n) {
  float lane[nn::kSimdLanes] = {};
  const std::size_t nv = n - n % nn::kSimdLanes;
  std::size_t j = 0;
  for (; j < nv; j += nn::kSimdLanes) {
    for (std::size_t l = 0; l < nn::kSimdLanes; ++l) lane[l] += d[j + l];
  }
  float s = ref_tree_sum(lane);
  for (; j < n; ++j) s += d[j];
  return s;
}

void ref_forward(const float* W, const float* b, const float* A, float* C,
                 std::size_t out, std::size_t in, std::size_t J, bool relu) {
  for (std::size_t o = 0; o < out; ++o) {
    float* row = C + o * J;
    for (std::size_t j = 0; j < J; ++j) row[j] = b[o];
    for (std::size_t i = 0; i < in; ++i) {
      const float wv = W[o * in + i];
      const float* a = A + i * J;
      for (std::size_t j = 0; j < J; ++j) row[j] += wv * a[j];
    }
    if (relu) {
      for (std::size_t j = 0; j < J; ++j) {
        row[j] = row[j] > 0.0f ? row[j] : 0.0f;
      }
    }
  }
}

void ref_backward(const float* W, const float* A, const float* C, float* dC,
                  float* dA, float* gW, float* gb, std::size_t out,
                  std::size_t in, std::size_t J, bool relu,
                  std::size_t window, const std::uint8_t* active) {
  const std::size_t win = window == 0 ? J : window;
  const std::size_t nwin = win == 0 ? 0 : J / win;
  if (relu) {
    for (std::size_t o = 0; o < out; ++o) {
      for (std::size_t w = 0; w < nwin; ++w) {
        if (active != nullptr && active[w] == 0) continue;
        for (std::size_t j = w * win; j < (w + 1) * win; ++j) {
          if (C[o * J + j] <= 0.0f) dC[o * J + j] = 0.0f;
        }
      }
    }
  }
  for (std::size_t o = 0; o < out; ++o) {
    for (std::size_t w = 0; w < nwin; ++w) {
      if (active != nullptr && active[w] == 0) continue;
      gb[o] += ref_window_sum(dC + o * J + w * win, win);
    }
    for (std::size_t i = 0; i < in; ++i) {
      for (std::size_t w = 0; w < nwin; ++w) {
        if (active != nullptr && active[w] == 0) continue;
        gW[o * in + i] +=
            ref_window_dot(dC + o * J + w * win, A + i * J + w * win, win);
      }
    }
  }
  if (dA != nullptr) {
    for (std::size_t i = 0; i < in; ++i) {
      for (std::size_t w = 0; w < nwin; ++w) {
        if (active != nullptr && active[w] == 0) continue;
        for (std::size_t j = w * win; j < (w + 1) * win; ++j) {
          dA[i * J + j] = 0.0f;
        }
      }
    }
    for (std::size_t o = 0; o < out; ++o) {
      for (std::size_t i = 0; i < in; ++i) {
        const float wv = W[o * in + i];
        for (std::size_t w = 0; w < nwin; ++w) {
          if (active != nullptr && active[w] == 0) continue;
          for (std::size_t j = w * win; j < (w + 1) * win; ++j) {
            dA[i * J + j] += wv * dC[o * J + j];
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------

void check_forward_vs_reference() {
  util::Rng rng(21);
  // Shapes chosen to cover ragged tails: J spans 1, lane-1, lane, lane+1,
  // odd primes, and multi-window sizes.
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 4, 5},    {8, 6, 7},
                                   {5, 3, 16},  {2, 9, 17},   {7, 2, 31},
                                   {4, 4, 128}, {3, 5, 257},  {6, 6, 384}};
  for (const auto& s : shapes) {
    const std::size_t out = s[0], in = s[1], J = s[2];
    for (const bool relu : {false, true}) {
      std::vector<float> W(out * in), b(out), A(in * J);
      fill(W, rng, 0.8);
      fill(b, rng, 0.4);
      fill(A, rng, 1.0);
      std::vector<float> C(out * J, -1.0f), Cref(out * J, -2.0f);
      nn::dense_batch_forward(W.data(), b.data(), A.data(), C.data(), out,
                              in, J, relu);
      ref_forward(W.data(), b.data(), A.data(), Cref.data(), out, in, J,
                  relu);
      CHECK(bits_equal(C, Cref));
    }
  }
}

void check_backward_vs_reference() {
  util::Rng rng(22);
  // {out, in, J, window}; window 0 = single window, including ragged J.
  const std::size_t shapes[][4] = {
      {3, 4, 5, 0},    {8, 6, 7, 0},     {5, 3, 33, 0},  {2, 9, 128, 0},
      {4, 5, 24, 8},   {3, 4, 20, 5},    {6, 2, 384, 128}, {2, 3, 68, 17}};
  for (const auto& s : shapes) {
    const std::size_t out = s[0], in = s[1], J = s[2], window = s[3];
    const std::size_t nwin = window == 0 ? 1 : J / window;
    for (const bool relu : {false, true}) {
      for (const bool masked : {false, true}) {
        std::vector<float> W(out * in), A(in * J), C(out * J), dC0(out * J);
        fill(W, rng, 0.8);
        fill(A, rng, 1.0);
        fill(C, rng, 1.0);
        fill(dC0, rng, 1.0);
        std::vector<std::uint8_t> active(nwin, 1);
        if (masked) {
          for (std::size_t w = 0; w < nwin; w += 2) active[w] = 0;
        }
        const std::uint8_t* act = masked ? active.data() : nullptr;

        std::vector<float> dC(dC0), dA(in * J, 0.5f), gW(out * in, 0.25f),
            gb(out, 0.125f);
        nn::dense_batch_backward(W.data(), A.data(), C.data(), dC.data(),
                                 dA.data(), gW.data(), gb.data(), out, in, J,
                                 relu, window, act);
        std::vector<float> rdC(dC0), rdA(in * J, 0.5f), rgW(out * in, 0.25f),
            rgb(out, 0.125f);
        ref_backward(W.data(), A.data(), C.data(), rdC.data(), rdA.data(),
                     rgW.data(), rgb.data(), out, in, J, relu, window, act);
        CHECK(bits_equal(gW, rgW));
        CHECK(bits_equal(gb, rgb));
        CHECK(bits_equal(dA, rdA));
        CHECK(bits_equal(dC, rdC));
      }
    }
  }
}

// A windowed batched backward must be BITWISE identical to sequential
// single-window backwards — the property that makes batch size invisible
// to trained parameters.
void check_windowed_equals_sequential() {
  util::Rng rng(23);
  const std::size_t out = 5, in = 4, win = 19;  // ragged vs any lane width
  for (const std::size_t nwin : {1u, 3u, 8u}) {
    const std::size_t J = nwin * win;
    std::vector<float> W(out * in), A(in * J), C(out * J), dC0(out * J);
    fill(W, rng, 0.8);
    fill(A, rng, 1.0);
    fill(C, rng, 1.0);
    fill(dC0, rng, 1.0);

    std::vector<float> dC(dC0), dA(in * J), gW(out * in, 0.0f), gb(out, 0.0f);
    nn::dense_batch_backward(W.data(), A.data(), C.data(), dC.data(),
                             dA.data(), gW.data(), gb.data(), out, in, J,
                             /*relu=*/true, win, nullptr);

    // Sequential single-window calls on views of each window. The window
    // views are strided out of the batched arrays (row stride J), so copy
    // each window into compact (x win) buffers first.
    std::vector<float> sgW(out * in, 0.0f), sgb(out, 0.0f);
    std::vector<float> sdA(in * J);
    for (std::size_t w = 0; w < nwin; ++w) {
      std::vector<float> Aw(in * win), Cw(out * win), dCw(out * win),
          dAw(in * win);
      for (std::size_t i = 0; i < in; ++i) {
        std::memcpy(Aw.data() + i * win, A.data() + i * J + w * win,
                    win * sizeof(float));
      }
      for (std::size_t o = 0; o < out; ++o) {
        std::memcpy(Cw.data() + o * win, C.data() + o * J + w * win,
                    win * sizeof(float));
        std::memcpy(dCw.data() + o * win, dC0.data() + o * J + w * win,
                    win * sizeof(float));
      }
      nn::dense_batch_backward(W.data(), Aw.data(), Cw.data(), dCw.data(),
                               dAw.data(), sgW.data(), sgb.data(), out, in,
                               win, /*relu=*/true);
      for (std::size_t i = 0; i < in; ++i) {
        std::memcpy(sdA.data() + i * J + w * win, dAw.data() + i * win,
                    win * sizeof(float));
      }
    }
    CHECK(bits_equal(gW, sgW));
    CHECK(bits_equal(gb, sgb));
    CHECK(bits_equal(dA, sdA));
  }
}

void check_flat_mlp_batch() {
  util::Rng rng(24);
  nn::FlatMlp net({6, 11, 5, 3});
  std::vector<float> params(net.param_count());
  net.init(params.data(), rng);

  for (const std::size_t n : {1u, 2u, 7u, 32u}) {
    std::vector<float> X(6 * n);
    fill(X, rng, 1.0);
    // SoA slab: feature i of sample k at X[i*n + k]. Column k extracted
    // for the single-sample reference call.
    std::vector<float> batched(3 * n);
    {
      const float* out = net.forward_batch(params.data(), X.data(), n);
      std::memcpy(batched.data(), out, batched.size() * sizeof(float));
    }
    for (std::size_t k = 0; k < n; ++k) {
      float xk[6];
      for (std::size_t i = 0; i < 6; ++i) xk[i] = X[i * n + k];
      const float* out = net.forward(params.data(), xk);
      for (std::size_t o = 0; o < 3; ++o) {
        CHECK(std::memcmp(&batched[o * n + k], &out[o], sizeof(float)) == 0);
      }
    }

    // Per-sample-window batched backward == sequential backward() calls.
    std::vector<float> dOut(3 * n);
    fill(dOut, rng, 1.0);
    std::vector<float> g(net.param_count(), 0.0f), dX(6 * n, 0.0f);
    net.forward_batch(params.data(), X.data(), n);
    net.backward_batch(params.data(), X.data(), dOut.data(), g.data(), n,
                       /*window=*/1, nullptr, dX.data());
    std::vector<float> gs(net.param_count(), 0.0f);
    for (std::size_t k = 0; k < n; ++k) {
      float xk[6], dk[3], dxk[6];
      for (std::size_t i = 0; i < 6; ++i) xk[i] = X[i * n + k];
      for (std::size_t o = 0; o < 3; ++o) dk[o] = dOut[o * n + k];
      net.backward(params.data(), xk, dk, gs.data(), dxk);
      for (std::size_t i = 0; i < 6; ++i) {
        CHECK(std::memcmp(&dX[i * n + k], &dxk[i], sizeof(float)) == 0);
      }
    }
    CHECK(bits_equal(g, gs));
  }
}

}  // namespace

int main() {
  std::printf("RLSCHED_SIMD lanes: %zu\n", nn::kSimdLanes);
  check_forward_vs_reference();
  check_backward_vs_reference();
  check_windowed_equals_sequential();
  check_flat_mlp_batch();
  std::puts("simd kernel bit-equality: OK");
  return 0;
}
