// The indexed-core acceptance gate: SchedulingEnv (timeline + Fenwick fit
// index + min-key index) must produce BITWISE-identical schedules to the
// frozen naive ReferenceEnv — the same job-start event sequence, the same
// per-job start times, the same aggregate RunResult — across:
//
//   * randomized fuzz traces (storm bursts with tied submit times,
//     integer-rounded runtimes that force equal completion times, zero
//     runtimes, over-wide requests that exercise the clamp) and synthetic
//     PIK-IPLEX storm + SDSC-SP2 workloads;
//   * adversarial staircase mixes — anticorrelated procs/req_time storms
//     behind full-width blockers, exact duplicates (tied keys), and
//     horizon/spare boundary probes — the shapes that defeat the plain
//     (min, min) backfill prune and stress the Pareto-staircase index;
//   * all five Table III heuristics via run_priority() — the
//     time-invariant ones (FCFS/SJF/F1) in BOTH kinds, proving the
//     O(log P) min-key index equals the O(P) scan decision for decision;
//   * the kernel policy and a seeded random-action agent via step();
//   * backfill off and on (EASY reservations + fit-index queue jumps);
//   * materialized and streamed ingestion (chunk sizes 1 and 17).
//
// Every mismatch reports the fuzz seed and configuration so a failure is
// reproducible from the log line alone.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "sim/reference_env.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {
using namespace rlsched;

struct Event {
  std::int64_t id;
  double submit;
  double start;
  int procs;
};

void record_event(void* ctx, const trace::Job& j) {
  static_cast<std::vector<Event>*>(ctx)->push_back(
      {j.id, j.submit_time, j.start_time, j.requested_procs});
}

bool events_equal(const std::vector<Event>& a, const std::vector<Event>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].procs != b[i].procs) return false;
    if (std::memcmp(&a[i].submit, &b[i].submit, sizeof(double)) != 0 ||
        std::memcmp(&a[i].start, &b[i].start, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct Run {
  std::vector<Event> events;
  sim::RunResult result;
};

// --- episode drivers, templated over the two cores ---

template <class Env>
Run drive_heuristic(Env& env, const sim::PriorityFn& fn,
                    sim::PriorityKind kind) {
  Run r;
  env.set_start_hook(&record_event, &r.events);
  r.result = env.run_priority(fn, kind);
  env.set_start_hook(nullptr, nullptr);
  return r;
}

template <class Env>
Run drive_kernel(Env& env, const rl::Policy& policy) {
  Run r;
  env.set_start_hook(&record_event, &r.events);
  const rl::ObservationBuilder builder;
  rl::Observation obs;
  while (!env.done()) {
    builder.build_into(env, obs);
    const rl::Logits logits = policy.logits(obs);
    env.step(nn::argmax_masked(logits.data(), obs.mask.data(),
                               rl::kMaxObservable));
  }
  r.result = env.result();
  env.set_start_hook(nullptr, nullptr);
  return r;
}

template <class Env>
Run drive_random(Env& env, std::uint64_t seed) {
  // Same seed on both cores: as long as the observable windows agree, the
  // drawn action sequences agree — any divergence surfaces as an event
  // mismatch.
  util::Rng rng(seed);
  Run r;
  env.set_start_hook(&record_event, &r.events);
  while (!env.done()) {
    const std::size_t w = env.observable().size();
    env.step(static_cast<std::size_t>(rng.below(w)));
  }
  r.result = env.result();
  env.set_start_hook(nullptr, nullptr);
  return r;
}

// --- the differential check ---

struct Context {
  const char* trace_label;
  std::uint64_t seed;
  bool backfill;
  const char* driver;
  std::size_t chunk;  // 0 = materialized
};

[[noreturn]] void fail(const Context& c, const char* what) {
  std::fprintf(stderr,
               "MISMATCH (%s): trace=%s seed=%llu backfill=%d driver=%s "
               "%s\n",
               what, c.trace_label,
               static_cast<unsigned long long>(c.seed), c.backfill ? 1 : 0,
               c.driver,
               c.chunk == 0 ? "materialized"
                            : ("chunk=" + std::to_string(c.chunk)).c_str());
  std::exit(1);
}

void check_pair(const Context& c, const sim::SchedulingEnv& env,
                const sim::ReferenceEnv& ref, const Run& got,
                const Run& want) {
  if (!events_equal(got.events, want.events)) fail(c, "start events");
  if (!sim::bitwise_equal(got.result, want.result)) fail(c, "RunResult");
  if (c.chunk == 0) {
    // Materialized: both cores retain the full (identically sorted) job
    // vector — require per-job start-time equality too.
    const auto& a = env.jobs();
    const auto& b = ref.jobs();
    if (a.size() != b.size()) fail(c, "job count");
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].id != b[i].id ||
          std::memcmp(&a[i].start_time, &b[i].start_time,
                      sizeof(double)) != 0) {
        fail(c, "per-job start time");
      }
    }
  }
}

template <class DriveFn>
void compare(Context c, const std::vector<trace::Job>& jobs, int procs,
             DriveFn&& drive) {
  const sim::EnvConfig cfg{.backfill = c.backfill};
  // materialized
  {
    c.chunk = 0;
    sim::SchedulingEnv env(procs, cfg);
    sim::ReferenceEnv ref(procs, cfg);
    env.reset(jobs);
    ref.reset(jobs);
    const Run got = drive(env);
    const Run want = drive(ref);
    check_pair(c, env, ref, got, want);
  }
  // streamed, pathological and mid-size chunks
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{17}}) {
    c.chunk = chunk;
    trace::Trace src_a("equiv", procs, jobs);
    trace::Trace src_b("equiv", procs, jobs);
    sim::SchedulingEnv env(procs, cfg);
    sim::ReferenceEnv ref(procs, cfg);
    env.reset(src_a, chunk);
    ref.reset(src_b, chunk);
    const Run got = drive(env);
    const Run want = drive(ref);
    check_pair(c, env, ref, got, want);
  }
}

// --- fuzz workload: storms, ties, degenerate jobs ---

std::vector<trace::Job> fuzz_trace(std::uint64_t seed, int* procs_out) {
  util::Rng rng(seed);
  const int procs_choices[] = {4, 16, 64};
  const int procs = procs_choices[rng.below(3)];
  const std::size_t n = 60 + rng.below(240);
  std::vector<trace::Job> jobs(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace::Job& j = jobs[i];
    j.id = static_cast<std::int64_t>(i) + 1;
    // Bursty arrivals: 40% of jobs share their submit time with the
    // previous job (storm spikes + exact submit ties); otherwise advance
    // by an integer-ish gap.
    if (i > 0 && rng.uniform() < 0.4) {
      t = jobs[i - 1].submit_time;
    } else {
      t += static_cast<double>(rng.below(30));
    }
    j.submit_time = t;
    // Integer runtimes from a small set make equal completion times
    // common — the reservation tie-group semantics must hold.
    const double runs[] = {0.0, 1.0, 5.0, 10.0, 50.0, 120.0, 777.0};
    j.run_time = runs[rng.below(7)];
    j.requested_time = rng.uniform() < 0.5
                           ? j.run_time
                           : j.run_time + static_cast<double>(rng.below(60));
    // Mostly narrow, sometimes wider than the machine (clamp path).
    j.requested_procs = 1 + static_cast<int>(rng.below(
        rng.uniform() < 0.15 ? static_cast<std::uint64_t>(2 * procs)
                             : static_cast<std::uint64_t>(procs)));
    j.user = static_cast<int>(rng.below(5));
  }
  *procs_out = procs;
  return jobs;
}

// --- adversarial workload: staircase-shaped mixes ---
//
// Blocks of jobs with ANTICORRELATED procs/req_time (narrow-and-long vs
// wide-and-short, procs ascending while req_time descends) put every
// subtree's (min procs, min req_time) on two DIFFERENT jobs, so the plain
// corner prune passes while no actual job fits — the shape that degrades
// a corner-only descent to O(P) and that the Pareto staircase must prune
// without ever skipping an eligible job. Full-width blockers pin the
// machine so each decision answers the backfill query against a live
// reservation horizon; exact duplicates tie every index key at the same
// submit time; integer requests place jobs exactly ON the
// now + req_time == horizon and procs == spare/free edges.
std::vector<trace::Job> adversarial_trace(std::uint64_t seed,
                                          int* procs_out) {
  util::Rng rng(seed);
  const int procs = rng.uniform() < 0.5 ? 32 : 64;
  std::vector<trace::Job> jobs;
  double t = 0.0;
  std::int64_t id = 1;
  const std::size_t blocks = 4 + rng.below(4);
  for (std::size_t b = 0; b < blocks; ++b) {
    trace::Job blocker{};
    blocker.id = id++;
    blocker.submit_time = t;
    blocker.run_time = 60.0 + static_cast<double>(rng.below(5)) * 30.0;
    blocker.requested_time = blocker.run_time;
    blocker.requested_procs = procs;
    blocker.user = 0;
    jobs.push_back(blocker);

    // The anticorrelated staircase storm, all submitted in one tick.
    const std::size_t steps = 8 + rng.below(24);
    for (std::size_t s = 0; s < steps; ++s) {
      trace::Job j{};
      j.id = id++;
      j.submit_time = t;
      j.requested_procs = std::min(
          1 + static_cast<int>((s * static_cast<std::size_t>(procs)) /
                               steps),
          procs);
      j.requested_time = static_cast<double>((steps - s) * 15 + 30);
      j.run_time = rng.uniform() < 0.2
                       ? 0.0
                       : std::min(j.requested_time,
                                  static_cast<double>(5 + 10 * rng.below(6)));
      j.user = static_cast<int>(rng.below(3));
      jobs.push_back(j);
      if (rng.uniform() < 0.25) {
        trace::Job dup = j;  // exact tie in every index key
        dup.id = id++;
        jobs.push_back(dup);
      }
    }

    // Horizon-boundary probes: request exactly the blocker's length at
    // widths 1..4, so eligibility flips on the == edge of
    // now + req_time <= horizon and on procs == spare as the tail drains.
    for (int w = 1; w <= 4; ++w) {
      trace::Job j{};
      j.id = id++;
      j.submit_time = t;
      j.requested_time = blocker.run_time;
      j.run_time = rng.uniform() < 0.5 ? j.requested_time : 1.0;
      j.requested_procs = w;
      j.user = 1;
      jobs.push_back(j);
    }
    t += static_cast<double>(30 + rng.below(90));
  }
  *procs_out = procs;
  return jobs;
}

}  // namespace

int main() {
  using namespace rlsched;
  util::Rng policy_rng(7);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, policy_rng);

  struct Workload {
    const char* label;
    std::uint64_t seed;
    int procs;
    std::vector<trace::Job> jobs;
  };
  std::vector<Workload> workloads;

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Workload w{"fuzz", seed, 0, {}};
    w.jobs = fuzz_trace(seed, &w.procs);
    workloads.push_back(std::move(w));
  }
  for (std::uint64_t seed = 101; seed <= 104; ++seed) {
    Workload w{"adversarial", seed, 0, {}};
    w.jobs = adversarial_trace(seed, &w.procs);
    workloads.push_back(std::move(w));
  }
  {
    // PIK-IPLEX storm: Table II shape with submits compressed 100x so the
    // whole trace stacks into a standing backlog under heavy contention.
    auto trace = workload::make_trace("PIK-IPLEX", 700, 11);
    Workload w{"pik-storm", 11, trace.processors(), trace.jobs()};
    for (trace::Job& j : w.jobs) j.submit_time *= 0.01;
    workloads.push_back(std::move(w));
  }
  {
    auto trace = workload::make_trace("SDSC-SP2", 600, 13);
    workloads.push_back(
        {"sdsc", 13, trace.processors(), trace.jobs()});
  }

  std::size_t episodes = 0;
  for (const Workload& w : workloads) {
    for (const bool backfill : {false, true}) {
      Context c{w.label, w.seed, backfill, "", 0};
      for (const auto& h : sched::all_heuristics()) {
        c.driver = h.name.c_str();
        compare(c, w.jobs, w.procs, [&](auto& env) {
          return drive_heuristic(env, h.priority, h.kind);
        });
        ++episodes;
        if (h.kind == sim::PriorityKind::TimeInvariant) {
          // Cross-check the min-key index against the plain scan: the
          // indexed core must give the same schedule under either kind.
          compare(c, w.jobs, w.procs, [&](auto& env) {
            return drive_heuristic(env, h.priority,
                                   sim::PriorityKind::TimeVarying);
          });
          ++episodes;
        }
      }
      c.driver = "kernel";
      compare(c, w.jobs, w.procs,
              [&](auto& env) { return drive_kernel(env, *policy); });
      ++episodes;
      c.driver = "random";
      compare(c, w.jobs, w.procs, [&](auto& env) {
        return drive_random(env, w.seed * 1000003 + (backfill ? 1 : 0));
      });
      ++episodes;
    }
  }

  std::printf(
      "indexed core == reference core: %zu episode configs x "
      "{materialized, chunk=1, chunk=17}, bitwise: OK\n",
      episodes);
  return 0;
}
