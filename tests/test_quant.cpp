// Gates for the int8 quantized inference path (nn/quant.hpp + the kernel
// policy's quantize-on-load):
//
//   * every packed kernel — weight packing, activation quantization, the
//     fused hidden layer (integer epilogue clamp((dot + acc0) >> rshift,
//     0, 255)), the dequantizing final layer — is BITWISE equal to a naive
//     unpacked scalar reference built from the same arithmetic contract
//     (clamp-then-rne packing, exact int32 MACs, arithmetic shift,
//     single-rounding fmaf dequant), across ragged column counts that
//     exercise the vector paths' tail lanes on every RLSCHED_SIMD width;
//   * edge tensors: all-zero weights (scale 1, exact-zero products,
//     bias-only output), saturating extremes (amax maps to exactly +-127,
//     over-range activations clamp to 255, negatives to 0, and full
//     i32-range accumulator inits saturate exactly through the packed
//     epilogue);
//   * quantize-on-load round-trip determinism: enable -> disable ->
//     re-enable reproduces bit-identical quantized logits;
//   * quantization OFF is bitwise invisible: logits_quant and the quant
//     batched-argmax are the exact float path;
//   * accuracy fixture over real evaluation windows (trained policy):
//     per-logit error bound vs float32, >= 99.9% masked-argmax agreement
//     on decisive windows (float top-2 gap beyond the bound), bounded
//     regret on every window, with the batched quant rows bitwise equal
//     to the unbatched quant forward.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "nn/ops.hpp"
#include "nn/quant.hpp"
#include "rl/batch_eval.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {
using namespace rlsched;

// --- naive reference: same arithmetic contract, no packing, no SIMD ---

std::uint8_t ref_u8(float t) {
  t = std::min(std::max(t, 0.0f), 255.0f);
  return static_cast<std::uint8_t>(
      static_cast<std::int32_t>(std::nearbyintf(t)));
}

std::int8_t ref_s8(float t) {
  t = std::min(std::max(t, -127.0f), 127.0f);
  return static_cast<std::int8_t>(
      static_cast<std::int32_t>(std::nearbyintf(t)));
}

struct RefLayer {
  std::vector<std::int8_t> qw;   // [out][in]
  std::vector<std::uint8_t> qa;  // [in][J]
  std::vector<std::int32_t> acc; // [out][J]
};

RefLayer ref_forward(const std::vector<float>& w, const std::vector<float>& a,
                     std::size_t out_dim, std::size_t in_dim, std::size_t J,
                     float wscale, float ascale) {
  RefLayer r;
  r.qw.resize(out_dim * in_dim);
  for (std::size_t i = 0; i < r.qw.size(); ++i) {
    r.qw[i] = ref_s8(w[i] / wscale);
  }
  r.qa.resize(in_dim * J);
  for (std::size_t i = 0; i < r.qa.size(); ++i) {
    r.qa[i] = ref_u8(a[i] / ascale);
  }
  r.acc.assign(out_dim * J, 0);
  for (std::size_t o = 0; o < out_dim; ++o) {
    for (std::size_t i = 0; i < in_dim; ++i) {
      for (std::size_t j = 0; j < J; ++j) {
        r.acc[o * J + j] += static_cast<std::int32_t>(r.qa[i * J + j]) *
                            r.qw[o * in_dim + i];
      }
    }
  }
  return r;
}

// --- packed-kernel equivalence across shapes (ragged tails included) ---

void check_layer_shapes(std::size_t out_dim, std::size_t in_dim,
                        std::size_t J, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> w(out_dim * in_dim), a(in_dim * J);
  for (float& x : w) x = static_cast<float>(rng.uniform(-1.5, 1.5));
  for (float& x : a) {
    // Mostly in-range positives, some negatives (relu/0-clamp path) and
    // some over-range values (255-clamp path).
    const double u = rng.uniform();
    x = u < 0.1 ? static_cast<float>(-rng.uniform())
                : static_cast<float>(rng.uniform(0.0, u > 0.9 ? 9.0 : 2.0));
  }
  const float wscale = nn::weight_scale(w.data(), w.size());
  const float ascale = 2.0f / 255.0f;
  const RefLayer ref =
      ref_forward(w, a, out_dim, in_dim, J, wscale, ascale);

  const std::size_t groups = nn::quant_groups(in_dim);
  std::vector<std::int8_t> wq(out_dim * groups * nn::kQuantGroup);
  nn::pack_weights_s8(w.data(), out_dim, in_dim, wscale, wq.data());
  for (std::size_t o = 0; o < out_dim; ++o) {
    for (std::size_t i = 0; i < groups * nn::kQuantGroup; ++i) {
      const std::int8_t want = i < in_dim ? ref.qw[o * in_dim + i] : 0;
      CHECK(wq[(o * groups) * nn::kQuantGroup + i] == want);
    }
  }

  std::vector<std::uint8_t> aq(groups * J * nn::kQuantGroup);
  nn::pack_acts_u8(a.data(), in_dim, J, J, 1.0f / ascale, aq.data());
  for (std::size_t i = 0; i < groups * nn::kQuantGroup; ++i) {
    for (std::size_t j = 0; j < J; ++j) {
      const std::uint8_t want = i < in_dim ? ref.qa[i * J + j] : 0;
      CHECK(aq[((i / 4) * J + j) * 4 + i % 4] == want);
    }
  }

  // Fused hidden layer (needs out_dim % 4 == 0). Several shift amounts,
  // accumulator inits spanning negative through saturating.
  if (out_dim % 4 == 0) {
    for (const int rshift : {0, 3, 7}) {
      std::vector<std::int32_t> acc0(out_dim);
      for (std::int32_t& x : acc0) {
        x = static_cast<std::int32_t>(rng.uniform(-60000.0, 60000.0)) +
            (rshift > 0 ? std::int32_t{1} << (rshift - 1) : 0);
      }
      std::vector<std::uint8_t> got((out_dim / 4) * J * 4);
      nn::quant_dense_hidden(aq.data(), wq.data(), out_dim, groups, J,
                             rshift, acc0.data(), got.data());
      for (std::size_t o = 0; o < out_dim; ++o) {
        for (std::size_t j = 0; j < J; ++j) {
          const std::int32_t t = (ref.acc[o * J + j] + acc0[o]) >> rshift;
          const auto want =
              static_cast<std::uint8_t>(std::min(std::max(t, 0), 255));
          CHECK(got[((o / 4) * J + j) * 4 + o % 4] == want);
        }
      }
    }
  }

  // Dequantizing final layer (any out_dim).
  {
    std::vector<float> bias(out_dim);
    for (float& x : bias) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float m = wscale * ascale;
    std::vector<float> got(out_dim * J);
    nn::quant_dense_f32(aq.data(), wq.data(), out_dim, groups, J, m,
                        bias.data(), got.data());
    for (std::size_t o = 0; o < out_dim; ++o) {
      for (std::size_t j = 0; j < J; ++j) {
        const float want = std::fmaf(
            static_cast<float>(ref.acc[o * J + j]), m, bias[o]);
        CHECK(std::memcmp(&got[o * J + j], &want, sizeof(float)) == 0);
      }
    }
  }
}

void test_kernels_vs_reference() {
  // (out_dim, in_dim, J): the policy's real shapes plus ragged column
  // counts (J % 16 != 0 exercises the vector backends' scalar tails) and
  // in_dim not a multiple of the packing group.
  const std::size_t shapes[][3] = {{32, 6, 128}, {16, 32, 128}, {8, 16, 128},
                                   {4, 8, 128},  {8, 16, 17},   {4, 7, 5},
                                   {8, 3, 1},    {12, 9, 33},   {1, 8, 128},
                                   {3, 5, 17},   {2, 4, 16},    {5, 6, 31}};
  std::uint64_t seed = 40;
  for (const auto& s : shapes) {
    check_layer_shapes(s[0], s[1], s[2], ++seed);
  }
}

// --- edge tensors ---

void test_zero_and_saturation() {
  // All-zero weights: scale 1 (no divide-by-zero), products exactly zero,
  // the final layer returns the bias bit-for-bit.
  const std::vector<float> zeros(4 * 8, 0.0f);
  CHECK(nn::weight_scale(zeros.data(), zeros.size()) == 1.0f);
  std::vector<std::int8_t> wq(4 * 2 * 4);
  nn::pack_weights_s8(zeros.data(), 4, 8, 1.0f, wq.data());
  for (const std::int8_t q : wq) CHECK(q == 0);

  std::vector<float> a(8 * 16);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(i) * 0.37f;
  }
  std::vector<std::uint8_t> aq(2 * 16 * 4);
  nn::pack_acts_u8(a.data(), 8, 16, 16, 1.0f, aq.data());
  const float bias[4] = {-2.5f, 0.0f, 1.25f, 7.0f};
  std::vector<float> out(4 * 16);
  nn::quant_dense_f32(aq.data(), wq.data(), 4, 2, 16, 0.125f, bias,
                      out.data());
  for (std::size_t o = 0; o < 4; ++o) {
    for (std::size_t j = 0; j < 16; ++j) CHECK(out[o * 16 + j] == bias[o]);
  }
  // And the hidden layer collapses to clamp(acc0[o] >> rshift, 0, 255) —
  // including full i32-range inits, which must saturate exactly through
  // the packed epilogue (2043 >> 3 == 255 is the exact boundary).
  const std::int32_t c[4] = {-(std::int32_t{1} << 30), 900, 2043,
                             std::int32_t{1} << 30};
  std::vector<std::uint8_t> h(1 * 16 * 4);
  nn::quant_dense_hidden(aq.data(), wq.data(), 4, 2, 16, 3, c, h.data());
  const std::uint8_t want_h[4] = {0, 112, 255, 255};  // 900 >> 3 == 112
  for (std::size_t j = 0; j < 16; ++j) {
    for (std::size_t r = 0; r < 4; ++r) CHECK(h[j * 4 + r] == want_h[r]);
  }

  // Saturating extremes: amax quantizes to exactly +-127; activations at
  // and beyond the calibrated ceiling clamp to 255, negatives to 0.
  const float w[8] = {2.0f, -2.0f, 1.0f, -1.0f, 0.5f, 0.0f, 1.99999f, -0.5f};
  const float ws = nn::weight_scale(w, 8);
  CHECK(ws == 2.0f / 127.0f);
  std::vector<std::int8_t> wq2(1 * 2 * 4);
  nn::pack_weights_s8(w, 1, 8, ws, wq2.data());
  CHECK(wq2[0] == 127 && wq2[1] == -127);
  CHECK(wq2[2] == 64);  // rne(63.5) rounds to even

  const float acts[4] = {255.0f, 300.0f, -7.0f, 254.49f};
  std::vector<std::uint8_t> aq2(1 * 1 * 4);
  nn::pack_acts_u8(acts, 4, 1, 1, 1.0f, aq2.data());
  CHECK(aq2[0] == 255 && aq2[1] == 255 && aq2[2] == 0 && aq2[3] == 254);
}

// --- policy-level fixtures over real evaluation windows ---

std::vector<rl::Observation> collect_observations(const rl::Policy& policy,
                                                  std::size_t limit) {
  std::vector<rl::Observation> out;
  const rl::ObservationBuilder builder;
  for (const std::uint64_t seed : {17ull, 29ull}) {
    auto trace = workload::make_trace("SDSC-SP2", 500, seed);
    // Compress submits so windows stay congested (multi-job argmaxes).
    auto jobs = trace.jobs();
    for (trace::Job& j : jobs) j.submit_time *= 0.05;
    sim::SchedulingEnv env(trace.processors(),
                           sim::EnvConfig{true, rl::kMaxObservable});
    env.reset(jobs);
    while (!env.done() && out.size() < limit) {
      rl::Observation obs;
      builder.build_into(env, obs);
      out.push_back(obs);
      const rl::Logits l = policy.logits(obs);
      env.step(nn::argmax_masked(l.data(), obs.mask.data(),
                                 rl::kMaxObservable));
    }
  }
  return out;
}

void test_policy_quant() {
  // A briefly-trained policy, not the random init: argmax agreement is
  // only meaningful for a policy with actual preferences. The 0.01-scaled
  // random head scores every job within ~1e-3 of every other — pure
  // near-ties that ANY finite-precision change flips — while training
  // separates the scores the way a deployed policy's would be.
  // Train on a small congested cluster (SDSC-SP2, 128 procs) with
  // compressed submits. On an uncontended trace every ordering reaches
  // slowdown 1.0, all advantages normalize to exactly zero, and the
  // policy gradient vanishes — the "trained" policy would silently stay
  // at its random init (near-tied logits, meaningless argmax agreement).
  auto base = workload::make_trace("SDSC-SP2", 600, 23);
  std::vector<trace::Job> jobs(base.jobs().begin(), base.jobs().end());
  for (trace::Job& j : jobs) j.submit_time *= 0.05;
  trace::Trace trace("sdsc-congested", base.processors(), std::move(jobs));
  rl::PPOConfig tcfg;
  tcfg.policy = rl::PolicyKind::Kernel;
  tcfg.seq_len = 64;
  tcfg.trajectories_per_epoch = 8;
  tcfg.pi_iters = 4;
  tcfg.v_iters = 2;
  tcfg.seed = 5;
  rl::PPOTrainer trainer(trace, tcfg);
  for (int e = 0; e < 40; ++e) trainer.train_epoch();
  rl::Policy* policy = &trainer.policy();
  const std::vector<rl::Observation> fixture =
      collect_observations(*policy, 600);
  CHECK(fixture.size() >= 200);
  std::vector<const rl::Observation*> ptrs;
  for (const rl::Observation& o : fixture) ptrs.push_back(&o);

  // OFF is bitwise invisible: the quant entry points ARE the float path.
  CHECK(policy->supports_quant());
  CHECK(!policy->quant_enabled());
  {
    const rl::Logits f = policy->logits(fixture[0]);
    const rl::Logits q = policy->logits_quant(fixture[0]);
    CHECK(std::memcmp(f.data(), q.data(), sizeof(f)) == 0);
  }

  // Calibrate on a prefix, evaluate on everything (held-out windows too).
  CHECK(policy->enable_quant(ptrs.data(), 64));
  CHECK(policy->quant_enabled());

  // Round-trip determinism of quantize-on-load.
  std::vector<rl::Logits> first;
  for (const rl::Observation& o : fixture) {
    first.push_back(policy->logits_quant(o));
  }
  policy->disable_quant();
  CHECK(!policy->quant_enabled());
  CHECK(policy->enable_quant(ptrs.data(), 64));
  for (std::size_t k = 0; k < fixture.size(); ++k) {
    const rl::Logits q = policy->logits_quant(fixture[k]);
    CHECK(std::memcmp(q.data(), first[k].data(), sizeof(q)) == 0);
  }

  // Batched quant rows == unbatched quant forward, bitwise.
  const std::size_t B = 32;
  std::vector<float> slab(B * rl::kMaxObservable);
  std::vector<std::uint32_t> actions(B);
  rl::batched_argmax_quant(*policy, ptrs.data(), B, slab.data(),
                           actions.data());
  for (std::size_t k = 0; k < B; ++k) {
    CHECK(std::memcmp(slab.data() + k * rl::kMaxObservable, first[k].data(),
                      sizeof(rl::Logits)) == 0);
  }

  // Accuracy. Per-tensor int8 through four layers carries an error floor
  // of a few percent of the logit range, so raw argmax equality over ALL
  // windows is not a meaningful target: a window whose top-2 scores are
  // tied within that resolution is flipped by ANY finite-precision change,
  // and either pick is equally good. The gates that ARE meaningful:
  //   1. every logit within a per-logit error bound tol,
  //   2. >=99.9% argmax agreement on DECISIVE windows (float top-2 masked
  //      gap > 2*tol). Gate 1 implies 100% here — q[best] >= f[best]-tol
  //      beats q[j] <= f[j]+tol < f[best]-tol for every rival j — so any
  //      disagreement means the quantized path broke a real preference.
  //   3. bounded regret on EVERY window: the float score of the quantized
  //      pick is within 2*tol of the float-optimal score (also implied by
  //      gate 1; checked directly so a bound bug cannot hide).
  float logit_amax = 0.0f;
  for (std::size_t k = 0; k < fixture.size(); ++k) {
    const rl::Logits f = policy->logits(fixture[k]);
    for (std::size_t j = 0; j < fixture[k].count; ++j) {
      logit_amax = std::max(logit_amax, std::fabs(f[j]));
    }
  }
  const float tol = 0.08f * std::max(logit_amax, 1e-3f);
  std::size_t decisive = 0, agree = 0;
  float err_max = 0.0f, regret_max = 0.0f;
  for (std::size_t k = 0; k < fixture.size(); ++k) {
    const rl::Logits f = policy->logits(fixture[k]);
    const rl::Logits q = policy->logits_quant(fixture[k]);
    const std::uint8_t* mask = fixture[k].mask.data();
    for (std::size_t j = 0; j < fixture[k].count; ++j) {
      err_max = std::max(err_max, std::fabs(q[j] - f[j]));
    }
    const std::size_t af = nn::argmax_masked(f.data(), mask,
                                             rl::kMaxObservable);
    const std::size_t aq = nn::argmax_masked(q.data(), mask,
                                             rl::kMaxObservable);
    regret_max = std::max(regret_max, f[af] - f[aq]);
    float second = -std::numeric_limits<float>::infinity();
    for (std::size_t j = 0; j < rl::kMaxObservable; ++j) {
      if (mask[j] && j != af) second = std::max(second, f[j]);
    }
    if (f[af] - second > 2.0f * tol) {  // single-candidate gap = +inf
      ++decisive;
      agree += af == aq;
    }
  }
  std::printf("quant[%s]: logit amax %.4g, max err %.4g (tol %.4g), "
              "regret max %.4g, decisive agreement %zu/%zu (fixture %zu)\n",
              nn::quant_isa(), static_cast<double>(logit_amax),
              static_cast<double>(err_max), static_cast<double>(tol),
              static_cast<double>(regret_max), agree, decisive,
              fixture.size());
  CHECK(err_max <= tol);
  CHECK(regret_max <= 2.0f * tol);
  // The decisive set must be a real sample, not a vacuous gate.
  CHECK(decisive * 4 >= fixture.size());
  CHECK(static_cast<double>(agree) >= 0.999 * static_cast<double>(decisive));

  // Disabled again -> float path, bitwise (the "off is off" gate).
  policy->disable_quant();
  std::vector<float> slab_q(B * rl::kMaxObservable);
  std::vector<std::uint32_t> actions_f(B), actions_q(B);
  rl::batched_argmax(*policy, ptrs.data(), B, slab.data(), actions_f.data());
  rl::batched_argmax_quant(*policy, ptrs.data(), B, slab_q.data(),
                           actions_q.data());
  CHECK(std::memcmp(slab.data(), slab_q.data(),
                    B * rl::kMaxObservable * sizeof(float)) == 0);
  CHECK(actions_f == actions_q);
}

}  // namespace

int main() {
  test_kernels_vs_reference();
  test_zero_and_saturation();
  test_policy_quant();
  std::printf("quantized inference: packed kernels bitwise vs reference, "
              "edge tensors, round-trip, accuracy gates: OK (isa=%s)\n",
              rlsched::nn::quant_isa());
  return 0;
}
