// One-epoch PPO smoke test at a tiny budget: training runs, produces a
// finite metric, actually moves the policy parameters, and a save/load
// round trip reproduces the greedy schedule bit-for-bit.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/rlscheduler.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

#include "test_util.hpp"

namespace {
// A deliberately congested workload: jobs arrive far faster than the
// machine drains, so every decision sees a multi-job window. (A sampled
// low-load sequence can present single-job windows at every step — then
// the policy gradient is correctly zero and the "parameters moved" check
// would be vacuous.)
rlsched::trace::Trace congested_trace() {
  rlsched::util::Rng rng(99);
  std::vector<rlsched::trace::Job> jobs;
  for (int i = 0; i < 1500; ++i) {
    rlsched::trace::Job j;
    j.id = i + 1;
    j.submit_time = 20.0 * i;
    j.requested_time = 600.0 + 4000.0 * rng.uniform();
    j.run_time = j.requested_time * rng.uniform(0.5, 1.0);
    j.requested_procs = 1 + static_cast<int>(rng.below(48));
    j.user = 1 + static_cast<int>(rng.below(6));
    jobs.push_back(j);
  }
  return rlsched::trace::Trace("congested", 128, std::move(jobs));
}
}  // namespace

int main() {
  using namespace rlsched;
  const auto trace = congested_trace();

  core::RLSchedulerConfig cfg;
  cfg.seq_len = 64;
  cfg.trajectories_per_epoch = 3;
  cfg.pi_iters = 3;
  cfg.v_iters = 3;
  cfg.minibatch = 0;  // full batch
  cfg.seed = 5;
  core::RLScheduler scheduler(trace, cfg);

  const std::vector<float> params_before =
      scheduler.trainer().policy().param_vector();
  CHECK(!params_before.empty());

  std::size_t callbacks = 0;
  const auto history = scheduler.train(1, [&callbacks](const rl::EpochStats& e) {
    ++callbacks;
    CHECK(std::isfinite(e.avg_metric));
  });
  CHECK(callbacks == 1);
  CHECK(history.epochs.size() == 1);
  CHECK(std::isfinite(history.epochs[0].avg_metric));
  CHECK(history.epochs[0].avg_metric > 0.0);
  CHECK(history.epochs[0].seconds >= 0.0);

  const std::vector<float>& params_after =
      scheduler.trainer().policy().param_vector();
  bool moved = false;
  for (std::size_t i = 0; i < params_after.size(); ++i) {
    if (params_after[i] != params_before[i]) {
      moved = true;
      break;
    }
  }
  CHECK(moved);

  // Greedy scheduling works and yields finite metrics.
  util::Rng rng(3);
  const auto seq = trace.sample_sequence(rng, 128);
  core::ScheduleRequest req;
  req.jobs = &seq;
  req.backfill = true;
  const auto scheduled = scheduler.schedule(req);
  CHECK(scheduled.ok());
  const auto result = scheduled.value().run();
  CHECK(result.jobs == seq.size());
  CHECK(std::isfinite(result.avg_bounded_slowdown));
  CHECK(result.utilization > 0.0 && result.utilization <= 1.0 + 1e-9);

  // Save / load round trip: an identically-configured scheduler loaded from
  // disk must produce the identical schedule.
  const std::string path = "test_ppo_smoke.model.txt";
  scheduler.save(path);
  core::RLScheduler reloaded(trace, cfg);
  reloaded.load(path);
  std::remove(path.c_str());
  const auto result2 = reloaded.schedule(req).value().run();
  CHECK_NEAR(result2.avg_bounded_slowdown, result.avg_bounded_slowdown, 1e-9);
  CHECK_NEAR(result2.avg_wait, result.avg_wait, 1e-9);

  // MINIBATCH=0 (full batch) and a nonzero minibatch both train.
  core::RLSchedulerConfig mb = cfg;
  mb.minibatch = 32;
  core::RLScheduler small_batches(trace, mb);
  const auto h2 = small_batches.train(1);
  CHECK(std::isfinite(h2.epochs.at(0).avg_metric));

  std::puts("ppo smoke: OK");
  return 0;
}
