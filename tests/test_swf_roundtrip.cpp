// SWF export -> import must preserve every field the scheduler consumes,
// plus the cluster size header.
#include <cstdio>
#include <string>

#include "test_util.hpp"
#include "trace/trace.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace rlsched;
  const auto original = workload::make_trace("HPC2N", 2000, 7);
  const std::string path = "test_roundtrip.swf";
  original.save_swf(path);
  const auto reloaded = trace::Trace::load_swf(path, "HPC2N");
  std::remove(path.c_str());

  CHECK(reloaded.size() == original.size());
  CHECK(reloaded.processors() == original.processors());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const trace::Job& a = original[i];
    const trace::Job& b = reloaded[i];
    CHECK(a.id == b.id);
    CHECK_NEAR(a.submit_time, b.submit_time, 1e-3);
    CHECK_NEAR(a.run_time, b.run_time, 1e-3);
    CHECK_NEAR(a.requested_time, b.requested_time, 1e-3);
    CHECK(a.requested_procs == b.requested_procs);
    CHECK(a.user == b.user);
  }

  // Characteristics survive the round trip too.
  const auto ca = original.characteristics();
  const auto cb = reloaded.characteristics();
  CHECK_NEAR(ca.mean_interarrival, cb.mean_interarrival, 1e-3);
  CHECK(ca.distinct_users == cb.distinct_users);

  std::puts("swf roundtrip: OK");
  return 0;
}
