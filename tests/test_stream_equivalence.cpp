// The streaming tentpole's load-bearing guarantee: ingesting the same SWF
// trace materialized (Trace::load_swf -> reset(vector)) or streamed
// (ShardedReader / Trace-as-JobSource -> reset(JobSource&)) produces
// BITWISE-identical schedules — the same job-start event sequence, the
// same per-job start/wait times, the same aggregate metrics — for every
// shard size, including pathological ones (1 job per chunk) and a trace
// split across multiple shard files.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "trace/sharded_reader.hpp"
#include "trace/trace.hpp"
#include "workload/synthetic.hpp"

namespace {
using namespace rlsched;

struct Event {
  std::int64_t id;
  double submit;
  double start;
  int procs;
};

void record_event(void* ctx, const trace::Job& j) {
  static_cast<std::vector<Event>*>(ctx)->push_back(
      {j.id, j.submit_time, j.start_time, j.requested_procs});
}

bool bitwise_equal(const std::vector<Event>& a, const std::vector<Event>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].procs != b[i].procs) return false;
    if (std::memcmp(&a[i].submit, &b[i].submit, sizeof(double)) != 0) {
      return false;
    }
    if (std::memcmp(&a[i].start, &b[i].start, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// RunResult comparisons use the library's sim::bitwise_equal — the same
// comparator the streaming bench gates on.
using sim::bitwise_equal;

struct Run {
  std::vector<Event> events;
  sim::RunResult result;
};

// EASY backfilling (FCFS + EASY) episode driven by run_priority().
Run run_easy(sim::SchedulingEnv& env) {
  Run r;
  env.set_start_hook(&record_event, &r.events);
  r.result = env.run_priority(sched::fcfs_priority());
  env.set_start_hook(nullptr, nullptr);
  return r;
}

// Greedy kernel-policy episode driven by step().
Run run_kernel(sim::SchedulingEnv& env, const rl::Policy& policy) {
  Run r;
  env.set_start_hook(&record_event, &r.events);
  const rl::ObservationBuilder builder;
  while (!env.done()) {
    const rl::Observation obs = builder.build(env);
    const rl::Logits logits = policy.logits(obs);
    env.step(nn::argmax_masked(logits.data(), obs.mask.data(),
                               rl::kMaxObservable));
  }
  r.result = env.result();
  env.set_start_hook(nullptr, nullptr);
  return r;
}
}  // namespace

int main() {
  using namespace rlsched;
  namespace fs = std::filesystem;

  // Fixture: a synthetic HPC2N-alike exported to SWF, then loaded back —
  // both ingestion paths read the very same file through the shared
  // row parser, so job values cannot diverge at the source.
  const std::string swf = "test_equiv.swf";
  const std::string shard_dir = "test_equiv_shards";
  workload::make_trace("HPC2N", 400, 9).save_swf(swf);
  auto materialized = trace::Trace::load_swf(swf, "fixture");
  const int procs = materialized.processors();
  CHECK(procs > 0);
  CHECK(materialized.size() == 400);

  // Split the same file into 3 shard files (only the first carries the
  // MaxProcs header — the reader must pick it up before any data row).
  {
    std::ifstream in(swf);
    fs::create_directory(shard_dir);
    std::ofstream outs[3] = {
        std::ofstream(shard_dir + "/a_part0.swf"),
        std::ofstream(shard_dir + "/b_part1.swf"),
        std::ofstream(shard_dir + "/c_part2.swf")};
    std::string line;
    std::size_t row = 0;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == ';') {
        outs[0] << line << '\n';
        continue;
      }
      outs[std::min<std::size_t>(row * 3 / 400, 2)] << line << '\n';
      ++row;
    }
  }

  util::Rng rng(3);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, rng);

  // --- baselines: materialized ingestion ---
  Run base_easy, base_kernel;
  {
    sim::SchedulingEnv env(procs, {.backfill = true});
    env.reset(materialized.jobs());
    base_easy = run_easy(env);
  }
  {
    sim::SchedulingEnv env(procs, {.backfill = true});
    env.reset(materialized.jobs());
    base_kernel = run_kernel(env, *policy);
  }
  CHECK(base_easy.result.jobs == 400);
  CHECK(base_kernel.result.jobs == 400);

  // --- streamed ingestion at every shard size, single file ---
  const std::size_t shard_sizes[] = {1, 7, 64, 400 /* whole file */};
  for (const std::size_t shard : shard_sizes) {
    trace::ShardedReader reader(swf, "fixture-stream");
    CHECK(reader.processors() == procs);

    sim::SchedulingEnv env(procs, {.backfill = true});
    env.reset(reader, shard);
    const Run easy = run_easy(env);
    if (!bitwise_equal(easy.events, base_easy.events) ||
        !bitwise_equal(easy.result, base_easy.result)) {
      std::fprintf(stderr, "EASY stream != materialized at shard=%zu\n",
                   shard);
      return 1;
    }
    CHECK(env.total_jobs() == 400);  // every job was ingested exactly once

    sim::SchedulingEnv env2(procs, {.backfill = true});
    env2.reset(reader, shard);  // reset() rewinds the source itself
    const Run kernel = run_kernel(env2, *policy);
    if (!bitwise_equal(kernel.events, base_kernel.events) ||
        !bitwise_equal(kernel.result, base_kernel.result)) {
      std::fprintf(stderr, "kernel stream != materialized at shard=%zu\n",
                   shard);
      return 1;
    }
  }

  // --- streamed ingestion across a directory of shard files ---
  for (const std::size_t shard : shard_sizes) {
    trace::ShardedReader reader(shard_dir, "fixture-dir");
    CHECK(reader.shard_paths().size() == 3);
    CHECK(reader.processors() == procs);
    sim::SchedulingEnv env(procs, {.backfill = true});
    env.reset(reader, shard);
    const Run easy = run_easy(env);
    CHECK(bitwise_equal(easy.events, base_easy.events));
    CHECK(bitwise_equal(easy.result, base_easy.result));
  }

  // --- the materialized Trace is itself a JobSource ---
  {
    auto copy = materialized;  // fetch() advances a cursor: use a copy
    sim::SchedulingEnv env(procs, {.backfill = true});
    env.reset(copy, 7);
    const Run easy = run_easy(env);
    CHECK(bitwise_equal(easy.events, base_easy.events));
    CHECK(bitwise_equal(easy.result, base_easy.result));
  }

  // --- streamed characteristics match the materialized calibration ---
  {
    trace::ShardedReader reader(shard_dir, "fixture");
    trace::CharacteristicsAccumulator whole;
    std::vector<trace::CharacteristicsAccumulator> per_chunk;
    std::vector<trace::Job> chunk;
    while (true) {
      chunk.clear();
      if (reader.fetch(64, chunk) == 0) break;
      per_chunk.emplace_back();
      for (const trace::Job& j : chunk) {
        whole.add(j);
        per_chunk.back().add(j);
      }
    }
    trace::CharacteristicsAccumulator merged;
    for (const auto& acc : per_chunk) merged.merge(acc);

    const auto want = materialized.characteristics();
    // Sequential streamed accumulation is the same adds in the same order
    // as the materialized pass: exact. The per-chunk merge reassociates
    // the sums (chunk subtotals added together), so it agrees to
    // floating-point reassociation, with counts still exact.
    const auto got_seq = whole.finish("fixture", reader.processors());
    CHECK(got_seq.jobs == want.jobs);
    CHECK(got_seq.processors == want.processors);
    CHECK(got_seq.distinct_users == want.distinct_users);
    CHECK_NEAR(got_seq.mean_interarrival, want.mean_interarrival, 0.0);
    CHECK_NEAR(got_seq.mean_requested_time, want.mean_requested_time, 0.0);
    CHECK_NEAR(got_seq.mean_requested_procs, want.mean_requested_procs, 0.0);

    const auto got_merged = merged.finish("fixture", reader.processors());
    CHECK(got_merged.jobs == want.jobs);
    CHECK(got_merged.distinct_users == want.distinct_users);
    CHECK_NEAR(got_merged.mean_interarrival, want.mean_interarrival,
               1e-9 * want.mean_interarrival);
    CHECK_NEAR(got_merged.mean_requested_time, want.mean_requested_time,
               1e-9 * want.mean_requested_time);
    CHECK_NEAR(got_merged.mean_requested_procs, want.mean_requested_procs,
               1e-9 * want.mean_requested_procs);
  }

  std::remove(swf.c_str());
  fs::remove_all(shard_dir);
  std::puts("streamed == materialized (EASY + kernel, all shard sizes): OK");
  return 0;
}
