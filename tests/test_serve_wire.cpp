// serve/wire framing, without a socket in sight:
//   1. Round-trip property — every ScheduleRequest variant (single
//      sequence, multi-sequence, empty sequences, knob combinations) and
//      the full Status code x message matrix encode-then-decode to
//      BITWISE-identical values, doubles included (adversarial bit
//      patterns: -0.0, denormals, huge magnitudes, NaN payloads).
//   2. Malformed-frame matrix — the decoder survives, with a clean
//      kInvalidArgument, every prefix truncation of every valid frame,
//      trailing garbage, hostile declared lengths/counts, bad version and
//      reserved bytes, unknown types/kinds — never a crash or a wild read
//      (ASan is the other half of this test in CI).
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "serve/fault.hpp"
#include "serve/wire.hpp"
#include "test_util.hpp"

namespace {
using namespace rlsched;
using core::ScheduleRequest;
using core::Status;
using core::StatusCode;
using serve::Completion;
using serve::SessionConfig;
using serve::SessionId;
namespace wire = serve::wire;

bool job_bitwise_equal(const trace::Job& a, const trace::Job& b) {
  return a.id == b.id && std::memcmp(&a.submit_time, &b.submit_time, 8) == 0 &&
         std::memcmp(&a.run_time, &b.run_time, 8) == 0 &&
         std::memcmp(&a.requested_time, &b.requested_time, 8) == 0 &&
         a.requested_procs == b.requested_procs && a.user == b.user &&
         std::memcmp(&a.start_time, &b.start_time, 8) == 0;
}

/// Split a frame into its decoded header + a payload Reader, asserting the
/// header parses (valid-frame path).
wire::Header checked_header(const std::vector<std::uint8_t>& frame) {
  CHECK(frame.size() >= wire::kHeaderBytes);
  wire::Header h;
  CHECK(wire::decode_header(frame.data(), &h).ok());
  CHECK(frame.size() == wire::kHeaderBytes + h.payload_len);
  return h;
}

wire::Reader payload_reader(const std::vector<std::uint8_t>& frame,
                            const wire::Header& h) {
  return wire::Reader(frame.data() + wire::kHeaderBytes, h.payload_len);
}

/// Adversarial double fixtures: values whose bit patterns break any
/// encode path that round-trips through text or value conversion.
std::vector<double> nasty_doubles() {
  std::vector<double> v = {0.0, 1.0, -1.0, 1e308, -1e-308, 1.0 / 3.0,
                           123456789.123456789};
  double neg_zero = 0.0;
  neg_zero = -neg_zero;
  v.push_back(neg_zero);
  v.push_back(5e-324);  // smallest denormal
  std::uint64_t nan_bits = 0x7ff80000deadbeefULL;  // payload-carrying NaN
  double nan_val;
  std::memcpy(&nan_val, &nan_bits, 8);
  v.push_back(nan_val);
  return v;
}

bool double_bits_equal(double a, double b) {
  return std::memcmp(&a, &b, 8) == 0;
}
}  // namespace

int main() {
  const auto nasty = nasty_doubles();

  // ---------- 1a. request round trip: every variant ----------
  {
    // Single-sequence request with adversarial job fields.
    std::vector<trace::Job> jobs;
    for (std::size_t i = 0; i < nasty.size(); ++i) {
      trace::Job j;
      j.id = static_cast<std::int64_t>(i) - 3;  // negative ids too
      j.submit_time = nasty[i];
      j.run_time = nasty[(i + 1) % nasty.size()];
      j.requested_time = nasty[(i + 2) % nasty.size()];
      j.requested_procs = static_cast<int>(i * 7 + 1);
      j.user = static_cast<int>(i) - 2;
      j.start_time = nasty[(i + 3) % nasty.size()];
      jobs.push_back(j);
    }
    ScheduleRequest req;
    req.jobs = &jobs;
    req.processors = 256;
    req.backfill = true;
    req.chunk_jobs = 9999;
    req.deadline_seconds = 2.5;
    const SessionId sid{7, 42};

    std::vector<std::uint8_t> frame;
    CHECK(wire::encode_submit(frame, wire::MsgType::kSubmit, 0xDEADBEEFCAFEULL,
                              sid, req)
              .ok());
    const wire::Header h = checked_header(frame);
    CHECK(h.type == wire::MsgType::kSubmit);
    CHECK(h.tag == 0xDEADBEEFCAFEULL);
    wire::Reader r = payload_reader(frame, h);
    SessionId got_sid;
    wire::DecodedRequest got;
    CHECK(wire::decode_submit(r, &got_sid, &got).ok());
    CHECK(got_sid.index == 7 && got_sid.gen == 42);
    CHECK(got.single);
    CHECK(got.processors == 256);
    CHECK(got.backfill);
    CHECK(got.chunk_jobs == 9999);
    CHECK(double_bits_equal(got.deadline_seconds, 2.5));
    CHECK(got.sequences.size() == 1);
    CHECK(got.sequences[0].size() == jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      CHECK(job_bitwise_equal(got.sequences[0][i], jobs[i]));
    }
    const ScheduleRequest view = got.view();
    CHECK(view.jobs != nullptr && view.sequences == nullptr);
    CHECK(core::validate(view).ok());
  }
  {
    // Multi-sequence request, including an EMPTY sequence and an empty
    // batch-of-one-empty — shapes the daemon accepts (empty episode).
    std::vector<std::vector<trace::Job>> seqs(3);
    trace::Job j;
    j.id = 1;
    j.requested_procs = 4;
    seqs[0].assign(5, j);
    // seqs[1] stays empty
    seqs[2].assign(1, j);
    ScheduleRequest req;
    req.sequences = &seqs;
    req.backfill = false;
    std::vector<std::uint8_t> frame;
    CHECK(wire::encode_submit(frame, wire::MsgType::kSchedule, 1, SessionId{},
                              req)
              .ok());
    const wire::Header h = checked_header(frame);
    CHECK(h.type == wire::MsgType::kSchedule);
    wire::Reader r = payload_reader(frame, h);
    SessionId got_sid;
    wire::DecodedRequest got;
    CHECK(wire::decode_submit(r, &got_sid, &got).ok());
    CHECK(!got.single);
    CHECK(got.sequences.size() == 3);
    CHECK(got.sequences[0].size() == 5);
    CHECK(got.sequences[1].empty());
    CHECK(got.sequences[2].size() == 1);
    CHECK(got.view().sequences != nullptr);
  }
  {
    // Streams are NOT wire-encodable: rejected at encode, frame untouched.
    class NullSource : public trace::JobSource {
     public:
      const std::string& name() const override { return name_; }
      int processors() const override { return 1; }
      std::size_t fetch(std::size_t, std::vector<trace::Job>&) override {
        return 0;
      }
      void rewind() override {}

     private:
      std::string name_ = "null";
    };
    NullSource src;
    ScheduleRequest req;
    req.stream = &src;
    std::vector<std::uint8_t> frame;
    CHECK(wire::encode_submit(frame, wire::MsgType::kSubmit, 1, SessionId{},
                              req)
              .code() == StatusCode::kInvalidArgument);
    CHECK(frame.empty());
  }

  // ---------- 1b. session / take / reply round trips ----------
  {
    SessionConfig cfg;
    cfg.processors = 1024;
    cfg.policy = 3;
    std::vector<std::uint8_t> frame;
    wire::encode_create_session(frame, 11, cfg);
    const wire::Header h = checked_header(frame);
    CHECK(h.type == wire::MsgType::kCreateSession && h.tag == 11);
    wire::Reader r = payload_reader(frame, h);
    SessionConfig got;
    CHECK(wire::decode_create_session(r, &got).ok());
    CHECK(got.processors == 1024 && got.policy == 3);
  }
  {
    std::vector<std::uint8_t> frame;
    wire::encode_destroy_session(frame, 12, SessionId{5, 9});
    const wire::Header h = checked_header(frame);
    wire::Reader r = payload_reader(frame, h);
    SessionId got;
    CHECK(wire::decode_destroy_session(r, &got).ok());
    CHECK(got.index == 5 && got.gen == 9);
  }
  {
    std::vector<std::uint8_t> frame;
    wire::encode_take(frame, wire::MsgType::kWait, 13, 0xFFFFFFFFFFFFFFFFULL);
    const wire::Header h = checked_header(frame);
    CHECK(h.type == wire::MsgType::kWait);
    wire::Reader r = payload_reader(frame, h);
    std::uint64_t id;
    CHECK(wire::decode_take(r, &id).ok());
    CHECK(id == 0xFFFFFFFFFFFFFFFFULL);
  }

  // ---------- 1c. Status matrix: every code, with/without message ----------
  {
    const StatusCode codes[] = {
        StatusCode::kOk,           StatusCode::kInvalidArgument,
        StatusCode::kNotFound,     StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable,
        StatusCode::kCancelled,    StatusCode::kInternal,
        StatusCode::kDeadlineExceeded,  StatusCode::kAborted};
    // The matrix must span the enum: a code appended without wire coverage
    // would be rejected by the decoder's bounds check.
    CHECK(codes[sizeof(codes) / sizeof(codes[0]) - 1] ==
          core::kMaxStatusCode);
    // Every enumerator has a distinct printable name (to_string coverage).
    for (const StatusCode code : codes) {
      const std::string name = core::status_code_name(code);
      CHECK(!name.empty() && name != "UNKNOWN");
      for (const StatusCode other : codes) {
        if (other == code) break;
        CHECK(name != core::status_code_name(other));
      }
      if (code != StatusCode::kOk) {
        const Status st(code, "why");
        CHECK(st.to_string() == name + ": why");
      }
    }
    const std::string messages[] = {"", "x", "unknown session",
                                    std::string(1000, 'm')};
    for (const StatusCode code : codes) {
      for (const std::string& msg : messages) {
        const Status in = code == StatusCode::kOk ? Status::Ok()
                                                  : Status(code, msg);
        std::vector<std::uint8_t> frame;
        wire::encode_status_reply(frame, 99, in);
        const wire::Header h = checked_header(frame);
        CHECK(h.type == wire::MsgType::kStatusReply);
        wire::Reader r = payload_reader(frame, h);
        Status out;
        CHECK(wire::decode_status_reply(r, &out).ok());
        CHECK(out.code() == in.code());
        CHECK(out.message() == in.message());
      }
    }
  }
  {
    // Session/submit replies carry their payload ONLY on OK.
    std::vector<std::uint8_t> frame;
    wire::encode_session_reply(frame, 1, Status::Ok(), SessionId{3, 4});
    wire::Header h = checked_header(frame);
    wire::Reader r = payload_reader(frame, h);
    Status st;
    SessionId sid;
    CHECK(wire::decode_session_reply(r, &st, &sid).ok());
    CHECK(st.ok() && sid.index == 3 && sid.gen == 4);

    frame.clear();
    wire::encode_session_reply(frame, 1,
                               Status(StatusCode::kResourceExhausted, "full"),
                               SessionId{});
    h = checked_header(frame);
    wire::Reader r2 = payload_reader(frame, h);
    CHECK(wire::decode_session_reply(r2, &st, &sid).ok());
    CHECK(st.code() == StatusCode::kResourceExhausted);

    frame.clear();
    wire::encode_submit_reply(frame, 2, Status::Ok(), 77);
    h = checked_header(frame);
    wire::Reader r3 = payload_reader(frame, h);
    std::uint64_t rid;
    CHECK(wire::decode_submit_reply(r3, &st, &rid).ok());
    CHECK(st.ok() && rid == 77);
  }
  {
    // Completion reply: RunResult doubles round-trip BITWISE.
    Completion in;
    in.status = Status::Ok();
    in.latency_seconds = nasty[5];
    for (std::size_t k = 0; k < 3; ++k) {
      sim::RunResult run;
      run.jobs = 1000 + k;
      run.avg_bounded_slowdown = nasty[k % nasty.size()];
      run.avg_slowdown = nasty[(k + 1) % nasty.size()];
      run.avg_wait = nasty[(k + 2) % nasty.size()];
      run.avg_turnaround = nasty[(k + 3) % nasty.size()];
      run.utilization = nasty[(k + 4) % nasty.size()];
      run.makespan = nasty[(k + 5) % nasty.size()];
      run.max_user_bounded_slowdown = nasty[(k + 6) % nasty.size()];
      in.result.runs.push_back(run);
    }
    std::vector<std::uint8_t> frame;
    wire::encode_completion_reply(frame, 31, Status::Ok(), &in);
    const wire::Header h = checked_header(frame);
    CHECK(h.type == wire::MsgType::kCompletionReply);
    wire::Reader r = payload_reader(frame, h);
    Status st;
    Completion out;
    CHECK(wire::decode_completion_reply(r, &st, &out).ok());
    CHECK(st.ok());
    CHECK(out.status.ok());
    CHECK(double_bits_equal(out.latency_seconds, in.latency_seconds));
    CHECK(out.result.runs.size() == 3);
    for (std::size_t k = 0; k < 3; ++k) {
      CHECK(sim::bitwise_equal(out.result.runs[k], in.result.runs[k]));
    }
    // Failed take: no completion body on the wire at all.
    frame.clear();
    wire::encode_completion_reply(frame, 32,
                                  Status(StatusCode::kUnavailable, "pending"),
                                  nullptr);
    const wire::Header h2 = checked_header(frame);
    wire::Reader r2 = payload_reader(frame, h2);
    Completion none;
    CHECK(wire::decode_completion_reply(r2, &st, &none).ok());
    CHECK(st.code() == StatusCode::kUnavailable);
    CHECK(none.result.runs.empty());
  }

  // ---------- 2a. header rejection matrix ----------
  {
    std::vector<std::uint8_t> frame;
    wire::encode_take(frame, wire::MsgType::kTryTake, 5, 123);
    wire::Header h;

    auto copy = frame;
    copy[4] = 3;  // future version byte
    CHECK(wire::decode_header(copy.data(), &h).code() ==
          StatusCode::kInvalidArgument);
    copy = frame;
    copy[4] = 1;  // retired version 1 (pre-deadline framing): rejected too
    CHECK(wire::decode_header(copy.data(), &h).code() ==
          StatusCode::kInvalidArgument);
    copy = frame;
    copy[4] = 0;
    CHECK(!wire::decode_header(copy.data(), &h).ok());

    copy = frame;
    copy[5] = 0;  // type 0 never assigned
    CHECK(!wire::decode_header(copy.data(), &h).ok());
    copy[5] = 200;  // unassigned high type
    CHECK(!wire::decode_header(copy.data(), &h).ok());

    copy = frame;
    copy[6] = 1;  // reserved bytes must be zero
    CHECK(!wire::decode_header(copy.data(), &h).ok());

    copy = frame;
    const std::uint32_t huge = wire::kMaxPayloadBytes + 1;
    std::memcpy(copy.data(), &huge, 4);  // oversized declared length
    CHECK(!wire::decode_header(copy.data(), &h).ok());
    const std::uint32_t max_u32 = 0xFFFFFFFFu;
    std::memcpy(copy.data(), &max_u32, 4);
    CHECK(!wire::decode_header(copy.data(), &h).ok());

    // The cap itself is fine at the header layer.
    copy = frame;
    const std::uint32_t cap = wire::kMaxPayloadBytes;
    std::memcpy(copy.data(), &cap, 4);
    CHECK(wire::decode_header(copy.data(), &h).ok());
  }

  // ---------- 2b. truncation property: EVERY prefix fails cleanly ----------
  {
    std::vector<trace::Job> jobs(3);
    jobs[1].id = 9;
    std::vector<std::vector<trace::Job>> seqs = {jobs, {}, jobs};
    ScheduleRequest req;
    req.sequences = &seqs;
    std::vector<std::vector<std::uint8_t>> frames;
    {
      std::vector<std::uint8_t> f;
      CHECK(wire::encode_submit(f, wire::MsgType::kSubmit, 1, SessionId{1, 1},
                                req)
                .ok());
      frames.push_back(f);
      f.clear();
      wire::encode_create_session(f, 2, SessionConfig{8, 0});
      frames.push_back(f);
      f.clear();
      Completion c;
      c.result.runs.resize(2);
      wire::encode_completion_reply(f, 3, Status::Ok(), &c);
      frames.push_back(f);
      f.clear();
      wire::encode_session_reply(f, 4, Status(StatusCode::kNotFound, "nope"),
                                 SessionId{});
      frames.push_back(f);
    }
    for (const auto& frame : frames) {
      const wire::Header h = checked_header(frame);
      // Decode the payload at every truncated length: each must fail with
      // kInvalidArgument, and none may read past its buffer (ASan-checked
      // in CI because the Reader is handed EXACTLY the truncated size).
      for (std::size_t cut = 0; cut < h.payload_len; ++cut) {
        wire::Reader r(frame.data() + wire::kHeaderBytes, cut);
        Status st;
        SessionId sid;
        std::uint64_t rid;
        SessionConfig cfg;
        wire::DecodedRequest dreq;
        Completion comp;
        Status s;
        switch (h.type) {
          case wire::MsgType::kSubmit:
            s = wire::decode_submit(r, &sid, &dreq);
            break;
          case wire::MsgType::kCreateSession:
            s = wire::decode_create_session(r, &cfg);
            break;
          case wire::MsgType::kCompletionReply:
            s = wire::decode_completion_reply(r, &st, &comp);
            break;
          case wire::MsgType::kSessionReply:
            s = wire::decode_session_reply(r, &st, &sid);
            break;
          default:
            s = wire::decode_take(r, &rid);
            break;
        }
        CHECK(s.code() == StatusCode::kInvalidArgument);
      }
    }
  }

  // ---------- 2c. hostile payload contents ----------
  {
    // Trailing garbage after a well-formed payload is malformed.
    std::vector<std::uint8_t> frame;
    wire::encode_take(frame, wire::MsgType::kTryTake, 5, 1);
    frame.push_back(0xAB);
    wire::Reader r(frame.data() + wire::kHeaderBytes,
                   frame.size() - wire::kHeaderBytes);
    std::uint64_t id;
    CHECK(wire::decode_take(r, &id).code() == StatusCode::kInvalidArgument);
  }
  {
    // A declared job count far beyond the payload must be rejected BEFORE
    // any allocation sized by it (the 64 MiB header cap bounds the buffer,
    // this check bounds the vector).
    std::vector<std::uint8_t> p;
    wire::put_u32(p, 1);  // session index
    wire::put_u32(p, 1);  // gen
    wire::put_u8(p, 0);   // kind: single
    wire::put_i32(p, 0);
    wire::put_u8(p, 0);
    wire::put_u64(p, 4096);
    wire::put_f64(p, 0.0);         // deadline
    wire::put_u32(p, 1);           // nseq = 1
    wire::put_u32(p, 0xFFFFFFFF);  // njobs = 4 billion, payload has 0 bytes
    wire::Reader r(p.data(), p.size());
    SessionId sid;
    wire::DecodedRequest dreq;
    CHECK(wire::decode_submit(r, &sid, &dreq).code() ==
          StatusCode::kInvalidArgument);
  }
  {
    // Hostile sequence count, same idea.
    std::vector<std::uint8_t> p;
    wire::put_u32(p, 1);
    wire::put_u32(p, 1);
    wire::put_u8(p, 1);  // kind: batch
    wire::put_i32(p, 0);
    wire::put_u8(p, 0);
    wire::put_u64(p, 4096);
    wire::put_f64(p, 0.0);         // deadline
    wire::put_u32(p, 0xFFFFFFFF);  // nseq = 4 billion
    wire::Reader r(p.data(), p.size());
    SessionId sid;
    wire::DecodedRequest dreq;
    CHECK(wire::decode_submit(r, &sid, &dreq).code() ==
          StatusCode::kInvalidArgument);
  }
  {
    // Unknown request kind byte; non-boolean backfill; single-sequence
    // frame whose sequence count lies.
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<std::uint8_t> p;
      wire::put_u32(p, 1);
      wire::put_u32(p, 1);
      wire::put_u8(p, variant == 0 ? 7 : 0);  // kind
      wire::put_i32(p, 0);
      wire::put_u8(p, variant == 1 ? 2 : 0);  // backfill
      wire::put_u64(p, 4096);
      wire::put_f64(p, 0.0);                   // deadline
      wire::put_u32(p, variant == 2 ? 2 : 1);  // nseq (kind 0 wants 1)
      wire::put_u32(p, 0);                     // one empty sequence
      if (variant == 2) wire::put_u32(p, 0);
      wire::Reader r(p.data(), p.size());
      SessionId sid;
      wire::DecodedRequest dreq;
      CHECK(wire::decode_submit(r, &sid, &dreq).code() ==
            StatusCode::kInvalidArgument);
    }
  }
  {
    // Hostile deadline values: negative, infinite, NaN — each rejected at
    // decode (version 2 carries the deadline as raw IEEE-754 bits, so the
    // decoder, not the transport, is the validation boundary).
    const std::uint64_t bad_bits[] = {
        0xBFF0000000000000ULL,  // -1.0
        0x7FF0000000000000ULL,  // +inf
        0x7FF8000000000000ULL,  // quiet NaN
    };
    for (const std::uint64_t bits : bad_bits) {
      std::vector<std::uint8_t> p;
      wire::put_u32(p, 1);  // session index
      wire::put_u32(p, 1);  // gen
      wire::put_u8(p, 0);   // kind: single
      wire::put_i32(p, 0);
      wire::put_u8(p, 0);
      wire::put_u64(p, 4096);
      wire::put_u64(p, bits);  // deadline bit pattern
      wire::put_u32(p, 1);     // nseq = 1
      wire::put_u32(p, 0);     // one empty sequence
      wire::Reader r(p.data(), p.size());
      SessionId sid;
      wire::DecodedRequest dreq;
      CHECK(wire::decode_submit(r, &sid, &dreq).code() ==
            StatusCode::kInvalidArgument);
    }
  }
  {
    // Status with an out-of-range code byte.
    std::vector<std::uint8_t> p;
    wire::put_i32(p, 99);
    wire::put_u32(p, 0);
    wire::Reader r(p.data(), p.size());
    Status st;
    CHECK(wire::decode_status_reply(r, &st).code() ==
          StatusCode::kInvalidArgument);
    // ...and a status message length that exceeds the payload.
    std::vector<std::uint8_t> p2;
    wire::put_i32(p2, 0);
    wire::put_u32(p2, 1000);
    wire::Reader r2(p2.data(), p2.size());
    CHECK(wire::decode_status_reply(r2, &st).code() ==
          StatusCode::kInvalidArgument);
  }

  // ---------- 3. fault-injected short-write matrix ----------
  // A frame pushed through fault_send/fault_recv with injected short
  // writes, EAGAIN storms, and delays must still arrive byte-identical,
  // provided the sender loops the way Client::send_all and the server's
  // write path do (retry EAGAIN/EINTR, advance by the returned count).
  // Same seed ⇒ same injected sequence ⇒ the test is deterministic.
  {
    std::vector<std::uint8_t> frame;
    {
      std::vector<trace::Job> jobs(64);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].id = static_cast<std::int64_t>(i);
        jobs[i].requested_procs = 2;
        jobs[i].submit_time = nasty[i % nasty.size()];
      }
      ScheduleRequest req;
      req.jobs = &jobs;
      CHECK(wire::encode_submit(frame, wire::MsgType::kSubmit, 7,
                                SessionId{1, 1}, req)
                .ok());
    }
    struct Case {
      const char* name;
      serve::FaultPlan plan;
    };
    std::vector<Case> cases;
    {
      serve::FaultPlan p;
      p.short_io = 1.0;  // EVERY op truncated to one byte
      cases.push_back({"short_io=1.0", p});
    }
    {
      serve::FaultPlan p;
      p.short_io = 0.5;
      p.eagain = 0.3;
      cases.push_back({"short+eagain", p});
    }
    {
      serve::FaultPlan p;
      p.eagain = 0.9;  // storm: 90% of ops spuriously fail
      p.seed = 42;
      cases.push_back({"eagain storm", p});
    }
    {
      serve::FaultPlan p;
      p.delay = 0.2;
      p.delay_us = 10;
      p.short_io = 0.4;
      cases.push_back({"delay+short", p});
    }
    for (const Case& c : cases) {
      serve::FaultInjector inject(c.plan);
      int fds[2];
      CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
      // Interleaved sender/receiver, single thread: one-byte sends carry
      // large per-skb kernel buffer overhead, so the receiver must drain as
      // the sender goes or the socketpair send buffer fills and blocks.
      // The send discipline is Client::send_all's: retry EAGAIN/EINTR,
      // advance by the returned count.
      std::vector<std::uint8_t> got(frame.size());
      std::size_t off = 0;
      std::size_t in = 0;
      std::size_t send_calls = 0;
      while (off < frame.size() || in < got.size()) {
        if (off < frame.size()) {
          const ssize_t n = serve::fault_send(
              &inject, serve::FaultInjector::Site::kClientSend, fds[0],
              frame.data() + off, frame.size() - off, 0);
          ++send_calls;
          if (n < 0) {
            CHECK(errno == EAGAIN || errno == EINTR);
          } else {
            off += static_cast<std::size_t>(n);
          }
        }
        if (in < got.size()) {
          const ssize_t n = serve::fault_recv(
              &inject, serve::FaultInjector::Site::kClientRecv, fds[1],
              got.data() + in, got.size() - in, MSG_DONTWAIT);
          if (n < 0) {
            CHECK(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR);
          } else {
            CHECK(n > 0);  // EOF would mean lost bytes
            in += static_cast<std::size_t>(n);
          }
        }
      }
      // With short_io=1.0 every op moves exactly one byte.
      if (c.plan.short_io == 1.0) CHECK(send_calls == frame.size());
      CHECK(got == frame);
      ::close(fds[0]);
      ::close(fds[1]);
    }
    // Null injector is a true pass-through: one call moves the whole frame
    // over a socketpair (buffer permitting).
    {
      int fds[2];
      CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
      const ssize_t n =
          serve::fault_send(nullptr, serve::FaultInjector::Site::kClientSend,
                            fds[0], frame.data(), frame.size(), 0);
      CHECK(n == static_cast<ssize_t>(frame.size()));
      std::vector<std::uint8_t> got(frame.size());
      std::size_t in = 0;
      while (in < got.size()) {
        const ssize_t m = serve::fault_recv(
            nullptr, serve::FaultInjector::Site::kClientRecv, fds[1],
            got.data() + in, got.size() - in, 0);
        CHECK(m > 0);
        in += static_cast<std::size_t>(m);
      }
      CHECK(got == frame);
      ::close(fds[0]);
      ::close(fds[1]);
    }
    // Determinism: two injectors with the same plan+seed make the same
    // decisions at the same (site, op#) — replay the send side and compare
    // per-call byte counts (delay excluded from observability; counts
    // capture short_io/EAGAIN placement exactly).
    {
      serve::FaultPlan plan;
      plan.short_io = 0.5;
      plan.eagain = 0.25;
      plan.seed = 1337;
      std::vector<ssize_t> runs[2];
      for (int rep = 0; rep < 2; ++rep) {
        serve::FaultInjector inject(plan);
        int fds[2];
        CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
        std::size_t off = 0;
        while (off < frame.size()) {
          const ssize_t n = serve::fault_send(
              &inject, serve::FaultInjector::Site::kClientSend, fds[0],
              frame.data() + off, frame.size() - off, 0);
          runs[rep].push_back(n < 0 ? -1 : n);
          if (n > 0) off += static_cast<std::size_t>(n);
          // Drain the peer so the socketpair buffer never fills.
          std::uint8_t sink[4096];
          while (::recv(fds[1], sink, sizeof(sink), MSG_DONTWAIT) > 0) {
          }
        }
        ::close(fds[0]);
        ::close(fds[1]);
      }
      CHECK(runs[0] == runs[1]);
    }
  }

  std::puts("serve wire: OK");
  return 0;
}
