#pragma once
// Assertion macros for the tier-1 tests. Independent of NDEBUG (Release
// builds define it), so checks always fire.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::exit(1);                                                       \
    }                                                                     \
  } while (0)

#define CHECK_NEAR(a, b, eps)                                             \
  do {                                                                    \
    const double check_a = (a);                                           \
    const double check_b = (b);                                           \
    if (!(std::fabs(check_a - check_b) <= (eps))) {                       \
      std::fprintf(stderr,                                                \
                   "CHECK_NEAR failed at %s:%d: %s = %.12g vs %s = %.12g" \
                   " (eps %.3g)\n",                                       \
                   __FILE__, __LINE__, #a, check_a, #b, check_b,          \
                   static_cast<double>(eps));                             \
      std::exit(1);                                                       \
    }                                                                     \
  } while (0)
