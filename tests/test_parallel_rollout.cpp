// Parallel rollout collection must be bitwise worker-count independent:
// with the same seed, a 1-worker and a 4-worker trainer produce identical
// observations, actions, log-probs, values, rewards, advantages — and,
// because the minibatch gradient reduction is chunk-ordered, identical
// updated parameters. Also gates the zero-allocation discipline: after a
// warmup epoch, a full train_epoch() (collection fan-out included) performs
// no heap allocation on any thread.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

static std::atomic<unsigned long long> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// Nothrow family too — a partial override mixes allocator families
// (miscounts, and trips ASan's alloc-dealloc-mismatch check).
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#include <vector>

#include "rl/ppo.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

#include "test_util.hpp"

namespace {

using namespace rlsched;

// Congested workload (multi-job windows at every decision) so the policy
// actually has choices and gradients are non-trivial.
trace::Trace congested_trace() {
  util::Rng rng(99);
  std::vector<trace::Job> jobs;
  for (int i = 0; i < 1200; ++i) {
    trace::Job j;
    j.id = i + 1;
    j.submit_time = 20.0 * i;
    j.requested_time = 600.0 + 4000.0 * rng.uniform();
    j.run_time = j.requested_time * rng.uniform(0.5, 1.0);
    j.requested_procs = 1 + static_cast<int>(rng.below(48));
    j.user = 1 + static_cast<int>(rng.below(6));
    jobs.push_back(j);
  }
  return trace::Trace("congested", 128, std::move(jobs));
}

rl::PPOConfig test_config(std::size_t workers) {
  rl::PPOConfig cfg;
  cfg.seq_len = 64;
  cfg.trajectories_per_epoch = 8;
  cfg.pi_iters = 2;
  cfg.v_iters = 2;
  cfg.minibatch = 0;  // full batch -> multiple chunks per update step
  cfg.seed = 7;
  cfg.n_workers = workers;
  return cfg;
}

void check_epochs_identical(const rl::PPOTrainer& a, const rl::PPOTrainer& b) {
  CHECK(a.steps() == b.steps());
  CHECK(a.trajectory_ends() == b.trajectory_ends());
  for (std::size_t i = 0; i < a.steps(); ++i) {
    const rl::Observation& oa = a.observation(i);
    const rl::Observation& ob = b.observation(i);
    CHECK(oa.count == ob.count);
    CHECK(oa.mask == ob.mask);
    CHECK(oa.features == ob.features);  // bitwise float equality
  }
  CHECK(a.actions() == b.actions());
  CHECK(a.logps() == b.logps());
  CHECK(a.values() == b.values());
  CHECK(a.advantages() == b.advantages());
  CHECK(a.returns() == b.returns());
  CHECK(a.terminal_rewards() == b.terminal_rewards());
  // Chunk-ordered gradient reduction: the UPDATED parameters match too.
  CHECK(a.policy().param_vector() == b.policy().param_vector());
  CHECK(a.value_params() == b.value_params());
}

}  // namespace

int main() {
  const auto trace = congested_trace();

  rl::PPOTrainer one(trace, test_config(1));
  rl::PPOTrainer four(trace, test_config(4));
  CHECK(one.worker_count() == 1);
  CHECK(four.worker_count() == 4);

  // Epoch 1: trajectories, advantages, and updated params all bitwise equal.
  const auto s1 = one.train_epoch();
  const auto s4 = four.train_epoch();
  CHECK(s1.avg_metric == s4.avg_metric);
  CHECK(one.steps() > 0);
  check_epochs_identical(one, four);

  // Epoch 2: the substream bookkeeping advances identically, and epoch 2
  // trains on parameters produced by epoch 1's (parallel) update — any
  // divergence anywhere would compound and show up here.
  one.train_epoch();
  four.train_epoch();
  check_epochs_identical(one, four);

  // Zero-allocation gate: with capacity warmed by two epochs, a further
  // full train_epoch — per-worker envs, sequence resampling, the pool
  // fan-outs, both updates — must not touch the heap from any thread.
  {
    const unsigned long long before =
        g_allocs.load(std::memory_order_relaxed);
    four.train_epoch();
    const unsigned long long after =
        g_allocs.load(std::memory_order_relaxed);
    if (after != before) {
      std::fprintf(stderr,
                   "parallel train_epoch allocated %llu times after warmup\n",
                   after - before);
      return 1;
    }
  }

  // A different worker count mid-sweep (3: does not divide 8 trajectories
  // evenly) still matches.
  rl::PPOTrainer three(trace, test_config(3));
  three.train_epoch();
  three.train_epoch();
  three.train_epoch();
  one.train_epoch();
  check_epochs_identical(one, three);

  std::puts("parallel rollout determinism + zero-alloc: OK");
  return 0;
}
