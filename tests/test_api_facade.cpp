// API-redesign gate: the deprecated façade overloads (schedule,
// schedule_on, schedule_many, schedule_stream) are thin shims over the one
// schedule(const ScheduleRequest&) entry point and must stay
// BITWISE-identical to it across the whole equivalence matrix — source
// kind x backfill x processors override. Also pins the Status contract:
// malformed requests come back as kInvalidArgument (with the code name in
// to_string()), engine rejections surface as a non-OK Status through the
// new entry and as the historical std::runtime_error through the shims.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rlscheduler.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "trace/job_source.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {
using namespace rlsched;
using core::ScheduleRequest;
using core::ScheduleResult;
using core::Status;
using core::StatusCode;
using core::StatusOr;

core::RLSchedulerConfig small_config() {
  core::RLSchedulerConfig cfg;
  cfg.seq_len = 64;
  cfg.trajectories_per_epoch = 4;
  cfg.pi_iters = 2;
  cfg.v_iters = 2;
  cfg.seed = 7;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = 8;
  return cfg;
}

/// A deliberately broken source: submits go backwards, which the streaming
/// simulator rejects by throwing from depth.
class BackwardsSource final : public trace::JobSource {
 public:
  const std::string& name() const override { return name_; }
  int processors() const override { return 64; }
  std::size_t fetch(std::size_t max_jobs, std::vector<trace::Job>& out)
      override {
    std::size_t n = 0;
    for (; n < max_jobs && emitted_ < 4; ++n, ++emitted_) {
      trace::Job j;
      j.id = static_cast<std::int64_t>(emitted_);
      j.submit_time = 100.0 - 10.0 * static_cast<double>(emitted_);
      j.requested_time = 10.0;
      j.run_time = 10.0;
      j.requested_procs = 1;
      j.user = 1;
      out.push_back(j);
    }
    return n;
  }
  void rewind() override { emitted_ = 0; }

 private:
  std::string name_ = "backwards";
  std::size_t emitted_ = 0;
};
}  // namespace

int main() {
  const auto trace = workload::make_trace("SDSC-SP2", 2000, 42);
  core::RLScheduler model(trace, small_config());

  util::Rng rng(11);
  const auto seq = trace.sample_sequence(rng, 256);
  std::vector<std::vector<trace::Job>> seqs;
  for (int i = 0; i < 5; ++i) seqs.push_back(trace.sample_sequence(rng, 96));

  // The shims are deprecated on purpose; this test exercises them anyway.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

  for (const bool backfill : {false, true}) {
    // schedule(seq, backfill) == request{.jobs}
    ScheduleRequest jobs_req;
    jobs_req.jobs = &seq;
    jobs_req.backfill = backfill;
    const auto via_request = model.schedule(jobs_req);
    CHECK(via_request.ok());
    CHECK(via_request.value().runs.size() == 1);
    CHECK(sim::bitwise_equal(model.schedule(seq, backfill),
                             via_request.value().run()));

    // schedule_on(seq, P, backfill) == request{.jobs, .processors = P},
    // and P = the trace's own size matches the default-cluster request.
    const int procs = trace.processors() / 2;
    ScheduleRequest on_req = jobs_req;
    on_req.processors = procs;
    CHECK(sim::bitwise_equal(model.schedule_on(seq, procs, backfill),
                             model.schedule(on_req).value().run()));
    CHECK(sim::bitwise_equal(
        model.schedule_on(seq, trace.processors(), backfill),
        via_request.value().run()));

    // schedule_many == request{.sequences}, and each batched run is
    // bitwise the single-sequence run of that sequence.
    ScheduleRequest many_req;
    many_req.sequences = &seqs;
    many_req.backfill = backfill;
    const auto many_new = model.schedule(many_req);
    CHECK(many_new.ok());
    const auto many_old =
        model.schedule_many(seqs, trace.processors(), backfill);
    CHECK(many_old.size() == seqs.size());
    CHECK(many_new.value().runs.size() == seqs.size());
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      CHECK(sim::bitwise_equal(many_old[i], many_new.value().runs[i]));
      ScheduleRequest one;
      one.jobs = &seqs[i];
      one.backfill = backfill;
      CHECK(sim::bitwise_equal(many_new.value().runs[i],
                               model.schedule(one).value().run()));
    }

    // schedule_stream == request{.stream}; processors default to the
    // stream's own cluster, and the streamed run is bitwise the
    // materialized run of the same jobs.
    auto stream_trace = trace;  // Trace is a JobSource over its own jobs
    ScheduleRequest stream_req;
    stream_req.stream = &stream_trace;
    stream_req.backfill = backfill;
    stream_req.chunk_jobs = 512;
    const auto via_stream = model.schedule(stream_req);
    CHECK(via_stream.ok());
    CHECK(sim::bitwise_equal(
        model.schedule_stream(stream_trace, backfill, 512),
        via_stream.value().run()));
    ScheduleRequest materialized;
    materialized.jobs = &trace.jobs();
    materialized.backfill = backfill;
    CHECK(sim::bitwise_equal(via_stream.value().run(),
                             model.schedule(materialized).value().run()));
  }

  // --- Status contract ---------------------------------------------------

  // No source at all.
  {
    const auto r = model.schedule(ScheduleRequest{});
    CHECK(!r.ok());
    CHECK(r.status().code() == StatusCode::kInvalidArgument);
    CHECK(r.status().to_string().find("INVALID_ARGUMENT") !=
          std::string::npos);
  }
  // More than one source.
  {
    ScheduleRequest req;
    req.jobs = &seq;
    req.sequences = &seqs;
    CHECK(model.schedule(req).status().code() ==
          StatusCode::kInvalidArgument);
  }
  // Negative processors.
  {
    ScheduleRequest req;
    req.jobs = &seq;
    req.processors = -1;
    CHECK(model.schedule(req).status().code() ==
          StatusCode::kInvalidArgument);
  }
  // Streamed request with a zero chunk.
  {
    auto stream_trace = trace;
    ScheduleRequest req;
    req.stream = &stream_trace;
    req.chunk_jobs = 0;
    CHECK(model.schedule(req).status().code() ==
          StatusCode::kInvalidArgument);
  }
  // Engine rejection from depth (out-of-order streamed submits): a non-OK
  // Status through the new entry point...
  {
    BackwardsSource bad;
    ScheduleRequest req;
    req.stream = &bad;
    const auto r = model.schedule(req);
    CHECK(!r.ok());
    CHECK(r.status().code() == StatusCode::kInvalidArgument);
    CHECK(!r.status().message().empty());
  }
  // ...and the historical std::runtime_error through the shim.
  {
    BackwardsSource bad;
    bool threw = false;
    try {
      (void)model.schedule_stream(bad, false);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    CHECK(threw);
  }

#pragma GCC diagnostic pop

  // StatusOr basics the façade relies on.
  {
    Status ok = Status::Ok();
    CHECK(ok.ok());
    CHECK(std::string(core::status_code_name(StatusCode::kOk)) == "OK");
    StatusOr<int> v(3);
    CHECK(v.ok());
    CHECK(v.value() == 3);
    StatusOr<int> e(Status(StatusCode::kNotFound, "nope"));
    CHECK(!e.ok());
    CHECK(e.status().code() == StatusCode::kNotFound);
    CHECK(e.status().message() == "nope");
  }

  std::puts("api facade: OK");
  return 0;
}
