// All five Table III heuristic baselines against small hand-computed
// fixtures: (1) the raw priority scores at a fixed decision time, checked
// against values worked out by hand from the formulas, and (2) a serialized
// 1-processor episode per heuristic whose start order — and exact start
// times — were derived on paper.
#include <cstdio>
#include <vector>

#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"

namespace {
using namespace rlsched;

trace::Job make_job(std::int64_t id, double submit, double run, double req,
                    int procs, int user = 0) {
  trace::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_time = req;
  j.requested_procs = procs;
  j.user = user;
  return j;
}
}  // namespace

int main() {
  using namespace rlsched;

  // ---------- hand-computed scores (lower runs first) ----------
  // Fixture job: submit 0, requested_time 10, requested_procs 4.
  const trace::Job a = make_job(1, 0.0, 10.0, 10.0, 4);
  const double now = 100.0;  // => wait = 100

  // FCFS: score = submit_time.
  CHECK_NEAR(sched::fcfs_priority()(a, now), 0.0, 0.0);
  CHECK_NEAR(sched::fcfs_priority()(make_job(2, 42.0, 1, 1, 1), now), 42.0,
             0.0);

  // SJF: score = requested_time.
  CHECK_NEAR(sched::sjf_priority()(a, now), 10.0, 0.0);

  // WFP3: -(wait/req_time)^3 * procs = -(100/10)^3 * 4 = -4000.
  CHECK_NEAR(sched::wfp3_priority()(a, now), -4000.0, 1e-9);
  // Zero wait (now == submit) gives score 0 regardless of shape.
  CHECK_NEAR(sched::wfp3_priority()(a, 0.0), 0.0, 0.0);

  // UNICEP: -wait / (log2(procs) * req_time) = -100 / (2 * 10) = -5.
  CHECK_NEAR(sched::unicep_priority()(a, now), -5.0, 1e-12);
  // procs < 2 clamps the log2 to 1: -100 / (1 * 10) = -10.
  CHECK_NEAR(sched::unicep_priority()(make_job(3, 0, 10, 10, 1), now), -10.0,
             1e-12);

  // F1: log10(req_time)*procs + 870*log10(submit)
  //   = log10(100)*10 + 870*log10(1000) = 2*10 + 870*3 = 2630.
  CHECK_NEAR(sched::f1_priority()(make_job(4, 1000.0, 100, 100, 10), now),
             2630.0, 1e-9);
  // submit <= 1 clamps the log10 argument to 1: log10(100)*10 + 0 = 20.
  CHECK_NEAR(sched::f1_priority()(make_job(5, 0.0, 100, 100, 10), now), 20.0,
             1e-9);

  // ---------- episode fixtures on a 1-processor machine ----------
  // The simulator commits a decision as soon as ANY job is pending, so to
  // exercise a ranked choice all contenders must be queued when a decision
  // fires. Fixture: J0 (submit 0, run 100) pins the machine; C0 (submit 1,
  // run 40) is committed alone at t=1 and occupies [100, 140); contenders
  // C1 (submit 2, req 50), C2 (submit 3, req 10), C3 (submit 4, req 30)
  // all queue meanwhile. The first RANKED decision is at t=100 over
  // {C1, C2, C3} (waits 98, 97, 96), the next at t=140 over the two
  // remaining. All jobs: 1 processor, run == request.
  const auto fixture = [&] {
    return std::vector<trace::Job>{make_job(0, 0.0, 100.0, 100.0, 1, 0),
                                   make_job(1, 1.0, 40.0, 40.0, 1, 1),
                                   make_job(2, 2.0, 50.0, 50.0, 1, 2),
                                   make_job(3, 3.0, 10.0, 10.0, 1, 3),
                                   make_job(4, 4.0, 30.0, 30.0, 1, 4)};
  };
  // Returns the start times of C1, C2, C3.
  const auto run_with = [&](const sim::PriorityFn& fn) {
    sim::SchedulingEnv env(1);
    env.reset(fixture());
    const auto r = env.run_priority(fn);
    CHECK(r.jobs == 5);
    CHECK_NEAR(env.jobs()[0].start_time, 0.0, 0.0);    // J0 immediate
    CHECK_NEAR(env.jobs()[1].start_time, 100.0, 0.0);  // C0 forced first
    return std::vector<double>{env.jobs()[2].start_time,
                               env.jobs()[3].start_time,
                               env.jobs()[4].start_time};
  };

  // FCFS: submit order C1 < C2 < C3 -> C1@140, C2@190, C3@200.
  {
    const auto s = run_with(sched::fcfs_priority());
    CHECK_NEAR(s[0], 140.0, 0.0);
    CHECK_NEAR(s[1], 190.0, 0.0);
    CHECK_NEAR(s[2], 200.0, 0.0);
  }

  // SJF: requests 50, 10, 30 -> C2@140 (ends 150), then C3@150 (ends 180),
  // then C1@180.
  {
    const auto s = run_with(sched::sjf_priority());
    CHECK_NEAR(s[1], 140.0, 0.0);
    CHECK_NEAR(s[2], 150.0, 0.0);
    CHECK_NEAR(s[0], 180.0, 0.0);
  }

  // WFP3 at t=100 (waits 98, 97, 96; procs all 1):
  //   C1: -(98/50)^3 = -7.53  C2: -(97/10)^3 = -912.7  C3: -(96/30)^3 = -32.8
  // -> C2@140. At t=140: C1 -(138/50)^3 = -21.0, C3 -(136/30)^3 = -93.2
  // -> C3@150, C1@180.
  {
    const auto s = run_with(sched::wfp3_priority());
    CHECK_NEAR(s[1], 140.0, 0.0);
    CHECK_NEAR(s[2], 150.0, 0.0);
    CHECK_NEAR(s[0], 180.0, 0.0);
  }

  // UNICEP at t=100 (1-proc jobs: log2 clamps to 1, score = -wait/req):
  //   C1: -98/50 = -1.96   C2: -97/10 = -9.7   C3: -96/30 = -3.2
  // -> C2@140. At t=140: C1 -138/50 = -2.76, C3 -136/30 = -4.53
  // -> C3@150, C1@180.
  {
    const auto s = run_with(sched::unicep_priority());
    CHECK_NEAR(s[1], 140.0, 0.0);
    CHECK_NEAR(s[2], 150.0, 0.0);
    CHECK_NEAR(s[0], 180.0, 0.0);
  }

  // F1 (decision-time independent): log10(req)*procs + 870*log10(submit):
  //   C1: log10(50) + 870*log10(2) = 1.70 + 261.9 = 263.6
  //   C2: log10(10) + 870*log10(3) = 1.00 + 415.0 = 416.0
  //   C3: log10(30) + 870*log10(4) = 1.48 + 523.7 = 525.2
  // -> early submit dominates: C1@140, C2@190, C3@200 (FCFS-like here).
  {
    const auto s = run_with(sched::f1_priority());
    CHECK_NEAR(s[0], 140.0, 0.0);
    CHECK_NEAR(s[1], 190.0, 0.0);
    CHECK_NEAR(s[2], 200.0, 0.0);
  }

  // all_heuristics() exposes the paper's five, in Table III order.
  const auto& all = sched::all_heuristics();
  CHECK(all.size() == 5);
  CHECK(all[0].name == "FCFS");
  CHECK(all[1].name == "WFP3");
  CHECK(all[2].name == "UNICEP");
  CHECK(all[3].name == "SJF");
  CHECK(all[4].name == "F1");

  std::puts("heuristic fixtures (FCFS/SJF/WFP3/UNICEP/F1): OK");
  return 0;
}
