// serve::Server against live loopback sockets:
//   1. Transport invariance — every schedule/submit+wait/pipelined result
//      through the socket is BITWISE identical to the same request served
//      by an in-process Daemon (and to the engine's BatchedEvaluator
//      reference): the wire adds framing, never computation.
//   2. Malformed-frame matrix — bad version, nonzero reserved, unknown
//      type, oversized declared length, truncated payloads, trailing
//      garbage, hostile counts, reply types sent to the server, mid-frame
//      disconnects: each earns a kInvalidArgument reply (where a reply is
//      possible) and a close, and the server keeps serving everyone else.
//   3. Lifecycle — a dropped connection's sessions are destroyed; errors
//      (unknown ids, stale handles, invalid configs) cross the wire with
//      their core::Status code and message intact.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "rl/batch_eval.hpp"
#include "rl/policy.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {
using namespace rlsched;
using core::ScheduleRequest;
using core::ScheduleResult;
using core::Status;
using core::StatusCode;
using serve::Client;
using serve::Completion;
using serve::Daemon;
using serve::DaemonConfig;
using serve::RequestId;
using serve::Server;
using serve::ServerConfig;
using serve::SessionConfig;
using serve::SessionId;
namespace wire = serve::wire;

DaemonConfig daemon_config(std::size_t batch, std::size_t dispatchers) {
  DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  cfg.dispatchers = dispatchers;
  return cfg;
}

/// Open a fresh connection, fire one raw byte blob, and expect the server
/// to answer kInvalidArgument (a StatusReply) and then hang up.
void expect_rejected(std::uint16_t port, const std::vector<std::uint8_t>& raw,
                     const char* what) {
  Client c;
  CHECK(c.connect("127.0.0.1", port).ok());
  CHECK(c.send_raw(raw.data(), raw.size()).ok());
  wire::Header h;
  Status st;
  CHECK(c.recv_reply(&h, &st).ok());
  CHECK(h.type == wire::MsgType::kStatusReply);
  if (st.code() != StatusCode::kInvalidArgument) {
    std::fprintf(stderr, "case %s: got code %d (%s)\n", what,
                 static_cast<int>(st.code()), st.message().c_str());
    CHECK(false);
  }
  // The connection is closed behind the reply: the next read hits EOF.
  const Status eof = c.recv_reply(&h, &st);
  CHECK(!eof.ok());
}

bool wait_for_live_sessions(const Daemon& daemon, std::size_t want) {
  for (int i = 0; i < 2000; ++i) {  // close processing is asynchronous
    if (daemon.live_sessions() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}
}  // namespace

int main() {
  const auto trace = workload::make_trace("Lublin-1", 4000, 42);
  const int procs = trace.processors();
  util::Rng policy_rng(99);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, policy_rng);

  util::Rng rng(5);
  constexpr std::size_t kRequests = 8;
  std::vector<std::vector<trace::Job>> seqs;
  for (std::size_t i = 0; i < kRequests; ++i) {
    seqs.push_back(trace.sample_sequence(rng, 48 + 8 * i));
  }

  // Engine ground truth, and the in-process daemon path to gate against.
  std::vector<sim::RunResult> expect(seqs.size());
  {
    rl::BatchedEvaluator eval(*policy, 1);
    eval.evaluate(seqs, procs, true, expect.data());
  }
  std::vector<sim::RunResult> inproc;
  {
    Daemon local(daemon_config(8, 1));
    const std::uint32_t pid = local.register_policy(*policy);
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = local.create_session(sc);
    CHECK(sid.ok());
    std::vector<RequestId> rids;
    for (auto& s : seqs) {
      ScheduleRequest req;
      req.jobs = &s;
      req.backfill = true;
      auto rid = local.submit(sid.value(), req);
      CHECK(rid.ok());
      rids.push_back(rid.value());
    }
    CHECK(local.drain().ok());
    for (RequestId rid : rids) {
      Completion comp;
      CHECK(local.try_take(rid, &comp).ok());
      CHECK(comp.status.ok());
      inproc.push_back(comp.result.run());
    }
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      CHECK(sim::bitwise_equal(inproc[i], expect[i]));
    }
  }

  // One daemon + one server for everything below (sharded: 2 dispatchers,
  // exercising the socket path against the multi-dispatcher backend).
  Daemon daemon(daemon_config(8, 2));
  const std::uint32_t pid = daemon.register_policy(*policy);
  Server server(daemon, ServerConfig{});
  CHECK(server.status().ok());
  CHECK(server.port() != 0);

  // --- 1a. blocking schedule(): socket == in-process, bitwise ----------
  {
    Client c;
    CHECK(c.connect("127.0.0.1", server.port()).ok());
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = c.create_session(sc);
    CHECK(sid.ok());
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      ScheduleRequest req;
      req.jobs = &seqs[i];
      req.backfill = true;
      ScheduleResult out;
      CHECK(c.schedule(sid.value(), req, &out).ok());
      CHECK(out.runs.size() == 1);
      CHECK(sim::bitwise_equal(out.run(), inproc[i]));
    }

    // --- 1b. submit + wait, and the consumed-completion contract -------
    ScheduleRequest req;
    req.jobs = &seqs[0];
    req.backfill = true;
    auto rid = c.submit(sid.value(), req);
    CHECK(rid.ok());
    Completion comp;
    CHECK(c.wait(rid.value(), &comp).ok());
    CHECK(comp.status.ok());
    CHECK(comp.latency_seconds >= 0.0);
    CHECK(sim::bitwise_equal(comp.result.run(), inproc[0]));
    // wait() consumed it: a second take is kNotFound, code intact.
    CHECK(c.try_take(rid.value(), &comp).code() == StatusCode::kNotFound);
    CHECK(c.wait(rid.value(), &comp).code() == StatusCode::kNotFound);

    // --- 1c. multi-sequence batch over the wire -------------------------
    std::vector<std::vector<trace::Job>> batch = {seqs[1], seqs[2], seqs[3]};
    ScheduleRequest breq;
    breq.sequences = &batch;
    breq.backfill = true;
    ScheduleResult bout;
    CHECK(c.schedule(sid.value(), breq, &bout).ok());
    CHECK(bout.runs.size() == 3);
    for (std::size_t k = 0; k < 3; ++k) {
      CHECK(sim::bitwise_equal(bout.runs[k], inproc[k + 1]));
    }

    // --- 1d. pipelined send_schedule / recv_completion ------------------
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      ScheduleRequest preq;
      preq.jobs = &seqs[i];
      preq.backfill = true;
      CHECK(c.send_schedule(sid.value(), preq, 1000 + i).ok());
    }
    std::vector<bool> seen(seqs.size(), false);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      std::uint64_t tag = 0;
      Completion pc;
      CHECK(c.recv_completion(&tag, &pc).ok());
      CHECK(tag >= 1000 && tag < 1000 + seqs.size());
      const std::size_t idx = tag - 1000;
      CHECK(!seen[idx]);  // no duplicate or cross-delivered completion
      seen[idx] = true;
      CHECK(pc.status.ok());
      CHECK(sim::bitwise_equal(pc.result.run(), inproc[idx]));
    }

    // --- 1e. errors keep their Status across the wire -------------------
    // Streams are rejected locally, before any bytes move.
    ScheduleRequest sreq;
    auto stream_trace = workload::make_trace("Lublin-1", 16, 7);
    sreq.stream = &stream_trace;
    CHECK(c.submit(sid.value(), sreq).status().code() ==
          StatusCode::kInvalidArgument);
    // Invalid session config crosses with its code.
    SessionConfig bad;
    bad.processors = 0;
    bad.policy = pid;
    CHECK(c.create_session(bad).status().code() ==
          StatusCode::kInvalidArgument);
    SessionConfig bad_policy;
    bad_policy.processors = procs;
    bad_policy.policy = 999;
    CHECK(c.create_session(bad_policy).status().code() == StatusCode::kNotFound);
    // Unknown request id / stale session handle.
    CHECK(c.try_take(RequestId{987654321}, &comp).code() ==
          StatusCode::kNotFound);
    CHECK(c.destroy_session(sid.value()).ok());
    CHECK(c.destroy_session(sid.value()).code() == StatusCode::kNotFound);
    CHECK(c.submit(sid.value(), req).status().code() == StatusCode::kNotFound);
    c.close();
  }
  CHECK(wait_for_live_sessions(daemon, 0));

  // --- 2. malformed-frame matrix (each on its own connection) -----------
  {
    std::vector<std::uint8_t> valid;
    wire::encode_take(valid, wire::MsgType::kTryTake, 7, 123);

    auto copy = valid;
    copy[4] = 3;  // future version byte
    expect_rejected(server.port(), copy, "bad version");
    copy = valid;
    copy[6] = 0xFF;  // nonzero reserved
    expect_rejected(server.port(), copy, "nonzero reserved");
    copy = valid;
    copy[5] = 0;  // type 0 never assigned
    expect_rejected(server.port(), copy, "unknown type");
    copy = valid;
    const std::uint32_t huge = wire::kMaxPayloadBytes + 1;
    std::memcpy(copy.data(), &huge, 4);  // hostile declared length
    expect_rejected(server.port(), copy, "oversized length");

    // Reply types are not requests; the server refuses to echo them.
    std::vector<std::uint8_t> reply_frame;
    wire::encode_status_reply(reply_frame, 9, Status::Ok());
    expect_rejected(server.port(), reply_frame, "reply type to server");

    // Truncated payload behind a self-consistent header.
    std::vector<std::uint8_t> short_payload = {1, 2, 3, 4};
    std::vector<std::uint8_t> frame;
    wire::append_frame(frame, wire::MsgType::kTryTake, 7,
                       short_payload.data(), short_payload.size());
    expect_rejected(server.port(), frame, "truncated take payload");

    // Trailing garbage after a complete payload.
    frame = valid;
    frame.push_back(0xAB);
    std::uint32_t len = 8 + 1;
    std::memcpy(frame.data(), &len, 4);
    expect_rejected(server.port(), frame, "trailing garbage");

    // Submit with a hostile job count (4 billion jobs, zero bytes).
    std::vector<std::uint8_t> p;
    wire::put_u32(p, 1);
    wire::put_u32(p, 1);
    wire::put_u8(p, 0);
    wire::put_i32(p, 0);
    wire::put_u8(p, 0);
    wire::put_u64(p, 4096);
    wire::put_u32(p, 1);
    wire::put_u32(p, 0xFFFFFFFF);
    frame.clear();
    wire::append_frame(frame, wire::MsgType::kSubmit, 7, p.data(), p.size());
    expect_rejected(server.port(), frame, "hostile job count");

    // Mid-frame disconnect: half a header, then gone. No reply to read —
    // the gate is that the server survives (checked right below).
    {
      Client c;
      CHECK(c.connect("127.0.0.1", server.port()).ok());
      std::uint8_t half[10] = {};
      std::memcpy(half, valid.data(), sizeof(half));
      CHECK(c.send_raw(half, sizeof(half)).ok());
      c.close();
    }
    // Ten hostile connections later: a fresh client still gets bitwise
    // correct service.
    Client c;
    CHECK(c.connect("127.0.0.1", server.port()).ok());
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = c.create_session(sc);
    CHECK(sid.ok());
    ScheduleRequest req;
    req.jobs = &seqs[4];
    req.backfill = true;
    ScheduleResult out;
    CHECK(c.schedule(sid.value(), req, &out).ok());
    CHECK(sim::bitwise_equal(out.run(), inproc[4]));
    c.close();
  }
  CHECK(wait_for_live_sessions(daemon, 0));

  // --- 3a. a dropped connection's sessions are destroyed ----------------
  {
    Client c;
    CHECK(c.connect("127.0.0.1", server.port()).ok());
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    CHECK(c.create_session(sc).ok());
    CHECK(c.create_session(sc).ok());
    CHECK(daemon.live_sessions() == 2);
    c.close();  // no destroy_session: the close must clean up
    CHECK(wait_for_live_sessions(daemon, 0));
  }

  // --- 3b. two clients, interleaved, one server --------------------------
  {
    Client a, b;
    CHECK(a.connect("127.0.0.1", server.port()).ok());
    CHECK(b.connect("127.0.0.1", server.port()).ok());
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sa = a.create_session(sc);
    auto sb = b.create_session(sc);
    CHECK(sa.ok() && sb.ok());
    // A client cannot take a completion belonging to someone else's
    // request id namespace mixup: ids are global, but a consumed take is
    // consumed exactly once.
    ScheduleRequest req;
    req.jobs = &seqs[5];
    req.backfill = true;
    auto rid = a.submit(sa.value(), req);
    CHECK(rid.ok());
    Completion comp;
    CHECK(a.wait(rid.value(), &comp).ok());
    CHECK(sim::bitwise_equal(comp.result.run(), inproc[5]));
    CHECK(b.try_take(rid.value(), &comp).code() == StatusCode::kNotFound);
    ScheduleResult out;
    CHECK(b.schedule(sb.value(), req, &out).ok());
    CHECK(sim::bitwise_equal(out.run(), inproc[5]));
    a.close();
    b.close();
  }
  CHECK(wait_for_live_sessions(daemon, 0));

  // --- 4. clean shutdown: the daemon outlives its server -----------------
  server.stop();
  server.stop();  // idempotent
  {
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = daemon.create_session(sc);
    CHECK(sid.ok());
    ScheduleRequest req;
    req.jobs = &seqs[6];
    req.backfill = true;
    ScheduleResult out;
    CHECK(daemon.schedule(sid.value(), req, &out).ok());
    CHECK(sim::bitwise_equal(out.run(), inproc[6]));
    daemon.stop();
  }

  std::puts("serve server: OK");
  return 0;
}
