// The acceptance gate for the simulator hot path: after reset(), a full
// episode via step()/run_priority() — and the RL decision path
// (ObservationBuilder + kernel policy + masked argmax) — must perform ZERO
// heap allocation. Verified with counting global operator new/delete.
#include <cstdio>
#include <cstdlib>
#include <new>

static unsigned long long g_allocs = 0;

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// The nothrow family must be overridden too (stable_sort's temporary
// buffer uses it): a partial override would mix this file's malloc/free
// with the runtime's operator new — miscounting here and an
// alloc-dealloc-mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#include "nn/ops.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace rlsched;
  const auto trace = workload::make_trace("SDSC-SP2", 3000, 42);
  util::Rng rng(1);
  const auto seq = trace.sequence(0, 512);
  const auto sjf = sched::sjf_priority();

  // --- heuristic episode, with backfilling (the allocation-heavier path) ---
  {
    sim::SchedulingEnv env(trace.processors(), {.backfill = true});
    env.reset(seq);
    const unsigned long long before = g_allocs;
    const auto result = env.run_priority(sjf);
    const unsigned long long after = g_allocs;
    CHECK(result.jobs == seq.size());
    if (after != before) {
      std::fprintf(stderr, "run_priority allocated %llu times\n",
                   after - before);
      return 1;
    }
  }

  // --- step() driven episode ---
  {
    sim::SchedulingEnv env(trace.processors());
    env.reset(seq);
    const unsigned long long before = g_allocs;
    while (!env.done()) env.step(0);
    const unsigned long long after = g_allocs;
    CHECK(after == before);
  }

  // --- RL decision loop: observation build + kernel logits + argmax ---
  {
    const auto policy = rl::make_policy(rl::PolicyKind::Kernel,
                                        rl::kMaxObservable, rng);
    const rl::ObservationBuilder builder;
    sim::SchedulingEnv env(trace.processors(), {.backfill = true});
    env.reset(seq);
    const unsigned long long before = g_allocs;
    while (!env.done()) {
      const auto obs = builder.build(env);
      const auto logits = policy->logits(obs);
      env.step(nn::argmax_masked(logits.data(), obs.mask.data(),
                                 rl::kMaxObservable));
    }
    const unsigned long long after = g_allocs;
    if (after != before) {
      std::fprintf(stderr, "RL decision loop allocated %llu times\n",
                   after - before);
      return 1;
    }
  }

  std::puts("zero-allocation hot path: OK");
  return 0;
}
