// The acceptance gate for the simulator hot path: after reset(), a full
// episode via step()/run_priority() — and the RL decision path
// (ObservationBuilder + kernel policy + masked argmax) — must perform ZERO
// heap allocation. Verified with counting global operator new/delete.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "counting_alloc.hpp"

#include "nn/ops.hpp"
#include "rl/observation.hpp"
#include "rl/policy.hpp"
#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace rlsched;
  const auto trace = workload::make_trace("SDSC-SP2", 3000, 42);
  util::Rng rng(1);
  const auto seq = trace.sequence(0, 512);
  const auto sjf = sched::sjf_priority();

  // --- heuristic episode, with backfilling (the allocation-heavier path),
  // --- in BOTH run_priority kinds: the TimeVarying min-scan and the
  // --- TimeInvariant min-key index (enable_keys + take_min_key + the
  // --- pending-index compact/grow rebuilds must all stay in reserve) ---
  for (const auto kind : {sim::PriorityKind::TimeVarying,
                          sim::PriorityKind::TimeInvariant}) {
    sim::SchedulingEnv env(trace.processors(), {.backfill = true});
    env.reset(seq);
    const unsigned long long before = g_allocs;
    const auto result = env.run_priority(sjf, kind);
    const unsigned long long after = g_allocs;
    CHECK(result.jobs == seq.size());
    if (after != before) {
      std::fprintf(stderr, "run_priority (kind %d) allocated %llu times\n",
                   static_cast<int>(kind), after - before);
      return 1;
    }
  }

  // --- step() driven episode ---
  {
    sim::SchedulingEnv env(trace.processors());
    env.reset(seq);
    const unsigned long long before = g_allocs;
    while (!env.done()) env.step(0);
    const unsigned long long after = g_allocs;
    CHECK(after == before);
  }

  // --- RL decision loop: observation build + kernel logits + argmax ---
  {
    const auto policy = rl::make_policy(rl::PolicyKind::Kernel,
                                        rl::kMaxObservable, rng);
    const rl::ObservationBuilder builder;
    sim::SchedulingEnv env(trace.processors(), {.backfill = true});
    env.reset(seq);
    const unsigned long long before = g_allocs;
    while (!env.done()) {
      const auto obs = builder.build(env);
      const auto logits = policy->logits(obs);
      env.step(nn::argmax_masked(logits.data(), obs.mask.data(),
                                 rl::kMaxObservable));
    }
    const unsigned long long after = g_allocs;
    if (after != before) {
      std::fprintf(stderr, "RL decision loop allocated %llu times\n",
                   after - before);
      return 1;
    }
  }

  std::puts("zero-allocation hot path: OK");
  return 0;
}
