// Malformed-input contract for the SWF parser and ShardedReader
// (documented in trace/sharded_reader.hpp): every case below must produce
// a clean error or the documented recovery — never UB. The ASan/UBSan CI
// job runs this whole file instrumented.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "trace/sharded_reader.hpp"
#include "trace/swf_parse.hpp"
#include "trace/trace.hpp"

namespace {
using namespace rlsched;
namespace fs = std::filesystem;

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

template <typename Fn>
bool throws_runtime_error(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error&) {
    return true;
  }
  return false;
}
}  // namespace

int main() {
  using namespace rlsched;
  const std::string dir = "test_malformed_swf";
  fs::remove_all(dir);
  fs::create_directory(dir);

  // --- row parser: truncated and garbled rows are rejected, not decoded ---
  {
    trace::Job j;
    CHECK(trace::swf_parse_row("1 10 -1 100 4 -1 -1 4 120", j));  // 9 fields
    CHECK(j.id == 1);
    CHECK_NEAR(j.submit_time, 10.0, 0.0);
    CHECK_NEAR(j.requested_time, 120.0, 0.0);
    CHECK(!trace::swf_parse_row("1 10 -1 100 4", j));   // truncated: 5 fields
    CHECK(!trace::swf_parse_row("", j));                // empty
    CHECK(!trace::swf_parse_row("not a data row", j));  // non-numeric
  }

  // --- truncated final line: skipped by both ingestion paths ---
  {
    const std::string path = dir + "/truncated.swf";
    write_file(path,
               "; MaxProcs: 8\n"
               "1 0 -1 100 2 -1 -1 2 100 -1 1 5 -1 -1 -1 -1 -1 -1\n"
               "2 10 -1 50 1 -1 -1 1 50 -1 1 6 -1 -1 -1 -1 -1 -1\n"
               "3 20 -1 30");  // cut off mid-row, no trailing newline
    const auto t = trace::Trace::load_swf(path);
    CHECK(t.size() == 2);
    CHECK(t.processors() == 8);

    trace::ShardedReader r(path);
    std::vector<trace::Job> jobs;
    CHECK(r.fetch(100, jobs) == 2);
    CHECK(r.fetch(100, jobs) == 0);
    CHECK(r.rows_skipped() == 1);  // the truncated row, counted not crashed
    CHECK(jobs[0].id == 1 && jobs[1].id == 2);
  }

  // --- mid-shard EOF: a short final chunk, then exhaustion, never a hang --
  {
    const std::string path = dir + "/short.swf";
    write_file(path,
               "; MaxProcs: 4\n"
               "1 0 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n"
               "2 5 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n"
               "3 9 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n");
    trace::ShardedReader r(path);
    std::vector<trace::Job> jobs;
    CHECK(r.fetch(8, jobs) == 3);  // asked for 8, the shard had 3
    CHECK(r.fetch(8, jobs) == 0);
    CHECK(r.fetch(8, jobs) == 0);  // stays exhausted
    CHECK(r.jobs_delivered() == 3);
  }

  // --- out-of-order submit times: the stream throws at the offending row;
  // --- the materialized loader recovers by sorting ---
  {
    const std::string path = dir + "/unsorted.swf";
    write_file(path,
               "; MaxProcs: 4\n"
               "1 100 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n"
               "2 50 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n");
    trace::ShardedReader r(path);
    std::vector<trace::Job> jobs;
    CHECK(throws_runtime_error([&] { r.fetch(100, jobs); }));

    const auto t = trace::Trace::load_swf(path);  // documented recovery
    CHECK(t.size() == 2);
    CHECK(t[0].submit_time <= t[1].submit_time);
  }

  // --- comment-only and empty shards inside a directory are transparent --
  {
    const std::string d = dir + "/shards";
    fs::create_directory(d);
    write_file(d + "/0_head.swf",
               "; MaxProcs: 4\n"
               "1 0 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n");
    write_file(d + "/1_comments.swf", "; a shard of nothing but comments\n");
    write_file(d + "/2_empty.swf", "");
    write_file(d + "/3_tail.swf",
               "4 20 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n");
    trace::ShardedReader r(d);
    CHECK(r.shard_paths().size() == 4);
    std::vector<trace::Job> jobs;
    // One fetch spanning all four shards: the comment-only and empty files
    // must not terminate the stream early.
    CHECK(r.fetch(100, jobs) == 2);
    CHECK(jobs[0].id == 1 && jobs[1].id == 4);
    CHECK(r.fetch(100, jobs) == 0);
  }

  // --- empty file: zero jobs, clean exhaustion, no processors needed ---
  {
    const std::string path = dir + "/empty.swf";
    write_file(path, "");
    const auto t = trace::Trace::load_swf(path);
    CHECK(t.size() == 0);
    trace::ShardedReader r(path);  // no data row => no MaxProcs required
    std::vector<trace::Job> jobs;
    CHECK(r.fetch(10, jobs) == 0);
    CHECK(jobs.empty());
  }

  // --- data with no MaxProcs header: streams cannot scan ahead, so this
  // --- throws unless the caller supplies processors_hint ---
  {
    const std::string path = dir + "/headerless.swf";
    write_file(path, "1 0 -1 10 2 -1 -1 2 10 -1 1 1 -1 -1 -1 -1 -1 -1\n");
    CHECK(throws_runtime_error([&] { trace::ShardedReader r(path); }));
    trace::ShardedReader r(path, "", {.processors_hint = 16});
    CHECK(r.processors() == 16);
    std::vector<trace::Job> jobs;
    CHECK(r.fetch(10, jobs) == 1);
    // The materialized loader's documented fallback: widest job request.
    CHECK(trace::Trace::load_swf(path).processors() == 2);
  }

  // --- unreadable paths throw from both ingestion paths ---
  CHECK(throws_runtime_error(
      [&] { trace::Trace::load_swf(dir + "/does_not_exist.swf"); }));
  CHECK(throws_runtime_error(
      [&] { trace::ShardedReader r(dir + "/does_not_exist.swf"); }));

  // --- an empty shard directory is an error, not an empty trace ---
  {
    const std::string d = dir + "/no_shards";
    fs::create_directory(d);
    CHECK(throws_runtime_error([&] { trace::ShardedReader r(d); }));
  }

  fs::remove_all(dir);
  std::puts("SWF malformed-input contract: OK");
  return 0;
}
