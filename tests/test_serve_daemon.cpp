// serve::Daemon gates, in order of load-bearing-ness:
//   1. Cross-session batching invariance — N sessions drained together at
//      batch width B produce BITWISE the results of the same requests
//      served one session at a time at B = 1 (and of the engine's own
//      BatchedEvaluator reference).
//   2. Env pooling is invisible — a session created in a recycled slot
//      (whose env came back through the pool) schedules bitwise like the
//      first tenant did.
//   3. Session lifecycle under concurrent churn — parallel clients
//      creating/submitting/waiting/destroying sessions against the
//      background dispatcher never lose, duplicate, or cross-deliver a
//      completion.
//   4. Protocol errors on the shared Status enum: stale handles, unknown
//      request ids, cancellation by destroy, table exhaustion.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "rl/batch_eval.hpp"
#include "rl/policy.hpp"
#include "serve/daemon.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {
using namespace rlsched;
using core::ScheduleRequest;
using core::ScheduleResult;
using core::Status;
using core::StatusCode;
using serve::Completion;
using serve::Daemon;
using serve::DaemonConfig;
using serve::RequestId;
using serve::SessionConfig;
using serve::SessionId;

DaemonConfig daemon_config(std::size_t batch) {
  DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  return cfg;
}

/// Engine-level ground truth: the unbatched greedy rollout of each
/// sequence, through the same BatchedEvaluator the trainer uses.
std::vector<sim::RunResult> reference_runs(
    const rl::Policy& policy, const std::vector<std::vector<trace::Job>>& seqs,
    int processors, bool backfill) {
  rl::BatchedEvaluator eval(policy, 1);
  std::vector<sim::RunResult> out(seqs.size());
  eval.evaluate(seqs, processors, backfill, out.data());
  return out;
}
}  // namespace

int main() {
  const auto trace = workload::make_trace("Lublin-1", 4000, 42);
  const int procs = trace.processors();
  util::Rng policy_rng(99);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, policy_rng);

  util::Rng rng(5);
  constexpr std::size_t kSessions = 16;
  std::vector<std::vector<trace::Job>> seqs;
  for (std::size_t i = 0; i < kSessions; ++i) {
    seqs.push_back(trace.sample_sequence(rng, 64 + 8 * i));
  }
  const auto expect = reference_runs(*policy, seqs, procs, true);

  // --- 1. cross-session batching invariance ------------------------------
  {
    std::vector<sim::RunResult> at_batch[2];
    const std::size_t widths[2] = {1, 8};
    for (int v = 0; v < 2; ++v) {
      Daemon daemon(daemon_config(widths[v]));
      CHECK(daemon.batch() == widths[v]);
      const std::uint32_t pid = daemon.register_policy(*policy);
      std::vector<SessionId> sessions;
      std::vector<RequestId> requests;
      for (std::size_t i = 0; i < kSessions; ++i) {
        SessionConfig sc;
        sc.processors = procs;
        sc.policy = pid;
        auto sid = daemon.create_session(sc);
        CHECK(sid.ok());
        sessions.push_back(sid.value());
        ScheduleRequest req;
        req.jobs = &seqs[i];
        req.backfill = true;
        auto rid = daemon.submit(sessions[i], req);
        CHECK(rid.ok());
        requests.push_back(rid.value());
      }
      // All 16 sessions pending; one drain serves them in shared batches.
      auto served = daemon.drain();
      CHECK(served.ok());
      CHECK(served.value() == kSessions);
      for (std::size_t i = 0; i < kSessions; ++i) {
        Completion c;
        CHECK(daemon.try_take(requests[i], &c).ok());
        CHECK(c.status.ok());
        CHECK(c.result.runs.size() == 1);
        CHECK(c.latency_seconds >= 0.0);
        at_batch[v].push_back(c.result.run());
      }
      const auto stats = daemon.stats();
      CHECK(stats.requests_submitted == kSessions);
      CHECK(stats.requests_completed == kSessions);
      CHECK(stats.episodes == kSessions);
      CHECK(stats.forwards > 0);
      CHECK(stats.forward_windows >= stats.forwards);
      if (widths[v] > 1) {
        // Batching actually happened: strictly fewer forwards than
        // decisions means multi-window packing occurred.
        CHECK(stats.forward_windows == stats.decisions);
        CHECK(stats.forwards < stats.decisions);
      }
    }
    for (std::size_t i = 0; i < kSessions; ++i) {
      CHECK(sim::bitwise_equal(at_batch[0][i], at_batch[1][i]));
      CHECK(sim::bitwise_equal(at_batch[1][i], expect[i]));
    }
  }

  // --- 2. env pooling is invisible + request knobs -----------------------
  {
    Daemon daemon(daemon_config(4));
    const std::uint32_t pid = daemon.register_policy(*policy);
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;

    auto first = daemon.create_session(sc).value();
    ScheduleRequest req;
    req.jobs = &seqs[0];
    req.backfill = true;
    ScheduleResult r1;
    CHECK(daemon.schedule(first, req, &r1).ok());
    CHECK(daemon.destroy_session(first).ok());
    CHECK(daemon.live_sessions() == 0);

    // The next tenant recycles the pooled env (same slot, bumped gen).
    auto second = daemon.create_session(sc).value();
    CHECK(second.index == first.index);
    CHECK(second.gen != first.gen);
    ScheduleResult r2;
    CHECK(daemon.schedule(second, req, &r2).ok());
    CHECK(sim::bitwise_equal(r1.run(), r2.run()));
    CHECK(sim::bitwise_equal(r1.run(), expect[0]));

    // Per-request processors override (what-if on a smaller cluster).
    ScheduleRequest what_if = req;
    what_if.processors = procs / 2;
    ScheduleResult r3;
    CHECK(daemon.schedule(second, what_if, &r3).ok());
    const auto small = reference_runs(*policy, {seqs[0]}, procs / 2, true);
    CHECK(sim::bitwise_equal(r3.run(), small[0]));
    // ...and the session still schedules bitwise on its own cluster after
    // the env was reconfigured away and back.
    ScheduleResult r4;
    CHECK(daemon.schedule(second, req, &r4).ok());
    CHECK(sim::bitwise_equal(r4.run(), expect[0]));

    // Multi-sequence request: one completion, one run per sequence, each
    // bitwise the single-sequence run.
    std::vector<std::vector<trace::Job>> three(seqs.begin(), seqs.begin() + 3);
    ScheduleRequest many;
    many.sequences = &three;
    many.backfill = true;
    ScheduleResult rm;
    CHECK(daemon.schedule(second, many, &rm).ok());
    CHECK(rm.runs.size() == 3);
    for (std::size_t i = 0; i < 3; ++i) {
      CHECK(sim::bitwise_equal(rm.runs[i], expect[i]));
    }

    // Streamed request == materialized request of the same jobs.
    auto stream_trace = trace;
    ScheduleRequest streamed;
    streamed.stream = &stream_trace;
    streamed.backfill = true;
    streamed.chunk_jobs = 512;
    ScheduleResult rs;
    CHECK(daemon.schedule(second, streamed, &rs).ok());
    ScheduleRequest materialized;
    materialized.jobs = &trace.jobs();
    materialized.backfill = true;
    ScheduleResult rmat;
    CHECK(daemon.schedule(second, materialized, &rmat).ok());
    CHECK(sim::bitwise_equal(rs.run(), rmat.run()));
  }

  // --- 3. protocol errors ------------------------------------------------
  {
    Daemon daemon(daemon_config(4));
    const std::uint32_t pid = daemon.register_policy(*policy);

    SessionConfig bad;
    bad.processors = 0;
    bad.policy = pid;
    CHECK(daemon.create_session(bad).status().code() ==
          StatusCode::kInvalidArgument);
    SessionConfig unknown_policy;
    unknown_policy.processors = procs;
    unknown_policy.policy = pid + 1;
    CHECK(daemon.create_session(unknown_policy).status().code() ==
          StatusCode::kNotFound);

    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = daemon.create_session(sc).value();

    // Malformed request fails validation at submit.
    CHECK(daemon.submit(sid, ScheduleRequest{}).status().code() ==
          StatusCode::kInvalidArgument);

    // Queued request cancelled by destroy; its completion is delivered as
    // kCancelled, and the handle goes stale.
    ScheduleRequest req;
    req.jobs = &seqs[0];
    auto rid = daemon.submit(sid, req).value();
    Completion pending;
    CHECK(daemon.try_take(rid, &pending).code() == StatusCode::kUnavailable);
    CHECK(daemon.destroy_session(sid).ok());
    Completion c;
    CHECK(daemon.try_take(rid, &c).ok());
    CHECK(c.status.code() == StatusCode::kCancelled);
    CHECK(daemon.stats().requests_cancelled == 1);

    // Stale handle: every operation reports kNotFound, and a completion is
    // delivered exactly once (second take of rid is kNotFound too).
    CHECK(daemon.submit(sid, req).status().code() == StatusCode::kNotFound);
    CHECK(daemon.destroy_session(sid).code() == StatusCode::kNotFound);
    CHECK(daemon.try_take(rid, &c).code() == StatusCode::kNotFound);
    CHECK(daemon.try_take(RequestId{999}, &c).code() ==
          StatusCode::kNotFound);
    CHECK(daemon.wait(RequestId{999}, &c).code() == StatusCode::kNotFound);

    // wait() on a request nothing will ever serve must refuse, not hang.
    auto sid2 = daemon.create_session(sc).value();
    auto rid2 = daemon.submit(sid2, req).value();
    CHECK(daemon.wait(rid2, &c).code() == StatusCode::kFailedPrecondition);

    // Session table exhaustion.
    Daemon tiny([] {
      DaemonConfig cfg = daemon_config(2);
      cfg.max_sessions = 1;
      return cfg;
    }());
    const std::uint32_t tp = tiny.register_policy(*policy);
    SessionConfig tc;
    tc.processors = procs;
    tc.policy = tp;
    auto only = tiny.create_session(tc);
    CHECK(only.ok());
    CHECK(tiny.create_session(tc).status().code() ==
          StatusCode::kResourceExhausted);
  }

  // --- 4. concurrent churn against the background dispatcher -------------
  {
    Daemon daemon(daemon_config(8));
    const std::uint32_t pid = daemon.register_policy(*policy);
    daemon.start();

    // drain() is refused while the background dispatcher owns execution.
    CHECK(daemon.drain().status().code() == StatusCode::kFailedPrecondition);

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kRounds = 6;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        for (std::size_t round = 0; round < kRounds; ++round) {
          const std::size_t which = (t * kRounds + round) % kSessions;
          SessionConfig sc;
          sc.processors = procs;
          sc.policy = pid;
          auto sid = daemon.create_session(sc);
          if (!sid.ok()) { ++failures; return; }
          ScheduleRequest req;
          req.jobs = &seqs[which];
          req.backfill = true;
          auto rid = daemon.submit(sid.value(), req);
          if (!rid.ok()) { ++failures; return; }
          Completion c;
          if (!daemon.wait(rid.value(), &c).ok() || !c.status.ok() ||
              c.result.runs.size() != 1 ||
              !sim::bitwise_equal(c.result.run(), expect[which])) {
            ++failures;
            return;
          }
          // Every other round, destroy with a request still queued to
          // exercise cancellation racing the dispatcher.
          if (round % 2 == 0) {
            auto extra = daemon.submit(sid.value(), req);
            if (!extra.ok()) { ++failures; return; }
            if (!daemon.destroy_session(sid.value()).ok()) {
              ++failures;
              return;
            }
            Completion dropped;
            // The extra request either got cancelled or was already being
            // served when destroy arrived — both are contract-clean.
            for (;;) {
              const Status s = daemon.try_take(extra.value(), &dropped);
              if (s.ok()) break;
              if (s.code() != StatusCode::kUnavailable) { ++failures; break; }
              std::this_thread::yield();
            }
            if (!(dropped.status.code() == StatusCode::kCancelled ||
                  dropped.status.ok())) {
              ++failures;
            }
          } else {
            if (!daemon.destroy_session(sid.value()).ok()) ++failures;
          }
        }
      });
    }
    for (auto& c : clients) c.join();
    daemon.stop();
    CHECK(failures.load() == 0);
    CHECK(daemon.live_sessions() == 0);
    const auto stats = daemon.stats();
    CHECK(stats.sessions_created == stats.sessions_destroyed);
    CHECK(stats.requests_submitted == stats.requests_completed +
                                          stats.requests_cancelled +
                                          stats.requests_shed);
    CHECK(stats.requests_failed == 0);

    // Work queued after stop() is served by a later drain on the caller.
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = daemon.create_session(sc).value();
    ScheduleRequest req;
    req.jobs = &seqs[1];
    req.backfill = true;
    auto rid = daemon.submit(sid, req).value();
    CHECK(daemon.drain().value() == 1);
    Completion c;
    CHECK(daemon.try_take(rid, &c).ok());
    CHECK(c.status.ok());
    CHECK(sim::bitwise_equal(c.result.run(), expect[1]));
  }

  // --- 5. per-policy dispatcher sharding is bitwise invisible ------------
  {
    // Each policy id gets its OWN (identically seeded, hence identically
    // weighted) Policy object: with dispatchers > 1 the ids map to
    // different shard threads, and sharing one object across shards would
    // race on its forward scratch — exactly what the daemon header bans.
    constexpr std::size_t kPolicies = 3;
    const std::size_t shard_sweep[2] = {1, 3};
    std::vector<sim::RunResult> at_shards[2];
    for (int v = 0; v < 2; ++v) {
      DaemonConfig cfg = daemon_config(8);
      cfg.dispatchers = shard_sweep[v];
      Daemon daemon(cfg);
      CHECK(daemon.dispatchers() == shard_sweep[v]);
      std::vector<std::unique_ptr<rl::Policy>> pols;
      std::vector<std::uint32_t> pids;
      for (std::size_t p = 0; p < kPolicies; ++p) {
        util::Rng prng(99);  // the same seed as `policy` above
        pols.push_back(rl::make_policy(rl::PolicyKind::Kernel,
                                       rl::kMaxObservable, prng));
        pids.push_back(daemon.register_policy(*pols.back()));
      }
      daemon.start();
      std::vector<SessionId> sessions;
      std::vector<RequestId> requests;
      for (std::size_t i = 0; i < kSessions; ++i) {
        SessionConfig sc;
        sc.processors = procs;
        sc.policy = pids[i % kPolicies];  // spread sessions across shards
        auto sid = daemon.create_session(sc);
        CHECK(sid.ok());
        sessions.push_back(sid.value());
        ScheduleRequest req;
        req.jobs = &seqs[i];
        req.backfill = true;
        auto rid = daemon.submit(sessions[i], req);
        CHECK(rid.ok());
        requests.push_back(rid.value());
      }
      for (std::size_t i = 0; i < kSessions; ++i) {
        Completion c;
        CHECK(daemon.wait(requests[i], &c).ok());
        CHECK(c.status.ok());
        at_shards[v].push_back(c.result.run());
      }
      daemon.stop();
    }
    for (std::size_t i = 0; i < kSessions; ++i) {
      // Sharded == single-dispatcher == the engine's unbatched reference:
      // episodes depend only on their own env and policy weights, so the
      // shard layout must be bitwise invisible.
      CHECK(sim::bitwise_equal(at_shards[0][i], at_shards[1][i]));
      CHECK(sim::bitwise_equal(at_shards[1][i], expect[i]));
    }
  }

  // --- 6. schedule() vs start()/stop()/drain() lifecycle churn -----------
  {
    // Regression for the submit-and-wait retry loop: under adversarial
    // start()/stop() cycling plus a competing drain()er, every schedule()
    // call must RESOLVE — OK with the bitwise-correct result, or the
    // documented terminal kUnavailable (bounded retries, request still
    // pollable) — never busy-spin or hang. CI runs this under TSan.
    Daemon daemon(daemon_config(4));
    const std::uint32_t pid = daemon.register_policy(*policy);
    std::atomic<bool> done{false};
    std::atomic<int> failures{0};
    std::atomic<std::uint64_t> resolved_ok{0};
    std::atomic<std::uint64_t> resolved_terminal{0};

    std::thread lifecycle([&] {
      while (!done.load()) {
        daemon.start();
        std::this_thread::yield();
        daemon.stop();
      }
    });
    std::thread drainer([&] {
      while (!done.load()) {
        (void)daemon.drain();  // kFailedPrecondition while started: fine
        std::this_thread::yield();
      }
    });

    constexpr std::size_t kClients = 3;
    constexpr std::size_t kRounds = 12;
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        SessionConfig sc;
        sc.processors = procs;
        sc.policy = pid;
        auto sid = daemon.create_session(sc);
        if (!sid.ok()) {
          ++failures;
          return;
        }
        ScheduleRequest req;
        req.jobs = &seqs[t];
        req.backfill = true;
        for (std::size_t round = 0; round < kRounds; ++round) {
          ScheduleResult out;
          const Status s = daemon.schedule(sid.value(), req, &out);
          if (s.ok()) {
            if (!sim::bitwise_equal(out.run(), expect[t])) {
              ++failures;
              return;
            }
            ++resolved_ok;
          } else if (s.code() == StatusCode::kUnavailable) {
            ++resolved_terminal;  // lost every lifecycle race; legal
          } else {
            ++failures;
            return;
          }
        }
      });
    }
    for (auto& c : clients) c.join();
    done.store(true);
    lifecycle.join();
    drainer.join();
    daemon.stop();
    CHECK(failures.load() == 0);
    CHECK(resolved_ok.load() + resolved_terminal.load() ==
          kClients * kRounds);
    // Terminal kUnavailable left its request submitted: a final drain on
    // the now-quiet daemon serves every leftover, so nothing is lost.
    CHECK(daemon.drain().ok());
    const auto stats = daemon.stats();
    CHECK(stats.requests_submitted == stats.requests_completed +
                                          stats.requests_cancelled +
                                          stats.requests_shed);
    CHECK(stats.requests_failed == 0);
  }

  // --- 7. shutdown/destruction accounting: nothing silently dropped ------
  {
    // shutdown(0): no drain budget, every queued request must come back as
    // a DELIVERED kCancelled completion — the stats balance to the request,
    // which is the invariant ~Daemon() relies on.
    Daemon daemon(daemon_config(4));
    const std::uint32_t pid = daemon.register_policy(*policy);
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = daemon.create_session(sc).value();
    ScheduleRequest req;
    req.jobs = &seqs[0];
    req.backfill = true;
    std::vector<RequestId> rids;
    for (int i = 0; i < 5; ++i) rids.push_back(daemon.submit(sid, req).value());
    daemon.shutdown(0.0);
    for (const RequestId rid : rids) {
      Completion c;
      CHECK(daemon.try_take(rid, &c).ok());
      CHECK(c.status.code() == StatusCode::kCancelled);
    }
    const auto stats = daemon.stats();
    CHECK(stats.requests_submitted == 5);
    CHECK(stats.requests_cancelled == 5);
    CHECK(stats.requests_submitted == stats.requests_completed +
                                          stats.requests_cancelled +
                                          stats.requests_shed);
  }
  {
    // A generous drain budget instead SERVES the queue before stopping.
    Daemon daemon(daemon_config(4));
    const std::uint32_t pid = daemon.register_policy(*policy);
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = daemon.create_session(sc).value();
    ScheduleRequest req;
    req.jobs = &seqs[2];
    req.backfill = true;
    auto rid = daemon.submit(sid, req).value();
    daemon.shutdown(60.0);
    Completion c;
    CHECK(daemon.try_take(rid, &c).ok());
    CHECK(c.status.ok());
    CHECK(sim::bitwise_equal(c.result.run(), expect[2]));
    const auto stats = daemon.stats();
    CHECK(stats.requests_completed == 1);
    CHECK(stats.requests_cancelled == 0);
  }
  {
    // Destruction itself: the completion hook observes one terminal
    // completion per submitted request even when the daemon dies with work
    // still queued (the destructor runs shutdown, not a silent drop).
    std::atomic<std::uint64_t> delivered{0};
    {
      DaemonConfig cfg = daemon_config(4);
      cfg.drain_deadline_seconds = 0.0;  // destructor cancels, immediately
      Daemon daemon(cfg);
      const std::uint32_t pid = daemon.register_policy(*policy);
      daemon.set_completion_hook(
          [](void* ctx, std::uint64_t) {
            static_cast<std::atomic<std::uint64_t>*>(ctx)->fetch_add(1);
          },
          &delivered);
      SessionConfig sc;
      sc.processors = procs;
      sc.policy = pid;
      auto sid = daemon.create_session(sc).value();
      ScheduleRequest req;
      req.jobs = &seqs[0];
      req.backfill = true;
      for (int i = 0; i < 3; ++i) CHECK(daemon.submit(sid, req).ok());
    }
    CHECK(delivered.load() == 3);
  }

  std::puts("serve daemon: OK");
  return 0;
}
