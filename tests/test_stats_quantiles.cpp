// util/stats incremental accumulators: quantile estimates (one-shot
// summarize(), streaming P2Quantile) against hand-computable and known
// distributions, and the cross-shard RunningStats::merge path — shards
// accumulated independently and merged must agree with the pooled stream.
#include <cmath>
#include <cstdio>
#include <vector>

#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace rlsched;

  // ---------- one-shot summarize(): hand-computed fixture ----------
  {
    // 0..10: median 5, p95 = 9.5, min 0, max 10, mean 5.
    std::vector<double> v;
    for (int i = 10; i >= 0; --i) v.push_back(i);  // order must not matter
    const auto s = util::summarize(v);
    CHECK(s.count == 11);
    CHECK_NEAR(s.mean, 5.0, 1e-12);
    CHECK_NEAR(s.median, 5.0, 1e-12);
    CHECK_NEAR(s.p95, 9.5, 1e-12);
    CHECK_NEAR(s.min, 0.0, 0.0);
    CHECK_NEAR(s.max, 10.0, 0.0);
    // Population stddev of 0..10: sqrt(10) = 3.1623.
    CHECK_NEAR(s.stddev, 3.1622776601683795, 1e-12);
    CHECK_NEAR(s.skewness, 0.0, 1e-12);  // symmetric
  }

  // ---------- percentile_sorted: nearest rank, fixed vectors ----------
  {
    // 10 known samples: p99 must be the MAX (rank ceil(.99*10)=10), not
    // element 8 — the trunc(p*(n-1)) shortcut this replaces reported the
    // 90th percentile of exactly this shape.
    const std::vector<double> ten = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    CHECK_NEAR(util::percentile_sorted(ten, 0.99), 10.0, 0.0);
    CHECK_NEAR(util::percentile_sorted(ten, 1.00), 10.0, 0.0);
    CHECK_NEAR(util::percentile_sorted(ten, 0.90), 9.0, 0.0);   // rank 9
    CHECK_NEAR(util::percentile_sorted(ten, 0.50), 5.0, 0.0);   // rank 5
    CHECK_NEAR(util::percentile_sorted(ten, 0.05), 1.0, 0.0);   // rank 1
    CHECK_NEAR(util::percentile_sorted(ten, 0.11), 2.0, 0.0);   // rank 2
    // The NIST nearest-rank worked example: n=5, p30 -> rank 2, p75 ->
    // rank 4, p100 -> max.
    const std::vector<double> five = {15, 20, 35, 40, 50};
    CHECK_NEAR(util::percentile_sorted(five, 0.30), 20.0, 0.0);
    CHECK_NEAR(util::percentile_sorted(five, 0.40), 20.0, 0.0);
    CHECK_NEAR(util::percentile_sorted(five, 0.50), 35.0, 0.0);
    CHECK_NEAR(util::percentile_sorted(five, 0.75), 40.0, 0.0);
    CHECK_NEAR(util::percentile_sorted(five, 1.00), 50.0, 0.0);
    // Degenerate shapes: empty -> 0 (guarded, no UB); singleton -> the
    // sample at every p; p <= 0 -> min.
    CHECK_NEAR(util::percentile_sorted({}, 0.99), 0.0, 0.0);
    CHECK_NEAR(util::percentile_sorted({7.5}, 0.01), 7.5, 0.0);
    CHECK_NEAR(util::percentile_sorted({7.5}, 0.99), 7.5, 0.0);
    CHECK_NEAR(util::percentile_sorted(ten, 0.0), 1.0, 0.0);
    CHECK_NEAR(util::percentile_sorted(ten, -1.0), 1.0, 0.0);
    // A result is always a REAL sample, never interpolated: p50 of {1,2}
    // is 1 (rank 1), not 1.5.
    CHECK_NEAR(util::percentile_sorted({1.0, 2.0}, 0.50), 1.0, 0.0);
    CHECK_NEAR(util::percentile_sorted({1.0, 2.0}, 0.51), 2.0, 0.0);
  }

  // ---------- P2Quantile: exact for the first 5 samples ----------
  {
    util::P2Quantile med(0.5);
    CHECK_NEAR(med.value(), 0.0, 0.0);  // empty
    med.add(3.0);
    CHECK_NEAR(med.value(), 3.0, 0.0);  // single sample
    med.add(1.0);
    CHECK_NEAR(med.value(), 2.0, 1e-12);  // {1,3} -> interpolated 2
    med.add(2.0);
    CHECK_NEAR(med.value(), 2.0, 1e-12);  // {1,2,3}
    med.add(10.0);
    med.add(0.0);
    CHECK_NEAR(med.value(), 2.0, 1e-12);  // {0,1,2,3,10}
    CHECK(med.count() == 5);
  }

  // ---------- P2Quantile vs exact quantiles, uniform stream ----------
  {
    // A deterministic pseudo-shuffled uniform stream over [0, 1):
    // the golden-ratio (Weyl) sequence visits [0,1) equidistributed but in
    // scattered order, the adversarial case for a streaming estimator.
    const std::size_t n = 20000;
    util::P2Quantile p50(0.5), p90(0.9), p99(0.99);
    for (std::size_t i = 1; i <= n; ++i) {
      const double x =
          std::fmod(static_cast<double>(i) * 0.6180339887498949, 1.0);
      p50.add(x);
      p90.add(x);
      p99.add(x);
    }
    CHECK(p50.count() == n);
    CHECK_NEAR(p50.value(), 0.50, 0.02);
    CHECK_NEAR(p90.value(), 0.90, 0.02);
    CHECK_NEAR(p99.value(), 0.99, 0.01);
    // Quantile estimates must be ordered like their targets.
    CHECK(p50.value() < p90.value());
    CHECK(p90.value() < p99.value());
  }

  // ---------- P2Quantile on a skewed (exponential-ish) stream ----------
  {
    util::Rng rng(77);
    std::vector<double> all;
    util::P2Quantile p95(0.95);
    for (std::size_t i = 0; i < 50000; ++i) {
      const double x = rng.exponential(10.0);
      p95.add(x);
      all.push_back(x);
    }
    const auto exact = util::summarize(all);
    // Exponential p95 = 10*ln(20) = 29.96; allow 5% relative error.
    CHECK_NEAR(p95.value(), exact.p95, 0.05 * exact.p95);
  }

  // ---------- RunningStats: hand-computed and cross-shard merge ----------
  {
    util::RunningStats a;
    for (const double x : {2.0, 4.0, 6.0}) a.add(x);
    CHECK(a.count() == 3);
    CHECK_NEAR(a.mean(), 4.0, 1e-12);
    // Population variance of {2,4,6} = 8/3.
    CHECK_NEAR(a.variance(), 8.0 / 3.0, 1e-12);

    // merge() with an empty side is the identity, both ways.
    util::RunningStats empty;
    util::RunningStats b = a;
    b.merge(empty);
    CHECK(b.count() == 3);
    CHECK_NEAR(b.mean(), 4.0, 1e-12);
    util::RunningStats c = empty;
    c.merge(a);
    CHECK(c.count() == 3);
    CHECK_NEAR(c.variance(), 8.0 / 3.0, 1e-12);
  }
  {
    // The tentpole's cross-shard path: accumulate a 10k-sample stream
    // whole, and as 7 unequal shards merged in shard order. Counts are
    // exact; moments agree to floating-point reassociation.
    util::Rng rng(5);
    std::vector<double> xs;
    for (std::size_t i = 0; i < 10000; ++i) {
      xs.push_back(rng.uniform() * 100.0 - 20.0);
    }
    util::RunningStats pooled;
    for (const double x : xs) pooled.add(x);

    const std::size_t cuts[] = {0, 1, 8, 509, 510, 4242, 9999, 10000};
    util::RunningStats merged;
    for (std::size_t s = 0; s + 1 < sizeof(cuts) / sizeof(cuts[0]); ++s) {
      util::RunningStats shard;
      for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) shard.add(xs[i]);
      merged.merge(shard);  // shard lengths 1, 7, 501, 1, 3732, 5757, 1
    }
    CHECK(merged.count() == pooled.count());
    CHECK_NEAR(merged.mean(), pooled.mean(), 1e-9 * std::fabs(pooled.mean()));
    CHECK_NEAR(merged.variance(), pooled.variance(),
               1e-9 * pooled.variance());
    CHECK_NEAR(merged.stddev(), pooled.stddev(), 1e-9 * pooled.stddev());
  }

  std::puts("stats quantiles + cross-shard merge: OK");
  return 0;
}
