// Environment-variable parsing must be validated: garbage falls back to the
// default, out-of-range values clamp, and good values parse exactly.
#include <algorithm>
#include <cstdlib>
#include <thread>

#include "core/api.hpp"
#include "test_util.hpp"
#include "util/env.hpp"

namespace {
void put(const char* name, const char* value) { setenv(name, value, 1); }
}  // namespace

int main() {
  using rlsched::util::env_double;
  using rlsched::util::env_long;
  using rlsched::util::env_string;

  // Unset -> default.
  unsetenv("RLSCHED_TEST_VAR");
  CHECK(env_long("RLSCHED_TEST_VAR", 42) == 42);
  CHECK(env_string("RLSCHED_TEST_VAR", "dflt") == "dflt");

  // Clean parses.
  put("RLSCHED_TEST_VAR", "17");
  CHECK(env_long("RLSCHED_TEST_VAR", 42) == 17);
  put("RLSCHED_TEST_VAR", "-3");
  CHECK(env_long("RLSCHED_TEST_VAR", 42) == -3);

  // Garbage must fall back to the default, not be consumed partially
  // (the classic "1O" typo) or as UB.
  put("RLSCHED_TEST_VAR", "1O");
  CHECK(env_long("RLSCHED_TEST_VAR", 42) == 42);
  put("RLSCHED_TEST_VAR", "abc");
  CHECK(env_long("RLSCHED_TEST_VAR", 42) == 42);
  put("RLSCHED_TEST_VAR", "12.5");
  CHECK(env_long("RLSCHED_TEST_VAR", 42) == 42);
  put("RLSCHED_TEST_VAR", "");
  CHECK(env_long("RLSCHED_TEST_VAR", 42) == 42);
  put("RLSCHED_TEST_VAR", "99999999999999999999999999");
  CHECK(env_long("RLSCHED_TEST_VAR", 42) == 42);

  // Clamping: a size_t-destined knob must never go negative.
  put("RLSCHED_TEST_VAR", "-7");
  CHECK(env_long("RLSCHED_TEST_VAR", 42, 0) == 0);
  put("RLSCHED_TEST_VAR", "1000000");
  CHECK(env_long("RLSCHED_TEST_VAR", 42, 0, 100) == 100);

  // Doubles follow the same contract.
  put("RLSCHED_TEST_VAR", "2.75");
  CHECK_NEAR(env_double("RLSCHED_TEST_VAR", 1.0), 2.75, 1e-12);
  put("RLSCHED_TEST_VAR", "nope");
  CHECK_NEAR(env_double("RLSCHED_TEST_VAR", 1.0), 1.0, 1e-12);

  // Strings pass through untouched.
  put("RLSCHED_TEST_VAR", "model_dir/x");
  CHECK(env_string("RLSCHED_TEST_VAR", "dflt") == "model_dir/x");

  // Worker counts (RLSCHED_WORKERS): unset -> fallback.
  using rlsched::util::env_workers;
  unsetenv("RLSCHED_TEST_VAR");
  CHECK(env_workers("RLSCHED_TEST_VAR", 3) == 3);

  // Garbage, zero, and negative are REJECTED back to the fallback — a
  // thread count of 0 must never be "clamped up" into silently running.
  put("RLSCHED_TEST_VAR", "0");
  CHECK(env_workers("RLSCHED_TEST_VAR", 3) == 3);
  put("RLSCHED_TEST_VAR", "-4");
  CHECK(env_workers("RLSCHED_TEST_VAR", 3) == 3);
  put("RLSCHED_TEST_VAR", "abc");
  CHECK(env_workers("RLSCHED_TEST_VAR", 3) == 3);
  put("RLSCHED_TEST_VAR", "4x");
  CHECK(env_workers("RLSCHED_TEST_VAR", 3) == 3);
  put("RLSCHED_TEST_VAR", "");
  CHECK(env_workers("RLSCHED_TEST_VAR", 3) == 3);

  // Valid counts parse, but never exceed the host's hardware concurrency
  // (when the runtime can report it).
  const std::size_t hw = std::thread::hardware_concurrency();
  put("RLSCHED_TEST_VAR", "2");
  CHECK(env_workers("RLSCHED_TEST_VAR", 1) ==
        (hw > 0 ? std::min<std::size_t>(2, hw) : 2));
  put("RLSCHED_TEST_VAR", "1000000");
  if (hw > 0) {
    CHECK(env_workers("RLSCHED_TEST_VAR", 1) == hw);
  }
  put("RLSCHED_TEST_VAR", "1");
  CHECK(env_workers("RLSCHED_TEST_VAR", 8) == 1);

  // Batch widths (RLSCHED_BATCH): same contract as worker counts — unset
  // -> fallback; garbage, zero, negative REJECTED; clamped to the
  // documented max instead of hardware concurrency.
  using rlsched::util::env_batch;
  using rlsched::util::kMaxBatchWindows;
  unsetenv("RLSCHED_TEST_VAR");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == 8);
  put("RLSCHED_TEST_VAR", "0");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == 8);
  put("RLSCHED_TEST_VAR", "-16");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == 8);
  put("RLSCHED_TEST_VAR", "abc");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == 8);
  put("RLSCHED_TEST_VAR", "8x");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == 8);
  put("RLSCHED_TEST_VAR", "");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == 8);
  put("RLSCHED_TEST_VAR", "32");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == 32);
  put("RLSCHED_TEST_VAR", "1");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == 1);
  put("RLSCHED_TEST_VAR", "999999999");
  CHECK(env_batch("RLSCHED_TEST_VAR", 8) == kMaxBatchWindows);

  // RuntimeConfig: the ONE place RLSCHED_WORKERS / RLSCHED_BATCH parsing
  // and the explicit > env > default precedence chain live, shared by
  // RLSchedulerConfig and the serve daemon.
  using rlsched::core::RuntimeConfig;

  // Unset env, unset fields -> built-in defaults.
  unsetenv("RLSCHED_WORKERS");
  unsetenv("RLSCHED_BATCH");
  RuntimeConfig rc;
  CHECK(rc.workers == 0 && rc.batch == 0);  // 0 = defer
  CHECK(rc.resolved().workers == RuntimeConfig::kDefaultWorkers);
  CHECK(rc.resolved().batch == RuntimeConfig::kDefaultBatch);

  // Env set, fields unset -> env wins (through the validated parsers).
  put("RLSCHED_WORKERS", "2");
  put("RLSCHED_BATCH", "32");
  CHECK(RuntimeConfig::from_env().workers ==
        (hw > 0 ? std::min<std::size_t>(2, hw) : 2));
  CHECK(RuntimeConfig::from_env().batch == 32);
  CHECK(rc.resolved().workers == RuntimeConfig::from_env().workers);
  CHECK(rc.resolved().batch == 32);

  // Explicit fields beat the env.
  RuntimeConfig explicit_rc;
  explicit_rc.workers = 1;
  explicit_rc.batch = 4;
  CHECK(explicit_rc.resolved().workers == 1);
  CHECK(explicit_rc.resolved().batch == 4);

  // Mixed: one explicit field, the other deferred.
  RuntimeConfig mixed;
  mixed.batch = 16;
  CHECK(mixed.resolved().workers == RuntimeConfig::from_env().workers);
  CHECK(mixed.resolved().batch == 16);

  // Garbage env falls back to the built-in default, not to garbage.
  put("RLSCHED_WORKERS", "abc");
  put("RLSCHED_BATCH", "-1");
  CHECK(RuntimeConfig::from_env().workers == RuntimeConfig::kDefaultWorkers);
  CHECK(RuntimeConfig::from_env().batch == RuntimeConfig::kDefaultBatch);

  unsetenv("RLSCHED_WORKERS");
  unsetenv("RLSCHED_BATCH");

  // Strict CLI/config parsers: unlike the env knobs, these FAIL on bad
  // input (return false, leave *out untouched) — an explicitly passed
  // flag must never be silently replaced by a default.
  using rlsched::util::parse_count;
  using rlsched::util::parse_double;
  {
    std::size_t n = 999;
    CHECK(parse_count("1", &n) && n == 1);
    CHECK(parse_count("100000", &n) && n == 100000);
    n = 999;
    CHECK(!parse_count("0", &n));      // zero count rejected
    CHECK(!parse_count("-5", &n));     // negative rejected
    CHECK(!parse_count("", &n));       // empty rejected
    CHECK(!parse_count("1O", &n));     // trailing garbage rejected
    CHECK(!parse_count("10k", &n));
    CHECK(!parse_count("abc", &n));
    CHECK(!parse_count("3.5", &n));    // not an integer
    CHECK(!parse_count(" 7 ", &n));    // embedded whitespace after digits
    CHECK(!parse_count("99999999999999999999", &n));  // out of range
    CHECK(n == 999);                   // failures never wrote through
    CHECK(parse_count("8", &n, 16) && n == 8);
    CHECK(!parse_count("17", &n, 16));  // ceiling REJECTS, never clamps
  }
  {
    double d = -1.0;
    CHECK(parse_double("2.5", &d) && d == 2.5);
    CHECK(parse_double("-0.75", &d) && d == -0.75);
    CHECK(parse_double("1e3", &d) && d == 1000.0);
    d = -1.0;
    CHECK(!parse_double("", &d));
    CHECK(!parse_double("x", &d));
    CHECK(!parse_double("2.5x", &d));
    CHECK(!parse_double("nan", &d));         // NaN fails the range check
    CHECK(!parse_double("inf", &d));         // outside any finite range
    CHECK(!parse_double("1e400", &d));       // overflow
    CHECK(d == -1.0);
    CHECK(parse_double("0.5", &d, 0.0, 1.0) && d == 0.5);
    CHECK(!parse_double("1.5", &d, 0.0, 1.0));  // above max fails
    CHECK(!parse_double("-0.1", &d, 0.0, 1.0));
  }

  std::puts("env parsing: OK");
  return 0;
}
