#pragma once
// Counting global operator new/delete for the zero-allocation gates.
// Include this FIRST (before any other header) in the main TU of a gate
// binary; read `g_allocs` around the region that must not allocate.
//
// The nothrow family must be overridden too (stable_sort's temporary
// buffer uses it): a partial override would mix this file's malloc/free
// with the runtime's operator new — miscounting here and an
// alloc-dealloc-mismatch under ASan.
//
// Deliberately NO align_val_t overloads: the gates have counted only the
// plain forms since the seed, and widening what counts would move the
// goalposts of every recorded gate. tests/test_parallel_rollout.cpp keeps
// its own std::atomic variant — these counters are single-threaded.

#include <cstdlib>
#include <new>

static unsigned long long g_allocs = 0;

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocs;
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
