// Batched inference must be invisible in every result: for B in
// {1, 3, 8, 32} a trainer configured with inference batch width B produces
// BITWISE identical trajectories, metrics, and updated parameters to the
// unbatched (B=1) trainer, and evaluate_batch() reproduces the per-sequence
// evaluate() results bit for bit. Also gates the zero-allocation discipline
// of the batched decision loop (pack + B x 128 forward + per-window argmax)
// after warmup.
#include <cstdio>
#include <cstdlib>
#include <new>

#include "counting_alloc.hpp"

#include <vector>

#include "nn/ops.hpp"
#include "rl/batch_eval.hpp"
#include "rl/ppo.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

#include "test_util.hpp"

namespace {

using namespace rlsched;

// Congested workload (multi-job windows at every decision) so batching has
// real windows to pack and gradients are non-trivial.
trace::Trace congested_trace() {
  util::Rng rng(99);
  std::vector<trace::Job> jobs;
  for (int i = 0; i < 1200; ++i) {
    trace::Job j;
    j.id = i + 1;
    j.submit_time = 20.0 * i;
    j.requested_time = 600.0 + 4000.0 * rng.uniform();
    j.run_time = j.requested_time * rng.uniform(0.5, 1.0);
    j.requested_procs = 1 + static_cast<int>(rng.below(48));
    j.user = 1 + static_cast<int>(rng.below(6));
    jobs.push_back(j);
  }
  return trace::Trace("congested", 128, std::move(jobs));
}

rl::PPOConfig test_config(std::size_t batch, rl::PolicyKind kind) {
  rl::PPOConfig cfg;
  cfg.policy = kind;
  cfg.seq_len = 64;
  cfg.trajectories_per_epoch = 8;
  cfg.pi_iters = 2;
  cfg.v_iters = 2;
  cfg.minibatch = 0;  // full batch -> multiple chunks per update step
  cfg.seed = 7;
  cfg.batch = batch;
  return cfg;
}

void check_epochs_identical(const rl::PPOTrainer& a, const rl::PPOTrainer& b) {
  CHECK(a.steps() == b.steps());
  CHECK(a.trajectory_ends() == b.trajectory_ends());
  for (std::size_t i = 0; i < a.steps(); ++i) {
    const rl::Observation& oa = a.observation(i);
    const rl::Observation& ob = b.observation(i);
    CHECK(oa.count == ob.count);
    CHECK(oa.mask == ob.mask);
    CHECK(oa.features == ob.features);  // bitwise float equality
  }
  CHECK(a.actions() == b.actions());
  CHECK(a.logps() == b.logps());
  CHECK(a.values() == b.values());
  CHECK(a.advantages() == b.advantages());
  CHECK(a.returns() == b.returns());
  CHECK(a.terminal_rewards() == b.terminal_rewards());
  CHECK(a.policy().param_vector() == b.policy().param_vector());
  CHECK(a.value_params() == b.value_params());
}

// Training: batch width B must be bitwise invisible in trajectories,
// metrics, and UPDATED parameters (collection lockstep + batched update
// chunks both reduce order-stably).
void check_training_batch_invariance(rl::PolicyKind kind,
                                     const std::vector<std::size_t>& widths,
                                     std::size_t epochs) {
  const auto trace = congested_trace();
  rl::PPOTrainer reference(trace, test_config(1, kind));
  std::vector<double> ref_metric;
  for (std::size_t e = 0; e < epochs; ++e) {
    ref_metric.push_back(reference.train_epoch().avg_metric);
  }
  for (const std::size_t B : widths) {
    rl::PPOTrainer batched(trace, test_config(B, kind));
    for (std::size_t e = 0; e < epochs; ++e) {
      CHECK(batched.train_epoch().avg_metric == ref_metric[e]);
    }
    check_epochs_identical(reference, batched);
  }
}

// Evaluation sweeps: evaluate_batch() == per-sequence evaluate(), bitwise,
// for every batch width and with backfilling on and off.
void check_eval_batch_invariance() {
  const auto trace = congested_trace();
  rl::PPOTrainer trainer(trace, test_config(1, rl::PolicyKind::Kernel));
  trainer.train_epoch();  // move off the random init

  util::Rng rng(17);
  std::vector<std::vector<trace::Job>> seqs;
  for (std::size_t i = 0; i < 7; ++i) {
    seqs.push_back(trace.sample_sequence(rng, 96));
  }
  for (const bool backfill : {false, true}) {
    std::vector<sim::RunResult> unbatched;
    for (const auto& s : seqs) {
      unbatched.push_back(trainer.evaluate(s, trace.processors(), backfill));
    }
    for (const std::size_t B : {1u, 3u, 8u, 32u}) {
      rl::BatchedEvaluator evaluator(trainer.policy(), B);
      std::vector<sim::RunResult> batched(seqs.size());
      evaluator.evaluate(seqs, trace.processors(), backfill, batched.data());
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        CHECK(sim::bitwise_equal(batched[i], unbatched[i]));
      }
    }
  }
}

// The batched decision loop (pack + one B x 128 forward + per-window
// argmax) must be allocation-free once its scratch is warm, and every
// batched action must equal the unbatched argmax.
void check_batched_decision_zero_alloc() {
  const auto trace = congested_trace();
  util::Rng rng(5);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, rng);
  const rl::ObservationBuilder builder;

  constexpr std::size_t B = 32;
  std::vector<rl::Observation> obs(B);
  std::vector<const rl::Observation*> obs_ptr(B);
  sim::SchedulingEnv env(trace.processors());
  env.reset(trace.sequence(0, 256));
  for (std::size_t k = 0; k < B; ++k) {
    builder.build_into(env, obs[k]);
    obs_ptr[k] = &obs[k];
    env.step(0);
  }
  std::vector<float> logits(B * rl::kMaxObservable);
  std::vector<std::uint32_t> actions(B);

  rl::batched_argmax(*policy, obs_ptr.data(), B, logits.data(),
                     actions.data());  // warmup sizes the batch scratch
  const unsigned long long before = g_allocs;
  for (int round = 0; round < 3; ++round) {
    rl::batched_argmax(*policy, obs_ptr.data(), B, logits.data(),
                       actions.data());
  }
  const unsigned long long after = g_allocs;
  if (after != before) {
    std::fprintf(stderr, "batched decision loop allocated %llu times\n",
                 after - before);
    std::exit(1);
  }

  for (std::size_t k = 0; k < B; ++k) {
    const rl::Logits single = policy->logits(obs[k]);
    const std::size_t a = nn::argmax_masked(single.data(),
                                            obs[k].mask.data(),
                                            rl::kMaxObservable);
    CHECK(actions[k] == a);
    // The batched logits row itself is bitwise identical too.
    for (std::size_t j = 0; j < rl::kMaxObservable; ++j) {
      CHECK(logits[k * rl::kMaxObservable + j] == single[j]);
    }
  }
}

}  // namespace

int main() {
  check_training_batch_invariance(rl::PolicyKind::Kernel, {3, 8, 32}, 2);
  // One epoch and one width suffice for the remaining code paths: MlpV1
  // covers the sample-axis batched forward/backward, LeNet covers batched
  // collection combined with the NON-batched per-sample update branch
  // (supports_batched_update() == false). The kernel policy above carries
  // the full gate.
  check_training_batch_invariance(rl::PolicyKind::MlpV1, {8}, 1);
  check_training_batch_invariance(rl::PolicyKind::LeNet, {8}, 1);
  check_eval_batch_invariance();
  check_batched_decision_zero_alloc();
  std::puts("batched inference bitwise invariance + zero-alloc: OK");
  return 0;
}
