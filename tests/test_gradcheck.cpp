// Finite-difference gradient check for every hand-written backprop kernel:
// FlatMlp (dense + ReLU masks), batched dense layers (the kernel policy's
// SoA path), and conv1d (the LeNet baseline). The PPO smoke test cannot
// catch a wrong gradient — "parameters moved" and "metric finite" both
// hold under a sign or index bug — so this is the net that does.
#include <cmath>
#include <cstdio>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/ops.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace {

// Loss = sum(output * R) for a fixed random R, so dLoss/doutput = R.
double rel_err(double a, double b) {
  return std::fabs(a - b) / std::max(1e-3, std::fabs(a) + std::fabs(b));
}

void fill(std::vector<float>& v, rlsched::util::Rng& rng, double scale) {
  for (float& x : v) x = static_cast<float>(scale * rng.normal());
}

void check_flat_mlp() {
  using rlsched::nn::FlatMlp;
  rlsched::util::Rng rng(7);
  const FlatMlp net({5, 7, 4, 3});
  std::vector<float> params(net.param_count());
  net.init(params.data(), rng);
  std::vector<float> x(5), r(3), grad(net.param_count(), 0.0f), dx(5, 0.0f);
  fill(x, rng, 1.0);
  fill(r, rng, 1.0);

  auto loss = [&]() {
    const float* out = net.forward(params.data(), x.data());
    double s = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) s += out[i] * r[i];
    return s;
  };
  loss();  // populate activations for the paired backward
  net.backward(params.data(), x.data(), r.data(), grad.data(), dx.data(),
               /*recompute=*/false);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < params.size(); i += 3) {  // sample every 3rd
    const float keep = params[i];
    params[i] = keep + eps;
    const double up = loss();
    params[i] = keep - eps;
    const double down = loss();
    params[i] = keep;
    const double numeric = (up - down) / (2.0 * eps);
    CHECK(rel_err(numeric, grad[i]) < 2e-2);
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float keep = x[i];
    x[i] = keep + eps;
    const double up = loss();
    x[i] = keep - eps;
    const double down = loss();
    x[i] = keep;
    CHECK(rel_err((up - down) / (2.0 * eps), dx[i]) < 2e-2);
  }
}

void check_dense_batch() {
  using namespace rlsched::nn;
  rlsched::util::Rng rng(11);
  constexpr std::size_t OUT = 3, IN = 4, J = 5;
  std::vector<float> W(OUT * IN), b(OUT), A(IN * J), C(OUT * J), R(OUT * J);
  fill(W, rng, 0.7);
  fill(b, rng, 0.3);
  fill(A, rng, 1.0);
  fill(R, rng, 1.0);

  auto loss = [&]() {
    dense_batch_forward(W.data(), b.data(), A.data(), C.data(), OUT, IN, J,
                        /*relu=*/true);
    double s = 0.0;
    for (std::size_t i = 0; i < C.size(); ++i) s += C[i] * R[i];
    return s;
  };
  loss();
  std::vector<float> dC(R), dA(IN * J, 0.0f), gW(OUT * IN, 0.0f),
      gb(OUT, 0.0f);
  dense_batch_backward(W.data(), A.data(), C.data(), dC.data(), dA.data(),
                       gW.data(), gb.data(), OUT, IN, J, /*relu=*/true);

  const float eps = 1e-3f;
  auto numeric = [&](float& slot) {
    const float keep = slot;
    slot = keep + eps;
    const double up = loss();
    slot = keep - eps;
    const double down = loss();
    slot = keep;
    return (up - down) / (2.0 * eps);
  };
  for (std::size_t i = 0; i < W.size(); ++i) CHECK(rel_err(numeric(W[i]), gW[i]) < 2e-2);
  for (std::size_t i = 0; i < b.size(); ++i) CHECK(rel_err(numeric(b[i]), gb[i]) < 2e-2);
  for (std::size_t i = 0; i < A.size(); ++i) CHECK(rel_err(numeric(A[i]), dA[i]) < 2e-2);
}

void check_conv1d() {
  using namespace rlsched::nn;
  rlsched::util::Rng rng(13);
  constexpr std::size_t CO = 2, CI = 3, L = 8, K = 5;
  std::vector<float> W(CO * CI * K), b(CO), A(CI * L), C(CO * L), R(CO * L);
  fill(W, rng, 0.7);
  fill(b, rng, 0.3);
  fill(A, rng, 1.0);
  fill(R, rng, 1.0);

  auto loss = [&]() {
    conv1d_forward(W.data(), b.data(), A.data(), C.data(), CO, CI, L, K,
                   /*relu=*/true);
    double s = 0.0;
    for (std::size_t i = 0; i < C.size(); ++i) s += C[i] * R[i];
    return s;
  };
  loss();
  std::vector<float> dC(R), dA(CI * L, 0.0f), gW(CO * CI * K, 0.0f),
      gb(CO, 0.0f);
  conv1d_backward(W.data(), A.data(), C.data(), dC.data(), dA.data(),
                  gW.data(), gb.data(), CO, CI, L, K, /*relu=*/true);

  const float eps = 1e-3f;
  auto numeric = [&](float& slot) {
    const float keep = slot;
    slot = keep + eps;
    const double up = loss();
    slot = keep - eps;
    const double down = loss();
    slot = keep;
    return (up - down) / (2.0 * eps);
  };
  for (std::size_t i = 0; i < W.size(); ++i) CHECK(rel_err(numeric(W[i]), gW[i]) < 2e-2);
  for (std::size_t i = 0; i < b.size(); ++i) CHECK(rel_err(numeric(b[i]), gb[i]) < 2e-2);
  for (std::size_t i = 0; i < A.size(); ++i) CHECK(rel_err(numeric(A[i]), dA[i]) < 2e-2);
}

}  // namespace

int main() {
  check_flat_mlp();
  check_dense_batch();
  check_conv1d();
  std::puts("gradient checks: OK");
  return 0;
}
