// EASY invariant: backfilled jobs may never delay the queue head's
// reservation. Fixture on a 4-processor machine under FCFS:
//   J0: submit 0, 2 procs, run 100  -> starts immediately, ends 100
//   J1: submit 1, 4 procs, run 10   -> head; reservation at t=100
//   C : submit 2, 2 procs           -> the backfill candidate
// A short candidate (runtime 50) fits the backfill window and must start at
// t=2 without moving J1. A long candidate (runtime 150) overlaps the
// reservation with no spare processors and must NOT be backfilled.
#include <vector>

#include "sched/heuristics.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"

namespace {
using namespace rlsched;

std::vector<trace::Job> fixture(double candidate_runtime) {
  std::vector<trace::Job> jobs(3);
  jobs[0] = {.id = 1, .submit_time = 0, .run_time = 100,
             .requested_time = 100, .requested_procs = 2, .user = 1};
  jobs[1] = {.id = 2, .submit_time = 1, .run_time = 10, .requested_time = 10,
             .requested_procs = 4, .user = 2};
  jobs[2] = {.id = 3, .submit_time = 2, .run_time = candidate_runtime,
             .requested_time = candidate_runtime, .requested_procs = 2,
             .user = 3};
  return jobs;
}
}  // namespace

int main() {
  // Candidate finishes before the head's reservation: backfills at t=2 and
  // the head still starts exactly at its reservation (t=100).
  {
    sim::SchedulingEnv env(4, {.backfill = true});
    env.reset(fixture(50.0));
    env.run_priority(sched::fcfs_priority());
    CHECK_NEAR(env.jobs()[0].start_time, 0.0, 1e-9);
    CHECK_NEAR(env.jobs()[2].start_time, 2.0, 1e-9);    // backfilled
    CHECK_NEAR(env.jobs()[1].start_time, 100.0, 1e-9);  // head undelayed
  }

  // Candidate overruns the reservation window: EASY must refuse it, the
  // head starts at t=100, and the candidate runs after the head.
  {
    sim::SchedulingEnv env(4, {.backfill = true});
    env.reset(fixture(150.0));
    env.run_priority(sched::fcfs_priority());
    CHECK_NEAR(env.jobs()[1].start_time, 100.0, 1e-9);  // head undelayed
    CHECK(env.jobs()[2].start_time >= 110.0 - 1e-9);    // after the head
  }

  // Sweep: under FCFS, enabling backfill must never delay any job that was
  // the queue head, and never delay the final head's start in particular.
  {
    std::vector<trace::Job> jobs;
    // A pseudo-random but fixed workload with mixed widths.
    const int widths[] = {1, 3, 2, 4, 1, 2, 3, 1, 4, 2, 1, 2};
    const double runs[] = {40, 90, 15, 60, 120, 25, 70, 10, 95, 30, 55, 20};
    for (int i = 0; i < 12; ++i) {
      trace::Job j;
      j.id = i + 1;
      j.submit_time = 3.0 * i;
      j.run_time = runs[i];
      j.requested_time = runs[i];
      j.requested_procs = widths[i];
      j.user = i % 3;
      jobs.push_back(j);
    }
    sim::SchedulingEnv plain(4);
    plain.reset(jobs);
    const auto no_bf = plain.run_priority(sched::fcfs_priority());
    sim::SchedulingEnv easy(4, {.backfill = true});
    easy.reset(jobs);
    const auto bf = easy.run_priority(sched::fcfs_priority());
    CHECK(no_bf.jobs == jobs.size());
    CHECK(bf.jobs == jobs.size());
    // EASY guarantees head protection per decision, not a pointwise-better
    // schedule (a spare-processor backfill may shift later arrivals). What
    // must hold: both schedules evolve identically until the first backfill
    // event, so the earliest deviation IN TIME is a queue-jump — some job
    // starting earlier — never a delay.
    std::size_t first_dev = jobs.size();
    double first_dev_time = 1e300;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const double e = easy.jobs()[i].start_time;
      const double p = plain.jobs()[i].start_time;
      if (std::fabs(e - p) <= 1e-9) continue;
      const double when = std::min(e, p);
      if (when < first_dev_time) {
        first_dev_time = when;
        first_dev = i;
      }
    }
    CHECK(first_dev < jobs.size());  // this fixture does trigger backfill
    CHECK(easy.jobs()[first_dev].start_time <
          plain.jobs()[first_dev].start_time);
  }

  std::puts("EASY backfill invariant: OK");
  return 0;
}
