// Deterministic chaos for the fault-tolerant serving layer. The one
// invariant every section closes on is EXACTLY-ONCE-OR-CANCELLED
// completion accounting: at every quiescent point,
//
//   requests_submitted == requests_completed + requests_cancelled +
//                         requests_shed
//
// — no request lost, none double-counted — under injected disconnects,
// torn frames, short writes, EAGAIN storms, delayed completions, deadline
// expiry, load shedding, shutdown, and server failover, on BOTH
// transports (in-process Daemon calls and the socket Server/Client pair).
//
// Faults replay exactly per seed (serve/fault.hpp): CI sweeps
// RLSCHED_FAULT_SEED over a small matrix, and any seed must pass — the
// assertions are contract-level (every verb resolves; OK results are
// BITWISE the unfaulted reference; accounting balances), not
// placement-level, so determinism makes failures reproducible rather than
// making the test brittle.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "rl/batch_eval.hpp"
#include "rl/policy.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "sim/env.hpp"
#include "test_util.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace {
using namespace rlsched;
using core::ScheduleRequest;
using core::ScheduleResult;
using core::Status;
using core::StatusCode;
using serve::Completion;
using serve::Daemon;
using serve::DaemonConfig;
using serve::FaultInjector;
using serve::FaultPlan;
using serve::RequestId;
using serve::SessionConfig;
using serve::SessionId;

DaemonConfig daemon_config(std::size_t batch) {
  DaemonConfig cfg;
  cfg.runtime.workers = 1;
  cfg.runtime.batch = batch;
  return cfg;
}

/// The stats-balance invariant at a quiescent point.
void check_balance(const Daemon& daemon) {
  const auto stats = daemon.stats();
  CHECK(stats.requests_submitted == stats.requests_completed +
                                        stats.requests_cancelled +
                                        stats.requests_shed);
}

std::vector<sim::RunResult> reference_runs(
    const rl::Policy& policy, const std::vector<std::vector<trace::Job>>& seqs,
    int processors, bool backfill) {
  rl::BatchedEvaluator eval(policy, 1);
  std::vector<sim::RunResult> out(seqs.size());
  eval.evaluate(seqs, processors, backfill, out.data());
  return out;
}
}  // namespace

int main() {
  const std::uint64_t seed = static_cast<std::uint64_t>(
      util::env_long("RLSCHED_FAULT_SEED", 1, 1));
  std::printf("serve faults: seed %llu\n",
              static_cast<unsigned long long>(seed));

  const auto trace = workload::make_trace("Lublin-1", 2000, 42);
  const int procs = trace.processors();
  util::Rng policy_rng(99);
  const auto policy =
      rl::make_policy(rl::PolicyKind::Kernel, rl::kMaxObservable, policy_rng);

  util::Rng rng(seed);
  constexpr std::size_t kSeqs = 8;
  std::vector<std::vector<trace::Job>> seqs;
  for (std::size_t i = 0; i < kSeqs; ++i) {
    seqs.push_back(trace.sample_sequence(rng, 48 + 8 * i));
  }
  const auto expect = reference_runs(*policy, seqs, procs, true);

  // --- 1. deadline expiry at admission (in-process, deterministic) -------
  {
    Daemon daemon(daemon_config(4));
    const std::uint32_t pid = daemon.register_policy(*policy);
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = daemon.create_session(sc).value();

    // Expired and unexpired requests interleaved on one session: the
    // dispatcher must expire EXACTLY the deadlined ones and serve the rest
    // bitwise-identical to the unfaulted reference.
    std::vector<RequestId> doomed;
    std::vector<RequestId> live;
    for (int i = 0; i < 3; ++i) {
      ScheduleRequest dr;
      dr.jobs = &seqs[0];
      dr.backfill = true;
      dr.deadline_seconds = 1e-9;  // expired long before drain() below
      doomed.push_back(daemon.submit(sid, dr).value());
      ScheduleRequest lr;
      lr.jobs = &seqs[1];
      lr.backfill = true;
      lr.deadline_seconds = 3600.0;  // far future: never expires
      live.push_back(daemon.submit(sid, lr).value());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    CHECK(daemon.drain().ok());
    for (const RequestId rid : doomed) {
      Completion c;
      CHECK(daemon.try_take(rid, &c).ok());
      CHECK(c.status.code() == StatusCode::kDeadlineExceeded);
      CHECK(c.result.runs.empty());
    }
    for (const RequestId rid : live) {
      Completion c;
      CHECK(daemon.try_take(rid, &c).ok());
      CHECK(c.status.ok());
      CHECK(sim::bitwise_equal(c.result.run(), expect[1]));
    }
    const auto stats = daemon.stats();
    CHECK(stats.requests_submitted == 6);
    CHECK(stats.requests_expired == 3);
    CHECK(stats.requests_failed == 3);  // expired counts as completed+failed
    CHECK(stats.requests_completed == 6);
    check_balance(daemon);

    // A NEGATIVE deadline is malformed and refused at submit; expiry is
    // never an admission-time rejection (the 1e-9 requests above were
    // accepted, then expired with a DELIVERED completion).
    ScheduleRequest bad;
    bad.jobs = &seqs[0];
    bad.deadline_seconds = -1.0;
    CHECK(daemon.submit(sid, bad).status().code() ==
          StatusCode::kInvalidArgument);
  }

  // --- 2. load shedding: both admission policies, exact counts -----------
  {
    // kRejectNew: depth 2, five submits — the last three bounce at submit
    // with kResourceExhausted and are NEVER counted as submitted.
    DaemonConfig cfg = daemon_config(4);
    cfg.max_queue_depth = 2;
    cfg.shed_policy = serve::ShedPolicy::kRejectNew;
    Daemon daemon(cfg);
    const std::uint32_t pid = daemon.register_policy(*policy);
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = daemon.create_session(sc).value();
    ScheduleRequest req;
    req.jobs = &seqs[2];
    req.backfill = true;
    std::vector<RequestId> accepted;
    for (int i = 0; i < 5; ++i) {
      auto rid = daemon.submit(sid, req);
      if (i < 2) {
        CHECK(rid.ok());
        accepted.push_back(rid.value());
      } else {
        CHECK(rid.status().code() == StatusCode::kResourceExhausted);
      }
    }
    CHECK(daemon.drain().ok());
    for (const RequestId rid : accepted) {
      Completion c;
      CHECK(daemon.try_take(rid, &c).ok());
      CHECK(c.status.ok());
      CHECK(sim::bitwise_equal(c.result.run(), expect[2]));
    }
    const auto stats = daemon.stats();
    CHECK(stats.requests_submitted == 2);
    CHECK(stats.requests_rejected == 3);
    CHECK(stats.requests_completed == 2);
    CHECK(stats.requests_shed == 0);
    check_balance(daemon);
  }
  {
    // kShedOldest: depth 2, five submits — every submit is accepted, the
    // three OLDEST get shed as delivered kResourceExhausted completions,
    // and the two newest are served.
    DaemonConfig cfg = daemon_config(4);
    cfg.max_queue_depth = 2;
    cfg.shed_policy = serve::ShedPolicy::kShedOldest;
    Daemon daemon(cfg);
    const std::uint32_t pid = daemon.register_policy(*policy);
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = daemon.create_session(sc).value();
    ScheduleRequest req;
    req.jobs = &seqs[3];
    req.backfill = true;
    std::vector<RequestId> rids;
    for (int i = 0; i < 5; ++i) rids.push_back(daemon.submit(sid, req).value());
    CHECK(daemon.drain().ok());
    for (std::size_t i = 0; i < rids.size(); ++i) {
      Completion c;
      CHECK(daemon.try_take(rids[i], &c).ok());
      if (i < 3) {
        CHECK(c.status.code() == StatusCode::kResourceExhausted);
      } else {
        CHECK(c.status.ok());
        CHECK(sim::bitwise_equal(c.result.run(), expect[3]));
      }
    }
    const auto stats = daemon.stats();
    CHECK(stats.requests_submitted == 5);
    CHECK(stats.requests_shed == 3);
    CHECK(stats.requests_completed == 2);
    CHECK(stats.requests_rejected == 0);
    check_balance(daemon);
  }

  // --- 3. socket fault matrix ---------------------------------------------
  // Server AND client I/O both run through a seeded injector; a resilient
  // client drives schedule() rounds against it. Every call must RESOLVE:
  // OK with the bitwise reference result, a clean kAborted (retries
  // exhausted), or a non-transport payload error — never a hang, never a
  // wrong result. Afterwards the daemon's books must balance exactly.
  {
    struct Mode {
      const char* name;
      FaultPlan plan;
    };
    std::vector<Mode> modes;
    {
      FaultPlan p;
      p.seed = seed;
      p.short_io = 0.3;
      modes.push_back({"short writes", p});
    }
    {
      FaultPlan p;
      p.seed = seed;
      p.eagain = 0.3;
      modes.push_back({"eagain storms", p});
    }
    {
      FaultPlan p;
      p.seed = seed;
      p.disconnect = 0.02;  // torn frames + mid-request disconnects
      modes.push_back({"disconnects", p});
    }
    {
      FaultPlan p;
      p.seed = seed;
      p.delay = 0.2;
      p.delay_us = 200;
      modes.push_back({"delays", p});
    }
    {
      FaultPlan p;
      p.seed = seed;
      p.disconnect = 0.01;
      p.eagain = 0.1;
      p.short_io = 0.2;
      p.delay = 0.05;
      p.delay_us = 50;
      modes.push_back({"combined", p});
    }

    for (const Mode& mode : modes) {
      FaultInjector inject(mode.plan);
      Daemon daemon(daemon_config(4));
      const std::uint32_t pid = daemon.register_policy(*policy);
      serve::ServerConfig scfg;
      scfg.fault = &inject;
      serve::Server server(daemon, scfg);
      CHECK(server.status().ok());

      serve::ClientConfig ccfg;
      ccfg.retry.max_attempts = 8;
      ccfg.retry.initial_backoff_seconds = 0.0005;
      ccfg.retry.max_backoff_seconds = 0.01;
      ccfg.retry.seed = seed;
      serve::Client client(ccfg);
      client.set_fault_injector(&inject);
      CHECK(client.connect({{"127.0.0.1", server.port()}}).ok());

      SessionConfig sc;
      sc.processors = procs;
      sc.policy = pid;
      auto sid = client.create_session(sc);
      std::size_t resolved_ok = 0;
      std::size_t resolved_aborted = 0;
      std::size_t resolved_other = 0;
      if (sid.ok()) {
        constexpr std::size_t kRounds = 12;
        for (std::size_t round = 0; round < kRounds; ++round) {
          const std::size_t which = round % kSeqs;
          ScheduleRequest req;
          req.jobs = &seqs[which];
          req.backfill = true;
          ScheduleResult out;
          const Status s = client.schedule(sid.value(), req, &out);
          if (s.ok()) {
            // A faulted transport may retry and re-execute, but an OK
            // answer must be THE answer.
            CHECK(sim::bitwise_equal(out.run(), expect[which]));
            ++resolved_ok;
          } else if (s.code() == StatusCode::kAborted) {
            ++resolved_aborted;  // retries exhausted: clean terminal
          } else {
            // e.g. session re-establishment failed mid-retry; must still
            // be a clean status, never a crash or a wrong result.
            ++resolved_other;
          }
        }
        CHECK(resolved_ok + resolved_aborted + resolved_other == kRounds);
        (void)client.destroy_session(sid.value());
      } else {
        CHECK(sid.status().code() == StatusCode::kAborted);
      }
      client.close();
      server.stop();
      // Serve-or-cancel everything still in flight, then the books must
      // balance to the request.
      daemon.shutdown(10.0);
      check_balance(daemon);
      std::printf("  mode %-13s ok=%zu aborted=%zu other=%zu\n", mode.name,
                  resolved_ok, resolved_aborted, resolved_other);
      // Short writes and delays are fully absorbed by the partial-I/O
      // loops — no connection ever drops, so nothing may abort and every
      // round must produce the bitwise answer. (EAGAIN and disconnect
      // modes MAY exhaust retries; for them resolution + accounting is
      // the contract.)
      if (mode.plan.disconnect == 0.0 && mode.plan.eagain == 0.0) {
        CHECK(resolved_aborted == 0 && resolved_other == 0);
        CHECK(resolved_ok == 12);
      }
    }
  }

  // --- 4. failover across an endpoint list --------------------------------
  {
    Daemon daemon_a(daemon_config(4));
    Daemon daemon_b(daemon_config(4));
    const std::uint32_t pid_a = daemon_a.register_policy(*policy);
    const std::uint32_t pid_b = daemon_b.register_policy(*policy);
    CHECK(pid_a == pid_b);  // same id on both servers: one SessionConfig
    serve::Server server_a(daemon_a, {});
    serve::Server server_b(daemon_b, {});
    CHECK(server_a.status().ok() && server_b.status().ok());

    serve::ClientConfig ccfg;
    ccfg.retry.max_attempts = 6;
    ccfg.retry.initial_backoff_seconds = 0.0005;
    ccfg.retry.max_backoff_seconds = 0.01;
    ccfg.retry.seed = seed;
    ccfg.connect_timeout_seconds = 1.0;
    serve::Client client(ccfg);
    CHECK(client.connect({{"127.0.0.1", server_a.port()},
                          {"127.0.0.1", server_b.port()}})
              .ok());

    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid_a;
    auto sid = client.create_session(sc);
    CHECK(sid.ok());
    ScheduleRequest req;
    req.jobs = &seqs[4];
    req.backfill = true;
    ScheduleResult before;
    CHECK(client.schedule(sid.value(), req, &before).ok());
    CHECK(sim::bitwise_equal(before.run(), expect[4]));
    CHECK(daemon_a.stats().requests_submitted == 1);

    // Kill server A mid-session. The next verb must fail over to B,
    // re-establish the session there, and return the SAME bits.
    server_a.stop();
    ScheduleResult after;
    CHECK(client.schedule(sid.value(), req, &after).ok());
    CHECK(sim::bitwise_equal(after.run(), before.run()));
    CHECK(daemon_b.stats().requests_submitted == 1);
    CHECK(daemon_b.live_sessions() == 1);  // re-established, not leaked

    // The virtualized handle stays destroyable after the failover.
    CHECK(client.destroy_session(sid.value()).ok());
    CHECK(daemon_b.live_sessions() == 0);
    client.close();
    server_b.stop();
    daemon_a.shutdown(1.0);
    daemon_b.shutdown(1.0);
    check_balance(daemon_a);
    check_balance(daemon_b);
  }

  // --- 5. deadlines over the wire ------------------------------------------
  {
    // Pause the dispatchers, queue a deadlined request through the socket,
    // let it expire, then restart: the client must observe a clean
    // kDeadlineExceeded — proof the new status round-trips the wire and
    // the daemon expires admitted work it could no longer start in time.
    Daemon daemon(daemon_config(4));
    const std::uint32_t pid = daemon.register_policy(*policy);
    serve::Server server(daemon, {});
    CHECK(server.status().ok());
    daemon.stop();  // clean pause; the server keeps accepting

    serve::Client client;
    CHECK(client.connect("127.0.0.1", server.port()).ok());
    SessionConfig sc;
    sc.processors = procs;
    sc.policy = pid;
    auto sid = client.create_session(sc);
    CHECK(sid.ok());
    ScheduleRequest req;
    req.jobs = &seqs[5];
    req.backfill = true;
    req.deadline_seconds = 0.002;
    auto rid = client.submit(sid.value(), req);
    CHECK(rid.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    daemon.start();  // admission now finds the deadline long gone
    Completion c;
    CHECK(client.wait(rid.value(), &c).ok());
    CHECK(c.status.code() == StatusCode::kDeadlineExceeded);

    // Same request without the pause and a generous deadline: served.
    ScheduleRequest ok_req = req;
    ok_req.deadline_seconds = 3600.0;
    ScheduleResult out;
    CHECK(client.schedule(sid.value(), ok_req, &out).ok());
    CHECK(sim::bitwise_equal(out.run(), expect[5]));

    client.close();
    server.stop();
    daemon.shutdown(1.0);
    const auto stats = daemon.stats();
    CHECK(stats.requests_expired == 1);
    check_balance(daemon);
  }

  std::puts("serve faults: OK");
  return 0;
}
